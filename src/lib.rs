//! # synthesis — a reproduction of the Synthesis kernel
//!
//! This facade crate re-exports the whole reproduction of *Threads and
//! Input/Output in the Synthesis Kernel* (Massalin & Pu, SOSP 1989):
//!
//! - [`machine`] (crate `quamachine`) — the simulated 68020-flavoured
//!   Quamachine with its cycle-cost model, devices, and measurement
//!   facilities;
//! - [`codegen`] (crate `synthesis-codegen`) — kernel code synthesis:
//!   templates with holes, Factoring Invariants, Collapsing Layers,
//!   executable data structures, and the peephole optimizer;
//! - [`blocks`] (crate `synthesis-blocks`) — the kernel building blocks as
//!   real Rust concurrency primitives: lock-free SP-SC / MP-SC / SP-MC /
//!   MP-MC queues, monitors, switches, pumps, and gauges;
//! - [`kernel`] (crate `synthesis-core`) — the Synthesis kernel: threads,
//!   the executable ready queue, synthesized context switches and I/O,
//!   fine-grain scheduling, streams, device servers, and the file system;
//! - [`unix`] (crate `synthesis-unix`) — the UNIX emulator and the
//!   SUNOS-like baseline kernel used for the paper's Table 1 comparison.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results.

pub use quamachine as machine;
pub use synthesis_blocks as blocks;
pub use synthesis_codegen as codegen;
pub use synthesis_core as kernel;
pub use synthesis_unix as unix;
