//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//! generation-only strategies (no shrinking), the `proptest!`,
//! `prop_oneof!` and `prop_assert*!` macros, `any::<T>()`, ranges,
//! tuples, `collection::vec` and `array::uniform4`.
//!
//! Each `proptest!` test derives its RNG seed from its module path and
//! function name, so runs are deterministic and failures reproducible;
//! on failure the case index and generated-input debug output are in the
//! panic message instead of a shrunk counterexample.

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic generator used by all strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly from a u64.
    #[must_use]
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seed from a test name (FNV-1a hash), so every test gets a stable,
    /// distinct stream.
    #[must_use]
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A value generator (generation-only mirror of proptest's `Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Weighted union of strategies; built by [`prop_oneof!`].
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> OneOf<V> {
    /// Build from `(weight, strategy)` arms. Panics if all weights are 0.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> OneOf<V> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one nonzero weight");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed incorrectly")
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy generating any value of `T` (mirror of `proptest::arbitrary`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`: `any::<u32>()` etc.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Collection strategies (mirror of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` of values from `element`, length uniform in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (mirror of `proptest::array`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[T; 4]` from one element strategy.
    #[derive(Debug, Clone)]
    pub struct Uniform4<S>(S);

    /// `[T; 4]` with every element drawn from `element`.
    pub fn uniform4<S: Strategy>(element: S) -> Uniform4<S> {
        Uniform4(element)
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

/// Per-test configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property-test assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Everything the property tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Assert a condition inside a `proptest!` body; fails the current case
/// (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} ({}) (both {:?})",
                stringify!($a),
                stringify!($b),
                format!($($fmt)+),
                a
            )));
        }
    }};
}

/// Weighted (`w => strategy`) or unweighted union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(($weight, $crate::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy)),)+
        ])
    };
}

/// Define property tests. Each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs `cases` generated inputs; `prop_assert*!`
/// failures report the case index and the generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                // The closure exists so `prop_assert!` can early-return
                // an Err out of the case body.
                #[allow(clippy::redundant_closure_call)]
                let result: $crate::TestCaseResult = (|| {
                    $(
                        let $arg = $crate::Strategy::generate(&($strategy), &mut rng);
                    )+
                    $body
                    Ok(())
                })();
                if let Err(e) = result {
                    // The RNG seed derives from the test name, so the
                    // failing inputs regenerate on any rerun.
                    panic!(
                        "proptest {}: case {}/{} failed: {}",
                        stringify!($name),
                        case,
                        cfg.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Put(u32),
        Get,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps(x in 1u32..10, v in crate::collection::vec(any::<u8>(), 0..5)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(v.len() < 5, "len {}", v.len());
        }

        #[test]
        fn oneof_weighted(op in prop_oneof![3 => any::<u32>().prop_map(Op::Put), 1 => Just(Op::Get)]) {
            match op {
                Op::Put(_) | Op::Get => {}
            }
        }
    }

    #[test]
    fn deterministic_streams() {
        let s = (0u32..100, any::<bool>());
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn uniform4_fills_all_slots() {
        let s = crate::array::uniform4(1u32..2);
        let mut rng = crate::TestRng::from_seed(1);
        assert_eq!(s.generate(&mut rng), [1, 1, 1, 1]);
    }
}
