//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this vendored crate
//! implements the harness surface the bench targets use: [`Criterion`],
//! benchmark groups, [`Bencher::iter`], and the `criterion_group!` /
//! `criterion_main!` macros (both invocation forms). Instead of
//! criterion's statistical engine it takes a configurable number of
//! timed samples and prints min/mean per benchmark — enough to track
//! regressions by eye and to keep `cargo bench` runnable offline.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark context (mirror of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_bench("", id, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(&self.name, id, self.sample_size, f);
        self
    }

    /// End the group (kept for API compatibility; reporting is eager).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`iter`](Bencher::iter) times the
/// routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Time `routine`, recording one sample per invocation of `iter`'s
    /// inner loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / self.iters_per_sample);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(samples),
        iters_per_sample: 1,
    };
    // Warm-up sample, discarded; also sizes the inner loop so very fast
    // routines are timed over enough iterations to mean something.
    f(&mut b);
    if let Some(first) = b.samples.first().copied() {
        if first < Duration::from_micros(50) {
            b.iters_per_sample = 100;
        }
    }
    b.samples.clear();
    for _ in 0..samples {
        f(&mut b);
    }
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("bench {label}: no samples (closure never called iter)");
        return;
    }
    let min = b.samples.iter().min().copied().unwrap_or_default();
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    println!(
        "bench {label}: min {:.3?} mean {:.3?} ({} samples)",
        min,
        mean,
        b.samples.len()
    );
}

/// Define a benchmark group function. Supports both the positional form
/// `criterion_group!(benches, f, g)` and the config form
/// `criterion_group! { name = benches; config = ...; targets = f, g }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; none apply here.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("count", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert!(calls > 0, "routine ran at least once");
    }

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(plain, target);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(2);
        targets = target
    }

    #[test]
    fn both_group_forms_expand() {
        plain();
        configured();
    }
}
