//! Offline stand-in for the `crossbeam` crate (no crates.io in the build
//! container). Provides the small API surface the workspace uses:
//! [`utils::CachePadded`] and [`scope`].

#![warn(missing_docs)]

/// Utilities (mirrors `crossbeam_utils`).
pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so adjacent hot fields do not
    /// share a cache line (false sharing). 128 covers the spatial
    /// prefetcher pairing on modern x86 as well as 64-byte lines.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Pad `value`.
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        /// Unwrap the padded value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> CachePadded<T> {
            CachePadded::new(value)
        }
    }
}

/// Threading utilities (mirrors `crossbeam::thread`).
pub mod thread {
    /// Scoped-thread handle passed to the [`scope`](super::scope) closure.
    ///
    /// Backed by [`std::thread::Scope`]; spawned threads may borrow from
    /// the enclosing stack frame and are joined when the scope ends.
    pub type Scope<'scope, 'env> = std::thread::Scope<'scope, 'env>;

    /// Run `f` with a scope in which borrowing threads can be spawned.
    ///
    /// Unlike crossbeam's, panics from child threads propagate when the
    /// scope joins (std semantics), so the `Result` is always `Ok`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(f))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use super::utils::CachePadded;

    #[test]
    fn cache_padded_is_aligned_and_derefs() {
        let p = CachePadded::new(7u64);
        assert_eq!(*p, 7);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert_eq!(p.into_inner(), 7);
    }

    #[test]
    fn scope_joins_borrowing_threads() {
        let mut v = vec![1, 2, 3];
        super::scope(|s| {
            s.spawn(|| v.iter().sum::<i32>());
        })
        .unwrap();
        v.push(4);
        assert_eq!(v.len(), 4);
    }
}
