//! Offline stand-in for the `rand` crate (0.9 API names).
//!
//! The build container has no crates.io access, so this vendored crate
//! implements exactly the surface the workspace uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::random`] and
//! [`Rng::random_range`]. The generator is xoshiro256++ seeded through
//! splitmix64 — deterministic, fast, and plenty for tests, allocator
//! traversal randomization, and fault plans.

#![warn(missing_docs)]

use std::ops::Range;

/// Seeding support (mirror of `rand::SeedableRng`, u64 entry only).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain by [`Rng::random`].
pub trait Standard: Sized {
    /// Derive a value from raw generator output.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

/// Types samplable from a half-open range by [`Rng::random_range`].
pub trait SampleUniform: Copy {
    /// Uniform value in `[lo, hi)`.
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// Object-safe raw generator interface.
pub trait RngCore {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling methods (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value over `T`'s whole domain.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniformly random value in `range` (half-open). Panics if empty.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn from_rng(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> f64 {
        // 53 mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Multiply-shift bounding (Lemire); bias is < 2^-64 * span,
                // irrelevant for this workspace's uses.
                let x = rng.next_u64();
                let r = ((u128::from(x) * u128::from(span)) >> 64) as u64;
                lo.wrapping_add(r as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Named generators (mirror of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++ seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = SmallRng::seed_from_u64(42);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.random_range(0usize..8);
            seen[v] = true;
            let u = r.random_range(8u32..512);
            assert!((8..512).contains(&u));
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit: {seen:?}");
    }
}
