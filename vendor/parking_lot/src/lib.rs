//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the minimal API surface it actually uses, implemented over `std::sync`.
//! Semantic differences from the real crate that matter here:
//!
//! - poisoning is swallowed (`parking_lot` has no poisoning; we recover
//!   the guard from a poisoned `std` lock);
//! - `Condvar::wait_for` returns a [`WaitTimeoutResult`] just like
//!   `parking_lot`'s, backed by `std`'s timed wait.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex protecting `t`.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never panics on
    /// poisoning (matching `parking_lot`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

/// Whether a timed wait returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait timed out (no notification arrived).
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with `parking_lot`'s guard-in-place API.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    // std::sync::Condvar::wait takes the guard by value; parking_lot takes
    // `&mut guard`. Bridge with a take/replace dance below.
}

impl Condvar {
    /// Create a condition variable.
    #[must_use]
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, re-acquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        });
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let timed_out = AtomicBool::new(false);
        replace_guard(guard, |g| match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => {
                timed_out.store(r.timed_out(), Ordering::Relaxed);
                g
            }
            Err(p) => {
                let (g, r) = p.into_inner();
                timed_out.store(r.timed_out(), Ordering::Relaxed);
                g
            }
        });
        WaitTimeoutResult(timed_out.load(Ordering::Relaxed))
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        // parking_lot reports whether a thread was woken; std cannot, so
        // report pessimistically. No caller in this workspace inspects it.
        false
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// Run `f` on the guard by value, storing the returned guard back.
fn replace_guard<T: ?Sized>(
    guard: &mut MutexGuard<'_, T>,
    f: impl FnOnce(MutexGuard<'_, T>) -> MutexGuard<'_, T>,
) {
    // SAFETY-free version: we cannot move out of `&mut` without a
    // placeholder, so use ptr::read/write carefully... instead, avoid
    // unsafe entirely by exploiting that std's wait consumes and returns
    // the guard for the SAME mutex: temporarily swap through Option via
    // raw pointer is unnecessary — use the unstable-free idiom below.
    take_mut(guard, f);
}

/// Minimal `take_mut`: move out of a `&mut`, run `f`, move back. Aborts
/// the process if `f` panics (a panic mid-wait would otherwise leave an
/// invalid guard behind).
fn take_mut<G>(slot: &mut G, f: impl FnOnce(G) -> G) {
    struct AbortOnPanic;
    impl Drop for AbortOnPanic {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    // SAFETY: `slot` is valid for reads and writes; the value read is
    // either passed through `f` and written back, or the process aborts
    // before the duplicated value can be observed or dropped twice.
    unsafe {
        let bomb = AbortOnPanic;
        let g = std::ptr::read(slot);
        let g = f(g);
        std::ptr::write(slot, g);
        std::mem::forget(bomb);
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock protecting `t`.
    pub const fn new(t: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(t),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let r = c.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            *done = true;
            drop(done);
            c.notify_one();
        });
        let (m, c) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = c.wait_for(&mut done, Duration::from_millis(50));
            let _ = r;
        }
        h.join().unwrap();
        assert!(*done);
    }
}
