//! Property tests: synthesis must never change what the code computes.
//!
//! Random straight-line programs over data registers (with hole-driven
//! constants) are synthesized with full optimization and with none; both
//! versions run on the machine and must leave identical data registers —
//! while the optimized version must never execute more cycles.

use proptest::prelude::*;

use quamachine::asm::Asm;
use quamachine::isa::{Cond, Operand, ShiftKind, Size};
use quamachine::machine::{Machine, MachineConfig, RunExit};
use synthesis_codegen::creator::{QuajectCreator, SynthesisOptions};
use synthesis_codegen::template::{Bindings, Template};

/// One random straight-line operation.
#[derive(Debug, Clone)]
enum Op {
    MoveImm(u32, u8),
    MoveHole(usize, u8),
    MoveReg(u8, u8),
    Add(u8, u8),
    AddImm(u32, u8),
    Sub(u8, u8),
    And(u8, u8),
    Or(u8, u8),
    Eor(u8, u8),
    Lsl(u8, u8),
    Lsr(u8, u8),
    Not(u8),
    Neg(u8),
    Swap(u8),
    CmpScc(u8, u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let r = 0u8..8;
    prop_oneof![
        (any::<u32>(), r.clone()).prop_map(|(v, d)| Op::MoveImm(v, d)),
        (0usize..4, r.clone()).prop_map(|(h, d)| Op::MoveHole(h, d)),
        (r.clone(), r.clone()).prop_map(|(s, d)| Op::MoveReg(s, d)),
        (r.clone(), r.clone()).prop_map(|(s, d)| Op::Add(s, d)),
        (any::<u32>(), r.clone()).prop_map(|(v, d)| Op::AddImm(v, d)),
        (r.clone(), r.clone()).prop_map(|(s, d)| Op::Sub(s, d)),
        (r.clone(), r.clone()).prop_map(|(s, d)| Op::And(s, d)),
        (r.clone(), r.clone()).prop_map(|(s, d)| Op::Or(s, d)),
        (r.clone(), r.clone()).prop_map(|(s, d)| Op::Eor(s, d)),
        (1u8..9, r.clone()).prop_map(|(c, d)| Op::Lsl(c, d)),
        (1u8..9, r.clone()).prop_map(|(c, d)| Op::Lsr(c, d)),
        r.clone().prop_map(Op::Not),
        r.clone().prop_map(Op::Neg),
        r.clone().prop_map(Op::Swap),
        (r.clone(), r.clone(), r).prop_map(|(a, b, d)| Op::CmpScc(a, b, d)),
    ]
}

fn build_template(ops: &[Op]) -> Template {
    let mut a = Asm::new("prop");
    let holes: Vec<Operand> = (0..4).map(|i| a.imm_hole(format!("h{i}"))).collect();
    use Operand::*;
    use Size::L;
    for op in ops {
        match *op {
            Op::MoveImm(v, d) => a.move_i(L, v, Dr(d)),
            Op::MoveHole(h, d) => a.move_(L, holes[h], Dr(d)),
            Op::MoveReg(s, d) => a.move_(L, Dr(s), Dr(d)),
            Op::Add(s, d) => a.add(L, Dr(s), Dr(d)),
            Op::AddImm(v, d) => a.add(L, Imm(v), Dr(d)),
            Op::Sub(s, d) => a.sub(L, Dr(s), Dr(d)),
            Op::And(s, d) => a.and(L, Dr(s), Dr(d)),
            Op::Or(s, d) => a.or(L, Dr(s), Dr(d)),
            Op::Eor(s, d) => a.eor(L, Dr(s), Dr(d)),
            Op::Lsl(c, d) => a.shift(ShiftKind::Lsl, L, Imm(u32::from(c)), Dr(d)),
            Op::Lsr(c, d) => a.shift(ShiftKind::Lsr, L, Imm(u32::from(c)), Dr(d)),
            Op::Not(d) => a.not(L, Dr(d)),
            Op::Neg(d) => a.neg(L, Dr(d)),
            Op::Swap(d) => a.swap(d),
            Op::CmpScc(s, d, t) => {
                a.cmp(L, Dr(s), Dr(d));
                a.scc(Cond::Lt, Dr(t));
            }
        }
    }
    a.halt();
    Template::from_asm(a).unwrap()
}

/// Run a synthesized program; return final data registers and cycles.
fn run_synth(t: &Template, binds: &[u32; 4], opts: SynthesisOptions) -> ([u32; 8], u64) {
    let mut m = Machine::new(MachineConfig::sun3_emulation());
    let mut c = QuajectCreator::new(0x10_0000, 0x10_0000);
    let mut b = Bindings::new();
    for (i, v) in binds.iter().enumerate() {
        b.bind(format!("h{i}"), *v);
    }
    let s = c.synthesize_template(&mut m, t, &b, opts).unwrap();
    m.cpu.pc = s.base;
    m.cpu.a[7] = 0x8000;
    let start = m.meter.cycles;
    assert_eq!(m.run(10_000_000), RunExit::Halted);
    (m.cpu.d, m.meter.cycles - start)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimization_preserves_register_results(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        binds in proptest::array::uniform4(any::<u32>()),
    ) {
        let t = build_template(&ops);
        let (regs_full, cycles_full) = run_synth(&t, &binds, SynthesisOptions::full());
        let (regs_none, cycles_none) = run_synth(&t, &binds, SynthesisOptions::none());
        prop_assert_eq!(regs_full, regs_none, "optimized code computed different results");
        prop_assert!(
            cycles_full <= cycles_none,
            "optimization made the code slower: {} > {}",
            cycles_full,
            cycles_none
        );
    }

    #[test]
    fn factoring_is_idempotent(
        ops in proptest::collection::vec(op_strategy(), 1..25),
        binds in proptest::array::uniform4(any::<u32>()),
    ) {
        let t = build_template(&ops);
        let mut b = Bindings::new();
        for (i, v) in binds.iter().enumerate() {
            b.bind(format!("h{i}"), *v);
        }
        let once = synthesis_codegen::factor::factor(&t, &b).unwrap();
        let twice = synthesis_codegen::factor::factor(&once, &Bindings::new()).unwrap();
        prop_assert_eq!(once.instrs, twice.instrs, "factoring must be a fixpoint");
    }
}
