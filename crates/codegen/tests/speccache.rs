//! Specialization-cache behavior: hit/miss semantics, refcounted
//! eviction, and the property that a cached block is byte-identical to a
//! fresh synthesis of the same `(template, bindings, options)`.

use proptest::prelude::*;

use quamachine::asm::Asm;
use quamachine::isa::{Operand::*, Size::L};
use quamachine::machine::{Machine, MachineConfig};
use synthesis_codegen::creator::{QuajectCreator, SynthesisOptions, CACHE_HIT_CYCLES};
use synthesis_codegen::template::{Bindings, Template};

fn machine() -> Machine {
    Machine::new(MachineConfig::sun3_emulation())
}

fn creator() -> QuajectCreator {
    let mut c = QuajectCreator::new(0x10_0000, 0x1_0000);
    c.lib.add(io_template());
    c
}

/// A small I/O-style template: two address holes and an immediate.
fn io_template() -> Template {
    let mut a = Asm::new("chan");
    let slot = a.abs_hole("slot");
    let gauge = a.abs_hole("gauge");
    let step = a.imm_hole("step");
    a.move_(L, slot, Dr(0));
    a.add(L, step, Dr(0));
    a.move_(L, Dr(0), slot);
    a.add(L, Imm(1), gauge);
    a.rts();
    Template::from_asm(a).unwrap()
}

fn bindings(slot: u32, gauge: u32, step: u32) -> Bindings {
    Bindings::new()
        .with("slot", slot)
        .with("gauge", gauge)
        .with("step", step)
}

#[test]
fn same_bindings_hit_different_bindings_miss() {
    let mut m = machine();
    let mut c = creator();
    let opts = SynthesisOptions::full();
    let a = c
        .synthesize_cached(&mut m, "chan", &bindings(0x8000, 0x9000, 4), opts)
        .unwrap();
    assert_eq!((c.stats.cache_hits, c.stats.cache_misses), (0, 1));

    // Identical invariants: the same installed block, at link cost.
    let cycles_before = m.meter.cycles;
    let b = c
        .synthesize_cached(&mut m, "chan", &bindings(0x8000, 0x9000, 4), opts)
        .unwrap();
    assert_eq!(b.base, a.base);
    assert_eq!(b.synth_cycles, CACHE_HIT_CYCLES);
    assert_eq!(m.meter.cycles - cycles_before, CACHE_HIT_CYCLES);
    assert_eq!((c.stats.cache_hits, c.stats.cache_misses), (1, 1));
    assert_eq!(c.stats.bytes_shared, u64::from(a.size));

    // A different gauge binding is a different specialization.
    let d = c
        .synthesize_cached(&mut m, "chan", &bindings(0x8000, 0x9100, 4), opts)
        .unwrap();
    assert_ne!(d.base, a.base);
    assert!(d.synth_cycles > CACHE_HIT_CYCLES);
    assert_eq!((c.stats.cache_hits, c.stats.cache_misses), (1, 2));
}

#[test]
fn options_are_part_of_the_key() {
    let mut m = machine();
    let mut c = creator();
    let b = bindings(0x8000, 0x9000, 4);
    let full = c
        .synthesize_cached(&mut m, "chan", &b, SynthesisOptions::full())
        .unwrap();
    let none = c
        .synthesize_cached(&mut m, "chan", &b, SynthesisOptions::none())
        .unwrap();
    assert_ne!(full.base, none.base);
    assert_eq!(c.stats.cache_misses, 2);
}

#[test]
fn eviction_at_zero_refcount() {
    let mut m = machine();
    let mut c = creator();
    let opts = SynthesisOptions::full();
    let b = bindings(0x8000, 0x9000, 4);
    let first = c.synthesize_cached(&mut m, "chan", &b, opts).unwrap();
    let one_copy = c.codebuf.in_use;
    let second = c.synthesize_cached(&mut m, "chan", &b, opts).unwrap();
    assert_eq!(c.cache.refs(first.base), Some(2));
    assert_eq!(c.codebuf.in_use, one_copy, "a hit installs nothing new");

    // Dropping one reference keeps the code installed.
    c.destroy(&mut m, &second);
    assert_eq!(c.cache.refs(first.base), Some(1));
    assert!(m.code.locate(first.base).is_some());
    assert_eq!(c.codebuf.in_use, one_copy);

    // The last reference evicts, unloads, and frees the extent.
    c.destroy(&mut m, &first);
    assert_eq!(c.cache.refs(first.base), None);
    assert!(m.code.locate(first.base).is_none());
    assert_eq!(c.codebuf.in_use, 0);
    assert!(c.cache.is_empty());

    // The next request is a cold miss that reuses the space.
    let third = c.synthesize_cached(&mut m, "chan", &b, opts).unwrap();
    assert_eq!(third.base, first.base);
    assert_eq!(c.stats.cache_misses, 2);
}

#[test]
fn uncached_synthesize_is_untouched_by_the_cache() {
    let mut m = machine();
    let mut c = creator();
    let opts = SynthesisOptions::full();
    let b = bindings(0x8000, 0x9000, 4);
    let s1 = c.synthesize(&mut m, "chan", &b, opts).unwrap();
    let s2 = c.synthesize(&mut m, "chan", &b, opts).unwrap();
    assert_ne!(s1.base, s2.base, "plain synthesize never shares");
    assert_eq!(c.stats.cache_hits + c.stats.cache_misses, 0);
    c.destroy(&mut m, &s1);
    c.destroy(&mut m, &s2);
    assert_eq!(c.codebuf.in_use, 0);
}

proptest! {
    /// A block served from the cache is byte-identical to what a fresh
    /// creator synthesizes from the same template, bindings, and options.
    #[test]
    fn cached_equals_fresh_synthesis(
        slot in (0x4000u32..0xC000).prop_map(|v| v & !3),
        gauge in (0x4000u32..0xC000).prop_map(|v| v & !3),
        step in 0u32..1024,
        collapse in any::<bool>(),
        fold in any::<bool>(),
        peephole in any::<bool>(),
    ) {
        let opts = SynthesisOptions { collapse, fold, peephole, superopt: false };
        let b = bindings(slot, gauge, step);

        // Warm a cache, then take a hit from it.
        let mut m1 = machine();
        let mut c1 = creator();
        let cold = c1.synthesize_cached(&mut m1, "chan", &b, opts).unwrap();
        let hit = c1.synthesize_cached(&mut m1, "chan", &b, opts).unwrap();
        prop_assert_eq!(hit.base, cold.base);

        // Fresh synthesis in an independent machine and creator.
        let mut m2 = machine();
        let mut c2 = creator();
        let fresh = c2.synthesize(&mut m2, "chan", &b, opts).unwrap();

        let hit_block = m1.code.block(hit.base).unwrap();
        let fresh_block = m2.code.block(fresh.base).unwrap();
        prop_assert_eq!(&hit_block.instrs, &fresh_block.instrs);
        prop_assert_eq!(hit.size, fresh.size);
        prop_assert_eq!(hit.instrs_out, fresh.instrs_out);
    }
}

proptest! {
    /// Eviction churn soundness: after an arbitrary sequence of cached
    /// acquires and releases under a small warm-byte budget, (a) the
    /// warm set never exceeds the budget, (b) a block re-synthesized
    /// after the churn is byte-identical to what a fresh creator
    /// produces, and (c) on teardown every byte is accounted back —
    /// warm, resident, and code-buffer all balance to zero.
    #[test]
    fn eviction_churn_is_sound_and_balances(
        budget in 0u32..4096,
        ops in proptest::collection::vec((0usize..6, any::<bool>()), 1..120),
    ) {
        let mut m = machine();
        let mut c = creator();
        c.set_cache_budget(&mut m, budget);
        let opts = SynthesisOptions::full();
        // Six distinct specializations; slots spaced so each key is a
        // distinct binding vector (and so a distinct cache key).
        let keys: Vec<Bindings> = (0..6u32)
            .map(|i| bindings(0x8000 + 0x40 * i, 0x9000 + 0x40 * i, 4 + i))
            .collect();

        let mut live: Vec<synthesis_codegen::creator::Synthesized> = Vec::new();
        for &(key, acquire) in &ops {
            if acquire || live.is_empty() {
                live.push(c.synthesize_cached(&mut m, "chan", &keys[key], opts).unwrap());
            } else {
                let s = live.swap_remove(key % live.len());
                c.destroy(&mut m, &s);
            }
            prop_assert!(
                c.cache.warm_bytes() <= u64::from(budget),
                "warm set exceeds budget: {} > {}", c.cache.warm_bytes(), budget
            );
        }

        // (b) churn never corrupts what the cache serves: re-acquire
        // each key and compare bytes against an untouched creator.
        let mut m2 = machine();
        let mut c2 = creator();
        for key in &keys {
            let got = c.synthesize_cached(&mut m, "chan", key, opts).unwrap();
            let fresh = c2.synthesize(&mut m2, "chan", key, opts).unwrap();
            let got_block = m.code.block(got.base).unwrap();
            let fresh_block = m2.code.block(fresh.base).unwrap();
            prop_assert_eq!(&got_block.instrs, &fresh_block.instrs);
            prop_assert_eq!(got.size, fresh.size);
            live.push(got);
        }

        // (c) teardown balances to zero.
        for s in live.drain(..) {
            c.destroy(&mut m, &s);
        }
        c.flush_cache(&mut m);
        prop_assert_eq!(c.cache.warm_bytes(), 0);
        prop_assert_eq!(c.cache.resident_bytes(), 0);
        prop_assert!(c.cache.is_empty());
        prop_assert_eq!(c.codebuf.in_use, 0);
    }
}
