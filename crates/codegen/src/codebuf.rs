//! Code-buffer management: allocating addresses for synthesized code in
//! the kernel quaspace.
//!
//! A first-fit free list with coalescing. Synthesized code is allocated
//! when a quaject is created and freed when it is destroyed (e.g. `close`
//! frees the read/write routines `open` synthesized).

/// Allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeBufFull {
    /// Bytes requested.
    pub requested: u32,
}

impl std::fmt::Display for CodeBufFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "code buffer exhausted allocating {} bytes",
            self.requested
        )
    }
}

impl std::error::Error for CodeBufFull {}

/// The code-space allocator.
#[derive(Debug)]
pub struct CodeBuf {
    base: u32,
    len: u32,
    /// Sorted, disjoint, coalesced free extents `(base, len)`.
    free: Vec<(u32, u32)>,
    /// Bytes currently allocated.
    pub in_use: u32,
    /// High-water mark of allocated bytes.
    pub high_water: u32,
}

/// Allocation granularity (keeps instruction starts aligned).
pub const ALIGN: u32 = 4;

impl CodeBuf {
    /// An allocator over `[base, base + len)`.
    #[must_use]
    pub fn new(base: u32, len: u32) -> CodeBuf {
        CodeBuf {
            base,
            len,
            free: vec![(base, len)],
            in_use: 0,
            high_water: 0,
        }
    }

    /// The managed region.
    #[must_use]
    pub fn region(&self) -> (u32, u32) {
        (self.base, self.len)
    }

    /// Allocate `size` bytes; returns the address.
    ///
    /// # Errors
    ///
    /// Fails when no free extent is large enough.
    pub fn alloc(&mut self, size: u32) -> Result<u32, CodeBufFull> {
        let size = size.max(1).div_ceil(ALIGN) * ALIGN;
        for i in 0..self.free.len() {
            let (fb, fl) = self.free[i];
            if fl >= size {
                if fl == size {
                    self.free.remove(i);
                } else {
                    self.free[i] = (fb + size, fl - size);
                }
                self.in_use += size;
                self.high_water = self.high_water.max(self.in_use);
                return Ok(fb);
            }
        }
        Err(CodeBufFull { requested: size })
    }

    /// Free a previously allocated extent.
    pub fn free(&mut self, addr: u32, size: u32) {
        let size = size.max(1).div_ceil(ALIGN) * ALIGN;
        self.in_use = self.in_use.saturating_sub(size);
        let pos = self.free.partition_point(|&(b, _)| b < addr);
        self.free.insert(pos, (addr, size));
        // Coalesce with neighbours.
        if pos + 1 < self.free.len() {
            let (nb, nl) = self.free[pos + 1];
            let (b, l) = self.free[pos];
            if b + l == nb {
                self.free[pos] = (b, l + nl);
                self.free.remove(pos + 1);
            }
        }
        if pos > 0 {
            let (pb, pl) = self.free[pos - 1];
            let (b, l) = self.free[pos];
            if pb + pl == b {
                self.free[pos - 1] = (pb, pl + l);
                self.free.remove(pos);
            }
        }
    }

    /// Total free bytes.
    #[must_use]
    pub fn free_bytes(&self) -> u32 {
        self.free.iter().map(|&(_, l)| l).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_advances() {
        let mut cb = CodeBuf::new(0x1000, 0x100);
        let a = cb.alloc(10).unwrap();
        let b = cb.alloc(10).unwrap();
        assert_eq!(a, 0x1000);
        assert_eq!(b, 0x100C, "10 rounds to 12");
        assert_eq!(cb.in_use, 24);
    }

    #[test]
    fn exhaustion() {
        let mut cb = CodeBuf::new(0, 16);
        cb.alloc(16).unwrap();
        assert!(cb.alloc(4).is_err());
    }

    #[test]
    fn free_and_reuse() {
        let mut cb = CodeBuf::new(0, 0x100);
        let a = cb.alloc(0x40).unwrap();
        let _b = cb.alloc(0x40).unwrap();
        cb.free(a, 0x40);
        let c = cb.alloc(0x40).unwrap();
        assert_eq!(c, a, "first fit reuses the freed extent");
    }

    #[test]
    fn coalescing_reconstitutes_the_region() {
        let mut cb = CodeBuf::new(0, 0x100);
        let a = cb.alloc(0x40).unwrap();
        let b = cb.alloc(0x40).unwrap();
        let c = cb.alloc(0x40).unwrap();
        cb.free(a, 0x40);
        cb.free(c, 0x40);
        cb.free(b, 0x40); // middle: must merge all three + the tail
        assert_eq!(cb.free_bytes(), 0x100);
        assert_eq!(cb.alloc(0x100).unwrap(), 0);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut cb = CodeBuf::new(0, 0x100);
        let a = cb.alloc(0x80).unwrap();
        cb.free(a, 0x80);
        cb.alloc(0x20).unwrap();
        assert_eq!(cb.high_water, 0x80);
    }
}
