//! The explicit cycle-cost model that guides code selection.
//!
//! Synthesis picks between candidate instruction sequences by the cycles
//! the cycle-modelled interpreter will actually charge — the same
//! per-instruction table quamachine uses to run code
//! ([`quamachine::cost::instr_cost`]), re-exported here as a *scoring
//! function* so the superoptimizer ([`crate::superopt`]) and tests can
//! rank candidates without executing them.
//!
//! The score is the static straight-line cost: base cycles plus memory
//! references at the model's bus rate, branches costed not-taken. For
//! the straight-line windows the superoptimizer mutates this is exact;
//! for whole templates it is the common-path lower bound the paper's
//! hand-optimized kernels were tuned against.

pub use quamachine::cost::{instr_cost, sequence_cycles, CostModel};

use quamachine::isa::Instr;

/// Score a candidate sequence under `model`: the exact cycles the
/// interpreter charges to run it end to end with no branch taken.
#[must_use]
pub fn score(instrs: &[Instr], model: &CostModel) -> u64 {
    sequence_cycles(instrs, model)
}

/// `true` if `candidate` is strictly cheaper than `reference` under
/// `model` — the superoptimizer's acceptance predicate (cost first;
/// equivalence is proven separately by [`crate::equiv`]).
#[must_use]
pub fn cheaper(candidate: &[Instr], reference: &[Instr], model: &CostModel) -> bool {
    score(candidate, model) < score(reference, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::isa::{Instr, Operand::*, ShiftKind, Size::L};

    #[test]
    fn score_matches_cost_table() {
        let model = CostModel::sun3_emulation();
        // move.l #1,d0 (2 + 0 refs) + move.l (abs),d1 (2 + 1 ref at the
        // bus rate) — and the score is exactly what the interpreter
        // would charge, instruction by instruction.
        let seq = [
            Instr::Move(L, Imm(1), Dr(0)),
            Instr::Move(L, Abs(0x2000), Dr(1)),
        ];
        let expected: u64 = seq
            .iter()
            .map(|i| {
                let (base, refs) = instr_cost(i);
                base + refs * model.bus_cycles()
            })
            .sum();
        assert_eq!(score(&seq, &model), expected);
        assert_eq!(score(&seq[..1], &model), 2, "immediate move is ref-free");
        assert!(score(&seq, &model) > 4, "the memory ref costs bus cycles");
    }

    #[test]
    fn strength_reduction_scores_cheaper() {
        let model = CostModel::sun3_emulation();
        let mul = [Instr::MulU(Imm(8), 0)];
        let shift = [
            Instr::And(L, Imm(0xFFFF), Dr(0)),
            Instr::Shift(ShiftKind::Lsl, L, Imm(3), Dr(0)),
        ];
        assert!(cheaper(&shift, &mul, &model));
    }
}
