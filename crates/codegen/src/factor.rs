//! Factoring Invariants: specialize a template for known run-time values.
//!
//! "The Factoring Invariants method bypasses redundant computations, much
//! like constant folding" (paper Section 2.2). The pipeline is:
//!
//! 1. **Substitute** — fill every hole with its bound value;
//! 2. **Propagate** — track registers holding known constants and flags
//!    with statically known outcomes, rewriting register reads into
//!    immediates;
//! 3. **Resolve** — a conditional branch whose flags are known becomes
//!    unconditional or disappears;
//! 4. **Prune** — instructions unreachable from the template's entry
//!    points are deleted.
//!
//! This is what makes an `open(/dev/null)`-synthesized `read` collapse to
//! a handful of instructions: the device pointer, buffering mode, and
//! debug flags are invariants of the open file, so every test on them
//! folds away.

use std::collections::HashMap;

use quamachine::isa::{Cond, Instr, Operand, Size};

use crate::rewrite;
use crate::template::{Bindings, Template};

/// Factoring errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactorError {
    /// A hole used in the template has no binding.
    MissingBinding(String),
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::MissingBinding(n) => write!(f, "no binding for hole {n:?}"),
        }
    }
}

impl std::error::Error for FactorError {}

/// Fill holes with bound values.
///
/// # Errors
///
/// Fails if an instruction uses a hole with no binding.
pub fn substitute(t: &Template, b: &Bindings) -> Result<Vec<Instr>, FactorError> {
    let value_of = |h: u16| -> Result<u32, FactorError> {
        let name = &t.holes[h as usize];
        b.get(name)
            .ok_or_else(|| FactorError::MissingBinding(name.clone()))
    };
    let subst_op = |op: Operand| -> Result<Operand, FactorError> {
        Ok(match op {
            Operand::ImmHole(h) => Operand::Imm(value_of(h)?),
            Operand::AbsHole(h) => Operand::Abs(value_of(h)?),
            other => other,
        })
    };
    t.instrs
        .iter()
        .map(|i| {
            use Instr::*;
            Ok(match *i {
                Move(s, a, b2) => Move(s, subst_op(a)?, subst_op(b2)?),
                Movem { to_mem, regs, ea } => Movem {
                    to_mem,
                    regs,
                    ea: subst_op(ea)?,
                },
                Lea(ea, n) => Lea(subst_op(ea)?, n),
                Pea(ea) => Pea(subst_op(ea)?),
                Add(s, a, b2) => Add(s, subst_op(a)?, subst_op(b2)?),
                Sub(s, a, b2) => Sub(s, subst_op(a)?, subst_op(b2)?),
                Cmp(s, a, b2) => Cmp(s, subst_op(a)?, subst_op(b2)?),
                Tst(s, ea) => Tst(s, subst_op(ea)?),
                And(s, a, b2) => And(s, subst_op(a)?, subst_op(b2)?),
                Or(s, a, b2) => Or(s, subst_op(a)?, subst_op(b2)?),
                Eor(s, a, b2) => Eor(s, subst_op(a)?, subst_op(b2)?),
                Not(s, ea) => Not(s, subst_op(ea)?),
                Neg(s, ea) => Neg(s, subst_op(ea)?),
                MulU(ea, n) => MulU(subst_op(ea)?, n),
                DivU(ea, n) => DivU(subst_op(ea)?, n),
                Shift(k, s, c, d) => Shift(k, s, subst_op(c)?, subst_op(d)?),
                Scc(c, ea) => Scc(c, subst_op(ea)?),
                Jmp(ea) => Jmp(subst_op(ea)?),
                Jsr(ea) => Jsr(subst_op(ea)?),
                Cas { size, dc, du, ea } => Cas {
                    size,
                    dc,
                    du,
                    ea: subst_op(ea)?,
                },
                Tas(ea) => Tas(subst_op(ea)?),
                MoveSr { to_sr, ea } => MoveSr {
                    to_sr,
                    ea: subst_op(ea)?,
                },
                MoveVbr { to_vbr, ea } => MoveVbr {
                    to_vbr,
                    ea: subst_op(ea)?,
                },
                FMove { to_mem, fp, ea } => FMove {
                    to_mem,
                    fp,
                    ea: subst_op(ea)?,
                },
                FMovem { to_mem, regs, ea } => FMovem {
                    to_mem,
                    regs,
                    ea: subst_op(ea)?,
                },
                other => other,
            })
        })
        .collect()
}

/// A register-constant lattice: `Some(v)` = known value, `None` = unknown.
#[derive(Debug, Clone, Default)]
struct Consts {
    d: [Option<u32>; 8],
    a: [Option<u32>; 8],
}

impl Consts {
    fn clear(&mut self) {
        *self = Consts::default();
    }

    fn get(&self, op: &Operand) -> Option<u32> {
        match *op {
            Operand::Dr(n) => self.d[n as usize],
            Operand::Ar(n) => self.a[n as usize],
            Operand::Imm(v) => Some(v),
            _ => None,
        }
    }

    /// Record the effect of a write to a register.
    fn set_reg(&mut self, op: &Operand, size: Size, v: Option<u32>) {
        match *op {
            Operand::Dr(n) => {
                // Sub-long writes merge into unknown upper bits.
                self.d[n as usize] = match (size, v) {
                    (Size::L, val) => val,
                    _ => None,
                };
            }
            Operand::Ar(n) => {
                self.a[n as usize] = v.map(|x| size.sext(x));
            }
            _ => {}
        }
    }

    /// Invalidate registers modified through addressing side effects.
    fn clobber_ea(&mut self, op: &Operand) {
        if let Operand::PostInc(n) | Operand::PreDec(n) = *op {
            self.a[n as usize] = None;
        }
    }
}

/// Statically known condition flags.
#[derive(Debug, Clone, Copy)]
struct KnownFlags {
    n: bool,
    z: bool,
    v: bool,
    c: bool,
}

fn flags_of_value(size: Size, v: u32) -> KnownFlags {
    let v = v & size.mask();
    KnownFlags {
        n: v & size.sign_bit() != 0,
        z: v == 0,
        v: false,
        c: false,
    }
}

fn flags_of_sub(size: Size, dst: u32, src: u32) -> KnownFlags {
    let (dst, src) = (dst & size.mask(), src & size.mask());
    let r = dst.wrapping_sub(src) & size.mask();
    let sb = size.sign_bit();
    KnownFlags {
        n: r & sb != 0,
        z: r == 0,
        v: ((dst ^ src) & (dst ^ r) & sb) != 0,
        c: src > dst,
    }
}

fn flags_of_add(size: Size, a: u32, b: u32) -> KnownFlags {
    let (a, b) = (a & size.mask(), b & size.mask());
    let r = a.wrapping_add(b) & size.mask();
    let sb = size.sign_bit();
    KnownFlags {
        n: r & sb != 0,
        z: r == 0,
        v: ((a ^ r) & (b ^ r) & sb) != 0,
        c: (u64::from(a) + u64::from(b)) > u64::from(size.mask()),
    }
}

/// Rewrite a constant data-register source into an immediate.
fn rewrite_src(op: &mut Operand, consts: &Consts, changed: &mut bool) {
    if matches!(op, Operand::Dr(_)) {
        if let Some(v) = consts.get(op) {
            *op = Operand::Imm(v);
            *changed = true;
        }
    }
}

/// One forward pass of constant propagation and branch resolution over a
/// linear instruction stream. Returns `(instrs, keep, changed)`.
#[allow(clippy::too_many_lines)]
fn propagate(mut instrs: Vec<Instr>) -> (Vec<Instr>, Vec<bool>, bool) {
    let targets = rewrite::branch_target_flags(&instrs);
    let mut keep = vec![true; instrs.len()];
    let mut changed = false;

    let mut consts = Consts::default();
    let mut flags: Option<KnownFlags> = None;

    for i in 0..instrs.len() {
        if targets[i] {
            // Control can arrive here from elsewhere: forget everything.
            consts.clear();
            flags = None;
        }

        // Work on a copy (Instr is Copy); write it back at the end.
        let mut ins = instrs[i];
        use Instr::*;
        match &mut ins {
            Move(size, src, dst) => {
                rewrite_src(src, &consts, &mut changed);
                consts.clobber_ea(src);
                consts.clobber_ea(dst);
                let v = consts.get(src);
                let sz = *size;
                consts.set_reg(dst, sz, v);
                if !matches!(dst, Operand::Ar(_)) {
                    flags = v.map(|x| flags_of_value(sz, x));
                }
            }
            Add(size, src, dst) | Sub(size, src, dst) => {
                let is_add = matches!(instrs[i], Add(..));
                rewrite_src(src, &consts, &mut changed);
                consts.clobber_ea(src);
                consts.clobber_ea(dst);
                let sz = *size;
                let (nv, kf) = match (consts.get(src), consts.get(dst)) {
                    (Some(s), Some(d)) if is_add => (
                        Some(d.wrapping_add(s) & sz.mask()),
                        Some(flags_of_add(sz, d, s)),
                    ),
                    (Some(s), Some(d)) => (
                        Some(d.wrapping_sub(s) & sz.mask()),
                        Some(flags_of_sub(sz, d, s)),
                    ),
                    _ => (None, None),
                };
                consts.set_reg(dst, sz, nv);
                if !matches!(dst, Operand::Ar(_)) {
                    // ADDA/SUBA (address destination) do not touch flags.
                    flags = kf;
                }
            }
            Cmp(size, src, dst) => {
                rewrite_src(src, &consts, &mut changed);
                consts.clobber_ea(src);
                consts.clobber_ea(dst);
                flags = match (consts.get(src), consts.get(dst)) {
                    (Some(s), Some(d)) => Some(flags_of_sub(*size, d, s)),
                    _ => None,
                };
            }
            Tst(size, ea) => {
                consts.clobber_ea(ea);
                flags = consts.get(ea).map(|v| flags_of_value(*size, v));
            }
            And(size, src, dst) | Or(size, src, dst) | Eor(size, src, dst) => {
                let kind = match instrs[i] {
                    And(..) => 0u8,
                    Or(..) => 1,
                    _ => 2,
                };
                rewrite_src(src, &consts, &mut changed);
                consts.clobber_ea(src);
                consts.clobber_ea(dst);
                let sz = *size;
                let nv = match (consts.get(src), consts.get(dst)) {
                    (Some(s), Some(d)) => Some(
                        match kind {
                            0 => d & s,
                            1 => d | s,
                            _ => d ^ s,
                        } & sz.mask(),
                    ),
                    _ => None,
                };
                consts.set_reg(dst, sz, nv);
                flags = nv.map(|v| flags_of_value(sz, v));
            }
            Bcc(cond, _) => {
                if let Some(f) = flags {
                    let taken = cond.eval(f.n, f.z, f.v, f.c);
                    if taken {
                        if *cond != Cond::T {
                            *cond = Cond::T;
                            changed = true;
                        }
                    } else {
                        keep[i] = false;
                        changed = true;
                    }
                }
                // Flags persist across a branch.
            }
            Lea(ea, n) => {
                consts.clobber_ea(ea);
                consts.a[*n as usize] = match *ea {
                    Operand::Abs(a) => Some(a),
                    _ => None,
                };
            }
            Jsr(_) | Trap(_) | KCall(_) => {
                // Unknown callee: forget registers and flags.
                consts.clear();
                flags = None;
            }
            Jmp(_) | Rts | Rte | Halt | Stop(_) => {
                // Path ends; state resets at the next reachable point.
                consts.clear();
                flags = None;
            }
            other => {
                // Conservative default: invalidate anything the
                // instruction could write, plus addressing side effects.
                for op in other.operands() {
                    consts.clobber_ea(&op);
                }
                match other {
                    Not(_, d) | Neg(_, d) | Scc(_, d) | Shift(_, _, _, d) => {
                        let d = *d;
                        consts.set_reg(&d, Size::L, None);
                    }
                    MulU(_, n) | DivU(_, n) | Swap(n) | Ext(_, n) | Dbf(n, _) => {
                        consts.d[*n as usize] = None;
                    }
                    Movem {
                        to_mem: false,
                        regs,
                        ..
                    } => {
                        for (is_a, r) in regs.iter() {
                            if is_a {
                                consts.a[r as usize] = None;
                            } else {
                                consts.d[r as usize] = None;
                            }
                        }
                    }
                    Cas { dc, .. } => consts.d[*dc as usize] = None,
                    Link(n, _) | Unlk(n) => {
                        consts.a[*n as usize] = None;
                        consts.a[7] = None;
                    }
                    Pea(_) => consts.a[7] = None,
                    MoveUsp {
                        to_usp: false,
                        areg,
                    } => consts.a[*areg as usize] = None,
                    MoveVbr { to_vbr: false, ea } => {
                        let ea = *ea;
                        consts.set_reg(&ea, Size::L, None);
                    }
                    _ => {}
                }
                flags = None;
            }
        }
        instrs[i] = ins;
    }
    (instrs, keep, changed)
}

/// Remove branches to the immediately following instruction.
fn drop_branches_to_next(instrs: &[Instr], keep: &mut [bool]) -> bool {
    let mut changed = false;
    for (i, instr) in instrs.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        if let Instr::Bcc(_, quamachine::isa::BranchTarget::Idx(t)) = instr {
            // Target is the next *kept* instruction?
            let mut next = i + 1;
            while next < instrs.len() && !keep[next] {
                next += 1;
            }
            if *t as usize == next {
                keep[i] = false;
                changed = true;
            }
        }
    }
    changed
}

/// The full Factoring Invariants pipeline: substitute, propagate, resolve,
/// prune. Entry points listed in the template's marks (plus index 0) stay
/// reachable.
///
/// # Errors
///
/// Fails if a used hole has no binding.
pub fn factor(t: &Template, b: &Bindings) -> Result<Template, FactorError> {
    let mut instrs = substitute(t, b)?;
    let mut marks: HashMap<String, usize> = t.marks.clone();
    // Iterate to a fixpoint (bounded: each round deletes or rewrites).
    for _ in 0..8 {
        let (new_instrs, mut keep, mut changed) = propagate(instrs);
        instrs = new_instrs;
        changed |= drop_branches_to_next(&instrs, &mut keep);
        // Apply branch-removals first so reachability sees the pruned CFG,
        // then eliminate code unreachable from any entry point.
        instrs = rewrite::compact(instrs, &keep, &mut marks);
        let mut entries: Vec<usize> = vec![0];
        entries.extend(marks.values().copied());
        let reach = rewrite::reachable(&instrs, &entries);
        if reach.iter().any(|r| !r) {
            changed = true;
            instrs = rewrite::compact(instrs, &reach, &mut marks);
        }
        if !changed {
            break;
        }
    }
    Ok(Template {
        name: t.name.clone(),
        instrs,
        holes: Vec::new(),
        marks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::asm::Asm;
    use quamachine::isa::{Operand::*, Size::L};

    #[test]
    fn substitute_fills_holes() {
        let mut a = Asm::new("t");
        let h = a.imm_hole("x");
        let ab = a.abs_hole("y");
        a.move_(L, h, Dr(0));
        a.move_(L, Dr(0), ab);
        a.rts();
        let t = Template::from_asm(a).unwrap();
        let b = Bindings::new().with("x", 42).with("y", 0x2000);
        let out = substitute(&t, &b).unwrap();
        assert_eq!(out[0], Instr::Move(L, Imm(42), Dr(0)));
        assert_eq!(out[1], Instr::Move(L, Dr(0), Abs(0x2000)));
    }

    #[test]
    fn missing_binding_is_an_error() {
        let mut a = Asm::new("t");
        let h = a.imm_hole("x");
        a.move_(L, h, Dr(0));
        a.rts();
        let t = Template::from_asm(a).unwrap();
        assert_eq!(
            factor(&t, &Bindings::new()).unwrap_err(),
            FactorError::MissingBinding("x".to_string())
        );
    }

    #[test]
    fn constant_test_folds_branch_and_dead_path() {
        // if (mode == 0) { fast } else { slow } with mode bound to 0.
        let mut a = Asm::new("t");
        let mode = a.imm_hole("mode");
        let slow = a.label();
        let end = a.label();
        a.move_(L, mode, Dr(1));
        a.tst(L, Dr(1));
        a.bcc(quamachine::isa::Cond::Ne, slow);
        a.move_i(L, 111, Dr(0)); // fast path
        a.bra(end);
        a.bind(slow);
        a.move_i(L, 222, Dr(0)); // slow path
        a.bind(end);
        a.rts();
        let t = Template::from_asm(a).unwrap();

        let fast = factor(&t, &Bindings::new().with("mode", 0)).unwrap();
        // Expect: move #0,d1 ; move #111,d0 ; rts (tst folded, branch
        // resolved not-taken, slow path unreachable, bra-to-next dropped).
        assert!(
            fast.instrs.len() <= 4,
            "specialized fast path should shrink, got {:?}",
            fast.instrs
        );
        assert!(fast.instrs.contains(&Instr::Move(L, Imm(111), Dr(0))));
        assert!(!fast.instrs.contains(&Instr::Move(L, Imm(222), Dr(0))));

        let slow = factor(&t, &Bindings::new().with("mode", 1)).unwrap();
        assert!(slow.instrs.contains(&Instr::Move(L, Imm(222), Dr(0))));
        assert!(!slow.instrs.contains(&Instr::Move(L, Imm(111), Dr(0))));
    }

    #[test]
    fn constant_compare_folds() {
        let mut a = Asm::new("t");
        let n = a.imm_hole("n");
        let big = a.label();
        a.move_(L, n, Dr(2));
        a.cmp(L, Imm(100), Dr(2));
        a.bcc(quamachine::isa::Cond::Ge, big); // n >= 100?
        a.move_i(L, 1, Dr(0));
        a.rts();
        a.bind(big);
        a.move_i(L, 2, Dr(0));
        a.rts();
        let t = Template::from_asm(a).unwrap();

        let small = factor(&t, &Bindings::new().with("n", 5)).unwrap();
        assert!(small.instrs.contains(&Instr::Move(L, Imm(1), Dr(0))));
        assert!(!small.instrs.contains(&Instr::Move(L, Imm(2), Dr(0))));

        let large = factor(&t, &Bindings::new().with("n", 500)).unwrap();
        assert!(large.instrs.contains(&Instr::Move(L, Imm(2), Dr(0))));
        assert!(!large.instrs.contains(&Instr::Move(L, Imm(1), Dr(0))));
    }

    #[test]
    fn constant_register_reads_become_immediates() {
        let mut a = Asm::new("t");
        let x = a.imm_hole("x");
        a.move_(L, x, Dr(3));
        a.move_(L, Dr(3), Abs(0x2000));
        a.rts();
        let t = Template::from_asm(a).unwrap();
        let out = factor(&t, &Bindings::new().with("x", 7)).unwrap();
        assert!(out.instrs.contains(&Instr::Move(L, Imm(7), Abs(0x2000))));
    }

    #[test]
    fn marks_survive_and_stay_reachable() {
        let mut a = Asm::new("t");
        a.move_i(L, 1, Dr(0));
        a.rts();
        a.mark("alt");
        a.move_i(L, 2, Dr(0));
        a.rts();
        let t = Template::from_asm(a).unwrap();
        let out = factor(&t, &Bindings::new()).unwrap();
        // The alt entry is only reachable via its mark; it must survive.
        assert_eq!(out.instrs.len(), 4);
        let alt = out.marks["alt"];
        assert_eq!(out.instrs[alt], Instr::Move(L, Imm(2), Dr(0)));
    }

    #[test]
    fn branch_targets_clear_known_state() {
        // d0 is constant on the fall-through path but the loop makes the
        // label a merge point: the branch must NOT fold.
        let mut a = Asm::new("t");
        a.move_i(L, 0, Dr(0));
        let top = a.here();
        a.add(L, Imm(1), Dr(0));
        a.cmp(L, Imm(10), Dr(0));
        a.bcc(quamachine::isa::Cond::Ne, top);
        a.rts();
        let t = Template::from_asm(a).unwrap();
        let out = factor(&t, &Bindings::new()).unwrap();
        // The loop must remain intact.
        assert!(out
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Bcc(quamachine::isa::Cond::Ne, _))));
        assert_eq!(out.instrs.len(), t.instrs.len());
    }
}
