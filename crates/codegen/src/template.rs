//! Code templates and hole bindings.
//!
//! A template is a parameterized code fragment written once (in the kernel
//! source) and specialized many times at run time. The paper's kernel kept
//! "1000 lines for the templates used in code synthesis (e.g., queues,
//! threads, files)" (Section 6.4).

use std::collections::HashMap;

use quamachine::asm::{Asm, AsmError};
use quamachine::isa::{encode, HoleId, Instr, Operand};

/// A named, parameterized code fragment.
#[derive(Debug, Clone)]
pub struct Template {
    /// Template name (diagnostics, and the key in a [`TemplateLib`]).
    pub name: String,
    /// The instructions, with intra-block branches resolved to indices.
    pub instrs: Vec<Instr>,
    /// Hole names, indexed by [`HoleId`].
    pub holes: Vec<String>,
    /// Named entry points: name → instruction index.
    pub marks: HashMap<String, usize>,
}

impl Template {
    /// Build a template from an assembler.
    ///
    /// # Errors
    ///
    /// Fails if the assembly has unbound labels.
    pub fn from_asm(asm: Asm) -> Result<Template, AsmError> {
        let assembled = asm.assemble_full()?;
        Ok(Template {
            name: assembled.block.name.clone(),
            instrs: assembled.block.instrs,
            holes: assembled.holes,
            marks: assembled.marks,
        })
    }

    /// The hole id for `name`, if declared.
    #[must_use]
    pub fn hole_id(&self, name: &str) -> Option<HoleId> {
        self.holes
            .iter()
            .position(|h| h == name)
            .map(|i| i as HoleId)
    }

    /// Names of holes that are still unfilled in the instruction stream.
    #[must_use]
    pub fn unfilled_holes(&self) -> Vec<&str> {
        let mut seen = vec![false; self.holes.len()];
        for i in &self.instrs {
            for op in i.operands() {
                if let Some(h) = op.hole() {
                    if let Some(s) = seen.get_mut(h as usize) {
                        *s = true;
                    }
                }
            }
        }
        self.holes
            .iter()
            .enumerate()
            .filter(|(i, _)| seen[*i])
            .map(|(_, n)| n.as_str())
            .collect()
    }

    /// Encoded size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u32 {
        encode::block_bytes(&self.instrs)
    }

    /// Call sites produced by [`call`](Template::call_hole_name)-style
    /// holes: `(instruction index, callee template name)` for every
    /// `jsr (<hole "call:NAME">)` in the template.
    #[must_use]
    pub fn call_sites(&self) -> Vec<(usize, String)> {
        let mut v = Vec::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            if let Instr::Jsr(Operand::AbsHole(h)) = instr {
                if let Some(name) = self.holes.get(*h as usize) {
                    if let Some(callee) = name.strip_prefix("call:") {
                        v.push((i, callee.to_string()));
                    }
                }
            }
        }
        v
    }

    /// A copy of this template with every `rte` replaced by `rts`,
    /// named `"<name>~rts"`.
    ///
    /// Kernel bodies end in `rte` because they are entered through a
    /// trap. When the same body is fused into a caller's address space
    /// — spliced behind a guard and entered by `jsr` — there is no
    /// exception frame to unwind, so the returns become plain `rts`.
    /// `rte` and `rts` encode to the same 2 bytes, so index-based
    /// branch targets and marks survive unchanged.
    #[must_use]
    pub fn returning_variant(&self) -> Template {
        let mut t = self.clone();
        t.name = format!("{}~rts", self.name);
        for i in &mut t.instrs {
            if matches!(i, Instr::Rte) {
                *i = Instr::Rts;
            }
        }
        t
    }

    /// The conventional hole name for a call site on template `callee`.
    ///
    /// Emit the call as `asm.jsr(asm.abs_hole(Template::call_hole_name("x")))`.
    /// Collapsing Layers inlines such sites; alternatively Factoring
    /// Invariants can bind the hole to the callee's installed address,
    /// producing the *layered* (procedure-call) composition the paper's
    /// optimization is measured against.
    #[must_use]
    pub fn call_hole_name(callee: &str) -> String {
        format!("call:{callee}")
    }
}

/// Values for a template's holes, by name.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    map: HashMap<String, u32>,
}

impl Bindings {
    /// No bindings.
    #[must_use]
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Bind `name` to `value` (replacing any previous binding).
    pub fn bind(&mut self, name: impl Into<String>, value: u32) -> &mut Self {
        self.map.insert(name.into(), value);
        self
    }

    /// Builder-style bind.
    #[must_use]
    pub fn with(mut self, name: impl Into<String>, value: u32) -> Self {
        self.bind(name, value);
        self
    }

    /// Look up a binding.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u32> {
        self.map.get(name).copied()
    }

    /// Number of bindings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether there are no bindings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The bindings as `(name, value)` pairs sorted by name — the
    /// canonical form used by the specialization cache key.
    #[must_use]
    pub fn sorted_pairs(&self) -> Vec<(String, u32)> {
        let mut v: Vec<(String, u32)> = self.map.iter().map(|(k, &x)| (k.clone(), x)).collect();
        v.sort();
        v
    }
}

/// A library of templates, keyed by name (used by Collapsing Layers to
/// find callees).
#[derive(Debug, Default)]
pub struct TemplateLib {
    map: HashMap<String, Template>,
}

impl TemplateLib {
    /// An empty library.
    #[must_use]
    pub fn new() -> TemplateLib {
        TemplateLib::default()
    }

    /// Add a template (replacing any previous one of the same name).
    pub fn add(&mut self, t: Template) {
        self.map.insert(t.name.clone(), t);
    }

    /// Look up a template.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Template> {
        self.map.get(name)
    }

    /// Number of templates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the library is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::isa::{Operand::*, Size::L};

    #[test]
    fn from_asm_collects_metadata() {
        let mut a = Asm::new("t");
        a.mark("start");
        let h = a.imm_hole("x");
        a.move_(L, h, Dr(0));
        a.rts();
        let t = Template::from_asm(a).unwrap();
        assert_eq!(t.name, "t");
        assert_eq!(t.holes, vec!["x"]);
        assert_eq!(t.marks["start"], 0);
        assert_eq!(t.hole_id("x"), Some(0));
        assert_eq!(t.hole_id("y"), None);
        assert_eq!(t.unfilled_holes(), vec!["x"]);
    }

    #[test]
    fn returning_variant_swaps_rte_for_rts() {
        use quamachine::isa::{BranchTarget, Cond, Instr};
        let t = Template {
            name: "body".into(),
            instrs: vec![
                Instr::Bcc(Cond::Eq, BranchTarget::Idx(2)),
                Instr::Rte,
                Instr::Rte,
            ],
            holes: vec!["h".into()],
            marks: std::collections::HashMap::from([("mid".into(), 1)]),
        };
        let v = t.returning_variant();
        assert_eq!(v.name, "body~rts");
        assert_eq!(v.instrs[1], Instr::Rts);
        assert_eq!(v.instrs[2], Instr::Rts);
        assert_eq!(v.instrs[0], t.instrs[0], "branches untouched");
        assert_eq!(v.marks["mid"], 1);
        assert_eq!(v.holes, t.holes);
        assert_eq!(v.size_bytes(), t.size_bytes(), "same encoded size");
    }

    #[test]
    fn call_sites_found_by_convention() {
        let mut a = Asm::new("outer");
        let c = a.abs_hole(Template::call_hole_name("inner"));
        a.jsr(c);
        a.rts();
        let t = Template::from_asm(a).unwrap();
        assert_eq!(t.call_sites(), vec![(0, "inner".to_string())]);
    }

    #[test]
    fn bindings_builder() {
        let b = Bindings::new().with("a", 1).with("b", 2);
        assert_eq!(b.get("a"), Some(1));
        assert_eq!(b.get("b"), Some(2));
        assert_eq!(b.get("c"), None);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn library_lookup() {
        let mut lib = TemplateLib::new();
        let mut a = Asm::new("q_put");
        a.rts();
        lib.add(Template::from_asm(a).unwrap());
        assert!(lib.get("q_put").is_some());
        assert!(lib.get("nope").is_none());
        assert_eq!(lib.len(), 1);
    }
}
