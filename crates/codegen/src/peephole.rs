//! The specialized peephole optimizer.
//!
//! "The optimization stage then improves the final code with specialized
//! peephole optimizations" (paper Section 2.3). These passes run after
//! Factoring Invariants and Collapsing Layers; they are deliberately
//! conservative about condition codes — a rewrite is applied only when the
//! flags it changes are provably dead.
//!
//! Patterns:
//!
//! - `cmp #0,x` → `tst x` (identical flags, smaller encoding);
//! - `add/sub #0,Dn`, `or/eor #0,Dn`, `and #-1,Dn` → deleted when flags
//!   are dead;
//! - `move x,x` (same register) → deleted when flags are dead;
//! - a dead store `move _,Dn` overwritten by another `move _,Dn` with no
//!   intervening read, branch target, or control transfer → deleted;
//! - `bcc` over a single `bra` (inverted-branch threading);
//! - `bra`-to-`bra` chains are threaded to the final target;
//! - `mulu #2ᵏ,Dn` → `and.l #0xFFFF,Dn ; lsl.l #k,Dn` when flags are
//!   dead (promoted from a [`crate::superopt`] discovery: 27 → 6
//!   cycles; the mask reproduces mulu's 16-bit operand truncation and
//!   keeps the shifted-out carry at zero, but `lsl` writes X, hence the
//!   flags-dead gate);
//! - a reload `move Abs,Dn` immediately after the matching store
//!   `move Dn,Abs` → deleted (promoted likewise; the store already set
//!   the same flags from the same value, so no gate is needed — but
//!   device registers are volatile and are never touched).

use std::collections::HashMap;

use quamachine::devices::DEV_BASE;
use quamachine::isa::{BranchTarget, Cond, Instr, Operand, ShiftKind, Size};

use crate::rewrite;

/// Whether the condition codes produced by instruction `i` are dead — i.e.
/// every path from `i+1` reaches a flag-*writing* instruction before any
/// flag-*reading* instruction, without leaving the block.
///
/// Conservative: branch targets, block exits, and unknown instructions
/// count as reads.
pub(crate) fn flags_dead_after(instrs: &[Instr], i: usize, targets: &[bool]) -> bool {
    let mut j = i + 1;
    while j < instrs.len() {
        if targets[j] {
            // Someone may jump here with our flags? No — they'd bring
            // their own. But *we* fall into a merge point whose consumers
            // were analyzed along another path; stay conservative.
            return false;
        }
        match &instrs[j] {
            // Flag readers.
            Instr::Bcc(_, _) | Instr::Scc(_, _) => return false,
            // Control leaves the block with flags live (the caller or
            // handler might inspect them — conservative).
            Instr::Jmp(_)
            | Instr::Jsr(_)
            | Instr::Rts
            | Instr::Rte
            | Instr::Trap(_)
            | Instr::Halt
            | Instr::KCall(_)
            | Instr::Stop(_)
            | Instr::Dbf(_, _) => return false,
            // Flag writers (NZVC all written).
            Instr::Move(_, _, dst) => {
                if !matches!(dst, Operand::Ar(_)) {
                    return true;
                }
                // MOVEA writes no flags: keep scanning.
            }
            Instr::Add(_, _, dst) | Instr::Sub(_, _, dst) => {
                if !matches!(dst, Operand::Ar(_)) {
                    return true;
                }
            }
            Instr::Cmp(_, _, _)
            | Instr::Tst(_, _)
            | Instr::And(_, _, _)
            | Instr::Or(_, _, _)
            | Instr::Eor(_, _, _)
            | Instr::Not(_, _)
            | Instr::Neg(_, _)
            | Instr::MulU(_, _)
            | Instr::DivU(_, _)
            | Instr::Shift(_, _, _, _)
            | Instr::Swap(_)
            | Instr::Ext(_, _)
            | Instr::Cas { .. }
            | Instr::Tas(_) => return true,
            // Flag-neutral instructions: keep scanning.
            Instr::Movem { .. }
            | Instr::Lea(_, _)
            | Instr::Pea(_)
            | Instr::Link(_, _)
            | Instr::Unlk(_)
            | Instr::MoveUsp { .. }
            | Instr::MoveVbr { .. }
            | Instr::Nop
            | Instr::FMove { .. }
            | Instr::FMovem { .. }
            | Instr::FAdd(_, _)
            | Instr::FSub(_, _)
            | Instr::FMul(_, _) => {}
            Instr::MoveSr { .. } => return false,
        }
        j += 1;
    }
    false
}

/// Whether `instrs[j]` reads data register `n` (conservatively true for
/// anything unclear).
fn reads_dreg(instr: &Instr, n: u8) -> bool {
    let uses_op = |op: &Operand| -> bool {
        match *op {
            Operand::Dr(d) => d == n,
            Operand::Idx(_, _, ix) => !ix.addr && ix.reg == n,
            _ => false,
        }
    };
    use Instr::*;
    match instr {
        Move(_, s, d) => uses_op(s) || (uses_op(d) && !matches!(d, Operand::Dr(x) if *x == n)),
        Add(_, s, d) | Sub(_, s, d) | Cmp(_, s, d) | And(_, s, d) | Or(_, s, d) | Eor(_, s, d) => {
            uses_op(s) || uses_op(d)
        }
        Shift(_, _, c, d) => uses_op(c) || uses_op(d),
        Tst(_, ea)
        | Not(_, ea)
        | Neg(_, ea)
        | Scc(_, ea)
        | Pea(ea)
        | Jmp(ea)
        | Jsr(ea)
        | Tas(ea) => uses_op(ea),
        Lea(ea, _) => uses_op(ea),
        MulU(ea, d) | DivU(ea, d) => uses_op(ea) || *d == n,
        Movem { to_mem, regs, ea } => (*to_mem && regs.has_d(n)) || uses_op(ea),
        Cas { dc, du, ea, .. } => *dc == n || *du == n || uses_op(ea),
        Swap(d) | Ext(_, d) | Dbf(d, _) => *d == n,
        MoveSr { to_sr: true, ea } | MoveVbr { to_vbr: true, ea } => uses_op(ea),
        FMove { ea, .. } | FMovem { ea, .. } => uses_op(ea),
        // Anything that leaves the block may read everything.
        Trap(_) | KCall(_) | Rts | Rte | Halt | Stop(_) => true,
        _ => false,
    }
}

/// Whether `instr` writes data register `n` long-sized (fully overwrites).
fn overwrites_dreg_long(instr: &Instr, n: u8) -> bool {
    matches!(instr, Instr::Move(Size::L, _, Operand::Dr(d)) if *d == n)
}

/// `cmp #0,x` → `tst x`. Flag-equivalent, always safe.
fn pass_cmp0_to_tst(instrs: &mut [Instr]) -> bool {
    let mut changed = false;
    for ins in instrs.iter_mut() {
        if let Instr::Cmp(size, Operand::Imm(0), dst) = *ins {
            if !matches!(dst, Operand::Ar(_)) {
                *ins = Instr::Tst(size, dst);
                changed = true;
            }
        }
    }
    changed
}

/// Delete arithmetic identities whose flag effects are dead.
fn pass_identities(instrs: &[Instr], keep: &mut [bool], targets: &[bool]) -> bool {
    let mut changed = false;
    for (i, ins) in instrs.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let identity = match *ins {
            Instr::Add(_, Operand::Imm(0), d) | Instr::Sub(_, Operand::Imm(0), d) => {
                // add #0 to memory still performs the read/write cycle but
                // has no effect; deleting it is safe when flags are dead
                // and the EA has no side effects.
                !matches!(d, Operand::PostInc(_) | Operand::PreDec(_))
            }
            Instr::Or(_, Operand::Imm(0), d) | Instr::Eor(_, Operand::Imm(0), d) => {
                !matches!(d, Operand::PostInc(_) | Operand::PreDec(_))
            }
            Instr::Move(_, s, d) => s == d && s.is_register(),
            _ => false,
        };
        if identity {
            let flags_matter = !matches!(*ins, Instr::Move(_, _, Operand::Ar(_)));
            if !flags_matter || flags_dead_after(instrs, i, targets) {
                keep[i] = false;
                changed = true;
            }
        }
    }
    changed
}

/// Delete `move _,Dn` whose value is overwritten before any read.
fn pass_dead_stores(instrs: &[Instr], keep: &mut [bool], targets: &[bool]) -> bool {
    let mut changed = false;
    'outer: for i in 0..instrs.len() {
        if !keep[i] {
            continue;
        }
        // Only pure register stores with side-effect-free sources.
        let Instr::Move(_, src, Operand::Dr(n)) = instrs[i] else {
            continue;
        };
        if matches!(src, Operand::PostInc(_) | Operand::PreDec(_)) || src.is_memory() {
            // A memory read may fault or touch a device: keep it.
            continue;
        }
        if !flags_dead_after(instrs, i, targets) {
            continue;
        }
        let mut j = i + 1;
        while j < instrs.len() {
            if targets[j] {
                continue 'outer; // unknown path may read Dn
            }
            if !keep[j] {
                j += 1;
                continue;
            }
            if reads_dreg(&instrs[j], n) {
                continue 'outer;
            }
            if overwrites_dreg_long(&instrs[j], n) {
                keep[i] = false;
                changed = true;
                continue 'outer;
            }
            if instrs[j].is_terminator() {
                continue 'outer;
            }
            j += 1;
        }
    }
    changed
}

/// `mulu #2^k,Dn` → `and.l #0xFFFF,Dn ; lsl.l #k,Dn` (just the `and`
/// when k = 0). The replacement's N/Z/V/C match mulu's, but `lsl`
/// writes X and mulu does not, so the rewrite applies only when flags
/// are provably dead. Grows the stream, hence [`rewrite::splice`].
fn pass_strength_reduce(instrs: &mut Vec<Instr>, marks: &mut HashMap<String, usize>) -> bool {
    let mut changed = false;
    let mut i = instrs.len();
    while i > 0 {
        i -= 1;
        let Instr::MulU(Operand::Imm(v), d) = instrs[i] else {
            continue;
        };
        if !v.is_power_of_two() || v > 0x8000 {
            continue;
        }
        let targets = rewrite::branch_target_flags(instrs);
        if !flags_dead_after(instrs, i, &targets) {
            continue;
        }
        let k = v.trailing_zeros();
        let mut repl = vec![Instr::And(Size::L, Operand::Imm(0xFFFF), Operand::Dr(d))];
        if k > 0 {
            repl.push(Instr::Shift(
                ShiftKind::Lsl,
                Size::L,
                Operand::Imm(k),
                Operand::Dr(d),
            ));
        }
        rewrite::splice(instrs, marks, i, i + 1, repl);
        changed = true;
    }
    changed
}

/// Delete the reload in `move Dn,Abs ; move Abs,Dn` (same size, same
/// register, same address). The reload's flags equal the store's — both
/// derive from the same value — so no flags-dead gate is required.
/// Device registers are volatile: never elide a read from one.
fn pass_store_reload(instrs: &[Instr], keep: &mut [bool], targets: &[bool]) -> bool {
    let mut changed = false;
    for i in 0..instrs.len().saturating_sub(1) {
        if !keep[i] || !keep[i + 1] || targets[i + 1] {
            continue;
        }
        let (
            Instr::Move(s1, Operand::Dr(n1), Operand::Abs(a1)),
            Instr::Move(s2, Operand::Abs(a2), Operand::Dr(n2)),
        ) = (instrs[i], instrs[i + 1])
        else {
            continue;
        };
        if s1 == s2 && n1 == n2 && a1 == a2 && a1 < DEV_BASE {
            keep[i + 1] = false;
            changed = true;
        }
    }
    changed
}

/// Thread `bra` chains: a branch whose target is an unconditional branch
/// goes straight to the final target.
fn pass_branch_threading(instrs: &mut [Instr]) -> bool {
    let mut changed = false;
    for i in 0..instrs.len() {
        let Some(BranchTarget::Idx(t)) = instrs[i].branch_target() else {
            continue;
        };
        let mut t = t as usize;
        let mut hops = 0;
        while hops < 8 {
            match instrs.get(t) {
                Some(Instr::Bcc(Cond::T, BranchTarget::Idx(t2))) if *t2 as usize != t => {
                    t = *t2 as usize;
                    hops += 1;
                }
                _ => break,
            }
        }
        if let Some(BranchTarget::Idx(orig)) = instrs[i].branch_target() {
            if orig as usize != t {
                instrs[i].set_branch_target(BranchTarget::Idx(t as u32));
                changed = true;
            }
        }
    }
    changed
}

/// `bcc L1; bra L2; L1:` → `b!cc L2` (inverted-branch elimination).
fn pass_invert_skip(instrs: &mut [Instr], keep: &mut [bool]) -> bool {
    let mut changed = false;
    let targets = rewrite::branch_target_flags(instrs);
    for i in 0..instrs.len().saturating_sub(1) {
        if !keep[i] || !keep[i + 1] {
            continue;
        }
        // The bra must not itself be a branch target.
        if targets[i + 1] {
            continue;
        }
        let (Instr::Bcc(c, BranchTarget::Idx(t1)), Instr::Bcc(Cond::T, BranchTarget::Idx(t2))) =
            (instrs[i], instrs[i + 1])
        else {
            continue;
        };
        if c == Cond::T || t1 as usize != i + 2 {
            continue;
        }
        instrs[i] = Instr::Bcc(c.negate(), BranchTarget::Idx(t2));
        keep[i + 1] = false;
        changed = true;
    }
    changed
}

/// Run all peephole passes to a fixpoint; returns the optimized stream
/// with `marks` remapped.
#[must_use]
pub fn optimize(mut instrs: Vec<Instr>, marks: &mut HashMap<String, usize>) -> Vec<Instr> {
    for _ in 0..8 {
        let mut changed = pass_cmp0_to_tst(&mut instrs);
        changed |= pass_branch_threading(&mut instrs);
        changed |= pass_strength_reduce(&mut instrs, marks);
        let targets = rewrite::branch_target_flags(&instrs);
        let mut keep = vec![true; instrs.len()];
        changed |= pass_identities(&instrs, &mut keep, &targets);
        changed |= pass_dead_stores(&instrs, &mut keep, &targets);
        changed |= pass_store_reload(&instrs, &mut keep, &targets);
        changed |= pass_invert_skip(&mut instrs, &mut keep);
        instrs = rewrite::compact(instrs, &keep, marks);
        if !changed {
            break;
        }
    }
    instrs
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::isa::Operand::*;
    use quamachine::isa::Size::L;

    fn opt(instrs: Vec<Instr>) -> Vec<Instr> {
        let mut marks = HashMap::new();
        optimize(instrs, &mut marks)
    }

    #[test]
    fn cmp_zero_becomes_tst() {
        let out = opt(vec![
            Instr::Cmp(L, Imm(0), Dr(1)),
            Instr::Bcc(Cond::Eq, BranchTarget::Idx(2)),
            Instr::Rts,
        ]);
        assert_eq!(out[0], Instr::Tst(L, Dr(1)));
    }

    #[test]
    fn add_zero_removed_when_flags_dead() {
        let out = opt(vec![
            Instr::Add(L, Imm(0), Dr(1)),
            Instr::Move(L, Imm(5), Dr(2)), // writes flags: add's are dead
            Instr::Rts,
        ]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], Instr::Move(L, Imm(5), Dr(2)));
    }

    #[test]
    fn add_zero_kept_when_flags_read() {
        let out = opt(vec![
            Instr::Add(L, Imm(0), Dr(1)),
            Instr::Bcc(Cond::Eq, BranchTarget::Idx(2)),
            Instr::Rts,
        ]);
        assert_eq!(out.len(), 3, "flags feed the branch; must keep");
    }

    #[test]
    fn self_move_removed() {
        let out = opt(vec![
            Instr::Move(L, Dr(3), Dr(3)),
            Instr::Move(L, Imm(1), Dr(0)),
            Instr::Rts,
        ]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn dead_store_removed() {
        let out = opt(vec![
            Instr::Move(L, Imm(1), Dr(0)), // dead: overwritten below
            Instr::Move(L, Imm(2), Dr(1)),
            Instr::Move(L, Imm(3), Dr(0)),
            Instr::Rts,
        ]);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], Instr::Move(L, Imm(2), Dr(1)));
    }

    #[test]
    fn store_read_before_overwrite_kept() {
        let out = opt(vec![
            Instr::Move(L, Imm(1), Dr(0)),
            Instr::Add(L, Dr(0), Dr(1)), // reads d0
            Instr::Move(L, Imm(3), Dr(0)),
            Instr::Rts,
        ]);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn memory_load_store_not_removed() {
        // A load may fault or hit a device register; never delete it.
        let out = opt(vec![
            Instr::Move(L, Abs(0x2000), Dr(0)),
            Instr::Move(L, Imm(3), Dr(0)),
            Instr::Rts,
        ]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn branch_chains_threaded() {
        let out = opt(vec![
            Instr::Bcc(Cond::Eq, BranchTarget::Idx(2)), // 0 -> 2
            Instr::Rts,                                 // 1
            Instr::Bcc(Cond::T, BranchTarget::Idx(4)),  // 2 -> 4
            Instr::Rts,                                 // 3
            Instr::Halt,                                // 4
        ]);
        // The conditional now goes straight to the halt.
        let Instr::Bcc(Cond::Eq, BranchTarget::Idx(t)) = out[0] else {
            panic!("expected threaded bcc, got {:?}", out[0]);
        };
        assert_eq!(out[t as usize], Instr::Halt);
    }

    #[test]
    fn inverted_branch_skip() {
        // beq L1; bra L2; L1: move; rts   =>   bne L2; move; rts
        let out = opt(vec![
            Instr::Bcc(Cond::Eq, BranchTarget::Idx(2)),
            Instr::Bcc(Cond::T, BranchTarget::Idx(3)),
            Instr::Move(L, Imm(1), Dr(0)),
            Instr::Rts,
        ]);
        assert_eq!(out.len(), 3);
        let Instr::Bcc(Cond::Ne, BranchTarget::Idx(t)) = out[0] else {
            panic!("expected inverted branch, got {:?}", out[0]);
        };
        assert_eq!(out[t as usize], Instr::Rts);
    }

    #[test]
    fn mulu_pow2_reduced_when_flags_dead() {
        // mulu #8,d0 followed by a flag-writer: 27 cycles become 6.
        let out = opt(vec![
            Instr::MulU(Imm(8), 0),
            Instr::Move(L, Dr(0), Abs(0x2000)),
            Instr::Rts,
        ]);
        assert_eq!(
            out,
            vec![
                Instr::And(L, Imm(0xFFFF), Dr(0)),
                Instr::Shift(ShiftKind::Lsl, L, Imm(3), Dr(0)),
                Instr::Move(L, Dr(0), Abs(0x2000)),
                Instr::Rts,
            ]
        );
    }

    #[test]
    fn mulu_by_one_becomes_bare_mask() {
        let out = opt(vec![
            Instr::MulU(Imm(1), 4),
            Instr::Move(L, Dr(4), Abs(0x2000)),
            Instr::Rts,
        ]);
        assert_eq!(out[0], Instr::And(L, Imm(0xFFFF), Dr(4)));
        assert!(!out.iter().any(|i| matches!(i, Instr::Shift(..))));
    }

    #[test]
    fn mulu_kept_when_flags_feed_a_branch() {
        // Proof case for the flags-dead gate: the branch reads mulu's Z.
        let out = opt(vec![
            Instr::MulU(Imm(8), 0),
            Instr::Bcc(Cond::Eq, BranchTarget::Idx(2)),
            Instr::Rts,
        ]);
        assert_eq!(out[0], Instr::MulU(Imm(8), 0), "live flags must block it");
    }

    #[test]
    fn mulu_kept_when_sr_is_stored() {
        // Proof case for X: lsl writes X, mulu does not, and a store-SR
        // observes X — the rewrite must not fire.
        let out = opt(vec![
            Instr::MulU(Imm(8), 0),
            Instr::MoveSr {
                to_sr: false,
                ea: Dr(1),
            },
            Instr::Rts,
        ]);
        assert_eq!(out[0], Instr::MulU(Imm(8), 0), "stored SR observes X");
    }

    #[test]
    fn mulu_non_pow2_kept() {
        let out = opt(vec![
            Instr::MulU(Imm(6), 0),
            Instr::Move(L, Dr(0), Abs(0x2000)),
            Instr::Rts,
        ]);
        assert_eq!(out[0], Instr::MulU(Imm(6), 0));
    }

    #[test]
    fn mulu_splice_retargets_branches_and_marks() {
        let mut marks = HashMap::new();
        marks.insert("out".to_string(), 4);
        let out = optimize(
            vec![
                Instr::MulU(Imm(8), 0),                     // 0: grows to 2 instrs
                Instr::Move(L, Dr(0), Abs(0x2000)),         // 1: flag-writer
                Instr::Tst(L, Dr(7)),                       // 2
                Instr::Bcc(Cond::Ne, BranchTarget::Idx(4)), // 3 -> rts
                Instr::Rts,                                 // 4: mark "out"
            ],
            &mut marks,
        );
        let rts_at = out.iter().position(|i| matches!(i, Instr::Rts)).unwrap();
        let Some(Instr::Bcc(Cond::Ne, BranchTarget::Idx(t))) =
            out.iter().find(|i| matches!(i, Instr::Bcc(Cond::Ne, _)))
        else {
            panic!("bne lost: {out:?}");
        };
        assert_eq!(*t as usize, rts_at);
        assert_eq!(marks["out"], rts_at);
    }

    #[test]
    fn store_reload_elided() {
        let out = opt(vec![
            Instr::Move(L, Dr(0), Abs(0x2000)),
            Instr::Move(L, Abs(0x2000), Dr(0)), // redundant reload
            Instr::Move(L, Imm(1), Dr(1)),
            Instr::Rts,
        ]);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], Instr::Move(L, Dr(0), Abs(0x2000)));
        assert_eq!(out[1], Instr::Move(L, Imm(1), Dr(1)));
    }

    #[test]
    fn store_reload_kept_at_device_registers() {
        // Proof case for volatility: a device read has side effects.
        let dev = quamachine::devices::DEV_BASE + 0x100;
        let out = opt(vec![
            Instr::Move(L, Dr(0), Abs(dev)),
            Instr::Move(L, Abs(dev), Dr(0)),
            Instr::Rts,
        ]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn store_reload_kept_when_reload_is_a_branch_target() {
        // Someone jumps straight to the reload: it must survive.
        let out = opt(vec![
            Instr::Move(L, Dr(0), Abs(0x2000)),         // 0
            Instr::Move(L, Abs(0x2000), Dr(0)),         // 1: target
            Instr::Tst(L, Dr(7)),                       // 2
            Instr::Bcc(Cond::Ne, BranchTarget::Idx(1)), // 3
            Instr::Rts,                                 // 4
        ]);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn store_reload_different_reg_or_size_kept() {
        let out = opt(vec![
            Instr::Move(L, Dr(0), Abs(0x2000)),
            Instr::Move(L, Abs(0x2000), Dr(1)), // different register
            Instr::Rts,
        ]);
        assert_eq!(out.len(), 3);
        let out = opt(vec![
            Instr::Move(L, Dr(0), Abs(0x2000)),
            Instr::Move(Size::W, Abs(0x2000), Dr(0)), // different size
            Instr::Rts,
        ]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn promoted_patterns_prove_equivalent() {
        // The differential checker certifies both promoted rewrites on
        // the same randomized states the superoptimizer would use.
        let original = vec![
            Instr::MulU(Imm(4), 2),
            Instr::Move(L, Dr(2), Abs(0x2000)),
            Instr::Move(L, Abs(0x2000), Dr(2)),
            Instr::Rts,
        ];
        let optimized = opt(original.clone());
        assert!(!optimized.iter().any(|i| matches!(i, Instr::MulU(..))));
        assert!(
            !optimized
                .iter()
                .any(|i| matches!(i, Instr::Move(_, Abs(_), Dr(_)))),
            "reload should be gone: {optimized:?}"
        );
        crate::equiv::diff_check(&original, &optimized, &crate::equiv::DiffConfig::default())
            .expect("promoted rewrites must be behaviorally equivalent");
    }

    #[test]
    fn movea_does_not_write_flags_for_deadness() {
        // add #0,d1 ; movea (flag-neutral) ; beq — flags still live.
        let out = opt(vec![
            Instr::Add(L, Imm(0), Dr(1)),
            Instr::Move(L, Imm(0x100), Ar(0)),
            Instr::Bcc(Cond::Eq, BranchTarget::Idx(3)),
            Instr::Rts,
        ]);
        assert_eq!(out.len(), 4);
    }
}
