//! Instruction-stream editing: deleting instructions while keeping branch
//! targets and entry-point marks consistent.

use std::collections::HashMap;

use quamachine::isa::{BranchTarget, Instr};

/// Which instruction indices are the target of some intra-block branch.
#[must_use]
pub fn branch_target_flags(instrs: &[Instr]) -> Vec<bool> {
    let mut flags = vec![false; instrs.len() + 1];
    for i in instrs {
        if let Some(BranchTarget::Idx(t)) = i.branch_target() {
            if let Some(f) = flags.get_mut(t as usize) {
                *f = true;
            }
        }
    }
    flags
}

/// Remove the instructions whose `keep` flag is false, remapping branch
/// targets and `marks` to the new indices.
///
/// A branch (or mark) pointing at a removed instruction is retargeted to
/// the next surviving instruction at or after it; if none survives it
/// points one past the end, which a verifier should reject — callers keep
/// block-terminating instructions alive, so this does not arise in
/// practice.
#[must_use]
pub fn compact(
    instrs: Vec<Instr>,
    keep: &[bool],
    marks: &mut HashMap<String, usize>,
) -> Vec<Instr> {
    debug_assert_eq!(instrs.len(), keep.len());
    // new_at_or_after[i] = new index of the first kept instruction at or
    // after old index i.
    let mut new_at_or_after = vec![0usize; instrs.len() + 1];
    let mut count = 0usize;
    for i in 0..instrs.len() {
        new_at_or_after[i] = count;
        if keep[i] {
            count += 1;
        }
    }
    new_at_or_after[instrs.len()] = count;

    let mut out = Vec::with_capacity(count);
    for (i, mut instr) in instrs.into_iter().enumerate() {
        if !keep[i] {
            continue;
        }
        if let Some(BranchTarget::Idx(t)) = instr.branch_target() {
            instr.set_branch_target(BranchTarget::Idx(
                new_at_or_after[(t as usize).min(keep.len())] as u32,
            ));
        }
        out.push(instr);
    }
    for idx in marks.values_mut() {
        *idx = new_at_or_after[(*idx).min(keep.len())];
    }
    out
}

/// Replace `instrs[s..e]` with `repl`, shifting branch targets and
/// `marks` at or past `e` by the length delta. Targets strictly inside
/// `(s, e)` must not exist (callers splice only regions they proved
/// nobody jumps into); targets at `s` keep pointing at the replacement's
/// first instruction.
pub fn splice(
    instrs: &mut Vec<Instr>,
    marks: &mut HashMap<String, usize>,
    s: usize,
    e: usize,
    repl: Vec<Instr>,
) {
    let delta = repl.len() as isize - (e - s) as isize;
    if delta != 0 {
        for i in instrs.iter_mut() {
            if let Some(BranchTarget::Idx(t)) = i.branch_target() {
                if t as usize >= e {
                    i.set_branch_target(BranchTarget::Idx((t as isize + delta) as u32));
                }
            }
        }
        for v in marks.values_mut() {
            if *v >= e {
                *v = (*v as isize + delta) as usize;
            }
        }
    }
    instrs.splice(s..e, repl);
}

/// Indices reachable from the given entry points by fallthrough and
/// intra-block branches. `Jmp`, `Rts`, `Rte`, `Halt`, and unconditional
/// branches end a path; everything else (including `Jsr`, `Trap`,
/// `Stop`, and `KCall`) falls through.
#[must_use]
pub fn reachable(instrs: &[Instr], entries: &[usize]) -> Vec<bool> {
    let mut seen = vec![false; instrs.len()];
    let mut stack: Vec<usize> = entries
        .iter()
        .copied()
        .filter(|&e| e < instrs.len())
        .collect();
    while let Some(i) = stack.pop() {
        if i >= instrs.len() || seen[i] {
            continue;
        }
        seen[i] = true;
        let instr = &instrs[i];
        if let Some(BranchTarget::Idx(t)) = instr.branch_target() {
            stack.push(t as usize);
        }
        if !instr.is_terminator() {
            stack.push(i + 1);
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::isa::{Cond, Operand::*, Size::L};

    fn mv(v: u32, d: u8) -> Instr {
        Instr::Move(L, Imm(v), Dr(d))
    }

    #[test]
    fn compact_remaps_branches() {
        // 0: move; 1: move (removed); 2: bcc -> 1; 3: rts
        let instrs = vec![
            mv(1, 0),
            mv(2, 1),
            Instr::Bcc(Cond::Eq, BranchTarget::Idx(1)),
            Instr::Rts,
        ];
        let mut marks = HashMap::new();
        marks.insert("mid".to_string(), 1);
        let out = compact(instrs, &[true, false, true, true], &mut marks);
        assert_eq!(out.len(), 3);
        // Branch to removed index 1 retargets to old index 2 = new index 1.
        assert_eq!(out[1], Instr::Bcc(Cond::Eq, BranchTarget::Idx(1)));
        assert_eq!(marks["mid"], 1);
    }

    #[test]
    fn reachable_stops_at_terminators() {
        let instrs = vec![
            mv(1, 0),    // 0
            Instr::Rts,  // 1
            mv(2, 1),    // 2: dead
            Instr::Halt, // 3: dead
        ];
        let r = reachable(&instrs, &[0]);
        assert_eq!(r, vec![true, true, false, false]);
    }

    #[test]
    fn reachable_follows_branches_and_extra_entries() {
        let instrs = vec![
            Instr::Bcc(Cond::Eq, BranchTarget::Idx(3)), // 0
            Instr::Rts,                                 // 1
            mv(9, 0),                                   // 2: only via entry list
            Instr::Halt,                                // 3: via branch
        ];
        let r = reachable(&instrs, &[0]);
        assert_eq!(r, vec![true, true, false, true]);
        let r2 = reachable(&instrs, &[0, 2]);
        assert_eq!(r2, vec![true, true, true, true]);
    }

    #[test]
    fn branch_target_flags_collects() {
        let instrs = vec![
            Instr::Bcc(Cond::Ne, BranchTarget::Idx(2)),
            Instr::Nop,
            Instr::Rts,
        ];
        let f = branch_target_flags(&instrs);
        assert!(!f[0] && !f[1] && f[2]);
    }
}
