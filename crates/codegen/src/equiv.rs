//! Differential-execution equivalence checking.
//!
//! [`crate::verify`] proves structural well-formedness; this module
//! proves *behavior*: a candidate sequence is accepted only if it is
//! indistinguishable from its reference when both run on the
//! cycle-modelled interpreter from the same randomized register and
//! memory states. This is the acceptance gate of the superoptimizer
//! ([`crate::superopt`]) and the pre-install check the creator applies
//! to every superoptimized or fused block.
//!
//! # What is compared
//!
//! Both sequences are loaded into otherwise-identical scratch machines,
//! seeded with the same pseudo-random register file and memory image,
//! and run to completion (`halt`, `rts` into a sentinel, a `kcall`, an
//! execution error, or the step budget). The runs must then agree on:
//!
//! - all data and address registers (`a7` included — stack discipline);
//! - the condition codes `N`/`Z`/`V`/`C` (`X` is excluded: no
//!   implemented instruction observes it except a store-SR, and windows
//!   feeding a store-SR are never superoptimized);
//! - every byte of memory;
//! - the exit reason, including the `kcall` selector — a fused block
//!   that blocks in the kernel must block through the *same* kcall with
//!   the same visible state.
//!
//! Trials are seeded and replayable: a mismatch reports the trial seed
//! so the exact failing state can be reproduced.

use quamachine::code::CodeBlock;
use quamachine::isa::{Instr, Operand, Size};
use quamachine::machine::{Machine, MachineConfig, RunExit};

/// Where the sequence under test is loaded. Chosen above the data
/// memory so random address-register values can never alias code.
const CODE_BASE: u32 = 0x0040_0000;
/// A one-instruction `halt` block: the return target of a terminating
/// `rts`.
const SENTINEL: u32 = 0x0050_0000;
/// Per-vector trap landing pads (`TRAP_LAND + 8 * n`, each a `halt`).
/// Separate pads make the trap *number* part of the exit contract, and
/// let the harness recognize a trap exit so it can normalize the pushed
/// return PC (a code offset — reference and candidate encode to
/// different lengths, so the frame's PC field legitimately differs).
const TRAP_LAND: u32 = 0x0050_0100;
/// Data window randomized each trial (address registers are seeded to
/// point into it).
const DATA_BASE: u32 = 0x0001_0000;
const DATA_LEN: u32 = 0x8000;
/// Initial stack pointer (the long below holds the sentinel return
/// address).
const STACK_TOP: u32 = 0x0000_F000;

/// Configuration of one differential check.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Independent randomized trials.
    pub trials: u32,
    /// Base seed; trial `t` derives its state from `seed ^ t`.
    pub seed: u64,
    /// Per-trial cycle budget. Runs that exhaust it are compared on the
    /// state reached (identical states at the same budget are accepted:
    /// the runs are observationally equal so far).
    pub cycles: u64,
    /// Register preset *sets*, rotated across the odd trials (trial
    /// `2k+1` applies set `k % len`; even trials stay fully random).
    /// Each entry `(true, n, v)` sets `d[n] = v`, `(false, n, v)` sets
    /// `a[n] = v`. Callers use these to steer trials down *every*
    /// guarded path of a specialized block — e.g. one set seeding
    /// `d1 = fd, d2 = 1` for a fused wrapper's fast path and another
    /// `d1 = fd, d2 = 5` for its general body, so neither path escapes
    /// the trials the way a random `d1` (which practically never equals
    /// the fd) would let it.
    pub preset_sets: Vec<Vec<(bool, u8, u32)>>,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            trials: 6,
            seed: 0x5337_11AD_BEEF_CAFE,
            cycles: 20_000,
            preset_sets: Vec::new(),
        }
    }
}

/// A differential mismatch: the candidate is observably different from
/// the reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffMismatch {
    /// Trial index that diverged.
    pub trial: u32,
    /// The trial's derived seed (replays the exact initial state).
    pub seed: u64,
    /// Human-readable description of the first divergence.
    pub detail: String,
}

impl std::fmt::Display for DiffMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "differential mismatch (trial {}, seed {:#x}): {}",
            self.trial, self.seed, self.detail
        )
    }
}

/// splitmix64 — the standard small seedable generator; good enough to
/// scatter register files and replayable from a single `u64`.
pub(crate) struct Rng(pub u64);

impl Rng {
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub(crate) fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// What one run ended as, reduced to comparable form.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ExitToken {
    Halted,
    /// Exited through `trap #n` — a fused wrapper's fallback path must
    /// raise the *same* trap as its reference.
    Trap(u8),
    KCall(u16),
    CycleLimit,
    Error(String),
}

fn token(exit: &RunExit) -> ExitToken {
    match exit {
        RunExit::Halted => ExitToken::Halted,
        RunExit::KCall(n) => ExitToken::KCall(*n),
        RunExit::CycleLimit => ExitToken::CycleLimit,
        RunExit::Breakpoint(_) => ExitToken::Halted,
        RunExit::Error(e) => ExitToken::Error(format!("{e:?}")),
    }
}

/// Collect the absolute and immediate constants a sequence mentions
/// that fall inside data memory — these get randomized contents so
/// loads through them see varied state. [`diff_check`] seeds both runs
/// from the *union* of the reference's and candidate's constants, so
/// the initial state is identical no matter which sequence runs.
fn interesting_addrs(instrs: &[Instr], mem_size: u32) -> Vec<u32> {
    let mut out = Vec::new();
    for i in instrs {
        for op in i.operands() {
            if let Operand::Abs(a) | Operand::Imm(a) = op {
                let a = a & !3;
                if (0x100..mem_size.saturating_sub(16)).contains(&a) {
                    out.push(a);
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Run `instrs` from a seeded state; returns the machine and exit.
/// `addrs` is the union of both sequences' interesting constants, so
/// the reference and candidate runs start byte-identical.
fn run_one(
    instrs: &[Instr],
    addrs: &[u32],
    cfg: &DiffConfig,
    trial_seed: u64,
    trial: u32,
) -> (Machine, ExitToken) {
    let mut m = Machine::new(MachineConfig::sun3_emulation());
    let mut rng = Rng(trial_seed);

    // Seed the data window and the constants the code mentions.
    let fill: Vec<u8> = (0..DATA_LEN)
        .map(|_| (rng.next_u32() & 0xFF) as u8)
        .collect();
    m.mem.poke_bytes(DATA_BASE, &fill);
    for &a in addrs {
        let v = rng.next_u32();
        m.mem.poke(a, Size::L, v);
        m.mem.poke(a + 4, Size::L, rng.next_u32());
    }

    // Register file: data registers full-range, address registers
    // aligned into the data window.
    for i in 0..8 {
        m.cpu.d[i] = rng.next_u32();
    }
    for i in 0..7 {
        m.cpu.a[i] = (DATA_BASE + rng.next_u32() % (DATA_LEN - 0x100)) & !3;
    }
    m.cpu.a[7] = STACK_TOP;
    m.cpu.sr = 0x2000 | (rng.next_u32() as u16 & 0x1F);
    if trial % 2 == 1 && !cfg.preset_sets.is_empty() {
        let set = &cfg.preset_sets[(trial as usize / 2) % cfg.preset_sets.len()];
        for &(is_d, n, v) in set {
            if is_d {
                m.cpu.d[n as usize] = v;
            } else {
                m.cpu.a[n as usize] = v;
            }
        }
    }

    // Sentinel halt block (the rts return target), plus a per-vector
    // halt pad for every trap the sequence can raise.
    m.mem.poke(STACK_TOP, Size::L, SENTINEL);
    m.load_block(
        SENTINEL,
        CodeBlock::new("equiv-sentinel", vec![Instr::Halt]),
    )
    .expect("sentinel loads");
    let mut traps: Vec<u8> = instrs
        .iter()
        .filter_map(|i| match i {
            Instr::Trap(n) => Some(*n),
            _ => None,
        })
        .collect();
    traps.sort_unstable();
    traps.dedup();
    for n in traps {
        let land = TRAP_LAND + 8 * u32::from(n);
        m.mem.poke((32 + u32::from(n)) * 4, Size::L, land);
        m.load_block(land, CodeBlock::new("equiv-trap-land", vec![Instr::Halt]))
            .expect("trap landing loads");
    }

    // The sequence itself, with a trailing halt so falling off the end
    // is well-defined.
    let mut body = instrs.to_vec();
    body.push(Instr::Halt);
    m.load_block(CODE_BASE, CodeBlock::new("equiv-seq", body))
        .expect("sequence loads");

    m.cpu.pc = CODE_BASE;
    let exit = m.run(cfg.cycles);
    let mut tok = token(&exit);
    if tok == ExitToken::Halted && (TRAP_LAND..TRAP_LAND + 8 * 256).contains(&m.cpu.pc) {
        // Halted on a trap pad: record which trap, and zero the pushed
        // return PC in the exception frame (SP+2) — it is an offset into
        // the sequence's own encoding, not comparable state. The pushed
        // SR word at SP stays compared: trap-time flags are semantics.
        tok = ExitToken::Trap(((m.cpu.pc - TRAP_LAND) / 8) as u8);
        let sp = m.cpu.a[7];
        m.mem.poke(sp.wrapping_add(2), Size::L, 0);
        // Mask X out of the frame SR as well: like the final-CCR compare,
        // X is unobservable in superoptimizable windows.
        let frame_sr = m.mem.peek(sp, Size::W);
        m.mem.poke(sp, Size::W, frame_sr & !0x10);
    }
    (m, tok)
}

/// Compare two completed runs; `None` means indistinguishable.
fn compare(mr: &Machine, tr: &ExitToken, mc: &Machine, tc: &ExitToken) -> Option<String> {
    if tr != tc {
        return Some(format!("exit differs: reference {tr:?}, candidate {tc:?}"));
    }
    for i in 0..8 {
        if mr.cpu.d[i] != mc.cpu.d[i] {
            return Some(format!(
                "d{i} differs: {:#010x} vs {:#010x}",
                mr.cpu.d[i], mc.cpu.d[i]
            ));
        }
        if mr.cpu.a[i] != mc.cpu.a[i] {
            return Some(format!(
                "a{i} differs: {:#010x} vs {:#010x}",
                mr.cpu.a[i], mc.cpu.a[i]
            ));
        }
    }
    // N/Z/V/C only; X is unobservable in superoptimizable windows.
    if mr.cpu.sr & 0xF != mc.cpu.sr & 0xF {
        return Some(format!(
            "ccr differs: {:#06x} vs {:#06x}",
            mr.cpu.sr & 0xF,
            mc.cpu.sr & 0xF
        ));
    }
    if let Some(addr) = mr.mem.first_diff(&mc.mem) {
        return Some(format!(
            "memory differs at {addr:#010x}: {:#04x} vs {:#04x}",
            mr.mem.peek(addr, Size::B),
            mc.mem.peek(addr, Size::B)
        ));
    }
    None
}

/// Differentially check `candidate` against `reference`.
///
/// # Errors
///
/// Returns the first [`DiffMismatch`] observed across the configured
/// trials.
pub fn diff_check(
    reference: &[Instr],
    candidate: &[Instr],
    cfg: &DiffConfig,
) -> Result<(), DiffMismatch> {
    let mem_size = MachineConfig::sun3_emulation().mem_size;
    let mut addrs = interesting_addrs(reference, mem_size);
    addrs.extend(interesting_addrs(candidate, mem_size));
    addrs.sort_unstable();
    addrs.dedup();
    for trial in 0..cfg.trials {
        let trial_seed = cfg.seed ^ u64::from(trial).wrapping_mul(0xA076_1D64_78BD_642F);
        let (mr, tr) = run_one(reference, &addrs, cfg, trial_seed, trial);
        let (mc, tc) = run_one(candidate, &addrs, cfg, trial_seed, trial);
        if let Some(detail) = compare(&mr, &tr, &mc, &tc) {
            return Err(DiffMismatch {
                trial,
                seed: trial_seed,
                detail,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::isa::{BranchTarget, Cond, Operand::*, ShiftKind, Size::L};

    #[test]
    fn identical_sequences_pass() {
        let seq = vec![
            Instr::Move(L, Imm(5), Dr(0)),
            Instr::Add(L, Dr(1), Dr(0)),
            Instr::Rts,
        ];
        diff_check(&seq, &seq, &DiffConfig::default()).unwrap();
    }

    #[test]
    fn masked_strength_reduction_is_equivalent() {
        // mulu.w #8,d0 == and.l #0xFFFF,d0 ; lsl.l #3,d0 (the 16-bit
        // operand mask makes the shifted-out carry always zero).
        let mul = vec![Instr::MulU(Imm(8), 0)];
        let shift = vec![
            Instr::And(L, Imm(0xFFFF), Dr(0)),
            Instr::Shift(ShiftKind::Lsl, L, Imm(3), Dr(0)),
        ];
        diff_check(&mul, &shift, &DiffConfig::default()).unwrap();
    }

    #[test]
    fn unmasked_shift_is_caught() {
        // lsl.l #3,d0 alone is NOT mulu #8: the high word leaks.
        let mul = vec![Instr::MulU(Imm(8), 0)];
        let shift = vec![Instr::Shift(ShiftKind::Lsl, L, Imm(3), Dr(0))];
        assert!(diff_check(&mul, &shift, &DiffConfig::default()).is_err());
    }

    #[test]
    fn dropped_store_is_caught() {
        let reference = vec![
            Instr::Move(L, Dr(0), Abs(0x2000)),
            Instr::Move(L, Imm(1), Dr(1)),
        ];
        let candidate = vec![Instr::Move(L, Imm(1), Dr(1))];
        let err = diff_check(&reference, &candidate, &DiffConfig::default()).unwrap_err();
        assert!(err.detail.contains("memory differs"), "{err}");
    }

    #[test]
    fn flag_divergence_is_caught() {
        // tst sets N/Z from d0; dropping it leaves the random initial
        // CCR in place, which some trial is bound to expose.
        let reference = vec![Instr::Tst(L, Dr(0))];
        let candidate = vec![Instr::Nop];
        assert!(diff_check(&reference, &candidate, &DiffConfig::default()).is_err());
    }

    #[test]
    fn kcall_selector_is_part_of_the_contract() {
        let reference = vec![Instr::KCall(0x21)];
        let candidate = vec![Instr::KCall(0x22)];
        let err = diff_check(&reference, &candidate, &DiffConfig::default()).unwrap_err();
        assert!(err.detail.contains("exit differs"), "{err}");
    }

    #[test]
    fn branches_and_presets_exercise_both_paths() {
        // A guard on d1 == 42: the taken and fallthrough paths set
        // different registers. Presets steer odd trials down the match
        // path; a candidate that breaks only that path must fail.
        let guarded = |matched: u32| {
            vec![
                Instr::Cmp(L, Imm(42), Dr(1)),
                Instr::Bcc(Cond::Ne, BranchTarget::Idx(3)),
                Instr::Move(L, Imm(matched), Dr(0)),
                Instr::Rts,
            ]
        };
        let cfg = DiffConfig {
            preset_sets: vec![vec![(true, 1, 42)]],
            ..DiffConfig::default()
        };
        diff_check(&guarded(7), &guarded(7), &cfg).unwrap();
        assert!(diff_check(&guarded(7), &guarded(8), &cfg).is_err());
    }

    #[test]
    fn mismatch_is_replayable() {
        let reference = vec![Instr::Move(L, Imm(1), Dr(0))];
        let candidate = vec![Instr::Move(L, Imm(2), Dr(0))];
        let e1 = diff_check(&reference, &candidate, &DiffConfig::default()).unwrap_err();
        let e2 = diff_check(&reference, &candidate, &DiffConfig::default()).unwrap_err();
        assert_eq!(e1, e2, "same seed, same mismatch");
    }
}
