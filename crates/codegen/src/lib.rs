//! # synthesis-codegen — kernel code synthesis
//!
//! The run-time code generator at the heart of the Synthesis kernel
//! (Massalin & Pu, SOSP 1989). "Frequently executed Synthesis kernel calls
//! are 'compiled' and optimized at run-time using ideas similar to currying
//! and constant folding" (Section 1). Three methods are implemented
//! (Section 2.2):
//!
//! - **Factoring Invariants** ([`factor`]) — substitute run-time constants
//!   into a code template's *holes*, then propagate constants, resolve
//!   branches, and delete unreachable code — like constant folding applied
//!   at kernel-call creation time;
//! - **Collapsing Layers** ([`collapse`]) — inline one template's call to
//!   another, eliminating the procedure-call boundary between layered
//!   modules (the same call site can instead be *linked* to run layered,
//!   which is the baseline the optimization is measured against);
//! - **Executable Data Structures** ([`execds`]) — data structures that
//!   carry their own traversal code, patched in place as the structure
//!   changes (the ready queue's context-switch chain, Figure 3).
//!
//! Synthesized code is finished by a specialized [`peephole`] optimizer and
//! installed by the [`creator`] (quaject creator: allocate → factorize →
//! optimize) and wired to its neighbours by the [`interfacer`] (quaject
//! interfacer: combine → factorize → optimize → dynamic link), per the
//! paper's Section 2.3.
//!
//! # Example: factoring invariants
//!
//! ```
//! use quamachine::asm::Asm;
//! use quamachine::isa::{Operand::*, Size::L, Cond};
//! use synthesis_codegen::template::{Bindings, Template};
//! use synthesis_codegen::factor;
//!
//! // A generic "read" with a run-time-constant buffer address and a
//! // debug flag that is almost always zero.
//! let mut a = Asm::new("read");
//! let flag = a.imm_hole("debug");
//! let buf = a.abs_hole("buffer");
//! let skip = a.label();
//! a.move_(L, flag, Dr(1));
//! a.tst(L, Dr(1));
//! a.bcc(Cond::Eq, skip);
//! a.move_i(L, 0xDEB, Dr(7)); // debug path
//! a.bind(skip);
//! a.move_(L, buf, Dr(0));
//! a.rts();
//! let t = Template::from_asm(a).unwrap();
//!
//! // Bind debug=0: the test and the debug path fold away entirely.
//! let mut b = Bindings::new();
//! b.bind("debug", 0);
//! b.bind("buffer", 0x2000);
//! let out = factor::factor(&t, &b).unwrap();
//! assert!(out.instrs.len() < t.instrs.len());
//! ```

pub mod codebuf;
pub mod collapse;
pub mod cost;
pub mod creator;
pub mod equiv;
pub mod execds;
pub mod factor;
pub mod interfacer;
pub mod peephole;
pub mod rewrite;
pub mod speccache;
pub mod superopt;
pub mod template;
pub mod verify;

pub use creator::{QuajectCreator, SynthesisOptions, Synthesized};
pub use speccache::{SpecCache, SpecKey};
pub use template::{Bindings, Template, TemplateLib};
