//! The cost-guided superoptimizer.
//!
//! Synthesis templates are hand-written for clarity, not for the last
//! cycle. This module closes the gap the way the paper's author closed
//! it by hand: propose candidate instruction sequences, keep only the
//! ones *proven* equivalent, and among those keep the cheapest under
//! the explicit cycle-cost model ([`crate::cost`]).
//!
//! The search is a seeded stochastic hill-climb over the maximal
//! straight-line windows of a block (the shape of stochastic
//! superoptimization à la STOKE, scoped to what our differential
//! checker can certify):
//!
//! - **windows** — runs of side-effect-comparable instructions: no
//!   control flow, no kcalls/traps, no device registers, never entered
//!   mid-run (branch targets and entry marks break windows);
//! - **mutations** — delete an instruction, swap adjacent independent
//!   instructions, or apply an algebraic identity (e.g. `mulu #2ᵏ` →
//!   mask + shift);
//! - **acceptance** — a mutation survives only if it scores strictly
//!   cheaper AND passes differential-execution equivalence against the
//!   window's *original* code ([`crate::equiv`]), so accepted chains
//!   can never drift from the reference semantics.
//!
//! Every run is replayable from its seed; the creator uses a fixed
//! default so identical inputs synthesize identical (cacheable) code.

use std::collections::HashMap;

use quamachine::cost::CostModel;
use quamachine::devices::DEV_BASE;
use quamachine::isa::{Instr, Operand, ShiftKind, Size};

use crate::cost;
use crate::equiv::{self, DiffConfig, Rng};
use crate::peephole;
use crate::rewrite;

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SuperoptConfig {
    /// Seed for the mutation stream (replayable).
    pub seed: u64,
    /// Mutation attempts per window.
    pub budget: u32,
    /// Smallest window worth searching.
    pub min_window: usize,
    /// Differential trials per candidate that passes the cost gate.
    pub trials: u32,
}

impl Default for SuperoptConfig {
    fn default() -> Self {
        SuperoptConfig {
            seed: 0x5EED_50FA_57E5_7EA1,
            budget: 48,
            min_window: 1,
            trials: 4,
        }
    }
}

/// What a search run did (exposed through creator stats and the
/// EXPERIMENTS.md reproduction line).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SuperoptStats {
    /// Straight-line windows searched.
    pub windows: u32,
    /// Mutations proposed.
    pub proposed: u32,
    /// Candidates that passed the cost gate and were equivalence-checked.
    pub checked: u32,
    /// Candidates accepted (equivalent and cheaper).
    pub accepted: u32,
    /// Static cycles shaved off the common path.
    pub cycles_saved: u64,
}

/// Instructions the differential checker can fully observe: data and
/// memory effects only, no control transfer, no host calls.
fn searchable(i: &Instr) -> bool {
    use Instr::*;
    let shape_ok = matches!(
        i,
        Move(..)
            | Lea(..)
            | Add(..)
            | Sub(..)
            | Cmp(..)
            | Tst(..)
            | And(..)
            | Or(..)
            | Eor(..)
            | Not(..)
            | Neg(..)
            | MulU(..)
            | DivU(..)
            | Shift(..)
            | Swap(..)
            | Ext(..)
            | Scc(..)
            | Nop
    );
    shape_ok
        && !i.has_hole()
        && i.operands().iter().all(|op| match op {
            // Device registers are volatile: reads have side effects
            // and dropped writes are invisible to a memory compare.
            Operand::Abs(a) => *a < DEV_BASE,
            _ => true,
        })
}

/// A store-SR observes the X flag, which the checker does not compare;
/// windows feeding one are skipped entirely.
fn observes_x(i: Option<&Instr>) -> bool {
    matches!(i, Some(Instr::MoveSr { to_sr: false, .. }))
}

/// Whether `i` writes all of N/Z/V/C as a pure function of the machine
/// state *after* it executes — its exit flags are recoverable from the
/// final compared state. For a window whose flags are live-out, "the
/// candidate ends with the identical instruction, and it is
/// flags-recoverable" upgrades the statistical CCR trials to a proof:
/// equal final states imply equal exit flags, so a lucky trial run can
/// never smuggle in a flag-changing mutation (the way a deleted `cmp`
/// before a `bcc` once survived four trials whose N bits happened to
/// collide).
///
/// Excluded on purpose: shifts (`C` is the last bit shifted out, lost
/// from the result), `divu` (overflow leaves the operands untouched),
/// and `add`/`sub` whose source aliases their destination (`add d0,d0`
/// loses the pre-state carry bit).
fn flags_recoverable(i: &Instr) -> bool {
    use Instr::*;
    match i {
        Move(_, _, dst) => !matches!(dst, Operand::Ar(_)),
        Add(_, src, dst) | Sub(_, src, dst) => !matches!(dst, Operand::Ar(_)) && src != dst,
        Cmp(..) | Tst(..) | And(..) | Or(..) | Eor(..) | Not(..) | Neg(..) | Swap(..) | Ext(..)
        | MulU(..) => true,
        _ => false,
    }
}

/// Maximal searchable windows `[start, end)` of `instrs`, honoring
/// branch targets and entry marks as hard boundaries.
fn windows(instrs: &[Instr], marks: &HashMap<String, usize>, min: usize) -> Vec<(usize, usize)> {
    let mut boundary = rewrite::branch_target_flags(instrs);
    for &idx in marks.values() {
        if let Some(b) = boundary.get_mut(idx) {
            *b = true;
        }
    }
    let mut out = Vec::new();
    let mut s = 0;
    while s < instrs.len() {
        if !searchable(&instrs[s]) {
            s += 1;
            continue;
        }
        let mut e = s + 1;
        while e < instrs.len() && searchable(&instrs[e]) && !boundary[e] {
            e += 1;
        }
        if e - s >= min && !observes_x(instrs.get(e)) {
            out.push((s, e));
        }
        s = e;
    }
    out
}

/// Propose one mutated copy of `seq`, or `None` if the chosen mutation
/// does not apply.
fn mutate(seq: &[Instr], rng: &mut Rng) -> Option<Vec<Instr>> {
    if seq.is_empty() {
        return None;
    }
    let mut out = seq.to_vec();
    match rng.next_u32() % 3 {
        // Delete one instruction.
        0 => {
            let i = rng.next_u32() as usize % out.len();
            out.remove(i);
        }
        // Swap two adjacent instructions.
        1 => {
            if out.len() < 2 {
                return None;
            }
            let i = rng.next_u32() as usize % (out.len() - 1);
            out.swap(i, i + 1);
        }
        // Algebraic identity: mulu.w #2^k,dN → and.l #0xFFFF,dN ;
        // lsl.l #k,dN (the 16-bit operand mask keeps the shifted-out
        // carry at zero, so N/Z/V/C all match).
        _ => {
            let i = out.iter().position(
                |x| matches!(x, Instr::MulU(Operand::Imm(v), _) if v.is_power_of_two() && *v <= 0x8000),
            )?;
            let Instr::MulU(Operand::Imm(v), d) = out[i] else {
                return None;
            };
            let k = v.trailing_zeros();
            out.splice(
                i..=i,
                [
                    Instr::And(Size::L, Operand::Imm(0xFFFF), Operand::Dr(d)),
                    Instr::Shift(ShiftKind::Lsl, Size::L, Operand::Imm(k), Operand::Dr(d)),
                ],
            );
        }
    }
    Some(out)
}

/// Superoptimize one window: seeded hill-climb, equivalence-gated.
///
/// `flags_live` means the window's exit flags feed a later reader (a
/// branch, typically). Candidates must then keep the reference's final
/// instruction verbatim, and it must be [`flags_recoverable`] — a
/// deterministic guarantee the trials alone cannot give.
fn search_window(
    original: &[Instr],
    flags_live: bool,
    model: &CostModel,
    cfg: &SuperoptConfig,
    rng: &mut Rng,
    stats: &mut SuperoptStats,
) -> Option<Vec<Instr>> {
    if flags_live && !original.last().is_some_and(flags_recoverable) {
        // Exit flags come from deeper inside the window (or from a
        // non-recoverable writer): nothing here can be certified.
        return None;
    }
    let diff = DiffConfig {
        trials: cfg.trials,
        seed: cfg.seed,
        ..DiffConfig::default()
    };
    let mut cur = original.to_vec();
    let mut cur_cost = cost::score(&cur, model);
    for _ in 0..cfg.budget {
        let Some(cand) = mutate(&cur, rng) else {
            continue;
        };
        if flags_live && cand.last() != original.last() {
            continue;
        }
        stats.proposed += 1;
        let cand_cost = cost::score(&cand, model);
        if cand_cost >= cur_cost && cand != cur {
            // Cost gate: allow equal-cost swaps through occasionally to
            // escape local minima, but never regressions.
            if cand_cost > cur_cost || !rng.next_u32().is_multiple_of(4) {
                continue;
            }
        }
        stats.checked += 1;
        if equiv::diff_check(original, &cand, &diff).is_ok() {
            if cand_cost < cur_cost {
                stats.accepted += 1;
            }
            cur = cand;
            cur_cost = cand_cost;
        }
    }
    let orig_cost = cost::score(original, model);
    if cur_cost < orig_cost {
        stats.cycles_saved += orig_cost - cur_cost;
        Some(cur)
    } else {
        None
    }
}

/// Superoptimize a whole block: search every straight-line window,
/// splice in the winners, return the stats.
#[must_use]
pub fn optimize(
    mut instrs: Vec<Instr>,
    marks: &mut HashMap<String, usize>,
    model: &CostModel,
    cfg: &SuperoptConfig,
) -> (Vec<Instr>, SuperoptStats) {
    let mut stats = SuperoptStats::default();
    let mut rng = Rng(cfg.seed);
    // Back to front so accepted splices do not shift pending windows.
    let ws = windows(&instrs, marks, cfg.min_window);
    stats.windows = ws.len() as u32;
    // Liveness is computed against the pre-splice stream (splices run
    // back to front, so indices past a spliced window would be stale).
    let targets = rewrite::branch_target_flags(&instrs);
    let ws: Vec<(usize, usize, bool)> = ws
        .into_iter()
        .map(|(s, e)| (s, e, !peephole::flags_dead_after(&instrs, e - 1, &targets)))
        .collect();
    for &(s, e, flags_live) in ws.iter().rev() {
        if let Some(better) =
            search_window(&instrs[s..e], flags_live, model, cfg, &mut rng, &mut stats)
        {
            rewrite::splice(&mut instrs, marks, s, e, better);
        }
    }
    (instrs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::isa::{BranchTarget, Cond, Operand::*, Size::L};

    fn model() -> CostModel {
        CostModel::sun3_emulation()
    }

    #[test]
    fn finds_strength_reduction() {
        // The seeded search discovers mulu #8 → mask+shift (27 → 6
        // cycles) and proves it equivalent before accepting.
        let instrs = vec![
            Instr::MulU(Imm(8), 0),
            Instr::Move(L, Dr(0), Abs(0x2000)),
            Instr::Rts,
        ];
        let mut marks = HashMap::new();
        let cfg = SuperoptConfig::default();
        let (out, stats) = optimize(instrs.clone(), &mut marks, &model(), &cfg);
        assert!(stats.accepted >= 1, "search accepted nothing: {stats:?}");
        assert!(
            cost::score(&out[..out.len() - 1], &model())
                < cost::score(&instrs[..instrs.len() - 1], &model()),
            "result must be cheaper"
        );
        assert!(
            !out.iter().any(|i| matches!(i, Instr::MulU(..))),
            "mulu should be reduced: {out:?}"
        );
    }

    #[test]
    fn search_is_replayable() {
        let instrs = vec![
            Instr::MulU(Imm(16), 2),
            Instr::Add(L, Dr(2), Dr(3)),
            Instr::Rts,
        ];
        let cfg = SuperoptConfig::default();
        let mut marks1 = HashMap::new();
        let mut marks2 = HashMap::new();
        let (a, sa) = optimize(instrs.clone(), &mut marks1, &model(), &cfg);
        let (b, sb) = optimize(instrs, &mut marks2, &model(), &cfg);
        assert_eq!(a, b, "same seed, same code");
        assert_eq!(sa, sb);
    }

    #[test]
    fn live_out_flags_pin_the_final_compare() {
        // Regression for a soundness hole found in the fused pipe-write
        // general body: in the window `[move #8192,d0; sub d2,d0;
        // cmp d0,d1]` feeding `bhi`, a candidate that *deleted* the cmp
        // once survived every fixed-seed CCR trial — its exit flags
        // were deterministic while the reference's N bit was a coin
        // flip per trial, so the statistical check had a 1-in-16 escape
        // that fired. The deterministic guard closes it: with flags
        // live into the branch, every candidate must end with the
        // reference's own flags-recoverable final instruction, so the
        // cmp can never be deleted no matter what the trials roll.
        let instrs = vec![
            Instr::Move(L, Imm(8192), Dr(0)),
            Instr::Sub(L, Dr(2), Dr(0)),
            Instr::Cmp(L, Dr(0), Dr(1)),
            Instr::Bcc(Cond::Hi, BranchTarget::Idx(5)),
            Instr::Move(L, Dr(1), Abs(0x2000)),
            Instr::Rts,
        ];
        let mut marks = HashMap::new();
        let cfg = SuperoptConfig {
            budget: 512, // plenty of chances to propose the bad deletion
            ..SuperoptConfig::default()
        };
        let (out, _) = optimize(instrs, &mut marks, &model(), &cfg);
        let bcc_at = out
            .iter()
            .position(|i| matches!(i, Instr::Bcc(Cond::Hi, _)))
            .expect("branch survives");
        assert!(
            matches!(out[bcc_at - 1], Instr::Cmp(L, Dr(0), Dr(1))),
            "the branch must still be fed by the compare: {out:?}"
        );
    }

    #[test]
    fn live_flags_block_deletion() {
        // tst feeds the bcc: deleting it would change the branch, and
        // the checker sees the flag divergence. The window also ends at
        // the branch, so final CCR is compared.
        let instrs = vec![
            Instr::Move(L, Imm(3), Dr(0)),
            Instr::Tst(L, Dr(1)),
            Instr::Bcc(Cond::Eq, BranchTarget::Idx(3)),
            Instr::Rts,
        ];
        let mut marks = HashMap::new();
        let (out, _) = optimize(
            instrs.clone(),
            &mut marks,
            &model(),
            &SuperoptConfig::default(),
        );
        assert!(
            out.iter().any(|i| matches!(i, Instr::Tst(..))),
            "live tst must survive: {out:?}"
        );
    }

    #[test]
    fn branch_targets_survive_splices() {
        // Shrinking a window before a branch target must retarget the
        // branch. mulu #1 → and #0xFFFF ... actually mulu #8 becomes 2
        // instrs (delta +1); the loop skeleton must still verify.
        let instrs = vec![
            Instr::MulU(Imm(8), 1),                     // 0: window (grows to 2)
            Instr::Tst(L, Dr(7)),                       // 1
            Instr::Bcc(Cond::Ne, BranchTarget::Idx(4)), // 2
            Instr::Move(L, Imm(1), Dr(0)),              // 3
            Instr::Rts,                                 // 4: branch target
        ];
        let mut marks = HashMap::new();
        marks.insert("out".into(), 4);
        let (out, _) = optimize(instrs, &mut marks, &model(), &SuperoptConfig::default());
        let rts_at = out.iter().position(|i| matches!(i, Instr::Rts)).unwrap();
        let target = out
            .iter()
            .find_map(|i| match i.branch_target() {
                Some(BranchTarget::Idx(t)) => Some(t as usize),
                _ => None,
            })
            .unwrap();
        assert_eq!(target, rts_at, "branch retargeted to the moved rts");
        assert_eq!(marks["out"], rts_at, "mark moved with the code");
    }

    #[test]
    fn windows_respect_device_registers_and_control() {
        let instrs = vec![
            Instr::Move(L, Dr(0), Abs(0xFF00_0100)), // device: excluded
            Instr::Move(L, Imm(1), Dr(0)),           // window
            Instr::Move(L, Imm(2), Dr(1)),           // window
            Instr::KCall(7),                         // excluded
            Instr::Rts,
        ];
        let marks = HashMap::new();
        let ws = windows(&instrs, &marks, 1);
        assert_eq!(ws, vec![(1, 3)]);
    }
}
