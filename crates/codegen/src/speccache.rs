//! The specialization cache: shared synthesized code blocks.
//!
//! The paper shares specialized code whenever the invariants match:
//! "Sharing occurs when the translation tables point to the same code"
//! (Section 3.1), and the Section 6.4 size accounting depends on it —
//! kernel size grows with the number of *distinct* specializations, not
//! the number of references. This module keys installed [`Synthesized`]
//! blocks on `(template name, bindings, SynthesisOptions)` and reference
//! counts them: a second `synthesize` with identical invariants returns
//! the already-installed block (charging only link cost), and `destroy`
//! frees the code-buffer extent only when the last reference drops.
//!
//! # Eviction under pressure
//!
//! With a zero [`byte budget`](SpecCache::set_budget) (the default) the
//! last `release` evicts immediately — byte-identical to the original
//! cache. A non-zero budget keeps *warm* entries (refcount zero) resident
//! up to that many bytes, so a re-open with the same invariants is a
//! cache hit instead of a full resynthesis. When the warm set overflows
//! the budget, the cache trims it with a cost-aware LRU: among the
//! oldest warm entries it evicts the one cheapest to resynthesize first
//! (`synth_cycles`), so expensive specializations survive pressure the
//! longest. Referenced entries are never trimmed — the budget governs
//! only refcount-zero residue.

use std::collections::{BTreeMap, HashMap};

use crate::creator::{SynthesisOptions, Synthesized};
use crate::template::Bindings;

/// The cache key: one distinct specialization.
///
/// The key is exact (the full sorted binding list, not a lossy hash), so
/// two different specializations can never collide into one cache entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SpecKey {
    /// Template name.
    pub template: String,
    /// The bindings, sorted by hole name — the specialization's
    /// invariants, i.e. its fingerprint.
    pub bindings: Vec<(String, u32)>,
    /// The synthesis switchboard in effect (different ablation settings
    /// produce different code from the same template and bindings).
    pub opts: SynthesisOptions,
}

impl SpecKey {
    /// Build the key for `template` specialized with `bindings` under
    /// `opts`.
    #[must_use]
    pub fn new(template: &str, bindings: &Bindings, opts: SynthesisOptions) -> SpecKey {
        SpecKey {
            template: template.to_string(),
            bindings: bindings.sorted_pairs(),
            opts,
        }
    }

    /// A stable 64-bit fingerprint of the key (FNV-1a over the fields) —
    /// for diagnostics and size reports; equality always uses the full
    /// key.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.template.as_bytes());
        eat(&[0]);
        for (name, val) in &self.bindings {
            eat(name.as_bytes());
            eat(&val.to_le_bytes());
        }
        eat(&[
            u8::from(self.opts.collapse),
            u8::from(self.opts.fold),
            u8::from(self.opts.peephole),
        ]);
        h
    }
}

/// One cached specialization.
#[derive(Debug)]
struct SpecEntry {
    code: Synthesized,
    refs: u32,
    /// The CPU whose request synthesized the block (the entry's home
    /// tier). On a uniprocessor this is always 0.
    first_cpu: usize,
    /// Bitmask of CPUs that have acquired the block. An entry referenced
    /// from one CPU only is local-tier; one referenced from several CPUs
    /// has been promoted to the shared read-mostly tier.
    cpus_seen: u32,
    /// LRU stamp of the release that made this entry warm; meaningful
    /// only while `refs == 0` (the entry is then indexed in the warm
    /// list under this stamp).
    stamp: u64,
}

/// What a [`SpecCache::release`] did.
#[derive(Debug)]
pub enum Release {
    /// The block was never cached (private code: context switches,
    /// dispatchers, interrupt handlers).
    NotCached,
    /// Other references remain; the block stays installed.
    Shared,
    /// The last reference dropped: the entry was evicted and the caller
    /// must unload and free the returned block.
    Evicted(Synthesized),
    /// The last reference dropped but the entry stays warm under the
    /// eviction budget; the caller must unload each *trimmed* block the
    /// retention pushed over the budget (possibly including the released
    /// one itself, when it alone exceeds the budget).
    Retained {
        /// Warm entries the budget trim evicted as a consequence.
        trimmed: Vec<Synthesized>,
    },
}

/// How many of the oldest warm entries the trim considers per eviction —
/// the "cost-aware" window: within it, the cheapest-to-resynthesize
/// block goes first.
const TRIM_WINDOW: usize = 8;

/// The reference-counted specialization cache.
#[derive(Debug, Default)]
pub struct SpecCache {
    entries: HashMap<SpecKey, SpecEntry>,
    /// Reverse index: installed base address → key (for `release`, which
    /// only has the `Synthesized` in hand).
    by_base: HashMap<u32, SpecKey>,
    /// Byte budget for warm (refcount-zero) entries; 0 = evict on last
    /// release.
    budget: u32,
    /// Bytes currently held by warm entries.
    warm_bytes: u64,
    /// LRU order over warm entries: release stamp → installed base.
    warm: BTreeMap<u64, u32>,
    /// Monotonic release stamp source.
    tick: u64,
}

impl SpecCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> SpecCache {
        SpecCache::default()
    }

    /// Look up `key`; on a hit, take a reference and return the shared
    /// block (uniprocessor form of [`acquire_on`](SpecCache::acquire_on)).
    pub fn acquire(&mut self, key: &SpecKey) -> Option<Synthesized> {
        self.acquire_on(key, 0).map(|(s, _)| s)
    }

    /// Look up `key` from CPU `cpu`; on a hit, take a reference and
    /// return the shared block plus whether the hit crossed CPUs (the
    /// requester is not the CPU that synthesized the block). A hit on a
    /// warm (refcount-zero) entry revives it out of the trim list.
    pub fn acquire_on(&mut self, key: &SpecKey, cpu: usize) -> Option<(Synthesized, bool)> {
        let e = self.entries.get_mut(key)?;
        if e.refs == 0 {
            self.warm.remove(&e.stamp);
            self.warm_bytes -= u64::from(e.code.size);
            e.stamp = 0;
        }
        e.refs += 1;
        e.cpus_seen |= 1u32 << (cpu % 32);
        Some((e.code.clone(), cpu != e.first_cpu))
    }

    /// Insert a freshly synthesized block with one reference
    /// (uniprocessor form of [`insert_on`](SpecCache::insert_on)).
    pub fn insert(&mut self, key: SpecKey, code: Synthesized) {
        self.insert_on(key, code, 0);
    }

    /// Insert a freshly synthesized block with one reference, homed on
    /// the CPU whose request synthesized it.
    pub fn insert_on(&mut self, key: SpecKey, code: Synthesized, cpu: usize) {
        self.by_base.insert(code.base, key.clone());
        self.entries.insert(
            key,
            SpecEntry {
                code,
                refs: 1,
                first_cpu: cpu,
                cpus_seen: 1u32 << (cpu % 32),
                stamp: 0,
            },
        );
    }

    /// Drop a reference to the block at `base`.
    pub fn release(&mut self, base: u32) -> Release {
        let Some(key) = self.by_base.get(&base) else {
            return Release::NotCached;
        };
        let e = self.entries.get_mut(key).expect("index consistent");
        e.refs -= 1;
        if e.refs > 0 {
            return Release::Shared;
        }
        if self.budget == 0 {
            let key = self.by_base.remove(&base).expect("present");
            let e = self.entries.remove(&key).expect("present");
            return Release::Evicted(e.code);
        }
        // Keep the entry warm under the budget; trim the oldest/cheapest
        // warm entries past it.
        self.tick += 1;
        let stamp = self.tick;
        e.stamp = stamp;
        let size = e.code.size;
        self.warm.insert(stamp, base);
        self.warm_bytes += u64::from(size);
        Release::Retained {
            trimmed: self.trim_to_budget(),
        }
    }

    /// Evict warm entries until `warm_bytes <= budget`, cost-aware LRU:
    /// among the [`TRIM_WINDOW`] oldest warm entries, the one cheapest to
    /// resynthesize goes first (ties fall to the oldest). Returns the
    /// evicted blocks for the caller to unload.
    fn trim_to_budget(&mut self) -> Vec<Synthesized> {
        let mut out = Vec::new();
        while self.warm_bytes > u64::from(self.budget) {
            let victim = self
                .warm
                .iter()
                .take(TRIM_WINDOW)
                .min_by_key(|(stamp, base)| {
                    let key = &self.by_base[base];
                    (self.entries[key].code.synth_cycles, **stamp)
                })
                .map(|(stamp, base)| (*stamp, *base));
            let Some((stamp, base)) = victim else {
                break;
            };
            self.warm.remove(&stamp);
            let key = self.by_base.remove(&base).expect("warm entry indexed");
            let e = self.entries.remove(&key).expect("warm entry present");
            self.warm_bytes -= u64::from(e.code.size);
            out.push(e.code);
        }
        out
    }

    /// Set the warm-entry byte budget. Shrinking it trims immediately;
    /// the caller must unload the returned blocks.
    pub fn set_budget(&mut self, bytes: u32) -> Vec<Synthesized> {
        self.budget = bytes;
        if bytes == 0 {
            self.flush()
        } else {
            self.trim_to_budget()
        }
    }

    /// The warm-entry byte budget.
    #[must_use]
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// Bytes currently held by warm (refcount-zero) entries.
    #[must_use]
    pub fn warm_bytes(&self) -> u64 {
        self.warm_bytes
    }

    /// Number of warm (refcount-zero) entries.
    #[must_use]
    pub fn warm_len(&self) -> usize {
        self.warm.len()
    }

    /// Evict every warm entry regardless of budget; the caller must
    /// unload the returned blocks. Referenced entries stay.
    pub fn flush(&mut self) -> Vec<Synthesized> {
        let mut out = Vec::new();
        let stamps: Vec<u64> = self.warm.keys().copied().collect();
        for stamp in stamps {
            let base = self.warm.remove(&stamp).expect("listed");
            let key = self.by_base.remove(&base).expect("warm entry indexed");
            let e = self.entries.remove(&key).expect("warm entry present");
            self.warm_bytes -= u64::from(e.code.size);
            out.push(e.code);
        }
        debug_assert_eq!(self.warm_bytes, 0);
        out
    }

    /// Reference count of the block at `base`, if cached.
    #[must_use]
    pub fn refs(&self, base: u32) -> Option<u32> {
        let key = self.by_base.get(&base)?;
        Some(self.entries[key].refs)
    }

    /// Number of distinct cached specializations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes of installed code the cache is sharing: Σ `(refs − 1) ×
    /// size`. This is exactly the code a cache-less kernel would have
    /// duplicated (the paper's Section 6.4 accounting).
    #[must_use]
    pub fn shared_bytes(&self) -> u64 {
        self.entries
            .values()
            .map(|e| u64::from(e.refs.saturating_sub(1)) * u64::from(e.code.size))
            .sum()
    }

    /// Bytes of installed code held by the cache (one copy per distinct
    /// specialization).
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        self.entries.values().map(|e| u64::from(e.code.size)).sum()
    }

    /// Bytes of resident code currently referenced more than once (one
    /// installed copy serving several references).
    #[must_use]
    pub fn multi_ref_bytes(&self) -> u64 {
        self.entries
            .values()
            .filter(|e| e.refs > 1)
            .map(|e| u64::from(e.code.size))
            .sum()
    }

    /// Bytes of resident code in the shared read-mostly tier: entries
    /// that have been acquired from more than one CPU. On a uniprocessor
    /// this is always 0 — every entry stays in CPU 0's local tier.
    #[must_use]
    pub fn shared_tier_bytes(&self) -> u64 {
        self.entries
            .values()
            .filter(|e| e.cpus_seen.count_ones() > 1)
            .map(|e| u64::from(e.code.size))
            .sum()
    }

    /// Bytes of resident code in `cpu`'s local tier: entries synthesized
    /// by that CPU and never acquired from any other.
    #[must_use]
    pub fn local_tier_bytes(&self, cpu: usize) -> u64 {
        self.entries
            .values()
            .filter(|e| e.first_cpu == cpu && e.cpus_seen.count_ones() <= 1)
            .map(|e| u64::from(e.code.size))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;

    fn synth(base: u32, size: u32) -> Synthesized {
        Synthesized {
            base,
            size,
            entries: Map::new(),
            instrs_in: 1,
            instrs_out: 1,
            synth_cycles: 0,
        }
    }

    fn key(template: &str, v: u32) -> SpecKey {
        SpecKey::new(
            template,
            &Bindings::new().with("x", v),
            SynthesisOptions::full(),
        )
    }

    #[test]
    fn acquire_release_lifecycle() {
        let mut c = SpecCache::new();
        assert!(c.acquire(&key("t", 1)).is_none());
        c.insert(key("t", 1), synth(0x100, 8));
        let hit = c.acquire(&key("t", 1)).expect("hit");
        assert_eq!(hit.base, 0x100);
        assert_eq!(c.refs(0x100), Some(2));
        assert_eq!(c.shared_bytes(), 8);
        assert!(matches!(c.release(0x100), Release::Shared));
        assert_eq!(c.shared_bytes(), 0);
        match c.release(0x100) {
            Release::Evicted(s) => assert_eq!((s.base, s.size), (0x100, 8)),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.is_empty());
        assert!(matches!(c.release(0x100), Release::NotCached));
    }

    #[test]
    fn cross_cpu_hits_promote_to_the_shared_tier() {
        let mut c = SpecCache::new();
        c.insert_on(key("t", 1), synth(0x100, 8), 0);
        c.insert_on(key("t", 2), synth(0x200, 16), 1);
        // All entries start in their home CPU's local tier.
        assert_eq!(c.shared_tier_bytes(), 0);
        assert_eq!(c.local_tier_bytes(0), 8);
        assert_eq!(c.local_tier_bytes(1), 16);
        // A same-CPU hit is not cross and changes no tier.
        let (_, cross) = c.acquire_on(&key("t", 1), 0).expect("hit");
        assert!(!cross);
        assert_eq!(c.shared_tier_bytes(), 0);
        // A hit from another CPU is cross and promotes the entry.
        let (_, cross) = c.acquire_on(&key("t", 1), 1).expect("hit");
        assert!(cross);
        assert_eq!(c.shared_tier_bytes(), 8);
        assert_eq!(c.local_tier_bytes(0), 0);
        assert_eq!(c.local_tier_bytes(1), 16);
    }

    #[test]
    fn distinct_bindings_are_distinct_entries() {
        let mut c = SpecCache::new();
        c.insert(key("t", 1), synth(0x100, 8));
        c.insert(key("t", 2), synth(0x200, 8));
        assert_eq!(c.len(), 2);
        assert!(c.acquire(&key("t", 3)).is_none());
        assert_ne!(key("t", 1).fingerprint(), key("t", 2).fingerprint());
    }

    #[test]
    fn key_is_binding_order_independent() {
        let a = SpecKey::new(
            "t",
            &Bindings::new().with("a", 1).with("b", 2),
            SynthesisOptions::full(),
        );
        let b = SpecKey::new(
            "t",
            &Bindings::new().with("b", 2).with("a", 1),
            SynthesisOptions::full(),
        );
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn options_are_part_of_the_key() {
        let full = SpecKey::new("t", &Bindings::new(), SynthesisOptions::full());
        let none = SpecKey::new("t", &Bindings::new(), SynthesisOptions::none());
        assert_ne!(full, none);
    }
}
