//! Collapsing Layers: inline calls between layered templates.
//!
//! "The Collapsing Layers method eliminates unnecessary procedure calls and
//! context switches, both vertically for layered modules and horizontally
//! for pipelined threads" (paper Section 2.2). A template calls another via
//! the `jsr (<hole "call:NAME">)` convention (see
//! [`Template::call_hole_name`]); this pass splices the callee's body into
//! the caller, deleting the `jsr`/`rts` pair.
//!
//! The *same* call site can instead be left layered: Factoring Invariants
//! then binds the `call:` hole to the callee's installed address and the
//! composition runs through a real procedure call. That gives the ablation
//! benchmark its two arms.

use std::collections::HashMap;

use quamachine::isa::{BranchTarget, Cond, Instr, Operand};

use crate::template::{Template, TemplateLib};

/// Collapsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollapseError {
    /// A `call:` hole names a template that is not in the library.
    UnknownCallee(String),
    /// Inlining recursion exceeded the depth limit (cyclic templates).
    TooDeep(String),
}

impl std::fmt::Display for CollapseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollapseError::UnknownCallee(n) => write!(f, "unknown callee template {n:?}"),
            CollapseError::TooDeep(n) => write!(f, "template call cycle through {n:?}"),
        }
    }
}

impl std::error::Error for CollapseError {}

/// Inline one call site: replace instruction `site` (a `jsr`) in `caller`
/// with the body of `callee`.
///
/// The callee's trailing `rts` is dropped; interior `rts` instructions
/// become branches past the spliced body. Callee holes are renamed
/// `"<callee>.<hole>"` to keep them distinct in the merged hole table, and
/// callee marks are dropped (entry points of an inlined body are
/// meaningless).
fn inline_site(caller: &Template, site: usize, callee: &Template) -> Template {
    let mut out_instrs: Vec<Instr> = Vec::with_capacity(caller.instrs.len() + callee.instrs.len());
    let mut holes = caller.holes.clone();

    // Map callee hole ids to merged ids.
    let mut callee_hole_map: Vec<u16> = Vec::with_capacity(callee.holes.len());
    for h in &callee.holes {
        let merged = format!("{}.{}", callee.name, h);
        let id = holes.iter().position(|x| *x == merged).unwrap_or_else(|| {
            holes.push(merged);
            holes.len() - 1
        });
        callee_hole_map.push(id as u16);
    }

    let remap_callee_op = |op: Operand| -> Operand {
        match op {
            Operand::ImmHole(h) => Operand::ImmHole(callee_hole_map[h as usize]),
            Operand::AbsHole(h) => Operand::AbsHole(callee_hole_map[h as usize]),
            other => other,
        }
    };

    // Caller prefix (indices unchanged).
    out_instrs.extend_from_slice(&caller.instrs[..site]);

    // Spliced callee body starts at `site`; callee index j maps to
    // site + j. Its "return point" is site + callee.len() (start of the
    // caller suffix), except that a trailing rts is simply dropped.
    let splice_base = site as u32;
    let after_splice = site as u32 + callee.instrs.len() as u32;
    for (j, ins) in callee.instrs.iter().enumerate() {
        let mut ins = *ins;
        // Remap intra-callee branches.
        if let Some(BranchTarget::Idx(t)) = ins.branch_target() {
            ins.set_branch_target(BranchTarget::Idx(splice_base + t));
        }
        // Remap holes.
        ins = remap_instr_ops(ins, &remap_callee_op);
        // Returns become exits from the spliced body.
        if matches!(ins, Instr::Rts) {
            if j + 1 == callee.instrs.len() {
                // Trailing rts: fall through into the caller suffix. Emit
                // a nop placeholder so indices stay aligned (the peephole
                // and factoring passes delete it).
                ins = Instr::Nop;
            } else {
                ins = Instr::Bcc(Cond::T, BranchTarget::Idx(after_splice));
            }
        }
        out_instrs.push(ins);
    }

    // Caller suffix: indices shift by callee.len() - 1 (the jsr itself is
    // replaced by the body).
    let shift = callee.instrs.len() as i64 - 1;
    for ins in &caller.instrs[site + 1..] {
        let mut ins = *ins;
        if let Some(BranchTarget::Idx(t)) = ins.branch_target() {
            let nt = if t as usize > site {
                (i64::from(t) + shift) as u32
            } else {
                t
            };
            ins.set_branch_target(BranchTarget::Idx(nt));
        }
        out_instrs.push(ins);
    }

    // Caller prefix branches that jumped past the site also shift.
    for ins in out_instrs.iter_mut().take(site) {
        if let Some(BranchTarget::Idx(t)) = ins.branch_target() {
            if t as usize > site {
                ins.set_branch_target(BranchTarget::Idx((i64::from(t) + shift) as u32));
            }
        }
    }

    // Caller marks shift if they pointed past the site.
    let marks: HashMap<String, usize> = caller
        .marks
        .iter()
        .map(|(k, &v)| {
            let nv = if v > site {
                (v as i64 + shift) as usize
            } else {
                v
            };
            (k.clone(), nv)
        })
        .collect();

    Template {
        name: caller.name.clone(),
        instrs: out_instrs,
        holes,
        marks,
    }
}

fn remap_instr_ops(ins: Instr, f: &dyn Fn(Operand) -> Operand) -> Instr {
    use Instr::*;
    match ins {
        Move(s, a, b) => Move(s, f(a), f(b)),
        Movem { to_mem, regs, ea } => Movem {
            to_mem,
            regs,
            ea: f(ea),
        },
        Lea(ea, n) => Lea(f(ea), n),
        Pea(ea) => Pea(f(ea)),
        Add(s, a, b) => Add(s, f(a), f(b)),
        Sub(s, a, b) => Sub(s, f(a), f(b)),
        Cmp(s, a, b) => Cmp(s, f(a), f(b)),
        Tst(s, ea) => Tst(s, f(ea)),
        And(s, a, b) => And(s, f(a), f(b)),
        Or(s, a, b) => Or(s, f(a), f(b)),
        Eor(s, a, b) => Eor(s, f(a), f(b)),
        Not(s, ea) => Not(s, f(ea)),
        Neg(s, ea) => Neg(s, f(ea)),
        MulU(ea, n) => MulU(f(ea), n),
        DivU(ea, n) => DivU(f(ea), n),
        Shift(k, s, c, d) => Shift(k, s, f(c), f(d)),
        Scc(c, ea) => Scc(c, f(ea)),
        Jmp(ea) => Jmp(f(ea)),
        Jsr(ea) => Jsr(f(ea)),
        Cas { size, dc, du, ea } => Cas {
            size,
            dc,
            du,
            ea: f(ea),
        },
        Tas(ea) => Tas(f(ea)),
        MoveSr { to_sr, ea } => MoveSr { to_sr, ea: f(ea) },
        MoveVbr { to_vbr, ea } => MoveVbr { to_vbr, ea: f(ea) },
        FMove { to_mem, fp, ea } => FMove {
            to_mem,
            fp,
            ea: f(ea),
        },
        FMovem { to_mem, regs, ea } => FMovem {
            to_mem,
            regs,
            ea: f(ea),
        },
        other => other,
    }
}

/// Collapse every `call:` site in `t`, recursively, against `lib`.
///
/// # Errors
///
/// Fails on unknown callees or call cycles.
pub fn collapse(t: &Template, lib: &TemplateLib) -> Result<Template, CollapseError> {
    collapse_depth(t, lib, 0)
}

fn collapse_depth(
    t: &Template,
    lib: &TemplateLib,
    depth: usize,
) -> Result<Template, CollapseError> {
    if depth > 16 {
        return Err(CollapseError::TooDeep(t.name.clone()));
    }
    let mut cur = t.clone();
    loop {
        let sites = cur.call_sites();
        let Some((site, callee_name)) = sites.first().cloned() else {
            return Ok(cur);
        };
        let callee = lib
            .get(&callee_name)
            .ok_or(CollapseError::UnknownCallee(callee_name))?;
        // Collapse the callee's own calls first (vertical layering).
        let callee = collapse_depth(callee, lib, depth + 1)?;
        cur = inline_site(&cur, site, &callee);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::asm::Asm;
    use quamachine::isa::{Operand::*, Size::L};

    fn leaf() -> Template {
        let mut a = Asm::new("leaf");
        a.add(L, Imm(7), Dr(0));
        a.rts();
        Template::from_asm(a).unwrap()
    }

    #[test]
    fn single_call_inlines() {
        let mut lib = TemplateLib::new();
        lib.add(leaf());
        let mut a = Asm::new("outer");
        a.move_i(L, 1, Dr(0));
        let c = a.abs_hole(Template::call_hole_name("leaf"));
        a.jsr(c);
        a.move_(L, Dr(0), Dr(1));
        a.rts();
        let t = Template::from_asm(a).unwrap();
        let out = collapse(&t, &lib).unwrap();
        assert!(out.call_sites().is_empty());
        assert!(out.instrs.contains(&Instr::Add(L, Imm(7), Dr(0))));
        assert!(!out.instrs.iter().any(|i| matches!(i, Instr::Jsr(_))));
    }

    #[test]
    fn nested_layers_collapse_vertically() {
        // outer -> mid -> leaf: both boundaries disappear.
        let mut lib = TemplateLib::new();
        lib.add(leaf());
        let mut m = Asm::new("mid");
        let c = m.abs_hole(Template::call_hole_name("leaf"));
        m.jsr(c);
        m.add(L, Imm(100), Dr(0));
        m.rts();
        lib.add(Template::from_asm(m).unwrap());

        let mut o = Asm::new("outer");
        let c = o.abs_hole(Template::call_hole_name("mid"));
        o.jsr(c);
        o.rts();
        let t = Template::from_asm(o).unwrap();
        let out = collapse(&t, &lib).unwrap();
        assert!(out.call_sites().is_empty());
        assert!(out.instrs.contains(&Instr::Add(L, Imm(7), Dr(0))));
        assert!(out.instrs.contains(&Instr::Add(L, Imm(100), Dr(0))));
        assert!(!out.instrs.iter().any(|i| matches!(i, Instr::Jsr(_))));
    }

    #[test]
    fn caller_branches_around_site_are_shifted() {
        let mut lib = TemplateLib::new();
        lib.add(leaf());
        let mut a = Asm::new("outer");
        let end = a.label();
        a.tst(L, Dr(2));
        a.bcc(quamachine::isa::Cond::Eq, end); // jumps past the call
        let c = a.abs_hole(Template::call_hole_name("leaf"));
        a.jsr(c);
        a.bind(end);
        a.move_i(L, 5, Dr(1));
        a.rts();
        let t = Template::from_asm(a).unwrap();
        let out = collapse(&t, &lib).unwrap();
        // Find the branch and check it targets the move #5.
        let Some(Instr::Bcc(_, BranchTarget::Idx(t_idx))) = out
            .instrs
            .iter()
            .find(|i| matches!(i, Instr::Bcc(quamachine::isa::Cond::Eq, _)))
        else {
            panic!("branch missing");
        };
        assert_eq!(out.instrs[*t_idx as usize], Instr::Move(L, Imm(5), Dr(1)));
    }

    #[test]
    fn callee_holes_are_namespaced() {
        let mut lib = TemplateLib::new();
        let mut l = Asm::new("leaf");
        let h = l.imm_hole("k");
        l.move_(L, h, Dr(0));
        l.rts();
        lib.add(Template::from_asm(l).unwrap());

        let mut a = Asm::new("outer");
        let c = a.abs_hole(Template::call_hole_name("leaf"));
        a.jsr(c);
        a.rts();
        let t = Template::from_asm(a).unwrap();
        let out = collapse(&t, &lib).unwrap();
        assert!(out.holes.iter().any(|h| h == "leaf.k"));
        assert_eq!(out.unfilled_holes(), vec!["leaf.k"]);
    }

    #[test]
    fn cycle_detection() {
        let mut lib = TemplateLib::new();
        let mut a = Asm::new("a");
        let c = a.abs_hole(Template::call_hole_name("b"));
        a.jsr(c);
        a.rts();
        lib.add(Template::from_asm(a).unwrap());
        let mut b = Asm::new("b");
        let c = b.abs_hole(Template::call_hole_name("a"));
        b.jsr(c);
        b.rts();
        lib.add(Template::from_asm(b).unwrap());
        let t = lib.get("a").unwrap().clone();
        assert!(matches!(collapse(&t, &lib), Err(CollapseError::TooDeep(_))));
    }
}
