//! The quaject creator: allocate → factorize → optimize → install.
//!
//! "Quajects such as threads are created by the quaject creator, which
//! contains three stages: allocation, factorization, and optimization"
//! (paper Section 2.3). Synthesis itself costs CPU time; the creator
//! charges a modelled cycle cost to the machine, calibrated so that the
//! code-synthesis share of `open(/dev/null)` lands near the paper's 40% of
//! 49 µs (Section 6.3).

use std::collections::HashMap;

use quamachine::code::CodeBlock;
use quamachine::machine::Machine;

use crate::codebuf::{CodeBuf, CodeBufFull};
use crate::collapse::{self, CollapseError};
use crate::equiv::{self, DiffConfig, DiffMismatch};
use crate::factor::{self, FactorError};
use crate::peephole;
use crate::speccache::{Release, SpecCache, SpecKey};
use crate::superopt::{self, SuperoptConfig};
use crate::template::{Bindings, Template, TemplateLib};
use crate::verify::{self, VerifyReport};

/// Base cycles charged per synthesis (pipeline setup).
pub const SYNTH_BASE_CYCLES: u64 = 40;
/// Cycles charged per template instruction processed.
pub const SYNTH_CYCLES_PER_INSTR: u64 = 24;
/// Cycles charged for a specialization-cache hit: taking a reference and
/// handing out the already-installed block is one table lookup plus the
/// link bookkeeping — link cost, not synthesis cost.
pub const CACHE_HIT_CYCLES: u64 = 24;

/// Which synthesis stages run (the ablation switchboard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SynthesisOptions {
    /// Collapsing Layers: inline `call:` sites. When off, `call:` holes
    /// are bound to the callees' installed addresses instead (layered
    /// composition through real `jsr`s).
    pub collapse: bool,
    /// Factoring Invariants folding (constant propagation, branch
    /// resolution, dead-path pruning). Hole substitution always happens —
    /// code with holes cannot run.
    pub fold: bool,
    /// The peephole optimizer.
    pub peephole: bool,
    /// The cost-guided superoptimizer ([`crate::superopt`]): search the
    /// straight-line windows for cheaper equivalent sequences, then
    /// differentially check the whole block against its pre-peephole
    /// form before installing. Off by default — the fused fast paths
    /// (pipe/read/write collapsed across the trap boundary) turn it on.
    pub superopt: bool,
}

impl SynthesisOptions {
    /// Everything on — the Synthesis kernel's normal mode. The
    /// superoptimizer stays off: it is opted into per-path.
    #[must_use]
    pub fn full() -> SynthesisOptions {
        SynthesisOptions {
            collapse: true,
            fold: true,
            peephole: true,
            superopt: false,
        }
    }

    /// Everything off — the "traditional kernel" arm of ablations:
    /// layered calls, no specialization beyond parameter substitution.
    #[must_use]
    pub fn none() -> SynthesisOptions {
        SynthesisOptions {
            collapse: false,
            fold: false,
            peephole: false,
            superopt: false,
        }
    }
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions::full()
    }
}

/// Synthesis pipeline errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// Template not found in the library.
    UnknownTemplate(String),
    /// Collapsing failed.
    Collapse(CollapseError),
    /// Factoring failed (missing binding).
    Factor(FactorError),
    /// The result failed verification (named and disassembled).
    Verify(VerifyReport),
    /// The optimized block failed differential-execution equivalence
    /// against its pre-optimization form and was NOT installed.
    Equiv(DiffMismatch),
    /// No code space left.
    CodeBuf(CodeBufFull),
    /// Installing at the allocated address failed (overlap).
    Install(quamachine::error::MachineError),
}

impl std::fmt::Display for SynthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthError::UnknownTemplate(n) => write!(f, "unknown template {n:?}"),
            SynthError::Collapse(e) => write!(f, "collapse: {e}"),
            SynthError::Factor(e) => write!(f, "factor: {e}"),
            SynthError::Verify(e) => write!(f, "verify: {e}"),
            SynthError::Equiv(e) => write!(f, "equivalence: {e}"),
            SynthError::CodeBuf(e) => write!(f, "code buffer: {e}"),
            SynthError::Install(e) => write!(f, "install: {e}"),
        }
    }
}

impl std::error::Error for SynthError {}

/// A successfully synthesized, installed code object.
#[derive(Debug, Clone)]
pub struct Synthesized {
    /// Base (and first-entry) address.
    pub base: u32,
    /// Encoded size in bytes.
    pub size: u32,
    /// Entry-point addresses by mark name (the base is always entry
    /// `""`... the base address itself; named marks resolve within).
    pub entries: HashMap<String, u32>,
    /// Template instructions before optimization.
    pub instrs_in: usize,
    /// Instructions actually installed.
    pub instrs_out: usize,
    /// Modelled synthesis cost charged to the machine.
    pub synth_cycles: u64,
}

impl Synthesized {
    /// The address of entry `mark`, or the base if the mark is `""`.
    #[must_use]
    pub fn entry(&self, mark: &str) -> Option<u32> {
        if mark.is_empty() {
            Some(self.base)
        } else {
            self.entries.get(mark).copied()
        }
    }
}

/// Aggregate creator statistics (the Section 6.4 size accounting).
#[derive(Debug, Default, Clone, Copy)]
pub struct CreatorStats {
    /// Quajects synthesized.
    pub synthesized: u64,
    /// Quajects destroyed.
    pub destroyed: u64,
    /// Total synthesis cycles charged.
    pub cycles: u64,
    /// Total bytes of code installed.
    pub bytes_installed: u64,
    /// Total instructions eliminated by optimization.
    pub instrs_eliminated: u64,
    /// Specialization-cache hits (references handed out without
    /// synthesizing).
    pub cache_hits: u64,
    /// Specialization-cache misses (cacheable requests that synthesized
    /// fresh code).
    pub cache_misses: u64,
    /// Total bytes of synthesis avoided by cache hits (Σ size of every
    /// block handed out from the cache).
    pub bytes_shared: u64,
    /// Cache hits served to the CPU that synthesized the block
    /// (same-CPU, local-tier traffic). `cache_hits_local +
    /// cache_hits_cross == cache_hits`.
    pub cache_hits_local: u64,
    /// Cache hits served across CPUs: the requester was not the CPU
    /// whose request synthesized the block. Always 0 on a uniprocessor.
    pub cache_hits_cross: u64,
    /// The subset of `bytes_shared` handed out across CPUs.
    pub bytes_shared_cross: u64,
    /// Straight-line windows the superoptimizer searched.
    pub superopt_windows: u64,
    /// Candidates it accepted (cheaper AND proven equivalent).
    pub superopt_accepted: u64,
    /// Static cycles it shaved off installed code.
    pub superopt_cycles_saved: u64,
    /// Blocks that passed the pre-install differential check.
    pub equiv_checked: u64,
}

impl CreatorStats {
    /// Cache hit rate over cacheable requests, in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// One specialization-cache transition (feature `trace`): the creator
/// does not know which thread asked, so it logs the raw event and the
/// kernel drains [`QuajectCreator::cache_events`] right after each call,
/// attributing the events to the requesting thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// A cached block was handed out ([`QuajectCreator::synthesize_cached`]).
    Hit {
        /// Base address of the shared block.
        base: u32,
        /// Block size in bytes.
        bytes: u32,
        /// Whether the hit crossed CPUs (requester ≠ synthesizing CPU).
        cross: bool,
    },
    /// A cacheable request synthesized fresh code.
    Miss {
        /// Base address of the new block.
        base: u32,
        /// Block size in bytes.
        bytes: u32,
    },
    /// A cached reference was destroyed.
    Release {
        /// Base address of the referenced block.
        base: u32,
        /// Whether this was the last reference (the code was unloaded).
        evicted: bool,
    },
}

/// Upper bound on buffered cache events between drains (a safety cap for
/// embedders that never drain; the kernel drains after every call).
#[cfg(feature = "trace")]
const CACHE_EVENT_CAP: usize = 8192;

/// The quaject creator.
pub struct QuajectCreator {
    /// The template library.
    pub lib: TemplateLib,
    /// Code-space allocator.
    pub codebuf: CodeBuf,
    /// Installed entry points for layered (non-collapsed) linkage:
    /// template name → address.
    pub linked: HashMap<String, u32>,
    /// The specialization cache ([`synthesize_cached`]
    /// (QuajectCreator::synthesize_cached) entries).
    pub cache: SpecCache,
    /// Statistics.
    pub stats: CreatorStats,
    /// Undrained cache transitions (feature `trace`; always empty
    /// otherwise).
    pub cache_events: Vec<CacheEvent>,
    /// Register preset sets for the pre-install differential check of
    /// superoptimized blocks (rotated across odd trials; `(true, n, v)`
    /// sets `d[n]`, `(false, n, v)` sets `a[n]`). Transient steering
    /// state — NOT part of the cache key: callers set one set per
    /// guarded path of the block (a fused wrapper's fast path *and* its
    /// general body) before synthesizing, and clear it after.
    pub diff_presets: Vec<Vec<(bool, u8, u32)>>,
}

impl QuajectCreator {
    /// A creator managing code space `[base, base + len)`.
    #[must_use]
    pub fn new(base: u32, len: u32) -> QuajectCreator {
        QuajectCreator {
            lib: TemplateLib::new(),
            codebuf: CodeBuf::new(base, len),
            linked: HashMap::new(),
            cache: SpecCache::new(),
            stats: CreatorStats::default(),
            cache_events: Vec::new(),
            diff_presets: Vec::new(),
        }
    }

    /// Log a cache transition (feature `trace`; compiled out otherwise).
    #[allow(unused_variables)]
    fn cache_event(&mut self, ev: CacheEvent) {
        #[cfg(feature = "trace")]
        {
            if self.cache_events.len() < CACHE_EVENT_CAP {
                self.cache_events.push(ev);
            }
        }
    }

    /// Register a routine address for layered linkage of `call:` holes.
    pub fn link(&mut self, name: impl Into<String>, addr: u32) {
        self.linked.insert(name.into(), addr);
    }

    /// Run the synthesis pipeline on `template_name` with `bindings` and
    /// install the result.
    ///
    /// # Errors
    ///
    /// See [`SynthError`].
    pub fn synthesize(
        &mut self,
        m: &mut Machine,
        template_name: &str,
        bindings: &Bindings,
        opts: SynthesisOptions,
    ) -> Result<Synthesized, SynthError> {
        let t = self
            .lib
            .get(template_name)
            .ok_or_else(|| SynthError::UnknownTemplate(template_name.to_string()))?
            .clone();
        self.synthesize_template(m, &t, bindings, opts)
    }

    /// Synthesize a template object directly (not via the library).
    ///
    /// # Errors
    ///
    /// See [`SynthError`].
    pub fn synthesize_template(
        &mut self,
        m: &mut Machine,
        t: &Template,
        bindings: &Bindings,
        opts: SynthesisOptions,
    ) -> Result<Synthesized, SynthError> {
        let instrs_in = t.instrs.len();

        // Stage 0 (combination support): Collapsing Layers, or layered
        // linkage of call sites.
        let mut work: Template = if opts.collapse && !t.call_sites().is_empty() {
            collapse::collapse(t, &self.lib).map_err(SynthError::Collapse)?
        } else {
            t.clone()
        };
        let mut b = bindings.clone();
        if !opts.collapse {
            for (_, callee) in work.call_sites() {
                if let Some(&addr) = self.linked.get(&callee) {
                    b.bind(Template::call_hole_name(&callee), addr);
                }
            }
        }

        // Stage 1: factorization (substitution always; folding optional).
        work = if opts.fold {
            factor::factor(&work, &b).map_err(SynthError::Factor)?
        } else {
            let instrs = factor::substitute(&work, &b).map_err(SynthError::Factor)?;
            Template {
                name: work.name.clone(),
                instrs,
                holes: Vec::new(),
                marks: work.marks,
            }
        };

        // Stage 2: optimization. The post-factor stream is the semantic
        // reference: everything the optimizers do must be behaviorally
        // invisible, and for superoptimized blocks that is *proven* by
        // differential execution before install.
        let reference = opts.superopt.then(|| work.instrs.clone());
        if opts.peephole {
            let mut marks = work.marks.clone();
            let instrs = peephole::optimize(work.instrs, &mut marks);
            work = Template {
                name: work.name,
                instrs,
                holes: Vec::new(),
                marks,
            };
        }
        if opts.superopt {
            let mut marks = work.marks.clone();
            let (instrs, sstats) =
                superopt::optimize(work.instrs, &mut marks, &m.cost, &SuperoptConfig::default());
            self.stats.superopt_windows += u64::from(sstats.windows);
            self.stats.superopt_accepted += u64::from(sstats.accepted);
            self.stats.superopt_cycles_saved += sstats.cycles_saved;
            work = Template {
                name: work.name,
                instrs,
                holes: Vec::new(),
                marks,
            };
        }

        verify::verify_reported(&work).map_err(SynthError::Verify)?;

        // Pre-install equivalence gate: the final optimized block must be
        // indistinguishable from its post-factor form on randomized
        // states (presets steer trials down the specialized fast path).
        if let Some(reference) = reference {
            let base = DiffConfig::default();
            let diff = DiffConfig {
                // Two odd trials per preset set, plus the random evens.
                trials: base.trials.max(4 * self.diff_presets.len() as u32 + 2),
                preset_sets: self.diff_presets.clone(),
                ..base
            };
            equiv::diff_check(&reference, &work.instrs, &diff).map_err(SynthError::Equiv)?;
            self.stats.equiv_checked += 1;
        }

        // Stage 3: allocation + install.
        let instrs_out = work.instrs.len();
        let size = work.size_bytes();
        let base = self.codebuf.alloc(size).map_err(SynthError::CodeBuf)?;
        let block = CodeBlock::new(work.name.clone(), work.instrs);
        m.load_block(base, block).map_err(SynthError::Install)?;

        let mut entries = HashMap::new();
        for (mark, &idx) in &work.marks {
            if let Some(addr) = m.code.addr_of(base, idx) {
                entries.insert(mark.clone(), addr);
            }
        }

        // Charge the modelled synthesis cost.
        let processed = instrs_in.max(instrs_out) as u64;
        let synth_cycles = SYNTH_BASE_CYCLES + SYNTH_CYCLES_PER_INSTR * processed;
        m.charge(synth_cycles);

        self.stats.synthesized += 1;
        self.stats.cycles += synth_cycles;
        self.stats.bytes_installed += u64::from(size);
        self.stats.instrs_eliminated += instrs_in.saturating_sub(instrs_out) as u64;

        Ok(Synthesized {
            base,
            size,
            entries,
            instrs_in,
            instrs_out,
            synth_cycles,
        })
    }

    /// Synthesize through the specialization cache: if a block with the
    /// same `(template, bindings, opts)` is already installed, take a
    /// reference to it and charge only link cost ([`CACHE_HIT_CYCLES`]);
    /// otherwise run the full pipeline and cache the result with one
    /// reference.
    ///
    /// Only code that is never patched after installation may be shared
    /// this way (I/O channel endpoints qualify; context-switch code and
    /// executable data structures, whose installed instructions are
    /// rewritten in place, must use [`synthesize`]
    /// (QuajectCreator::synthesize)).
    ///
    /// The returned block's `synth_cycles` reflects what *this* request
    /// was charged, so a hit reports [`CACHE_HIT_CYCLES`].
    ///
    /// # Errors
    ///
    /// See [`SynthError`].
    pub fn synthesize_cached(
        &mut self,
        m: &mut Machine,
        template_name: &str,
        bindings: &Bindings,
        opts: SynthesisOptions,
    ) -> Result<Synthesized, SynthError> {
        let key = SpecKey::new(template_name, bindings, opts);
        let cpu = m.active_cpu();
        if let Some((mut s, cross)) = self.cache.acquire_on(&key, cpu) {
            m.charge(CACHE_HIT_CYCLES);
            s.synth_cycles = CACHE_HIT_CYCLES;
            self.stats.cache_hits += 1;
            self.stats.cycles += CACHE_HIT_CYCLES;
            self.stats.bytes_shared += u64::from(s.size);
            if cross {
                self.stats.cache_hits_cross += 1;
                self.stats.bytes_shared_cross += u64::from(s.size);
            } else {
                self.stats.cache_hits_local += 1;
            }
            self.cache_event(CacheEvent::Hit {
                base: s.base,
                bytes: s.size,
                cross,
            });
            return Ok(s);
        }
        let s = self.synthesize(m, template_name, bindings, opts)?;
        self.stats.cache_misses += 1;
        self.cache.insert_on(key, s.clone(), cpu);
        self.cache_event(CacheEvent::Miss {
            base: s.base,
            bytes: s.size,
        });
        Ok(s)
    }

    /// Unload and free a synthesized object (e.g. at `close` or thread
    /// destruction).
    ///
    /// Cache-aware: a block handed out by [`synthesize_cached`]
    /// (QuajectCreator::synthesize_cached) only drops a reference; the
    /// code stays installed until the last reference is destroyed.
    pub fn destroy(&mut self, m: &mut Machine, s: &Synthesized) {
        match self.cache.release(s.base) {
            Release::Shared => self.cache_event(CacheEvent::Release {
                base: s.base,
                evicted: false,
            }),
            Release::Evicted(cached) => {
                self.cache_event(CacheEvent::Release {
                    base: s.base,
                    evicted: true,
                });
                self.unload(m, &cached);
            }
            Release::NotCached => self.unload(m, s),
            Release::Retained { trimmed } => {
                // The released entry stays warm (a later identical open
                // will hit); the budget trim may have pushed other warm
                // blocks out — unload those.
                self.cache_event(CacheEvent::Release {
                    base: s.base,
                    evicted: false,
                });
                for t in trimmed {
                    self.cache_event(CacheEvent::Release {
                        base: t.base,
                        evicted: true,
                    });
                    self.unload(m, &t);
                }
            }
        }
    }

    /// Set the specialization cache's warm-entry byte budget, unloading
    /// whatever an immediate trim evicts (see [`SpecCache::set_budget`]).
    pub fn set_cache_budget(&mut self, m: &mut Machine, bytes: u32) {
        for t in self.cache.set_budget(bytes) {
            self.cache_event(CacheEvent::Release {
                base: t.base,
                evicted: true,
            });
            self.unload(m, &t);
        }
    }

    /// Evict and unload every warm (refcount-zero) cache entry.
    pub fn flush_cache(&mut self, m: &mut Machine) {
        for t in self.cache.flush() {
            self.cache_event(CacheEvent::Release {
                base: t.base,
                evicted: true,
            });
            self.unload(m, &t);
        }
    }

    fn unload(&mut self, m: &mut Machine, s: &Synthesized) {
        if m.code.unload(s.base).is_some() {
            self.codebuf.free(s.base, s.size);
            self.stats.destroyed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::asm::Asm;
    use quamachine::isa::{Cond, Instr, Operand::*, Size::L};
    use quamachine::machine::{MachineConfig, RunExit};

    fn creator() -> QuajectCreator {
        QuajectCreator::new(0x10_0000, 0x1_0000)
    }

    fn machine() -> Machine {
        Machine::new(MachineConfig::sun3_emulation())
    }

    /// A template with a constant-foldable mode check.
    fn mode_template() -> Template {
        let mut a = Asm::new("modal");
        let mode = a.imm_hole("mode");
        let slow = a.label();
        a.move_(L, mode, Dr(1));
        a.tst(L, Dr(1));
        a.bcc(Cond::Ne, slow);
        a.move_i(L, 111, Dr(0));
        a.halt();
        a.bind(slow);
        a.move_i(L, 222, Dr(0));
        a.halt();
        Template::from_asm(a).unwrap()
    }

    #[test]
    fn synthesize_installs_runnable_code() {
        let mut m = machine();
        let mut c = creator();
        c.lib.add(mode_template());
        let s = c
            .synthesize(
                &mut m,
                "modal",
                &Bindings::new().with("mode", 0),
                SynthesisOptions::full(),
            )
            .unwrap();
        assert!(s.instrs_out < s.instrs_in, "folding shrank the code");
        m.cpu.pc = s.base;
        m.cpu.a[7] = 0x8000;
        assert_eq!(m.run(10_000), RunExit::Halted);
        assert_eq!(m.cpu.d[0], 111);
    }

    #[test]
    fn unoptimized_synthesis_still_correct() {
        let mut m = machine();
        let mut c = creator();
        c.lib.add(mode_template());
        let s = c
            .synthesize(
                &mut m,
                "modal",
                &Bindings::new().with("mode", 0),
                SynthesisOptions::none(),
            )
            .unwrap();
        assert_eq!(s.instrs_out, s.instrs_in, "no folding");
        m.cpu.pc = s.base;
        m.cpu.a[7] = 0x8000;
        assert_eq!(m.run(10_000), RunExit::Halted);
        assert_eq!(m.cpu.d[0], 111);
    }

    #[test]
    fn synthesis_charges_cycles() {
        let mut m = machine();
        let mut c = creator();
        c.lib.add(mode_template());
        let before = m.meter.cycles;
        let s = c
            .synthesize(
                &mut m,
                "modal",
                &Bindings::new().with("mode", 1),
                SynthesisOptions::full(),
            )
            .unwrap();
        assert_eq!(m.meter.cycles - before, s.synth_cycles);
        assert!(s.synth_cycles > 0);
    }

    #[test]
    fn destroy_frees_code_space() {
        let mut m = machine();
        let mut c = creator();
        c.lib.add(mode_template());
        let s = c
            .synthesize(
                &mut m,
                "modal",
                &Bindings::new().with("mode", 0),
                SynthesisOptions::full(),
            )
            .unwrap();
        let used = c.codebuf.in_use;
        assert!(used > 0);
        c.destroy(&mut m, &s);
        assert_eq!(c.codebuf.in_use, 0);
        assert!(m.code.locate(s.base).is_none());
        // The space is reusable.
        let s2 = c
            .synthesize(
                &mut m,
                "modal",
                &Bindings::new().with("mode", 0),
                SynthesisOptions::full(),
            )
            .unwrap();
        assert_eq!(s2.base, s.base);
    }

    #[test]
    fn layered_linkage_binds_call_holes() {
        let mut m = machine();
        let mut c = creator();
        // A leaf installed separately...
        let mut leaf = Asm::new("leaf");
        leaf.add(L, Imm(7), Dr(0));
        leaf.rts();
        c.lib.add(Template::from_asm(leaf).unwrap());
        let s_leaf = c
            .synthesize(&mut m, "leaf", &Bindings::new(), SynthesisOptions::full())
            .unwrap();
        c.link("leaf", s_leaf.base);
        // ...and a caller synthesized WITHOUT collapsing: the call hole is
        // bound to the leaf's address and a real jsr remains.
        let mut outer = Asm::new("outer");
        let call = outer.abs_hole(Template::call_hole_name("leaf"));
        outer.move_i(L, 1, Dr(0));
        outer.jsr(call);
        outer.halt();
        c.lib.add(Template::from_asm(outer).unwrap());
        let mut opts = SynthesisOptions::full();
        opts.collapse = false;
        let s = c
            .synthesize(&mut m, "outer", &Bindings::new(), opts)
            .unwrap();
        let has_jsr = m
            .code
            .block(s.base)
            .unwrap()
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Jsr(_)));
        assert!(has_jsr, "layered mode keeps the call");
        m.cpu.pc = s.base;
        m.cpu.a[7] = 0x8000;
        assert_eq!(m.run(10_000), RunExit::Halted);
        assert_eq!(m.cpu.d[0], 8);
    }

    #[test]
    fn collapsed_beats_layered_in_cycles() {
        // The measurable claim behind Collapsing Layers: the collapsed
        // composition executes in fewer cycles.
        let run_with = |collapse: bool| -> u64 {
            let mut m = machine();
            let mut c = creator();
            let mut leaf = Asm::new("leaf");
            leaf.add(L, Imm(7), Dr(0));
            leaf.rts();
            c.lib.add(Template::from_asm(leaf).unwrap());
            let s_leaf = c
                .synthesize(&mut m, "leaf", &Bindings::new(), SynthesisOptions::full())
                .unwrap();
            c.link("leaf", s_leaf.base);
            let mut outer = Asm::new("outer");
            let call = outer.abs_hole(Template::call_hole_name("leaf"));
            outer.jsr(call);
            outer.jsr(call);
            outer.halt();
            c.lib.add(Template::from_asm(outer).unwrap());
            let mut opts = SynthesisOptions::full();
            opts.collapse = collapse;
            let s = c
                .synthesize(&mut m, "outer", &Bindings::new(), opts)
                .unwrap();
            m.cpu.pc = s.base;
            m.cpu.a[7] = 0x8000;
            let before = m.meter.cycles;
            assert_eq!(m.run(10_000), RunExit::Halted);
            m.meter.cycles - before
        };
        let collapsed = run_with(true);
        let layered = run_with(false);
        assert!(
            collapsed < layered,
            "collapsed {collapsed} cycles must beat layered {layered}"
        );
    }

    #[test]
    fn superopt_stage_optimizes_and_proves_blocks() {
        let mut m = machine();
        let mut c = creator();
        let t = Template {
            name: "hot".into(),
            instrs: vec![
                Instr::MulU(Imm(8), 0),
                Instr::Move(L, Dr(0), Abs(0x2000)),
                Instr::Rts,
            ],
            holes: vec![],
            marks: HashMap::new(),
        };
        // Peephole off isolates the superoptimizer: the search itself
        // must find mask+shift, and the pre-install differential check
        // must pass (it runs against the post-factor reference).
        let mut opts = SynthesisOptions::full();
        opts.peephole = false;
        opts.superopt = true;
        let s = c
            .synthesize_template(&mut m, &t, &Bindings::new(), opts)
            .unwrap();
        assert!(c.stats.superopt_accepted >= 1, "{:?}", c.stats);
        assert!(c.stats.superopt_cycles_saved >= 20, "{:?}", c.stats);
        assert_eq!(c.stats.equiv_checked, 1);
        let block = m.code.block(s.base).unwrap();
        assert!(
            !block.instrs.iter().any(|i| matches!(i, Instr::MulU(..))),
            "installed code should be strength-reduced: {:?}",
            block.instrs
        );
    }

    #[test]
    fn missing_template_error() {
        let mut m = machine();
        let mut c = creator();
        assert!(matches!(
            c.synthesize(&mut m, "nope", &Bindings::new(), SynthesisOptions::full()),
            Err(SynthError::UnknownTemplate(_))
        ));
    }
}
