//! Template well-formedness checks.
//!
//! Run before installing synthesized code: a malformed block would fault
//! at run time in ways that are much harder to diagnose.

use quamachine::isa::{BranchTarget, Instr};

use crate::template::Template;

/// Verification failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A branch target index is outside the block.
    BranchOutOfRange { instr: usize, target: u32 },
    /// A branch still uses an unresolved label.
    UnresolvedLabel { instr: usize },
    /// The block can fall through past its last instruction.
    FallsOffEnd,
    /// An operand references a hole id not in the hole table.
    BadHoleId { instr: usize, hole: u16 },
    /// A mark points outside the block.
    MarkOutOfRange { mark: String, index: usize },
    /// The block is empty.
    Empty,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::BranchOutOfRange { instr, target } => {
                write!(
                    f,
                    "instruction {instr}: branch target @{target} out of range"
                )
            }
            VerifyError::UnresolvedLabel { instr } => {
                write!(f, "instruction {instr}: unresolved label")
            }
            VerifyError::FallsOffEnd => write!(f, "control can fall off the end of the block"),
            VerifyError::BadHoleId { instr, hole } => {
                write!(f, "instruction {instr}: hole id {hole} not in hole table")
            }
            VerifyError::MarkOutOfRange { mark, index } => {
                write!(f, "mark {mark:?} points at {index}, outside the block")
            }
            VerifyError::Empty => write!(f, "empty template"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify a template.
///
/// # Errors
///
/// Returns the first problem found.
pub fn verify(t: &Template) -> Result<(), VerifyError> {
    if t.instrs.is_empty() {
        return Err(VerifyError::Empty);
    }
    for (i, instr) in t.instrs.iter().enumerate() {
        match instr.branch_target() {
            Some(BranchTarget::Label(_)) => return Err(VerifyError::UnresolvedLabel { instr: i }),
            Some(BranchTarget::Idx(x)) if x as usize >= t.instrs.len() => {
                return Err(VerifyError::BranchOutOfRange {
                    instr: i,
                    target: x,
                })
            }
            _ => {}
        }
        for op in instr.operands() {
            if let Some(h) = op.hole() {
                if usize::from(h) >= t.holes.len() {
                    return Err(VerifyError::BadHoleId { instr: i, hole: h });
                }
            }
        }
    }
    for (mark, &idx) in &t.marks {
        if idx >= t.instrs.len() {
            return Err(VerifyError::MarkOutOfRange {
                mark: mark.clone(),
                index: idx,
            });
        }
    }
    // The final instruction must not fall through (jmp/rts/rte/halt/bra/
    // stop all qualify). A trailing dbf/bcc falls through by design, so
    // only the *last* instruction is checked.
    let last = t.instrs.last().expect("non-empty");
    if !last.is_terminator() {
        return Err(VerifyError::FallsOffEnd);
    }
    Ok(())
}

/// Verify a bare instruction stream (no holes, no marks).
///
/// # Errors
///
/// Returns the first problem found.
pub fn verify_instrs(instrs: &[Instr]) -> Result<(), VerifyError> {
    let t = Template {
        name: String::new(),
        instrs: instrs.to_vec(),
        holes: vec![String::new(); 64], // permissive hole table
        marks: std::collections::HashMap::new(),
    };
    verify(&t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::asm::Asm;
    use quamachine::isa::{Cond, Operand::*, Size::L};

    #[test]
    fn good_template_verifies() {
        let mut a = Asm::new("t");
        let end = a.label();
        a.tst(L, Dr(0));
        a.bcc(Cond::Eq, end);
        a.move_i(L, 1, Dr(1));
        a.bind(end);
        a.rts();
        let t = Template::from_asm(a).unwrap();
        assert_eq!(verify(&t), Ok(()));
    }

    #[test]
    fn fallthrough_end_rejected() {
        let mut a = Asm::new("t");
        a.move_i(L, 1, Dr(1));
        let t = Template::from_asm(a).unwrap();
        assert_eq!(verify(&t), Err(VerifyError::FallsOffEnd));
    }

    #[test]
    fn empty_rejected() {
        let a = Asm::new("t");
        let t = Template::from_asm(a).unwrap();
        assert_eq!(verify(&t), Err(VerifyError::Empty));
    }

    #[test]
    fn out_of_range_branch_rejected() {
        use quamachine::isa::{BranchTarget, Instr};
        let t = Template {
            name: "t".into(),
            instrs: vec![Instr::Bcc(Cond::Eq, BranchTarget::Idx(9)), Instr::Rts],
            holes: vec![],
            marks: std::collections::HashMap::new(),
        };
        assert!(matches!(
            verify(&t),
            Err(VerifyError::BranchOutOfRange {
                instr: 0,
                target: 9
            })
        ));
    }

    #[test]
    fn bad_hole_id_rejected() {
        use quamachine::isa::Instr;
        let t = Template {
            name: "t".into(),
            instrs: vec![Instr::Move(L, ImmHole(3), Dr(0)), Instr::Rts],
            holes: vec!["only_one".into()],
            marks: std::collections::HashMap::new(),
        };
        assert!(matches!(
            verify(&t),
            Err(VerifyError::BadHoleId { hole: 3, .. })
        ));
    }
}
