//! Template well-formedness checks.
//!
//! Run before installing synthesized code: a malformed block would fault
//! at run time in ways that are much harder to diagnose.

use quamachine::isa::{BranchTarget, Instr};

use crate::template::Template;

/// Verification failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A branch target index is outside the block.
    BranchOutOfRange { instr: usize, target: u32 },
    /// A branch still uses an unresolved label.
    UnresolvedLabel { instr: usize },
    /// The block can fall through past its last instruction.
    FallsOffEnd,
    /// An operand references a hole id not in the hole table.
    BadHoleId { instr: usize, hole: u16 },
    /// A mark points outside the block.
    MarkOutOfRange { mark: String, index: usize },
    /// The block is empty.
    Empty,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::BranchOutOfRange { instr, target } => {
                write!(
                    f,
                    "instruction {instr}: branch target @{target} out of range"
                )
            }
            VerifyError::UnresolvedLabel { instr } => {
                write!(f, "instruction {instr}: unresolved label")
            }
            VerifyError::FallsOffEnd => write!(f, "control can fall off the end of the block"),
            VerifyError::BadHoleId { instr, hole } => {
                write!(f, "instruction {instr}: hole id {hole} not in hole table")
            }
            VerifyError::MarkOutOfRange { mark, index } => {
                write!(f, "mark {mark:?} points at {index}, outside the block")
            }
            VerifyError::Empty => write!(f, "empty template"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl VerifyError {
    /// The instruction index the failure anchors to, if it has one.
    #[must_use]
    pub fn instr_index(&self) -> Option<usize> {
        match self {
            VerifyError::BranchOutOfRange { instr, .. }
            | VerifyError::UnresolvedLabel { instr }
            | VerifyError::BadHoleId { instr, .. } => Some(*instr),
            VerifyError::MarkOutOfRange { index, .. } => Some(*index),
            VerifyError::FallsOffEnd | VerifyError::Empty => None,
        }
    }
}

/// A verification failure with enough context to debug it: the
/// offending template's name and a disassembly of the instruction
/// window around the failure (bare indices made PR-7's wild-PC hunts
/// needlessly painful).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Name of the template that failed.
    pub template: String,
    /// The underlying structural error.
    pub error: VerifyError,
    /// Disassembly snippet around the failing instruction, one
    /// instruction per line, the offender marked with `->`.
    pub window: String,
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "template {:?}: {}", self.template, self.error)?;
        if !self.window.is_empty() {
            write!(f, "\n{}", self.window)?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyReport {}

/// Disassemble the window of up to `2 × RADIUS + 1` instructions around
/// `at` (the whole block when `at` is `None`, capped at the tail).
fn disasm_window(name: &str, instrs: &[Instr], at: Option<usize>) -> String {
    const RADIUS: usize = 3;
    let (lo, hi, mark) = match at {
        Some(i) => (
            i.saturating_sub(RADIUS),
            (i + RADIUS + 1).min(instrs.len()),
            Some(i),
        ),
        // FallsOffEnd-style failures anchor to the tail.
        None => (instrs.len().saturating_sub(RADIUS + 1), instrs.len(), None),
    };
    let mut out = String::new();
    for (i, instr) in instrs.iter().enumerate().take(hi).skip(lo) {
        let arrow = if mark == Some(i) { "->" } else { "  " };
        out.push_str(&format!("{arrow} {name}+{i:<3} {instr}\n"));
    }
    if out.ends_with('\n') {
        out.pop();
    }
    out
}

/// Verify a template, annotating any failure with the template name
/// and a disassembly of the failing window.
///
/// # Errors
///
/// Returns the first problem found, as a [`VerifyReport`].
pub fn verify_reported(t: &Template) -> Result<(), VerifyReport> {
    verify(t).map_err(|error| VerifyReport {
        template: t.name.clone(),
        window: disasm_window(&t.name, &t.instrs, error.instr_index()),
        error,
    })
}

/// Verify a template.
///
/// # Errors
///
/// Returns the first problem found.
pub fn verify(t: &Template) -> Result<(), VerifyError> {
    if t.instrs.is_empty() {
        return Err(VerifyError::Empty);
    }
    for (i, instr) in t.instrs.iter().enumerate() {
        match instr.branch_target() {
            Some(BranchTarget::Label(_)) => return Err(VerifyError::UnresolvedLabel { instr: i }),
            Some(BranchTarget::Idx(x)) if x as usize >= t.instrs.len() => {
                return Err(VerifyError::BranchOutOfRange {
                    instr: i,
                    target: x,
                })
            }
            _ => {}
        }
        for op in instr.operands() {
            if let Some(h) = op.hole() {
                if usize::from(h) >= t.holes.len() {
                    return Err(VerifyError::BadHoleId { instr: i, hole: h });
                }
            }
        }
    }
    for (mark, &idx) in &t.marks {
        if idx >= t.instrs.len() {
            return Err(VerifyError::MarkOutOfRange {
                mark: mark.clone(),
                index: idx,
            });
        }
    }
    // The final instruction must not fall through (jmp/rts/rte/halt/bra/
    // stop all qualify). A trailing dbf/bcc falls through by design, so
    // only the *last* instruction is checked.
    let last = t.instrs.last().expect("non-empty");
    if !last.is_terminator() {
        return Err(VerifyError::FallsOffEnd);
    }
    Ok(())
}

/// Verify a bare instruction stream (no holes, no marks).
///
/// # Errors
///
/// Returns the first problem found.
pub fn verify_instrs(instrs: &[Instr]) -> Result<(), VerifyError> {
    let t = Template {
        name: String::new(),
        instrs: instrs.to_vec(),
        holes: vec![String::new(); 64], // permissive hole table
        marks: std::collections::HashMap::new(),
    };
    verify(&t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::asm::Asm;
    use quamachine::isa::{Cond, Operand::*, Size::L};

    #[test]
    fn good_template_verifies() {
        let mut a = Asm::new("t");
        let end = a.label();
        a.tst(L, Dr(0));
        a.bcc(Cond::Eq, end);
        a.move_i(L, 1, Dr(1));
        a.bind(end);
        a.rts();
        let t = Template::from_asm(a).unwrap();
        assert_eq!(verify(&t), Ok(()));
    }

    #[test]
    fn fallthrough_end_rejected() {
        let mut a = Asm::new("t");
        a.move_i(L, 1, Dr(1));
        let t = Template::from_asm(a).unwrap();
        assert_eq!(verify(&t), Err(VerifyError::FallsOffEnd));
    }

    #[test]
    fn empty_rejected() {
        let a = Asm::new("t");
        let t = Template::from_asm(a).unwrap();
        assert_eq!(verify(&t), Err(VerifyError::Empty));
    }

    #[test]
    fn out_of_range_branch_rejected() {
        use quamachine::isa::{BranchTarget, Instr};
        let t = Template {
            name: "t".into(),
            instrs: vec![Instr::Bcc(Cond::Eq, BranchTarget::Idx(9)), Instr::Rts],
            holes: vec![],
            marks: std::collections::HashMap::new(),
        };
        assert!(matches!(
            verify(&t),
            Err(VerifyError::BranchOutOfRange {
                instr: 0,
                target: 9
            })
        ));
    }

    #[test]
    fn bad_hole_id_rejected() {
        use quamachine::isa::Instr;
        let t = Template {
            name: "t".into(),
            instrs: vec![Instr::Move(L, ImmHole(3), Dr(0)), Instr::Rts],
            holes: vec!["only_one".into()],
            marks: std::collections::HashMap::new(),
        };
        assert!(matches!(
            verify(&t),
            Err(VerifyError::BadHoleId { hole: 3, .. })
        ));
    }

    #[test]
    fn report_names_template_and_disassembles_window() {
        use quamachine::isa::{BranchTarget, Instr};
        let t = Template {
            name: "pipe_write".into(),
            instrs: vec![
                Instr::Move(L, Imm(1), Dr(0)),
                Instr::Bcc(Cond::Eq, BranchTarget::Idx(9)),
                Instr::Rts,
            ],
            holes: vec![],
            marks: std::collections::HashMap::new(),
        };
        let r = verify_reported(&t).unwrap_err();
        assert_eq!(r.template, "pipe_write");
        assert!(matches!(r.error, VerifyError::BranchOutOfRange { .. }));
        // The snippet marks the offending branch and shows neighbours.
        assert!(r.window.contains("-> pipe_write+1"), "{}", r.window);
        assert!(r.window.contains("   pipe_write+0"), "{}", r.window);
        let msg = r.to_string();
        assert!(msg.contains("pipe_write") && msg.contains("out of range"));
    }

    #[test]
    fn report_anchors_fallthrough_at_the_tail() {
        let mut a = Asm::new("drain");
        a.move_i(L, 1, Dr(1));
        a.move_i(L, 2, Dr(2));
        let t = Template::from_asm(a).unwrap();
        let r = verify_reported(&t).unwrap_err();
        assert_eq!(r.error, VerifyError::FallsOffEnd);
        assert!(r.window.contains("drain+1"), "{}", r.window);
    }
}
