//! The quaject interfacer: combine → factorize → optimize → dynamic link.
//!
//! "The quaject interfacer starts the execution of existing quajects by
//! installing them in the invoking thread. [It] has four stages:
//! combination, factorization, optimization, and dynamic link. The
//! combination stage finds the appropriate connecting mechanism (queue,
//! monitor, pump, or a simple procedure call)" (paper Section 2.3).
//!
//! The *combination* rules come from the producer/consumer analysis of
//! Section 5.2:
//!
//! | producer | consumer | connector |
//! |---|---|---|
//! | active | passive (or vice versa), both single | procedure call |
//! | active | passive, a side multiple | monitor on the multiple side |
//! | active | active | queue (SP-SC / MP-SC / SP-MC / MP-MC) |
//! | passive | passive | pump |

use quamachine::machine::Machine;

use crate::creator::{QuajectCreator, SynthError, SynthesisOptions, Synthesized};
use crate::template::Bindings;

/// One side of a producer/consumer composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Party {
    /// Whether this side drives the data flow (calls), rather than being
    /// called.
    pub active: bool,
    /// Whether more than one participant shares this side.
    pub multiple: bool,
}

impl Party {
    /// A single active participant.
    #[must_use]
    pub fn active_single() -> Party {
        Party {
            active: true,
            multiple: false,
        }
    }

    /// Multiple active participants.
    #[must_use]
    pub fn active_multiple() -> Party {
        Party {
            active: true,
            multiple: true,
        }
    }

    /// A single passive participant.
    #[must_use]
    pub fn passive_single() -> Party {
        Party {
            active: false,
            multiple: false,
        }
    }

    /// Multiple passive participants.
    #[must_use]
    pub fn passive_multiple() -> Party {
        Party {
            active: false,
            multiple: true,
        }
    }
}

/// The connecting mechanism chosen by the combination stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connector {
    /// A simple procedure call (active→passive, single-single) — the case
    /// Collapsing Layers then erases entirely.
    DirectCall,
    /// A monitor serializing the multiple participants of a passive side.
    Monitor,
    /// Single-producer single-consumer queue (paper Figure 1).
    SpscQueue,
    /// Multiple-producer single-consumer optimistic queue (Figure 2).
    MpscQueue,
    /// Single-producer multiple-consumer optimistic queue.
    SpmcQueue,
    /// Multiple-producer multiple-consumer optimistic queue.
    MpmcQueue,
    /// A pump: a kernel thread actively copying from a passive producer
    /// to a passive consumer (the `xclock` case).
    Pump,
}

impl Connector {
    /// The template-library name of this connector's code template.
    #[must_use]
    pub fn template_name(self) -> &'static str {
        match self {
            Connector::DirectCall => "connect_call",
            Connector::Monitor => "connect_monitor",
            Connector::SpscQueue => "q_spsc",
            Connector::MpscQueue => "q_mpsc",
            Connector::SpmcQueue => "q_spmc",
            Connector::MpmcQueue => "q_mpmc",
            Connector::Pump => "connect_pump",
        }
    }
}

/// The combination stage: pick the connector for a producer/consumer pair
/// (paper Section 5.2).
#[must_use]
pub fn choose_connector(producer: Party, consumer: Party) -> Connector {
    match (producer.active, consumer.active) {
        // Active-passive (either direction): call, or monitor when a side
        // has multiple participants to serialize.
        (true, false) | (false, true) => {
            if producer.multiple || consumer.multiple {
                Connector::Monitor
            } else {
                Connector::DirectCall
            }
        }
        // Active-active: a queue mediates; multiplicity picks the kind.
        (true, true) => match (producer.multiple, consumer.multiple) {
            (false, false) => Connector::SpscQueue,
            (true, false) => Connector::MpscQueue,
            (false, true) => Connector::SpmcQueue,
            (true, true) => Connector::MpmcQueue,
        },
        // Passive-passive: a pump animates the flow.
        (false, false) => Connector::Pump,
    }
}

/// The result of interfacing two quajects.
#[derive(Debug, Clone)]
pub struct Interfaced {
    /// The connector that was chosen.
    pub connector: Connector,
    /// The synthesized connecting code.
    pub code: Synthesized,
}

/// The quaject interfacer.
///
/// Owns no state of its own; it drives the [`QuajectCreator`] through the
/// four stages. The *dynamic link* stage is [`dynamic_link`]: entry
/// addresses are stored into the consuming quaject's call-vector table in
/// simulated memory, so the quaject thereafter jumps straight into the
/// synthesized routine.
pub struct Interfacer;

impl Interfacer {
    /// Combine two quajects: choose the connector, synthesize its code
    /// with `bindings` (buffer addresses, sizes, callee entry points...),
    /// and return the installed result. The caller then calls
    /// [`dynamic_link`] to store the entries where the invoking quaject
    /// expects them.
    ///
    /// # Errors
    ///
    /// See [`SynthError`].
    pub fn interface(
        creator: &mut QuajectCreator,
        m: &mut Machine,
        producer: Party,
        consumer: Party,
        bindings: &Bindings,
        opts: SynthesisOptions,
    ) -> Result<Interfaced, SynthError> {
        let connector = choose_connector(producer, consumer);
        let code = creator.synthesize(m, connector.template_name(), bindings, opts)?;
        Ok(Interfaced { connector, code })
    }
}

/// The dynamic-link stage: store a synthesized entry point into slot
/// `slot` of the call-vector table at `table_addr` (one long per slot).
pub fn dynamic_link(m: &mut Machine, table_addr: u32, slot: u32, entry: u32) {
    m.mem
        .poke(table_addr + slot * 4, quamachine::isa::Size::L, entry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::Template;
    use quamachine::asm::Asm;
    use quamachine::isa::Size::L;
    use quamachine::machine::MachineConfig;

    #[test]
    fn combination_matrix_matches_section_5_2() {
        use Connector::*;
        let a1 = Party::active_single();
        let am = Party::active_multiple();
        let p1 = Party::passive_single();
        let pm = Party::passive_multiple();

        assert_eq!(choose_connector(a1, p1), DirectCall);
        assert_eq!(choose_connector(p1, a1), DirectCall);
        assert_eq!(choose_connector(am, p1), Monitor);
        assert_eq!(choose_connector(a1, pm), Monitor);
        assert_eq!(choose_connector(a1, a1), SpscQueue);
        assert_eq!(choose_connector(am, a1), MpscQueue);
        assert_eq!(choose_connector(a1, am), SpmcQueue);
        assert_eq!(choose_connector(am, am), MpmcQueue);
        assert_eq!(choose_connector(p1, p1), Pump);
        assert_eq!(choose_connector(pm, pm), Pump);
    }

    #[test]
    fn interface_synthesizes_the_connector_template() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let mut c = QuajectCreator::new(0x10_0000, 0x1_0000);
        let mut t = Asm::new("connect_call");
        t.nop();
        t.rts();
        c.lib.add(Template::from_asm(t).unwrap());
        let out = Interfacer::interface(
            &mut c,
            &mut m,
            Party::active_single(),
            Party::passive_single(),
            &Bindings::new(),
            SynthesisOptions::full(),
        )
        .unwrap();
        assert_eq!(out.connector, Connector::DirectCall);
        assert!(m.code.locate(out.code.base).is_some());
    }

    #[test]
    fn dynamic_link_stores_entries() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        dynamic_link(&mut m, 0x3000, 2, 0xCAFE);
        assert_eq!(m.mem.peek(0x3000 + 8, L), 0xCAFE);
    }
}
