//! Executable data structures.
//!
//! "The Executable Data Structures method shortens data structure traversal
//! time when the data structure is always traversed the same way" (paper
//! Section 2.2). The canonical instance is the ready queue (Figure 3):
//! each thread's context-switch-out code ends in a `jmp` directly to the
//! next thread's context-switch-in code, so dispatching *is* executing the
//! queue. Inserting or removing a thread patches the `jmp` targets.
//!
//! [`JumpChain`] maintains such a circular chain of code nodes: each node
//! exposes the address of its patchable `jmp` and its entry point, and the
//! chain rewires targets through the machine's code-patching interface.
//!
//! The chain is stored as a hash-linked circular list so that membership
//! tests, neighbour lookups, insertion, and removal are all O(1) in the
//! number of nodes — the host-side bookkeeping must stay as constant-cost
//! as the guest-side dispatch it mirrors, or a 10k-thread ready queue
//! would pay O(n) host work per scheduling operation. Order-dependent
//! views ([`JumpChain::nodes`], [`JumpChain::position`]) walk the links
//! from the head and remain O(n); they serve monitors, evacuation sweeps,
//! and tests, never the per-dispatch hot path.

use quamachine::error::MachineError;
use quamachine::machine::Machine;
use std::collections::HashMap;

/// One node of an executable chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainNode {
    /// Stable identifier chosen by the embedder (e.g. thread id).
    pub id: u32,
    /// Entry address control should arrive at (e.g. `sw_in`).
    pub entry: u32,
    /// Address of this node's patchable `jmp (abs).l` instruction.
    pub jmp_at: u32,
}

/// A node plus its circular-list neighbours (by id).
#[derive(Debug, Clone, Copy)]
struct Link {
    node: ChainNode,
    prev: u32,
    next: u32,
}

/// A circular chain of code nodes traversed by executing it.
#[derive(Debug, Default)]
pub struct JumpChain {
    links: HashMap<u32, Link>,
    head: Option<u32>,
    /// Patches applied over the chain's lifetime (for the monitor).
    pub patch_count: u64,
}

impl JumpChain {
    /// An empty chain.
    #[must_use]
    pub fn new() -> JumpChain {
        JumpChain::default()
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the chain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Whether a node with `id` is in the chain. O(1).
    #[must_use]
    pub fn contains(&self, id: u32) -> bool {
        self.links.contains_key(&id)
    }

    /// The first node in traversal order. O(1).
    #[must_use]
    pub fn head(&self) -> Option<ChainNode> {
        self.head.map(|h| self.links[&h].node)
    }

    /// The node following `id` (circularly), if `id` is in the chain.
    /// O(1).
    #[must_use]
    pub fn next_of_id(&self, id: u32) -> Option<ChainNode> {
        let l = self.links.get(&id)?;
        Some(self.links[&l.next].node)
    }

    /// The node preceding `id` (circularly), if `id` is in the chain.
    /// O(1).
    #[must_use]
    pub fn prev_of_id(&self, id: u32) -> Option<ChainNode> {
        let l = self.links.get(&id)?;
        Some(self.links[&l.prev].node)
    }

    /// The nodes in traversal order, starting at the head. O(n) — the
    /// order is defined by the links themselves, never by hash-map
    /// iteration, so it is deterministic.
    #[must_use]
    pub fn nodes(&self) -> Vec<ChainNode> {
        let mut out = Vec::with_capacity(self.links.len());
        let Some(h) = self.head else {
            return out;
        };
        let mut cur = h;
        loop {
            let l = &self.links[&cur];
            out.push(l.node);
            cur = l.next;
            if cur == h {
                break;
            }
        }
        out
    }

    /// Position of a node by id, in traversal order. O(n); for
    /// membership alone use [`JumpChain::contains`].
    #[must_use]
    pub fn position(&self, id: u32) -> Option<usize> {
        let h = self.head?;
        let mut cur = h;
        let mut i = 0;
        loop {
            if cur == id {
                return Some(i);
            }
            cur = self.links[&cur].next;
            i += 1;
            if cur == h {
                return None;
            }
        }
    }

    /// The node following position `i` (circularly). O(n).
    #[must_use]
    pub fn next_of(&self, i: usize) -> ChainNode {
        let nodes = self.nodes();
        nodes[(i + 1) % nodes.len()]
    }

    fn patch(&mut self, m: &mut Machine, jmp_at: u32, target: u32) -> Result<(), MachineError> {
        self.patch_count += 1;
        m.code.patch_jmp_target(jmp_at, target)
    }

    /// Insert `node` after the node with id `after`, patching the
    /// predecessor's `jmp` to enter it and its `jmp` to continue the
    /// chain. O(1).
    fn insert_after_id(
        &mut self,
        m: &mut Machine,
        after: u32,
        node: ChainNode,
    ) -> Result<(), MachineError> {
        debug_assert!(!self.contains(node.id), "duplicate chain id");
        let next_id = self.links[&after].next;
        let next_entry = self.links[&next_id].node.entry;
        let pred_jmp = self.links[&after].node.jmp_at;
        self.patch(m, node.jmp_at, next_entry)?;
        self.patch(m, pred_jmp, node.entry)?;
        self.links.insert(
            node.id,
            Link {
                node,
                prev: after,
                next: next_id,
            },
        );
        self.links.get_mut(&after).expect("pred exists").next = node.id;
        self.links.get_mut(&next_id).expect("succ exists").prev = node.id;
        Ok(())
    }

    /// Insert `node` as the chain's only member, chained to itself.
    fn insert_sole(&mut self, m: &mut Machine, node: ChainNode) -> Result<(), MachineError> {
        debug_assert!(self.links.is_empty());
        self.patch(m, node.jmp_at, node.entry)?;
        self.links.insert(
            node.id,
            Link {
                node,
                prev: node.id,
                next: node.id,
            },
        );
        self.head = Some(node.id);
        Ok(())
    }

    /// Insert `node` so it runs next after `after` — the Synthesis
    /// unblocking rule: "As an event unblocks a thread, its TTE is placed
    /// at the front of the ready queue, giving it immediate access to the
    /// CPU" (paper Section 4.4). With `after` absent (or not in the
    /// chain) the node goes right after the head; on an empty chain it
    /// becomes the sole, self-chained node. O(1).
    ///
    /// # Errors
    ///
    /// Fails if a `jmp` address does not hold a patchable jump.
    pub fn insert_next(
        &mut self,
        m: &mut Machine,
        after: Option<u32>,
        node: ChainNode,
    ) -> Result<(), MachineError> {
        match (after.filter(|a| self.contains(*a)), self.head) {
            (_, None) => self.insert_sole(m, node),
            (Some(a), _) => self.insert_after_id(m, a, node),
            (None, Some(h)) => self.insert_after_id(m, h, node),
        }
    }

    /// Insert `node` after position `at` (or as the only node). Position
    /// lookup is O(n); embedders on the hot path use
    /// [`JumpChain::insert_next`] instead.
    ///
    /// # Errors
    ///
    /// Fails if a `jmp` address does not hold a patchable jump.
    pub fn insert_after(
        &mut self,
        m: &mut Machine,
        at: Option<usize>,
        node: ChainNode,
    ) -> Result<(), MachineError> {
        match at {
            None => {
                debug_assert!(self.links.is_empty());
                self.insert_sole(m, node)
            }
            Some(i) => {
                let after = self.nodes()[i].id;
                self.insert_after_id(m, after, node)
            }
        }
    }

    /// Insert `node` so it is the *next* node after position `cur` (see
    /// [`JumpChain::insert_next`] for the O(1) id-based form).
    ///
    /// # Errors
    ///
    /// Fails if a `jmp` address does not hold a patchable jump.
    pub fn insert_front(
        &mut self,
        m: &mut Machine,
        cur: Option<usize>,
        node: ChainNode,
    ) -> Result<(), MachineError> {
        self.insert_after(m, cur, node)
    }

    /// Remove the node with `id`, patching its predecessor to skip it.
    /// Returns the removed node. O(1).
    ///
    /// # Errors
    ///
    /// Fails if a `jmp` address does not hold a patchable jump.
    pub fn remove(&mut self, m: &mut Machine, id: u32) -> Result<Option<ChainNode>, MachineError> {
        let Some(link) = self.links.get(&id).copied() else {
            return Ok(None);
        };
        if self.links.len() == 1 {
            self.links.remove(&id);
            self.head = None;
            return Ok(Some(link.node));
        }
        let next_entry = self.links[&link.next].node.entry;
        let pred_jmp = self.links[&link.prev].node.jmp_at;
        self.patch(m, pred_jmp, next_entry)?;
        self.links.get_mut(&link.prev).expect("pred exists").next = link.next;
        self.links.get_mut(&link.next).expect("succ exists").prev = link.prev;
        self.links.remove(&id);
        if self.head == Some(id) {
            self.head = Some(link.next);
        }
        Ok(Some(link.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::asm::Asm;
    use quamachine::isa::{Operand::*, Size::L};
    use quamachine::machine::{Machine, MachineConfig};

    /// Build a node whose code is `move #id,d0 ; jmp <self>` — executing
    /// the chain records each visited node in d0; we intercept with
    /// breakpoints... simpler: each node increments d1 and moves its id to
    /// d0, and node 0 halts when d1 gets large.
    fn make_node(m: &mut Machine, base: u32, id: u32) -> ChainNode {
        let mut a = Asm::new(format!("node{id}"));
        a.move_i(L, id, Dr(0));
        a.add(L, Imm(1), Dr(1));
        let jmp_idx = a.len();
        a.jmp(Abs(0)); // patched by the chain
        let blk = a.assemble().unwrap();
        let entry = m.load_block(base, blk).unwrap();
        let jmp_at = m.code.addr_of(base, jmp_idx).unwrap();
        ChainNode { id, entry, jmp_at }
    }

    fn run_chain(m: &mut Machine, entry: u32, steps: u64) -> Vec<u32> {
        // Execute the chain and record d0 at each node visit by stepping.
        m.cpu.pc = entry;
        m.cpu.a[7] = 0x8000;
        let mut visits = Vec::new();
        let mut budget = steps;
        while budget > 0 {
            let before = m.cpu.d[1];
            match m.step() {
                Ok(None) => {}
                other => panic!("unexpected exit {other:?}"),
            }
            if m.cpu.d[1] != before {
                visits.push(m.cpu.d[0]);
                budget -= 1;
            }
        }
        visits
    }

    #[test]
    fn single_node_chains_to_itself() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let n0 = make_node(&mut m, 0x1000, 10);
        let mut chain = JumpChain::new();
        chain.insert_after(&mut m, None, n0).unwrap();
        let visits = run_chain(&mut m, n0.entry, 3);
        assert_eq!(visits, vec![10, 10, 10]);
    }

    #[test]
    fn insertion_and_traversal_order() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let n0 = make_node(&mut m, 0x1000, 10);
        let n1 = make_node(&mut m, 0x1100, 11);
        let n2 = make_node(&mut m, 0x1200, 12);
        let mut chain = JumpChain::new();
        chain.insert_after(&mut m, None, n0).unwrap();
        chain.insert_after(&mut m, Some(0), n1).unwrap();
        chain.insert_after(&mut m, Some(1), n2).unwrap();
        let visits = run_chain(&mut m, n0.entry, 6);
        assert_eq!(visits, vec![10, 11, 12, 10, 11, 12]);
    }

    #[test]
    fn removal_patches_predecessor() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let n0 = make_node(&mut m, 0x1000, 10);
        let n1 = make_node(&mut m, 0x1100, 11);
        let n2 = make_node(&mut m, 0x1200, 12);
        let mut chain = JumpChain::new();
        chain.insert_after(&mut m, None, n0).unwrap();
        chain.insert_after(&mut m, Some(0), n1).unwrap();
        chain.insert_after(&mut m, Some(1), n2).unwrap();
        chain.remove(&mut m, 11).unwrap().unwrap();
        let visits = run_chain(&mut m, n0.entry, 4);
        assert_eq!(visits, vec![10, 12, 10, 12]);
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn remove_unknown_id_is_none() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let mut chain = JumpChain::new();
        assert_eq!(chain.remove(&mut m, 42).unwrap(), None);
    }

    #[test]
    fn removing_last_node_empties_chain() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let n0 = make_node(&mut m, 0x1000, 10);
        let mut chain = JumpChain::new();
        chain.insert_after(&mut m, None, n0).unwrap();
        let removed = chain.remove(&mut m, 10).unwrap().unwrap();
        assert_eq!(removed.id, 10);
        assert!(chain.is_empty());
        assert_eq!(chain.head(), None);
    }

    #[test]
    fn halted_machine_not_required_for_patching() {
        // Patching works while the "machine" is mid-run (between steps):
        // insert a node while executing and observe it on the next lap.
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let n0 = make_node(&mut m, 0x1000, 10);
        let n1 = make_node(&mut m, 0x1100, 11);
        let mut chain = JumpChain::new();
        chain.insert_after(&mut m, None, n0).unwrap();
        m.cpu.pc = n0.entry;
        m.cpu.a[7] = 0x8000;
        // Take a lap, then splice in n1.
        for _ in 0..3 {
            m.step().unwrap();
        }
        chain.insert_after(&mut m, Some(0), n1).unwrap();
        let pc = m.cpu.pc;
        let visits = run_chain(&mut m, pc, 4);
        assert!(visits.windows(2).any(|w| w == [10, 11] || w == [11, 10]));
    }

    #[test]
    fn patch_count_accumulates() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let n0 = make_node(&mut m, 0x1000, 1);
        let n1 = make_node(&mut m, 0x1100, 2);
        let mut chain = JumpChain::new();
        chain.insert_after(&mut m, None, n0).unwrap();
        chain.insert_after(&mut m, Some(0), n1).unwrap();
        chain.remove(&mut m, 2).unwrap();
        assert_eq!(chain.patch_count, 4); // 1 + 2 + 1
    }

    #[test]
    fn insert_next_matches_position_semantics() {
        // insert_next(None) on a non-empty chain goes right after the
        // head, exactly like insert_after(Some(0)).
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let n0 = make_node(&mut m, 0x1000, 10);
        let n1 = make_node(&mut m, 0x1100, 11);
        let n2 = make_node(&mut m, 0x1200, 12);
        let mut chain = JumpChain::new();
        chain.insert_next(&mut m, None, n0).unwrap();
        chain.insert_next(&mut m, None, n1).unwrap();
        chain.insert_next(&mut m, Some(11), n2).unwrap();
        assert_eq!(
            chain.nodes().iter().map(|n| n.id).collect::<Vec<_>>(),
            vec![10, 11, 12]
        );
        let visits = run_chain(&mut m, n0.entry, 6);
        assert_eq!(visits, vec![10, 11, 12, 10, 11, 12]);
    }

    #[test]
    fn neighbour_lookups_are_consistent_with_order() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let mut chain = JumpChain::new();
        for i in 0..5u32 {
            let n = make_node(&mut m, 0x1000 + i * 0x100, i);
            let at = if chain.is_empty() {
                None
            } else {
                Some(i as usize - 1)
            };
            chain.insert_after(&mut m, at, n).unwrap();
        }
        let order: Vec<u32> = chain.nodes().iter().map(|n| n.id).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        for (i, &id) in order.iter().enumerate() {
            assert!(chain.contains(id));
            assert_eq!(chain.position(id), Some(i));
            assert_eq!(
                chain.next_of_id(id).unwrap().id,
                order[(i + 1) % order.len()]
            );
            assert_eq!(
                chain.prev_of_id(id).unwrap().id,
                order[(i + order.len() - 1) % order.len()]
            );
        }
        assert_eq!(chain.head().unwrap().id, 0);
    }

    #[test]
    fn head_advances_when_head_is_removed() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let n0 = make_node(&mut m, 0x1000, 10);
        let n1 = make_node(&mut m, 0x1100, 11);
        let n2 = make_node(&mut m, 0x1200, 12);
        let mut chain = JumpChain::new();
        chain.insert_next(&mut m, None, n0).unwrap();
        chain.insert_next(&mut m, Some(10), n1).unwrap();
        chain.insert_next(&mut m, Some(11), n2).unwrap();
        chain.remove(&mut m, 10).unwrap().unwrap();
        assert_eq!(chain.head().unwrap().id, 11);
        assert_eq!(
            chain.nodes().iter().map(|n| n.id).collect::<Vec<_>>(),
            vec![11, 12]
        );
    }

    #[test]
    fn scale_membership_and_neighbours_without_walks() {
        // A large chain: every O(1) query agrees with the O(n) walk.
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let mut chain = JumpChain::new();
        for i in 0..500u32 {
            let n = make_node(&mut m, 0x1_0000 + i * 0x40, i);
            let after = if i == 0 { None } else { Some(i - 1) };
            chain.insert_next(&mut m, after, n).unwrap();
        }
        assert_eq!(chain.len(), 500);
        let order: Vec<u32> = chain.nodes().iter().map(|n| n.id).collect();
        for w in order.windows(2) {
            assert_eq!(chain.next_of_id(w[0]).unwrap().id, w[1]);
            assert_eq!(chain.prev_of_id(w[1]).unwrap().id, w[0]);
        }
        // Remove every third node; the remaining order survives.
        for i in (0..500u32).step_by(3) {
            chain.remove(&mut m, i).unwrap().unwrap();
        }
        let left: Vec<u32> = chain.nodes().iter().map(|n| n.id).collect();
        assert_eq!(left.len(), chain.len());
        assert!(left.iter().all(|&i| i % 3 != 0));
    }
}
