//! Executable data structures.
//!
//! "The Executable Data Structures method shortens data structure traversal
//! time when the data structure is always traversed the same way" (paper
//! Section 2.2). The canonical instance is the ready queue (Figure 3):
//! each thread's context-switch-out code ends in a `jmp` directly to the
//! next thread's context-switch-in code, so dispatching *is* executing the
//! queue. Inserting or removing a thread patches the `jmp` targets.
//!
//! [`JumpChain`] maintains such a circular chain of code nodes: each node
//! exposes the address of its patchable `jmp` and its entry point, and the
//! chain rewires targets through the machine's code-patching interface.

use quamachine::error::MachineError;
use quamachine::machine::Machine;

/// One node of an executable chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainNode {
    /// Stable identifier chosen by the embedder (e.g. thread id).
    pub id: u32,
    /// Entry address control should arrive at (e.g. `sw_in`).
    pub entry: u32,
    /// Address of this node's patchable `jmp (abs).l` instruction.
    pub jmp_at: u32,
}

/// A circular chain of code nodes traversed by executing it.
#[derive(Debug, Default)]
pub struct JumpChain {
    nodes: Vec<ChainNode>,
    /// Patches applied over the chain's lifetime (for the monitor).
    pub patch_count: u64,
}

impl JumpChain {
    /// An empty chain.
    #[must_use]
    pub fn new() -> JumpChain {
        JumpChain::default()
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the chain is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes in traversal order.
    #[must_use]
    pub fn nodes(&self) -> &[ChainNode] {
        &self.nodes
    }

    /// Position of a node by id.
    #[must_use]
    pub fn position(&self, id: u32) -> Option<usize> {
        self.nodes.iter().position(|n| n.id == id)
    }

    /// The node following position `i` (circularly).
    #[must_use]
    pub fn next_of(&self, i: usize) -> &ChainNode {
        &self.nodes[(i + 1) % self.nodes.len()]
    }

    fn patch(&mut self, m: &mut Machine, jmp_at: u32, target: u32) -> Result<(), MachineError> {
        self.patch_count += 1;
        m.code.patch_jmp_target(jmp_at, target)
    }

    /// Insert `node` after position `at` (or as the only node), patching
    /// the predecessor's `jmp` to enter it and its `jmp` to continue the
    /// chain.
    ///
    /// # Errors
    ///
    /// Fails if a `jmp` address does not hold a patchable jump.
    pub fn insert_after(
        &mut self,
        m: &mut Machine,
        at: Option<usize>,
        node: ChainNode,
    ) -> Result<(), MachineError> {
        match at {
            None => {
                debug_assert!(self.nodes.is_empty());
                // A single node chains to itself.
                self.patch(m, node.jmp_at, node.entry)?;
                self.nodes.push(node);
            }
            Some(i) => {
                let next_entry = self.next_of(i).entry;
                let pred_jmp = self.nodes[i].jmp_at;
                self.patch(m, node.jmp_at, next_entry)?;
                self.patch(m, pred_jmp, node.entry)?;
                self.nodes.insert(i + 1, node);
            }
        }
        Ok(())
    }

    /// Insert `node` so it is the *next* node after position `cur` — the
    /// Synthesis unblocking rule: "As an event unblocks a thread, its TTE
    /// is placed at the front of the ready queue, giving it immediate
    /// access to the CPU" (paper Section 4.4).
    ///
    /// # Errors
    ///
    /// Fails if a `jmp` address does not hold a patchable jump.
    pub fn insert_front(
        &mut self,
        m: &mut Machine,
        cur: Option<usize>,
        node: ChainNode,
    ) -> Result<(), MachineError> {
        self.insert_after(m, cur, node)
    }

    /// Remove the node with `id`, patching its predecessor to skip it.
    /// Returns the removed node.
    ///
    /// # Errors
    ///
    /// Fails if a `jmp` address does not hold a patchable jump.
    pub fn remove(&mut self, m: &mut Machine, id: u32) -> Result<Option<ChainNode>, MachineError> {
        let Some(i) = self.position(id) else {
            return Ok(None);
        };
        if self.nodes.len() == 1 {
            return Ok(Some(self.nodes.remove(i)));
        }
        let next_entry = self.next_of(i).entry;
        let pred = (i + self.nodes.len() - 1) % self.nodes.len();
        let pred_jmp = self.nodes[pred].jmp_at;
        self.patch(m, pred_jmp, next_entry)?;
        Ok(Some(self.nodes.remove(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::asm::Asm;
    use quamachine::isa::{Operand::*, Size::L};
    use quamachine::machine::{Machine, MachineConfig};

    /// Build a node whose code is `move #id,d0 ; jmp <self>` — executing
    /// the chain records each visited node in d0; we intercept with
    /// breakpoints... simpler: each node increments d1 and moves its id to
    /// d0, and node 0 halts when d1 gets large.
    fn make_node(m: &mut Machine, base: u32, id: u32) -> ChainNode {
        let mut a = Asm::new(format!("node{id}"));
        a.move_i(L, id, Dr(0));
        a.add(L, Imm(1), Dr(1));
        let jmp_idx = a.len();
        a.jmp(Abs(0)); // patched by the chain
        let blk = a.assemble().unwrap();
        let entry = m.load_block(base, blk).unwrap();
        let jmp_at = m.code.addr_of(base, jmp_idx).unwrap();
        ChainNode { id, entry, jmp_at }
    }

    fn run_chain(m: &mut Machine, entry: u32, steps: u64) -> Vec<u32> {
        // Execute the chain and record d0 at each node visit by stepping.
        m.cpu.pc = entry;
        m.cpu.a[7] = 0x8000;
        let mut visits = Vec::new();
        let mut budget = steps;
        while budget > 0 {
            let before = m.cpu.d[1];
            match m.step() {
                Ok(None) => {}
                other => panic!("unexpected exit {other:?}"),
            }
            if m.cpu.d[1] != before {
                visits.push(m.cpu.d[0]);
                budget -= 1;
            }
        }
        visits
    }

    #[test]
    fn single_node_chains_to_itself() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let n0 = make_node(&mut m, 0x1000, 10);
        let mut chain = JumpChain::new();
        chain.insert_after(&mut m, None, n0).unwrap();
        let visits = run_chain(&mut m, n0.entry, 3);
        assert_eq!(visits, vec![10, 10, 10]);
    }

    #[test]
    fn insertion_and_traversal_order() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let n0 = make_node(&mut m, 0x1000, 10);
        let n1 = make_node(&mut m, 0x1100, 11);
        let n2 = make_node(&mut m, 0x1200, 12);
        let mut chain = JumpChain::new();
        chain.insert_after(&mut m, None, n0).unwrap();
        chain.insert_after(&mut m, Some(0), n1).unwrap();
        chain.insert_after(&mut m, Some(1), n2).unwrap();
        let visits = run_chain(&mut m, n0.entry, 6);
        assert_eq!(visits, vec![10, 11, 12, 10, 11, 12]);
    }

    #[test]
    fn removal_patches_predecessor() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let n0 = make_node(&mut m, 0x1000, 10);
        let n1 = make_node(&mut m, 0x1100, 11);
        let n2 = make_node(&mut m, 0x1200, 12);
        let mut chain = JumpChain::new();
        chain.insert_after(&mut m, None, n0).unwrap();
        chain.insert_after(&mut m, Some(0), n1).unwrap();
        chain.insert_after(&mut m, Some(1), n2).unwrap();
        chain.remove(&mut m, 11).unwrap().unwrap();
        let visits = run_chain(&mut m, n0.entry, 4);
        assert_eq!(visits, vec![10, 12, 10, 12]);
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn remove_unknown_id_is_none() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let mut chain = JumpChain::new();
        assert_eq!(chain.remove(&mut m, 42).unwrap(), None);
    }

    #[test]
    fn removing_last_node_empties_chain() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let n0 = make_node(&mut m, 0x1000, 10);
        let mut chain = JumpChain::new();
        chain.insert_after(&mut m, None, n0).unwrap();
        let removed = chain.remove(&mut m, 10).unwrap().unwrap();
        assert_eq!(removed.id, 10);
        assert!(chain.is_empty());
    }

    #[test]
    fn halted_machine_not_required_for_patching() {
        // Patching works while the "machine" is mid-run (between steps):
        // insert a node while executing and observe it on the next lap.
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let n0 = make_node(&mut m, 0x1000, 10);
        let n1 = make_node(&mut m, 0x1100, 11);
        let mut chain = JumpChain::new();
        chain.insert_after(&mut m, None, n0).unwrap();
        m.cpu.pc = n0.entry;
        m.cpu.a[7] = 0x8000;
        // Take a lap, then splice in n1.
        for _ in 0..3 {
            m.step().unwrap();
        }
        chain.insert_after(&mut m, Some(0), n1).unwrap();
        let pc = m.cpu.pc;
        let visits = run_chain(&mut m, pc, 4);
        assert!(visits.windows(2).any(|w| w == [10, 11] || w == [11, 10]));
    }

    #[test]
    fn patch_count_accumulates() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let n0 = make_node(&mut m, 0x1000, 1);
        let n1 = make_node(&mut m, 0x1100, 2);
        let mut chain = JumpChain::new();
        chain.insert_after(&mut m, None, n0).unwrap();
        chain.insert_after(&mut m, Some(0), n1).unwrap();
        chain.remove(&mut m, 2).unwrap();
        assert_eq!(chain.patch_count, 4); // 1 + 2 + 1
    }
}
