//! The synchronization layer the queues compile against.
//!
//! In a normal build this module is a zero-cost re-export of
//! `std::sync::atomic` and `std::cell::UnsafeCell`. With
//! `--features sim` the same names resolve to the instrumented shims in
//! [`crate::sim::shim`], which hand control to the deterministic
//! schedule-exploration executor at every atomic operation. The queue
//! modules import *only* from here, so their algorithmic code is
//! byte-for-byte identical under both backends — exactly the property a
//! model checker needs: the code being explored is the code that ships.

pub use std::sync::atomic::Ordering;

#[cfg(not(feature = "sim"))]
pub use std::cell::UnsafeCell;
#[cfg(not(feature = "sim"))]
pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};

#[cfg(feature = "sim")]
pub use crate::sim::shim::{
    SimAtomicBool as AtomicBool, SimAtomicU32 as AtomicU32, SimAtomicU64 as AtomicU64,
    SimAtomicUsize as AtomicUsize, SimCell as UnsafeCell,
};
