//! Synchronous (blocking) queues.
//!
//! "Semantically, we have the usual two kinds of queues, the synchronous
//! queue which blocks at queue full or queue empty, and the asynchronous
//! queue which signals at those conditions" (Section 2.3). This module is
//! the synchronous flavour, layered over the lock-free MP-MC ring: the
//! fast path is still optimistic; parking only happens at the
//! full/empty boundary, which is exactly where the paper says
//! synchronization belongs.
//!
//! A queue can also be **closed** (see [`BlockingQueue::close`]) when a
//! peer dies — the kernel does this when it reaps a thread holding one
//! end. Closing wakes every parked party so a producer blocked on a full
//! queue whose consumer is gone does not wedge forever.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::mpmc;
use crate::sync::{AtomicBool, Ordering};
use crate::{BatchFull, Disconnected, Full};

struct Waiters {
    lock: Mutex<()>,
    not_empty: Condvar,
    not_full: Condvar,
    closed: AtomicBool,
}

/// A cloneable blocking queue handle.
pub struct BlockingQueue<T> {
    q: mpmc::Handle<T>,
    w: Arc<Waiters>,
}

impl<T> Clone for BlockingQueue<T> {
    fn clone(&self) -> Self {
        BlockingQueue {
            q: self.q.clone(),
            w: self.w.clone(),
        }
    }
}

impl<T: Send> BlockingQueue<T> {
    /// A blocking queue with `capacity` slots (at least 2, inherited from
    /// the underlying [`mpmc`] ring).
    #[must_use]
    pub fn new(capacity: usize) -> BlockingQueue<T> {
        BlockingQueue {
            q: mpmc::channel(capacity),
            w: Arc::new(Waiters {
                lock: Mutex::new(()),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                closed: AtomicBool::new(false),
            }),
        }
    }

    /// Close the queue: every blocked party wakes, and further
    /// [`BlockingQueue::put_or_disconnect`] /
    /// [`BlockingQueue::get_or_disconnect`] calls stop blocking. The
    /// kernel closes a queue when it reaps the thread on the other end.
    pub fn close(&self) {
        self.w.closed.store(true, Ordering::SeqCst);
        let g = self.w.lock.lock();
        drop(g);
        self.w.not_empty.notify_all();
        self.w.not_full.notify_all();
    }

    /// Whether the queue has been closed.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.w.closed.load(Ordering::SeqCst)
    }

    /// Insert, blocking while the queue is full. On a *closed* queue the
    /// item is dropped rather than blocking forever — the consumer is
    /// dead and the data has nowhere to go. Use
    /// [`BlockingQueue::put_or_disconnect`] to get the item back instead.
    pub fn put(&self, data: T) {
        let _ = self.put_or_disconnect(data);
    }

    /// Insert, blocking while the queue is full; unblocks with
    /// `Err(Disconnected)` when the queue is closed.
    ///
    /// # Errors
    ///
    /// Returns the item back when the queue is (or becomes) closed.
    pub fn put_or_disconnect(&self, mut data: T) -> Result<(), Disconnected<T>> {
        loop {
            if self.is_closed() {
                return Err(Disconnected(data));
            }
            match self.q.put(data) {
                Ok(()) => {
                    self.w.not_empty.notify_one();
                    return Ok(());
                }
                Err(Full(back)) => {
                    data = back;
                    let mut g = self.w.lock.lock();
                    // Re-check under the lock to avoid a lost wakeup.
                    match self.q.put(data) {
                        Ok(()) => {
                            drop(g);
                            self.w.not_empty.notify_one();
                            return Ok(());
                        }
                        Err(Full(back)) => {
                            data = back;
                            if self.is_closed() {
                                return Err(Disconnected(data));
                            }
                            self.w.not_full.wait_for(&mut g, Duration::from_millis(5));
                        }
                    }
                }
            }
        }
    }

    /// Take, blocking while the queue is empty. Only for queues that are
    /// never closed; see [`BlockingQueue::get_or_disconnect`] for the
    /// peer-death-tolerant form.
    pub fn get(&self) -> T {
        loop {
            if let Some(v) = self.q.get() {
                self.w.not_full.notify_one();
                return v;
            }
            let mut g = self.w.lock.lock();
            if let Some(v) = self.q.get() {
                drop(g);
                self.w.not_full.notify_one();
                return v;
            }
            self.w.not_empty.wait_for(&mut g, Duration::from_millis(5));
        }
    }

    /// Take, blocking while the queue is empty; unblocks with `None` when
    /// the queue is closed *and* drained (items enqueued before the close
    /// are still delivered).
    pub fn get_or_disconnect(&self) -> Option<T> {
        loop {
            if let Some(v) = self.q.get() {
                self.w.not_full.notify_one();
                return Some(v);
            }
            if self.is_closed() {
                return None;
            }
            let mut g = self.w.lock.lock();
            if let Some(v) = self.q.get() {
                drop(g);
                self.w.not_full.notify_one();
                return Some(v);
            }
            if self.is_closed() {
                return None;
            }
            self.w.not_empty.wait_for(&mut g, Duration::from_millis(5));
        }
    }

    /// Non-blocking insert.
    ///
    /// # Errors
    ///
    /// Returns [`Full`] when at capacity.
    pub fn try_put(&self, data: T) -> Result<(), Full<T>> {
        let r = self.q.put(data);
        if r.is_ok() {
            self.w.not_empty.notify_one();
        }
        r
    }

    /// Non-blocking all-or-nothing batch insert (the paper's multi-item
    /// insert, via [`mpmc::Handle::put_many`]). Wakes all parked
    /// consumers on success — a batch can satisfy several of them.
    ///
    /// # Errors
    ///
    /// Returns [`BatchFull`] handing the batch back when it does not fit.
    pub fn try_put_many(&self, data: Vec<T>) -> Result<(), BatchFull<T>> {
        let r = self.q.put_many(data);
        if r.is_ok() {
            self.w.not_empty.notify_all();
        }
        r
    }

    /// Non-blocking take.
    pub fn try_get(&self) -> Option<T> {
        let v = self.q.get();
        if v.is_some() {
            self.w.not_full.notify_one();
        }
        v
    }

    /// Approximate occupancy.
    #[must_use]
    pub fn len_hint(&self) -> usize {
        self.q.len_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let q = BlockingQueue::new(4);
        q.put(1);
        q.put(2);
        assert_eq!(q.get(), 1);
        assert_eq!(q.get(), 2);
    }

    #[test]
    fn blocks_at_empty_until_producer_arrives() {
        let q = BlockingQueue::new(4);
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.get());
        std::thread::sleep(Duration::from_millis(20));
        q.put(99);
        assert_eq!(t.join().unwrap(), 99);
    }

    #[test]
    fn blocks_at_full_until_consumer_drains() {
        let q = BlockingQueue::new(2);
        q.put(1);
        q.put(2);
        let q2 = q.clone();
        let t = std::thread::spawn(move || {
            q2.put(3); // blocks until the main thread gets
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.get(), 1);
        t.join().unwrap();
        assert_eq!(q.get(), 2);
        assert_eq!(q.get(), 3);
    }

    #[test]
    fn close_unwedges_blocked_producer() {
        let q = BlockingQueue::new(2);
        q.put(1);
        q.put(2); // full
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.put_or_disconnect(3));
        std::thread::sleep(Duration::from_millis(20));
        // The consumer dies without draining: close instead of wedging.
        q.close();
        assert_eq!(t.join().unwrap(), Err(Disconnected(3)));
    }

    #[test]
    fn close_unwedges_blocked_consumer_after_drain() {
        let q: BlockingQueue<u32> = BlockingQueue::new(4);
        q.put(7);
        let q2 = q.clone();
        let t = std::thread::spawn(move || {
            let first = q2.get_or_disconnect();
            let second = q2.get_or_disconnect(); // blocks until close
            (first, second)
        });
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        // Items enqueued before the close still arrive; then None.
        assert_eq!(t.join().unwrap(), (Some(7), None));
    }

    #[test]
    fn legacy_put_drops_on_closed_queue() {
        let q = BlockingQueue::new(2);
        q.close();
        q.put(1); // returns instead of blocking; item dropped
        assert!(q.is_closed());
        assert_eq!(q.try_get(), None);
    }

    #[test]
    fn many_blocking_parties() {
        const N: u64 = 2_000;
        let q = BlockingQueue::new(16);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..N {
                    q.put(t * N + i);
                }
            }));
        }
        let mut total: u64 = 0;
        let mut count = 0;
        while count < 4 * N {
            total = total.wrapping_add(q.get());
            count += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        let expect: u64 = (0..4 * N).sum();
        assert_eq!(total, expect);
    }
}
