//! Synchronous (blocking) queues.
//!
//! "Semantically, we have the usual two kinds of queues, the synchronous
//! queue which blocks at queue full or queue empty, and the asynchronous
//! queue which signals at those conditions" (Section 2.3). This module is
//! the synchronous flavour, layered over the lock-free MP-MC ring: the
//! fast path is still optimistic; parking only happens at the
//! full/empty boundary, which is exactly where the paper says
//! synchronization belongs.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::mpmc;
use crate::Full;

struct Waiters {
    lock: Mutex<()>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// A cloneable blocking queue handle.
pub struct BlockingQueue<T> {
    q: mpmc::Handle<T>,
    w: Arc<Waiters>,
}

impl<T> Clone for BlockingQueue<T> {
    fn clone(&self) -> Self {
        BlockingQueue {
            q: self.q.clone(),
            w: self.w.clone(),
        }
    }
}

impl<T: Send> BlockingQueue<T> {
    /// A blocking queue with `capacity` slots (at least 2, inherited from
    /// the underlying [`mpmc`] ring).
    #[must_use]
    pub fn new(capacity: usize) -> BlockingQueue<T> {
        BlockingQueue {
            q: mpmc::channel(capacity),
            w: Arc::new(Waiters {
                lock: Mutex::new(()),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
            }),
        }
    }

    /// Insert, blocking while the queue is full.
    pub fn put(&self, mut data: T) {
        loop {
            match self.q.put(data) {
                Ok(()) => {
                    self.w.not_empty.notify_one();
                    return;
                }
                Err(Full(back)) => {
                    data = back;
                    let mut g = self.w.lock.lock();
                    // Re-check under the lock to avoid a lost wakeup.
                    match self.q.put(data) {
                        Ok(()) => {
                            drop(g);
                            self.w.not_empty.notify_one();
                            return;
                        }
                        Err(Full(back)) => {
                            data = back;
                            self.w.not_full.wait_for(&mut g, Duration::from_millis(5));
                        }
                    }
                }
            }
        }
    }

    /// Take, blocking while the queue is empty.
    pub fn get(&self) -> T {
        loop {
            if let Some(v) = self.q.get() {
                self.w.not_full.notify_one();
                return v;
            }
            let mut g = self.w.lock.lock();
            if let Some(v) = self.q.get() {
                drop(g);
                self.w.not_full.notify_one();
                return v;
            }
            self.w.not_empty.wait_for(&mut g, Duration::from_millis(5));
        }
    }

    /// Non-blocking insert.
    ///
    /// # Errors
    ///
    /// Returns [`Full`] when at capacity.
    pub fn try_put(&self, data: T) -> Result<(), Full<T>> {
        let r = self.q.put(data);
        if r.is_ok() {
            self.w.not_empty.notify_one();
        }
        r
    }

    /// Non-blocking take.
    pub fn try_get(&self) -> Option<T> {
        let v = self.q.get();
        if v.is_some() {
            self.w.not_full.notify_one();
        }
        v
    }

    /// Approximate occupancy.
    #[must_use]
    pub fn len_hint(&self) -> usize {
        self.q.len_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let q = BlockingQueue::new(4);
        q.put(1);
        q.put(2);
        assert_eq!(q.get(), 1);
        assert_eq!(q.get(), 2);
    }

    #[test]
    fn blocks_at_empty_until_producer_arrives() {
        let q = BlockingQueue::new(4);
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.get());
        std::thread::sleep(Duration::from_millis(20));
        q.put(99);
        assert_eq!(t.join().unwrap(), 99);
    }

    #[test]
    fn blocks_at_full_until_consumer_drains() {
        let q = BlockingQueue::new(2);
        q.put(1);
        q.put(2);
        let q2 = q.clone();
        let t = std::thread::spawn(move || {
            q2.put(3); // blocks until the main thread gets
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.get(), 1);
        t.join().unwrap();
        assert_eq!(q.get(), 2);
        assert_eq!(q.get(), 3);
    }

    #[test]
    fn many_blocking_parties() {
        const N: u64 = 2_000;
        let q = BlockingQueue::new(16);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..N {
                    q.put(t * N + i);
                }
            }));
        }
        let mut total: u64 = 0;
        let mut count = 0;
        while count < 4 * N {
            total = total.wrapping_add(q.get());
            count += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        let expect: u64 = (0..4 * N).sum();
        assert_eq!(total, expect);
    }
}
