//! Switches: route events to handlers.
//!
//! "A switch is equivalent to the C switch statement. For example,
//! switches direct interrupts to the appropriate service routines"
//! (Section 2.3). Handlers are installed per tag; dispatching an unknown
//! tag falls through to a default handler, like a `default:` arm.

use std::collections::HashMap;
use std::hash::Hash;

/// A handler taking the event payload.
pub type Handler<E> = Box<dyn FnMut(E) + Send>;

/// A switch from tags `K` to handlers of events `E`.
pub struct Switch<K, E> {
    arms: HashMap<K, Handler<E>>,
    default: Option<Handler<E>>,
    /// Dispatches that found an arm.
    pub hits: u64,
    /// Dispatches that fell through to the default.
    pub misses: u64,
}

impl<K: Eq + Hash, E> Default for Switch<K, E> {
    fn default() -> Self {
        Switch::new()
    }
}

impl<K: Eq + Hash, E> Switch<K, E> {
    /// An empty switch.
    #[must_use]
    pub fn new() -> Switch<K, E> {
        Switch {
            arms: HashMap::new(),
            default: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Install a handler for `tag`, returning any previous one.
    pub fn install(&mut self, tag: K, handler: Handler<E>) -> Option<Handler<E>> {
        self.arms.insert(tag, handler)
    }

    /// Install the default arm.
    pub fn install_default(&mut self, handler: Handler<E>) {
        self.default = Some(handler);
    }

    /// Remove the handler for `tag`.
    pub fn remove(&mut self, tag: &K) -> Option<Handler<E>> {
        self.arms.remove(tag)
    }

    /// Dispatch an event; returns whether any handler ran.
    pub fn dispatch(&mut self, tag: &K, event: E) -> bool {
        if let Some(h) = self.arms.get_mut(tag) {
            self.hits += 1;
            h(event);
            true
        } else if let Some(d) = self.default.as_mut() {
            self.misses += 1;
            d(event);
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Number of installed arms (excluding the default).
    #[must_use]
    pub fn len(&self) -> usize {
        self.arms.len()
    }

    /// Whether no arms are installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.arms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn routes_by_tag() {
        let hits = Arc::new(AtomicU32::new(0));
        let mut sw: Switch<u8, u32> = Switch::new();
        let h = hits.clone();
        sw.install(
            5,
            Box::new(move |v| {
                h.fetch_add(v, Ordering::SeqCst);
            }),
        );
        assert!(sw.dispatch(&5, 10));
        assert!(sw.dispatch(&5, 1));
        assert_eq!(hits.load(Ordering::SeqCst), 11);
        assert_eq!(sw.hits, 2);
    }

    #[test]
    fn default_arm_catches_unknown() {
        let misses = Arc::new(AtomicU32::new(0));
        let mut sw: Switch<u8, u32> = Switch::new();
        let m = misses.clone();
        sw.install_default(Box::new(move |_| {
            m.fetch_add(1, Ordering::SeqCst);
        }));
        assert!(sw.dispatch(&9, 0));
        assert_eq!(misses.load(Ordering::SeqCst), 1);
        assert_eq!(sw.misses, 1);
    }

    #[test]
    fn no_handler_returns_false() {
        let mut sw: Switch<u8, ()> = Switch::new();
        assert!(!sw.dispatch(&1, ()));
    }

    #[test]
    fn reinstall_replaces() {
        let mut sw: Switch<u8, u32> = Switch::new();
        sw.install(1, Box::new(|_| {}));
        assert!(sw.install(1, Box::new(|_| {})).is_some());
        assert_eq!(sw.len(), 1);
        assert!(sw.remove(&1).is_some());
        assert!(sw.is_empty());
    }
}
