//! The work-stealing pool for the SMP scheduler.
//!
//! Per-CPU ready queues stay executable data structures (TTE `jmp`
//! chains) inside the simulated kernel; *balancing* between them flows
//! through this pool: a CPU with surplus ready threads offers them here,
//! and a starved CPU steals whatever is oldest. The pool is a thin veneer
//! over the optimistic multi-producer multi-consumer queue of
//! [`crate::mpmc`] — the Synthesis claim is precisely that the lock-free
//! queues designed for single-CPU interrupt concurrency carry over to
//! multiprocessor concurrency unchanged, so the transfer medium *is* that
//! queue, plus two counters.
//!
//! Like the other blocks, the pool compiles against [`crate::sync`], so
//! under `--features sim` every atomic step becomes a preemption point
//! and steal/offer races can be exhaustively explored.

use std::sync::Arc;

use crate::mpmc;
use crate::sync::{AtomicU64, Ordering};

/// A shared pool of stealable work items.
///
/// Cloning yields another handle to the same pool (all counters shared).
pub struct WorkPool<T> {
    q: mpmc::Handle<T>,
    offered: Arc<AtomicU64>,
    stolen: Arc<AtomicU64>,
}

impl<T> Clone for WorkPool<T> {
    fn clone(&self) -> Self {
        WorkPool {
            q: self.q.clone(),
            offered: Arc::clone(&self.offered),
            stolen: Arc::clone(&self.stolen),
        }
    }
}

impl<T> WorkPool<T> {
    /// A pool holding up to `capacity` items (rounded up to 2 — the
    /// underlying queue needs at least one slot of slack).
    #[must_use]
    pub fn new(capacity: usize) -> WorkPool<T> {
        WorkPool {
            q: mpmc::channel(capacity.max(2)),
            offered: Arc::new(AtomicU64::new(0)),
            stolen: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Offer an item for stealing. Returns the item back if the pool is
    /// full (the offering CPU just keeps the work).
    ///
    /// # Errors
    ///
    /// `Err(item)` when the pool is at capacity.
    pub fn offer(&self, item: T) -> Result<(), T> {
        match self.q.put(item) {
            Ok(()) => {
                self.offered.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(full) => Err(full.0),
        }
    }

    /// Steal the oldest offered item, if any.
    pub fn steal(&self) -> Option<T> {
        let item = self.q.get()?;
        self.stolen.fetch_add(1, Ordering::Relaxed);
        Some(item)
    }

    /// Items offered over the pool's lifetime.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.offered.load(Ordering::Relaxed)
    }

    /// Items stolen over the pool's lifetime.
    #[must_use]
    pub fn stolen(&self) -> u64 {
        self.stolen.load(Ordering::Relaxed)
    }

    /// Approximate number of items currently in the pool.
    #[must_use]
    pub fn len_hint(&self) -> usize {
        self.q.len_hint()
    }
}

#[cfg(all(test, not(feature = "sim")))]
mod tests {
    use super::*;

    #[test]
    fn offer_then_steal_fifo() {
        let p = WorkPool::new(4);
        p.offer(1u32).unwrap();
        p.offer(2).unwrap();
        assert_eq!(p.steal(), Some(1));
        assert_eq!(p.steal(), Some(2));
        assert_eq!(p.steal(), None);
        assert_eq!(p.offered(), 2);
        assert_eq!(p.stolen(), 2);
    }

    #[test]
    fn full_pool_returns_item() {
        let p = WorkPool::new(2);
        p.offer(1u32).unwrap();
        p.offer(2).unwrap();
        let r = p.offer(3);
        assert_eq!(r, Err(3));
        assert_eq!(p.offered(), 2);
    }

    #[test]
    fn clones_share_state() {
        let p = WorkPool::new(4);
        let q = p.clone();
        p.offer(7u32).unwrap();
        assert_eq!(q.steal(), Some(7));
        assert_eq!(p.stolen(), 1);
    }

    #[test]
    fn concurrent_offer_steal_loses_nothing() {
        let p = WorkPool::new(64);
        let n = 4;
        let per = 500;
        let mut handles = Vec::new();
        for t in 0..n {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    let mut item = t * per + i;
                    loop {
                        match p.offer(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let mut got = Vec::new();
        while got.len() < (n * per) as usize {
            if let Some(v) = p.steal() {
                got.push(v);
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        got.sort_unstable();
        let want: Vec<u32> = (0..n * per).collect();
        assert_eq!(got, want);
    }
}
