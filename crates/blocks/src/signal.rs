//! Asynchronous (signalling) queues.
//!
//! The asynchronous queue "signals at those conditions" — queue-full and
//! queue-empty — instead of blocking (Section 2.3). In the kernel the
//! signal is a software interrupt to the blocked thread; here it is a
//! callback, which the kernel layer wires to its signal mechanism and
//! examples wire to whatever they like.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::mpmc;
use crate::sync::{AtomicBool, Ordering};
use crate::{BatchFull, Disconnected, Full};

/// Callback type for queue-condition signals.
pub type SignalFn = Arc<dyn Fn() + Send + Sync>;

struct Signals {
    /// Fired when a put makes the queue non-empty.
    data_ready: Mutex<Option<SignalFn>>,
    /// Fired when a get makes a full queue non-full.
    space_ready: Mutex<Option<SignalFn>>,
    /// A peer died; puts are refused and both signals have fired one
    /// last time so nothing keeps waiting on a condition that will
    /// never recur.
    closed: AtomicBool,
}

/// A cloneable signalling queue.
pub struct SignalQueue<T> {
    q: mpmc::Handle<T>,
    s: Arc<Signals>,
    capacity: usize,
}

impl<T> Clone for SignalQueue<T> {
    fn clone(&self) -> Self {
        SignalQueue {
            q: self.q.clone(),
            s: self.s.clone(),
            capacity: self.capacity,
        }
    }
}

impl<T: Send> SignalQueue<T> {
    /// A signalling queue with `capacity` slots.
    #[must_use]
    pub fn new(capacity: usize) -> SignalQueue<T> {
        SignalQueue {
            q: mpmc::channel(capacity),
            s: Arc::new(Signals {
                data_ready: Mutex::new(None),
                space_ready: Mutex::new(None),
                closed: AtomicBool::new(false),
            }),
            capacity,
        }
    }

    /// Close the queue (a peer died): further puts are refused with
    /// [`Disconnected`], and both signals fire one final time so parties
    /// waiting for data or space learn the peer is gone instead of
    /// waiting on an edge that will never come.
    pub fn close(&self) {
        self.s.closed.store(true, Ordering::SeqCst);
        if let Some(f) = self.s.data_ready.lock().clone() {
            f();
        }
        if let Some(f) = self.s.space_ready.lock().clone() {
            f();
        }
    }

    /// Whether the queue has been closed.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.s.closed.load(Ordering::SeqCst)
    }

    /// Install the data-ready signal (empty → non-empty transitions).
    pub fn on_data_ready(&self, f: SignalFn) {
        *self.s.data_ready.lock() = Some(f);
    }

    /// Install the space-ready signal (full → non-full transitions).
    pub fn on_space_ready(&self, f: SignalFn) {
        *self.s.space_ready.lock() = Some(f);
    }

    /// Insert an item; signals `data_ready` on the empty→non-empty edge.
    ///
    /// # Errors
    ///
    /// Returns [`Full`] when at capacity *or* when the queue is closed —
    /// a dead consumer's queue is never going to drain, so inserts are
    /// refused rather than accepted into a void. Callers that need to
    /// distinguish the two (retry vs. give up) use
    /// [`SignalQueue::put_or_disconnect`].
    pub fn put(&self, data: T) -> Result<(), Full<T>> {
        if self.is_closed() {
            return Err(Full(data));
        }
        let was_empty = self.q.len_hint() == 0;
        let r = self.q.put(data);
        if r.is_ok() && was_empty {
            if let Some(f) = self.s.data_ready.lock().clone() {
                f();
            }
        }
        r
    }

    /// All-or-nothing batch insert (the paper's multi-item insert, via
    /// [`mpmc::Handle::put_many`]); signals `data_ready` on the
    /// empty→non-empty edge exactly once for the whole batch.
    ///
    /// # Errors
    ///
    /// Returns [`BatchFull`] when the batch does not fit *or* the queue
    /// is closed (as with [`SignalQueue::put`], a dead consumer's queue
    /// will never drain).
    pub fn put_many(&self, data: Vec<T>) -> Result<(), BatchFull<T>> {
        if self.is_closed() {
            return Err(BatchFull(data));
        }
        let was_empty = self.q.len_hint() == 0;
        let r = self.q.put_many(data);
        if r.is_ok() && was_empty {
            if let Some(f) = self.s.data_ready.lock().clone() {
                f();
            }
        }
        r
    }

    /// Insert an item, distinguishing a full queue from a dead peer.
    ///
    /// # Errors
    ///
    /// `Err(Ok(Full))` when at capacity (retry after `space_ready`);
    /// `Err(Err(Disconnected))` when the queue is closed (give up).
    #[allow(clippy::type_complexity)]
    pub fn put_or_disconnect(&self, data: T) -> Result<(), Result<Full<T>, Disconnected<T>>> {
        if self.is_closed() {
            return Err(Err(Disconnected(data)));
        }
        self.put(data).map_err(Ok)
    }

    /// Take an item; signals `space_ready` on the full→non-full edge.
    pub fn get(&self) -> Option<T> {
        let was_full = self.q.len_hint() >= self.capacity;
        let v = self.q.get();
        if v.is_some() && was_full {
            if let Some(f) = self.s.space_ready.lock().clone() {
                f();
            }
        }
        v
    }

    /// Approximate occupancy.
    #[must_use]
    pub fn len_hint(&self) -> usize {
        self.q.len_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn data_ready_fires_on_empty_transition() {
        let q = SignalQueue::new(4);
        let fired = Arc::new(AtomicU32::new(0));
        let f = fired.clone();
        q.on_data_ready(Arc::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        q.put(1).unwrap();
        q.put(2).unwrap(); // not an empty transition
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        q.get();
        q.get();
        q.put(3).unwrap(); // empty again -> fires
        assert_eq!(fired.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn space_ready_fires_on_full_transition() {
        let q = SignalQueue::new(2);
        let fired = Arc::new(AtomicU32::new(0));
        let f = fired.clone();
        q.on_space_ready(Arc::new(move || {
            f.fetch_add(1, Ordering::SeqCst);
        }));
        q.put(1).unwrap();
        q.get(); // not full -> no signal
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        q.put(1).unwrap();
        q.put(2).unwrap(); // now full
        q.get(); // full -> non-full: fires
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn works_without_signals_installed() {
        let q = SignalQueue::new(2);
        q.put(5).unwrap();
        assert_eq!(q.get(), Some(5));
        assert_eq!(q.get(), None);
    }

    #[test]
    fn close_fires_both_signals_once_more() {
        let q: SignalQueue<u32> = SignalQueue::new(2);
        let data = Arc::new(AtomicU32::new(0));
        let space = Arc::new(AtomicU32::new(0));
        let (d, s) = (data.clone(), space.clone());
        q.on_data_ready(Arc::new(move || {
            d.fetch_add(1, Ordering::SeqCst);
        }));
        q.on_space_ready(Arc::new(move || {
            s.fetch_add(1, Ordering::SeqCst);
        }));
        q.close();
        // Both parties wake so they notice the peer is gone.
        assert_eq!(data.load(Ordering::SeqCst), 1);
        assert_eq!(space.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn put_refused_after_close() {
        let q = SignalQueue::new(4);
        q.put(1).unwrap();
        q.close();
        assert_eq!(q.put(2), Err(Full(2)));
        assert_eq!(q.put_or_disconnect(3), Err(Err(Disconnected(3))));
        // Items enqueued before the close still drain.
        assert_eq!(q.get(), Some(1));
        assert_eq!(q.get(), None);
    }
}
