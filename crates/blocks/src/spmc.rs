//! The SP-MC optimistic queue: one producer, multiple consumers.
//!
//! Consumers "stake a claim" to the next occupied slot with a
//! compare-and-swap on the tail — the mirror image of Figure 2's producer
//! side. Slot validity uses a per-slot *sequence counter*, the lap-safe
//! generalization of the paper's flag array (the flag is the sequence's
//! low bit): a slot stamped `c + 1` holds the item for counter `c`; a slot
//! stamped `c + cap` is free for the producer's next lap.

use std::mem::MaybeUninit;
use std::sync::Arc;

use crossbeam::utils::CachePadded;

use crate::sync::{AtomicU64, Ordering, UnsafeCell};
use crate::{BatchFull, Full};

struct Slot<T> {
    seq: AtomicU64,
    val: UnsafeCell<MaybeUninit<T>>,
}

struct Shared<T> {
    buf: Box<[Slot<T>]>,
    head: CachePadded<AtomicU64>,
    tail: CachePadded<AtomicU64>,
    retries: CachePadded<AtomicU64>,
}

// SAFETY: Slot ownership is transferred through the seq protocol
// (Release on stamp, Acquire on observe), exactly one party may touch a
// slot's value between stamps.
unsafe impl<T: Send> Send for Shared<T> {}
// SAFETY: See above.
unsafe impl<T: Send> Sync for Shared<T> {}

/// The single producer handle.
pub struct Producer<T> {
    q: Arc<Shared<T>>,
    head: u64,
}

/// A consumer handle; clone it for each consuming thread.
pub struct Consumer<T> {
    q: Arc<Shared<T>>,
}

impl<T> Clone for Consumer<T> {
    fn clone(&self) -> Self {
        Consumer { q: self.q.clone() }
    }
}

// SAFETY: Protocol-mediated access as above.
unsafe impl<T: Send> Send for Producer<T> {}
// SAFETY: Protocol-mediated access as above.
unsafe impl<T: Send> Send for Consumer<T> {}

/// Create an SP-MC queue with `capacity` slots.
///
/// `capacity` must be at least 2 (see the sequence-stamp collision note
/// on [`crate::mpmc::channel`]).
#[must_use]
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity >= 2, "spmc requires capacity >= 2");
    let buf: Box<[Slot<T>]> = (0..capacity as u64)
        .map(|i| Slot {
            // Slot i is free for counter i on lap 0.
            seq: AtomicU64::new(i),
            val: UnsafeCell::new(MaybeUninit::uninit()),
        })
        .collect();
    let q = Arc::new(Shared {
        buf,
        head: CachePadded::new(AtomicU64::new(0)),
        tail: CachePadded::new(AtomicU64::new(0)),
        retries: CachePadded::new(AtomicU64::new(0)),
    });
    (
        Producer {
            q: q.clone(),
            head: 0,
        },
        Consumer { q },
    )
}

impl<T> Producer<T> {
    /// Insert an item.
    ///
    /// # Errors
    ///
    /// Returns [`Full`] when the next slot has not been drained yet.
    pub fn put(&mut self, data: T) -> Result<(), Full<T>> {
        let cap = self.q.buf.len() as u64;
        let h = self.head;
        let slot = &self.q.buf[(h % cap) as usize];
        // The slot is free for us when its stamp equals our counter.
        if slot.seq.load(Ordering::Acquire) != h {
            return Err(Full(data));
        }
        // SAFETY: A stamp of exactly `h` means the lap-(h/cap - 1)
        // consumer finished with this slot and nobody else will touch it
        // until we stamp `h + 1`.
        unsafe {
            (*slot.val.get()).write(data);
        }
        slot.seq.store(h + 1, Ordering::Release);
        self.head = h + 1;
        self.q.head.store(h + 1, Ordering::Release);
        crate::tap::record(
            crate::tap::OpKind::Put,
            std::sync::Arc::as_ptr(&self.q) as usize as u32,
            1,
        );
        Ok(())
    }

    /// Insert a whole batch, all-or-nothing (the paper's multi-item
    /// insert).
    ///
    /// Every slot the batch needs is checked *before* anything is
    /// written. Checking only the last slot would be unsound here:
    /// consumers stake claims in counter order but may finish (and free
    /// their slots) out of order, so a later slot can be free while an
    /// earlier one is still being read. Once all checks pass the slots
    /// cannot be un-freed (only this producer advances a free slot's
    /// stamp), so the fill needs no rollback; items publish in order via
    /// their per-slot stamps, Figure 2's valid flags.
    ///
    /// # Errors
    ///
    /// Returns [`BatchFull`] handing the batch back untouched when the
    /// batch does not fit.
    pub fn put_many(&mut self, data: Vec<T>) -> Result<(), BatchFull<T>> {
        let n = data.len() as u64;
        if n == 0 {
            return Ok(());
        }
        let cap = self.q.buf.len() as u64;
        if n > cap {
            return Err(BatchFull(data));
        }
        let h = self.head;
        for j in 0..n {
            let slot = &self.q.buf[((h + j) % cap) as usize];
            if slot.seq.load(Ordering::Acquire) != h + j {
                return Err(BatchFull(data));
            }
        }
        for (j, item) in data.into_iter().enumerate() {
            let c = h + j as u64;
            let slot = &self.q.buf[(c % cap) as usize];
            // SAFETY: The stamp equalled `c` above and only the (single)
            // producer can advance a free slot's stamp, so the slot is
            // exclusively ours until we stamp `c + 1`.
            unsafe {
                (*slot.val.get()).write(item);
            }
            slot.seq.store(c + 1, Ordering::Release);
        }
        self.head = h + n;
        self.q.head.store(h + n, Ordering::Release);
        crate::tap::record(
            crate::tap::OpKind::Put,
            std::sync::Arc::as_ptr(&self.q) as usize as u32,
            n as u32,
        );
        Ok(())
    }

    /// The queue's capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.q.buf.len()
    }
}

impl<T> Consumer<T> {
    /// Take an item, or `None` when the queue is empty.
    pub fn get(&self) -> Option<T> {
        let cap = self.q.buf.len() as u64;
        loop {
            let t = self.q.tail.load(Ordering::Relaxed);
            let slot = &self.q.buf[(t % cap) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != t + 1 {
                // Not yet filled for this counter: empty (or another
                // consumer already took it and we will retry with the
                // advanced tail).
                if seq == t || seq < t + 1 {
                    return None;
                }
                // seq > t + 1: stale tail; reload.
                std::hint::spin_loop();
                continue;
            }
            // Stake a claim to counter t.
            match self
                .q
                .tail
                .compare_exchange_weak(t, t + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    // SAFETY: Winning the CAS gives exclusive ownership of
                    // the slot's value; the seq Acquire saw the producer's
                    // Release.
                    let data = unsafe { (*slot.val.get()).assume_init_read() };
                    // Free the slot for the producer's next lap.
                    slot.seq.store(t + cap, Ordering::Release);
                    crate::tap::record(
                        crate::tap::OpKind::Get,
                        std::sync::Arc::as_ptr(&self.q) as usize as u32,
                        1,
                    );
                    return Some(data);
                }
                Err(_) => {
                    self.q.retries.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// CAS retries across all consumers.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.q.retries.load(Ordering::Relaxed)
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        let cap = self.buf.len() as u64;
        let mut t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Relaxed);
        while t < h {
            let slot = &self.buf[(t % cap) as usize];
            if slot.seq.load(Ordering::Relaxed) == t + 1 {
                // SAFETY: Unconsumed filled slot; sole owner now.
                unsafe {
                    (*slot.val.get()).assume_init_drop();
                }
            }
            t += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn fifo_single_consumer() {
        let (mut p, c) = channel(4);
        p.put(1).unwrap();
        p.put(2).unwrap();
        assert_eq!(c.get(), Some(1));
        assert_eq!(c.get(), Some(2));
        assert_eq!(c.get(), None);
    }

    #[test]
    fn full_when_lap_catches_up() {
        let (mut p, c) = channel(2);
        p.put(1).unwrap();
        p.put(2).unwrap();
        assert_eq!(p.put(3), Err(Full(3)));
        assert_eq!(c.get(), Some(1));
        p.put(3).unwrap();
    }

    #[test]
    fn multiple_consumers_partition_items() {
        const N: u64 = 10_000;
        let (mut p, c) = channel(64);
        let seen = Arc::new(Mutex::new(HashSet::new()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            let seen = seen.clone();
            handles.push(std::thread::spawn(move || {
                let mut local = Vec::new();
                loop {
                    match c.get() {
                        Some(v) if v == u64::MAX => break,
                        Some(v) => local.push(v),
                        None => std::thread::yield_now(),
                    }
                }
                let mut s = seen.lock().unwrap();
                for v in local {
                    assert!(s.insert(v), "duplicate {v}");
                }
            }));
        }
        for i in 0..N {
            while p.put(i).is_err() {
                std::thread::yield_now();
            }
        }
        // Poison pills.
        for _ in 0..4 {
            while p.put(u64::MAX).is_err() {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seen.lock().unwrap().len(), N as usize);
    }
}
