//! Dedicated queues: synchronization code omitted entirely.
//!
//! "Dedicated queues use the knowledge that only one producer (or
//! consumer) is using the queue and omit the synchronization code"
//! (Section 2.3) — the principle of frugality applied to queues. In Rust
//! the "knowledge" is the `&mut` receiver: exclusive access is proven at
//! compile time, so the implementation is a plain ring with no atomics.
//!
//! The cooked-tty filter "reads characters from the raw keyboard server
//! through a dedicated queue" (Section 5.1).

use crate::Full;

/// A single-party ring buffer with no synchronization.
#[derive(Debug)]
pub struct DedicatedQueue<T> {
    buf: Vec<Option<T>>,
    head: usize,
    tail: usize,
    len: usize,
}

impl<T> DedicatedQueue<T> {
    /// A queue holding up to `capacity` items.
    #[must_use]
    pub fn new(capacity: usize) -> DedicatedQueue<T> {
        assert!(capacity >= 1);
        let mut buf = Vec::with_capacity(capacity);
        buf.resize_with(capacity, || None);
        DedicatedQueue {
            buf,
            head: 0,
            tail: 0,
            len: 0,
        }
    }

    /// Insert an item.
    ///
    /// # Errors
    ///
    /// Returns [`Full`] at capacity.
    pub fn put(&mut self, data: T) -> Result<(), Full<T>> {
        if self.len == self.buf.len() {
            return Err(Full(data));
        }
        self.buf[self.head] = Some(data);
        self.head = (self.head + 1) % self.buf.len();
        self.len += 1;
        Ok(())
    }

    /// Take an item.
    pub fn get(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let v = self.buf[self.tail].take();
        self.tail = (self.tail + 1) % self.buf.len();
        self.len -= 1;
        v
    }

    /// Look at the next item without taking it.
    #[must_use]
    pub fn peek(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.buf[self.tail].as_ref()
        }
    }

    /// Number of items queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the queue is full.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len == self.buf.len()
    }

    /// The capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_wraparound() {
        let mut q = DedicatedQueue::new(3);
        for round in 0..10 {
            q.put(round).unwrap();
            q.put(round + 100).unwrap();
            assert_eq!(q.get(), Some(round));
            assert_eq!(q.get(), Some(round + 100));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn full_and_empty() {
        let mut q = DedicatedQueue::new(2);
        assert_eq!(q.get(), None);
        q.put('a').unwrap();
        q.put('b').unwrap();
        assert!(q.is_full());
        assert_eq!(q.put('c'), Err(Full('c')));
        assert_eq!(q.peek(), Some(&'a'));
        assert_eq!(q.len(), 2);
    }
}
