//! Buffered queues: amortize queue overhead by a blocking factor.
//!
//! "Buffered queues use kernel code synthesis to generate several
//! specialized queue insert operations (a couple of instructions); each
//! moves a chunk of data into a different area of the same queue element.
//! This way, the overhead of a queue insert is amortized by the blocking
//! factor. For example, the A/D device server handles 44,100 (single
//! word) interrupts per second by packing eight 32-bit words per queue
//! element" (Section 5.4).
//!
//! The Rust analogue of the "several specialized insert operations" is the
//! monomorphized, inlineable `put` on a `[T; N]` chunk: the common case
//! writes one array slot and bumps an index — a couple of instructions —
//! and only every `N`-th call touches the underlying queue.

use crate::spsc;
use crate::Full;

/// The producer side: packs items into chunks of `N`.
pub struct BufferedProducer<T, const N: usize> {
    inner: spsc::Producer<[T; N]>,
    /// The chunk being filled.
    fill: [Option<T>; N],
    fill_len: usize,
    /// Queue-element inserts actually performed (vs items accepted).
    pub chunk_puts: u64,
    /// Items accepted.
    pub items: u64,
}

/// The consumer side: unpacks chunks.
pub struct BufferedConsumer<T, const N: usize> {
    inner: spsc::Consumer<[T; N]>,
    drain: Vec<T>,
}

/// Create a buffered SP-SC queue of `chunks` queue elements, each packing
/// `N` items (the blocking factor).
#[must_use]
pub fn channel<T: Send, const N: usize>(
    chunks: usize,
) -> (BufferedProducer<T, N>, BufferedConsumer<T, N>) {
    assert!(N >= 1);
    let (p, c) = spsc::channel(chunks);
    (
        BufferedProducer {
            inner: p,
            fill: std::array::from_fn(|_| None),
            fill_len: 0,
            chunk_puts: 0,
            items: 0,
        },
        BufferedConsumer {
            inner: c,
            drain: Vec::new(),
        },
    )
}

impl<T: Send, const N: usize> BufferedProducer<T, N> {
    /// Insert one item. The fast path fills one slot of the current
    /// chunk; every `N`-th call pushes the chunk into the queue.
    ///
    /// # Errors
    ///
    /// Returns [`Full`] when the chunk is complete and the underlying
    /// queue has no room (the item is handed back; the partial chunk is
    /// retained).
    pub fn put(&mut self, data: T) -> Result<(), Full<T>> {
        if self.fill_len == N {
            // A complete chunk is still staged from a previous full-queue
            // attempt; it must go out before `data` can be accepted.
            if self.try_flush().is_err() {
                return Err(Full(data));
            }
        }
        self.fill[self.fill_len] = Some(data);
        self.fill_len += 1;
        self.items += 1;
        if self.fill_len == N {
            // Hand the chunk off eagerly; if the queue is full keep it
            // staged and retry on the next put.
            let _ = self.try_flush();
        }
        Ok(())
    }

    fn try_flush(&mut self) -> Result<(), ()> {
        debug_assert_eq!(self.fill_len, N);
        let chunk: [T; N] =
            std::array::from_fn(|i| self.fill[i].take().expect("chunk slot filled"));
        match self.inner.put(chunk) {
            Ok(()) => {
                self.fill_len = 0;
                self.chunk_puts += 1;
                Ok(())
            }
            Err(Full(chunk)) => {
                // Re-stage the chunk; fill_len stays N.
                for (i, item) in chunk.into_iter().enumerate() {
                    self.fill[i] = Some(item);
                }
                Err(())
            }
        }
    }

    /// Flush a partial chunk by padding is impossible for general `T`;
    /// instead, expose how many items are staged so callers can decide.
    #[must_use]
    pub fn staged(&self) -> usize {
        self.fill_len % N
    }

    /// The amortization actually achieved: items per queue-element insert.
    #[must_use]
    pub fn amortization(&self) -> f64 {
        if self.chunk_puts == 0 {
            0.0
        } else {
            self.items as f64 / self.chunk_puts as f64
        }
    }
}

impl<T: Send, const N: usize> BufferedConsumer<T, N> {
    /// Take one item (unpacking a chunk when needed).
    pub fn get(&mut self) -> Option<T> {
        if self.drain.is_empty() {
            let chunk = self.inner.get()?;
            self.drain = chunk.into_iter().rev().collect();
        }
        self.drain.pop()
    }

    /// Take a whole chunk at once (the efficient bulk path).
    pub fn get_chunk(&mut self) -> Option<[T; N]> {
        if self.drain.is_empty() {
            self.inner.get()
        } else {
            None // partial drain in progress; finish with get()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_by_blocking_factor() {
        let (mut p, mut c) = channel::<u32, 8>(16);
        for i in 0..64 {
            p.put(i).unwrap();
        }
        assert_eq!(p.chunk_puts, 8, "64 items / factor 8");
        assert!((p.amortization() - 8.0).abs() < 1e-9);
        for i in 0..64 {
            assert_eq!(c.get(), Some(i));
        }
        assert_eq!(c.get(), None);
    }

    #[test]
    fn partial_chunk_not_visible_until_full() {
        let (mut p, mut c) = channel::<u32, 4>(4);
        p.put(1).unwrap();
        p.put(2).unwrap();
        p.put(3).unwrap();
        assert_eq!(c.get(), None, "3 staged items < blocking factor");
        assert_eq!(p.staged(), 3);
        p.put(4).unwrap();
        assert_eq!(c.get(), Some(1));
    }

    #[test]
    fn chunk_api_yields_whole_chunks() {
        let (mut p, mut c) = channel::<u32, 4>(4);
        for i in 0..8 {
            p.put(i).unwrap();
        }
        assert_eq!(c.get_chunk(), Some([0, 1, 2, 3]));
        assert_eq!(c.get(), Some(4));
        assert_eq!(c.get_chunk(), None, "partial drain in progress");
        assert_eq!(c.get(), Some(5));
        assert_eq!(c.get(), Some(6));
        assert_eq!(c.get(), Some(7));
    }

    #[test]
    fn ad_server_rate_smoke() {
        // One simulated second of 44.1 kHz samples through a factor-8
        // buffered queue, drained concurrently.
        let (mut p, mut c) = channel::<u32, 8>(64);
        let t = std::thread::spawn(move || {
            let mut got = 0u32;
            while got < 44_100 {
                if c.get().is_some() {
                    got += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            got
        });
        for i in 0..44_104u32 {
            // 44_104 = next multiple of 8, so everything flushes.
            while p.put(i).is_err() {
                std::thread::yield_now();
            }
        }
        assert_eq!(t.join().unwrap(), 44_100);
        assert_eq!(p.chunk_puts, 44_104 / 8);
    }
}
