//! Pumps: a thread actively copying between two passive parties.
//!
//! "A pump contains a thread that actively copies its input into its
//! output. Pumps connect passive producers with passive consumers"
//! (Section 2.3). The paper's example is `xclock`: a clock that produces a
//! reading when asked and a display that paints pixels when given them
//! (Section 5.2).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running pump; dropping it (or calling [`Pump::stop`]) stops the
/// thread.
pub struct Pump {
    stop: Arc<AtomicBool>,
    moved: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl Pump {
    /// Start a pump that repeatedly pulls one item from `source` and
    /// pushes it into `sink`, pausing `interval` between rounds (the
    /// xclock ticks once a second; a data pump may pass
    /// `Duration::ZERO`). A `None` from the source skips the round.
    pub fn start<T, S, K>(mut source: S, mut sink: K, interval: Duration) -> Pump
    where
        T: Send + 'static,
        S: FnMut() -> Option<T> + Send + 'static,
        K: FnMut(T) + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let moved = Arc::new(AtomicU64::new(0));
        let stop2 = stop.clone();
        let moved2 = moved.clone();
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                if let Some(item) = source() {
                    sink(item);
                    moved2.fetch_add(1, Ordering::Relaxed);
                }
                if interval > Duration::ZERO {
                    std::thread::sleep(interval);
                } else {
                    std::thread::yield_now();
                }
            }
        });
        Pump {
            stop,
            moved,
            handle: Some(handle),
        }
    }

    /// Items moved so far.
    #[must_use]
    pub fn moved(&self) -> u64 {
        self.moved.load(Ordering::Relaxed)
    }

    /// Stop the pump and wait for its thread.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Pump {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn pumps_from_source_to_sink() {
        // Passive producer: a counter readable at any time (the clock).
        let n = Arc::new(AtomicU64::new(0));
        let n2 = n.clone();
        // Passive consumer: a display accepting values (the pixels).
        let out = Arc::new(Mutex::new(Vec::new()));
        let out2 = out.clone();
        let pump = Pump::start(
            move || Some(n2.fetch_add(1, Ordering::Relaxed)),
            move |v| out2.lock().unwrap().push(v),
            Duration::ZERO,
        );
        while pump.moved() < 100 {
            std::thread::yield_now();
        }
        pump.stop();
        let got = out.lock().unwrap();
        assert!(got.len() >= 100);
        // The pump preserves order.
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }

    #[test]
    fn none_from_source_moves_nothing() {
        let out = Arc::new(Mutex::new(Vec::<u32>::new()));
        let out2 = out.clone();
        let pump = Pump::start(
            || None,
            move |v| out2.lock().unwrap().push(v),
            Duration::ZERO,
        );
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(pump.moved(), 0);
        pump.stop();
        assert!(out.lock().unwrap().is_empty());
    }

    #[test]
    fn drop_stops_the_thread() {
        let pump = Pump::start(|| Some(1u8), |_| {}, Duration::ZERO);
        drop(pump); // must not hang
    }
}
