//! The MP-SC optimistic queue of paper Figure 2, with atomic multi-item
//! insert.
//!
//! "To minimize the synchronization among the producers, each of them
//! increments atomically the `Q_head` pointer by the number of items to be
//! inserted, 'staking a claim' to its space in the queue. The producer
//! then proceeds to fill the space, at the same time as other producers
//! are filling theirs. But now the consumer may not trust `Q_head` as a
//! reliable indication that there is data in the queue. We fix this with a
//! separate array of flag bits, one for each queue element" (Section 3.2).
//!
//! The paper counts 11 instructions through the normal `Q_put` path and 20
//! with one CAS retry; [`PutStats`] counts retries here so benchmarks can
//! report the same success/retry split.
//!
//! Head and tail are free-running counters (they only wrap at `u64`), so
//! `head - tail` is always the number of claimed-or-filled slots; slot
//! index is `counter % capacity`. This avoids the ABA hazards of wrapped
//! indices while preserving the algorithm.

use std::mem::MaybeUninit;
use std::sync::Arc;

use crossbeam::utils::CachePadded;

use crate::sync::{AtomicBool, AtomicU64, Ordering, UnsafeCell};
use crate::{BatchFull, Full};

struct Slot<T> {
    /// Figure 2's `Q_flag[i]`: set by the producer after filling, cleared
    /// by the consumer after taking.
    full: AtomicBool,
    val: UnsafeCell<MaybeUninit<T>>,
}

struct Shared<T> {
    buf: Box<[Slot<T>]>,
    /// Claim pointer: producers advance it with CAS.
    head: CachePadded<AtomicU64>,
    /// Consume pointer: written only by the consumer.
    tail: CachePadded<AtomicU64>,
    /// CAS retries across all producers (the paper's 11-vs-20 split).
    retries: CachePadded<AtomicU64>,
}

// SAFETY: Slots are published through the flag protocol: a producer that
// claimed counter `c` exclusively owns slot `c % cap` until it sets
// `full` (Release); the consumer takes ownership by observing `full`
// (Acquire) and returns it by clearing `full` (Release) before advancing
// tail, which producers Acquire before reusing the slot.
unsafe impl<T: Send> Send for Shared<T> {}
// SAFETY: See above.
unsafe impl<T: Send> Sync for Shared<T> {}

/// A producer handle; clone it for each producing thread.
pub struct Producer<T> {
    q: Arc<Shared<T>>,
}

impl<T> Clone for Producer<T> {
    fn clone(&self) -> Self {
        Producer { q: self.q.clone() }
    }
}

/// The single consumer handle.
pub struct Consumer<T> {
    q: Arc<Shared<T>>,
    tail: u64,
}

// SAFETY: The consumer side is exclusively owned; T: Send suffices.
unsafe impl<T: Send> Send for Consumer<T> {}
// SAFETY: Producers coordinate through the CAS/flag protocol.
unsafe impl<T: Send> Send for Producer<T> {}

/// Counters reported by [`Producer::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutStats {
    /// CAS retry loops taken (0 on the 11-instruction fast path).
    pub retries: u64,
}

/// Create an MP-SC queue with `capacity` slots.
#[must_use]
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity >= 1, "capacity must be at least 1");
    let buf: Box<[Slot<T>]> = (0..capacity)
        .map(|_| Slot {
            full: AtomicBool::new(false),
            val: UnsafeCell::new(MaybeUninit::uninit()),
        })
        .collect();
    let q = Arc::new(Shared {
        buf,
        head: CachePadded::new(AtomicU64::new(0)),
        tail: CachePadded::new(AtomicU64::new(0)),
        retries: CachePadded::new(AtomicU64::new(0)),
    });
    (Producer { q: q.clone() }, Consumer { q, tail: 0 })
}

impl<T> Producer<T> {
    /// Claim `n` contiguous slots; returns the starting counter.
    fn claim(&self, n: u64) -> Option<u64> {
        let cap = self.q.buf.len() as u64;
        loop {
            let h = self.q.head.load(Ordering::Relaxed);
            let t = self.q.tail.load(Ordering::Acquire);
            // Figure 2's SpaceLeft check. The head snapshot can be stale:
            // other producers may have advanced head and the consumer may
            // have drained past it, making t > h — wrapping arithmetic
            // detects that case and retries with a fresh head.
            let used = h.wrapping_sub(t);
            if used > cap {
                std::hint::spin_loop();
                continue; // stale snapshot: reload
            }
            if cap - used < n {
                return None;
            }
            // Figure 2's cas(Q_head, h, h+n): "staking a claim".
            match self
                .q
                .head
                .compare_exchange_weak(h, h + n, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return Some(h),
                Err(_) => {
                    // "The failing thread goes once around the retry loop."
                    self.q.retries.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Fill the claimed slot at counter `c` and publish it.
    fn fill(&self, c: u64, data: T) {
        let slot = &self.q.buf[(c % self.q.buf.len() as u64) as usize];
        debug_assert!(!slot.full.load(Ordering::Relaxed), "slot reused too early");
        // SAFETY: The claim gives this producer exclusive ownership of the
        // slot until the Release store of `full` below; the space check
        // guarantees the consumer has already drained the previous lap.
        unsafe {
            (*slot.val.get()).write(data);
        }
        // "As the producers fill each queue element, they also set a flag
        // in the associated array indicating to the consumer that the data
        // item is valid."
        slot.full.store(true, Ordering::Release);
    }

    /// `Q_put`: insert one item.
    ///
    /// # Errors
    ///
    /// Returns [`Full`] when there is no space.
    pub fn put(&self, data: T) -> Result<(), Full<T>> {
        match self.claim(1) {
            Some(c) => {
                self.fill(c, data);
                crate::tap::record(
                    crate::tap::OpKind::Put,
                    std::sync::Arc::as_ptr(&self.q) as usize as u32,
                    1,
                );
                Ok(())
            }
            None => Err(Full(data)),
        }
    }

    /// The atomic multi-item insert of Figure 2: all `items` occupy
    /// contiguous slots and become visible to the consumer in order,
    /// without interleaving with other producers' batches.
    ///
    /// # Errors
    ///
    /// All-or-nothing: returns the batch if it does not fit.
    pub fn put_many(&self, items: Vec<T>) -> Result<(), BatchFull<T>> {
        let n = items.len() as u64;
        if n == 0 {
            return Ok(());
        }
        if n > self.q.buf.len() as u64 {
            return Err(BatchFull(items));
        }
        match self.claim(n) {
            Some(start) => {
                for (i, item) in items.into_iter().enumerate() {
                    self.fill(start + i as u64, item);
                }
                crate::tap::record(
                    crate::tap::OpKind::Put,
                    std::sync::Arc::as_ptr(&self.q) as usize as u32,
                    n as u32,
                );
                Ok(())
            }
            None => Err(BatchFull(items)),
        }
    }

    /// Aggregate CAS-retry statistics.
    #[must_use]
    pub fn stats(&self) -> PutStats {
        PutStats {
            retries: self.q.retries.load(Ordering::Relaxed),
        }
    }

    /// The queue's capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.q.buf.len()
    }
}

impl<T> Consumer<T> {
    /// `Q_get`: take the next item, or `None` if the queue is empty (or
    /// the next slot is claimed but not yet filled — the consumer "will
    /// not detect an item until the producer has finished").
    pub fn get(&mut self) -> Option<T> {
        let slot = &self.q.buf[(self.tail % self.q.buf.len() as u64) as usize];
        if !slot.full.load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: The Acquire load of `full` synchronizes with the
        // producer's Release store after writing the value; we own the
        // consumer side exclusively.
        let data = unsafe { (*slot.val.get()).assume_init_read() };
        // "The consumer clears an item's flag as it is taken out."
        slot.full.store(false, Ordering::Release);
        self.tail += 1;
        self.q.tail.store(self.tail, Ordering::Release);
        crate::tap::record(
            crate::tap::OpKind::Get,
            std::sync::Arc::as_ptr(&self.q) as usize as u32,
            1,
        );
        Some(data)
    }

    /// Take up to `max` items (drains a buffered burst cheaply).
    pub fn get_many(&mut self, max: usize) -> Vec<T> {
        let mut out = Vec::new();
        while out.len() < max {
            match self.get() {
                Some(v) => out.push(v),
                None => break,
            }
        }
        out
    }

    /// Approximate number of items claimed or queued.
    #[must_use]
    pub fn len_hint(&self) -> usize {
        (self.q.head.load(Ordering::Relaxed) - self.tail) as usize
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        for slot in self.buf.iter() {
            if slot.full.load(Ordering::Relaxed) {
                // SAFETY: Flagged slots hold initialized items and no
                // other handle remains.
                unsafe {
                    (*slot.val.get()).assume_init_drop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fifo_single_producer() {
        let (p, mut c) = channel(8);
        for i in 0..8 {
            p.put(i).unwrap();
        }
        assert_eq!(p.put(9), Err(Full(9)));
        for i in 0..8 {
            assert_eq!(c.get(), Some(i));
        }
        assert_eq!(c.get(), None);
    }

    #[test]
    fn multi_insert_contiguous() {
        let (p, mut c) = channel(8);
        p.put_many(vec![1, 2, 3]).unwrap();
        p.put_many(vec![4, 5]).unwrap();
        assert_eq!(c.get_many(10), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn multi_insert_all_or_nothing() {
        let (p, mut c) = channel(4);
        p.put_many(vec![1, 2, 3]).unwrap();
        let back = p.put_many(vec![4, 5]).unwrap_err();
        assert_eq!(back.0, vec![4, 5]);
        assert_eq!(c.get(), Some(1));
        // Now there is room.
        p.put_many(vec![4, 5]).unwrap();
        assert_eq!(c.get_many(10), vec![2, 3, 4, 5]);
    }

    #[test]
    fn oversized_batch_rejected() {
        let (p, _c) = channel(2);
        assert!(p.put_many(vec![1, 2, 3]).is_err());
    }

    #[test]
    fn empty_batch_is_noop() {
        let (p, mut c) = channel::<u32>(2);
        p.put_many(vec![]).unwrap();
        assert_eq!(c.get(), None);
    }

    #[test]
    fn contended_producers_lose_nothing() {
        const PRODUCERS: usize = 4;
        const PER: u64 = 5_000;
        let (p, mut c) = channel(128);
        let mut handles = Vec::new();
        for t in 0..PRODUCERS as u64 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    let mut v = t * PER + i;
                    loop {
                        match p.put(v) {
                            Ok(()) => break,
                            Err(Full(back)) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let mut seen = HashSet::new();
        let mut last_per_thread = [None::<u64>; PRODUCERS];
        while seen.len() < PRODUCERS * PER as usize {
            if let Some(v) = c.get() {
                assert!(seen.insert(v), "duplicate item {v}");
                let t = (v / PER) as usize;
                // Per-producer order must be preserved.
                if let Some(prev) = last_per_thread[t] {
                    assert!(v > prev, "per-producer order violated");
                }
                last_per_thread[t] = Some(v);
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), None);
    }

    #[test]
    fn contended_batches_stay_contiguous() {
        const PRODUCERS: u64 = 4;
        const BATCHES: u64 = 1_000;
        const B: u64 = 4;
        let (p, mut c) = channel(64);
        let mut handles = Vec::new();
        for t in 0..PRODUCERS {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..BATCHES {
                    let base = (t * BATCHES + i) * B;
                    let mut batch: Vec<u64> = (base..base + B).collect();
                    loop {
                        match p.put_many(batch) {
                            Ok(()) => break,
                            Err(BatchFull(back)) => {
                                batch = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let total = (PRODUCERS * BATCHES * B) as usize;
        let mut got = Vec::with_capacity(total);
        while got.len() < total {
            if let Some(v) = c.get() {
                got.push(v);
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every aligned group of B items must be one producer's batch,
        // in order: the atomic multi-insert guarantee.
        for chunk in got.chunks(B as usize) {
            let base = chunk[0];
            assert_eq!(base % B, 0, "batch start misaligned: {chunk:?}");
            for (i, &v) in chunk.iter().enumerate() {
                assert_eq!(v, base + i as u64, "interleaved batch: {chunk:?}");
            }
        }
    }

    #[test]
    fn retry_stats_observable_under_contention() {
        let (p, mut c) = channel(1024);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = p.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..4_000u64 {
                    while p.put(i).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut n = 0;
        while n < 16_000 {
            if c.get().is_some() {
                n += 1;
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        // Retries are not guaranteed, but the counter must be readable
        // and consistent (smoke check).
        let _ = p.stats().retries;
    }
}
