//! A deliberately broken queue, used to prove the explorer has teeth.
//!
//! [`BrokenMpsc`] is the Figure 2 multi-producer claim with its CAS
//! replaced by a plain load + store — exactly the bug the paper's
//! optimistic protocol exists to prevent. Two producers that read the
//! same head both write the same slot; one item vanishes. The fixture is
//! `u64`-only and slot values are offset by one so no `unsafe` is needed.
//!
//! The acceptance test (`sim::broken::tests`) asserts that bounded DFS
//! catches the lost update with a *minimal* schedule (a single
//! preemption, between the load and the store) and that the recorded
//! trace replays to the same failure.

use crate::sync::{AtomicU64, Ordering};

/// Multi-producer array queue with a torn (non-CAS) claim. Test fixture
/// only — it is wrong by design.
pub struct BrokenMpsc {
    head: AtomicU64,
    /// `0` = empty, else `value + 1`.
    slots: Vec<AtomicU64>,
}

impl BrokenMpsc {
    /// Queue with room for `cap` items.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The broken claim: where the real mpsc queue does
    /// `compare_exchange(h, h + 1)`, this does `load; store(h + 1)` —
    /// a second producer scheduled between the two steals the slot.
    ///
    /// # Errors
    ///
    /// Returns `Err(v)` when the queue is full.
    pub fn put(&self, v: u64) -> Result<(), u64> {
        let h = self.head.load(Ordering::Acquire);
        if h as usize >= self.slots.len() {
            return Err(v);
        }
        self.head.store(h + 1, Ordering::Release); // BUG: should be a CAS
        self.slots[h as usize].store(v + 1, Ordering::Release);
        Ok(())
    }

    /// All values present, in slot order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .filter(|&v| v != 0)
            .map(|v| v - 1)
            .collect()
    }
}

/// A work-stealing pool with a torn (non-CAS) steal claim. Test fixture
/// only — it is wrong by design.
///
/// Where [`crate::steal::WorkPool`] inherits the mpmc queue's CAS tail
/// claim, this one does `load; store(t + 1)`: two thieves scheduled
/// between the two both claim slot `t`, so one work item is stolen twice
/// (and the next one is skipped). On one CPU the window needs a
/// preemption to open; across CPUs it is reachable with no preemptions
/// at all — the uniprocessor-to-SMP hazard in miniature.
pub struct BrokenSteal {
    /// Next slot to steal.
    tail: AtomicU64,
    /// Slots filled by `offer`.
    head: AtomicU64,
    /// `0` = empty, else `value + 1`.
    slots: Vec<AtomicU64>,
}

impl BrokenSteal {
    /// Pool with room for `cap` items.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            tail: AtomicU64::new(0),
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Offer one item (single-producer side; not the broken part).
    ///
    /// # Errors
    ///
    /// Returns `Err(v)` when the pool is full.
    pub fn offer(&self, v: u64) -> Result<(), u64> {
        let h = self.head.load(Ordering::Acquire);
        if h as usize >= self.slots.len() {
            return Err(v);
        }
        self.slots[h as usize].store(v + 1, Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
        Ok(())
    }

    /// The broken steal: where the real pool claims a slot with a CAS on
    /// the consumer index, this does `load; store(t + 1)` — a second
    /// thief scheduled between the two steals the same item.
    #[must_use]
    pub fn steal(&self) -> Option<u64> {
        let t = self.tail.load(Ordering::Acquire);
        if t >= self.head.load(Ordering::Acquire) {
            return None;
        }
        let v = self.slots[t as usize].load(Ordering::Acquire);
        self.tail.store(t + 1, Ordering::Release); // BUG: should be a CAS
        Some(v - 1)
    }
}

/// A CPU-quarantine chain evacuation with a torn destination append.
/// Test fixture only — it is wrong by design.
///
/// When a sick CPU is quarantined, its ready chain is re-routed onto a
/// healthy CPU's chain. The kernel does this under the dispatch lock, so
/// the healthy CPU cannot insert a woken thread into the same chain
/// mid-evacuation. This model drops that exclusion: the evacuator and
/// the healthy CPU's own enqueue both do `load len; store slot; store
/// len + 1` on the destination. Scheduled into the window, both claim
/// the same slot and one TTE silently vanishes from every ready chain —
/// a thread that never runs again, with no crash to show for it.
pub struct BrokenEvacuate {
    /// Quarantined CPU's chain: `0` = empty, else `tid + 1`.
    src: Vec<AtomicU64>,
    /// Next source slot to evacuate.
    src_next: AtomicU64,
    /// Healthy CPU's chain: `0` = empty, else `tid + 1`.
    dst: Vec<AtomicU64>,
    /// Destination length — the torn claim target.
    dst_len: AtomicU64,
}

impl BrokenEvacuate {
    /// A quarantined chain holding `tids`, and an empty healthy chain
    /// with room for `cap` entries.
    #[must_use]
    pub fn new(tids: &[u64], cap: usize) -> Self {
        let src = tids
            .iter()
            .map(|&t| AtomicU64::new(t + 1))
            .collect::<Vec<_>>();
        Self {
            src,
            src_next: AtomicU64::new(0),
            dst: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            dst_len: AtomicU64::new(0),
        }
    }

    /// The broken append shared by evacuation and enqueue: where the
    /// kernel holds the dispatch lock (or would CAS the length), this
    /// does `load; store(len + 1)` — two appenders scheduled between the
    /// two write the same slot and one TTE is dropped.
    fn torn_append(&self, tid: u64) {
        let len = self.dst_len.load(Ordering::Acquire);
        if len as usize >= self.dst.len() {
            return;
        }
        self.dst[len as usize].store(tid + 1, Ordering::Release);
        self.dst_len.store(len + 1, Ordering::Release); // BUG: should be locked/CAS
    }

    /// Evacuate one TTE from the quarantined chain onto the healthy one.
    /// Returns `false` when the source chain is drained.
    pub fn evacuate_one(&self) -> bool {
        let i = self.src_next.fetch_add(1, Ordering::AcqRel) as usize;
        if i >= self.src.len() {
            return false;
        }
        let v = self.src[i].swap(0, Ordering::AcqRel);
        if v == 0 {
            return false;
        }
        self.torn_append(v - 1);
        true
    }

    /// The healthy CPU inserting a freshly woken thread into its own
    /// chain — legal at any time, and exactly what collides with an
    /// unlocked evacuation.
    pub fn enqueue(&self, tid: u64) {
        self.torn_append(tid);
    }

    /// Every tid present on the healthy chain, in slot order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u64> {
        self.dst
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .filter(|&v| v != 0)
            .map(|v| v - 1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Explorer, Scenario};
    use std::sync::Arc;

    fn scenario() -> Scenario {
        let q = Arc::new(BrokenMpsc::new(4));
        let (p1, p2) = (Arc::clone(&q), Arc::clone(&q));
        Scenario::new()
            .thread(move || {
                p1.put(10).unwrap();
            })
            .thread(move || {
                p2.put(20).unwrap();
            })
            .check(move || {
                let mut got = q.snapshot();
                got.sort_unstable();
                if got == [10, 20] {
                    Ok(())
                } else {
                    Err(format!("lost update: queue holds {got:?}, want [10, 20]"))
                }
            })
    }

    /// The explorer must catch the torn claim, with a minimal (single
    /// preemption) trace that replays byte-for-byte.
    #[test]
    fn broken_claim_is_caught_with_replayable_minimal_trace() {
        let explorer = Explorer {
            preemption_budget: 3,
            ..Explorer::default()
        };
        let report = explorer.explore_minimal(scenario);
        let failure = report
            .failure
            .expect("DFS must find the lost-update interleaving");
        assert_eq!(
            failure.preemption_budget, 1,
            "minimal witness preempts once, between the head load and store"
        );
        assert!(failure.message.contains("lost update"), "{failure}");

        let replayed = explorer
            .replay(&failure.choices, failure.preemption_budget, scenario)
            .expect_err("the recorded schedule must reproduce the failure");
        assert_eq!(replayed.message, failure.message);

        // And sanity: sequential schedules (budget 0) never trip it.
        let seq = Explorer {
            preemption_budget: 0,
            ..Explorer::default()
        };
        seq.explore(scenario).assert_ok();
    }

    /// Two thieves pinned to different CPUs racing the torn steal claim:
    /// an item is stolen twice. Pinned cross-CPU, the duplicate is
    /// reachable at preemption budget 0 — no preemption needed, just two
    /// CPUs — while the same pair sharing one CPU at budget 0 never
    /// trips it. The failing schedule replays byte-for-byte.
    #[test]
    fn racy_steal_duplicates_across_cpus_at_budget_zero() {
        use std::sync::Mutex;
        let make = |cpu_b: usize| {
            move || {
                let pool = Arc::new(BrokenSteal::new(4));
                pool.offer(10).unwrap();
                pool.offer(20).unwrap();
                let got: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
                let (p1, p2) = (Arc::clone(&pool), Arc::clone(&pool));
                let (g1, g2, gk) = (Arc::clone(&got), Arc::clone(&got), got);
                Scenario::new()
                    .thread_on(0, move || {
                        if let Some(v) = p1.steal() {
                            g1.lock().unwrap().push(v);
                        }
                    })
                    .thread_on(cpu_b, move || {
                        if let Some(v) = p2.steal() {
                            g2.lock().unwrap().push(v);
                        }
                    })
                    .check(move || {
                        let mut v = gk.lock().unwrap().clone();
                        v.sort_unstable();
                        v.dedup();
                        if v.len() == gk.lock().unwrap().len() {
                            Ok(())
                        } else {
                            Err(format!(
                                "duplicated steal: {:?}",
                                gk.lock().unwrap().clone()
                            ))
                        }
                    })
            }
        };
        let explorer = Explorer {
            preemption_budget: 0,
            ..Explorer::default()
        };
        // Sharing one CPU, budget 0 serializes the thieves: no failure.
        explorer.explore(make(0)).assert_ok();
        // On two CPUs the duplicate shows up with no preemptions at all.
        let report = explorer.explore(make(1));
        let failure = report.failure.expect("cross-CPU duplicate steal");
        assert!(failure.message.contains("duplicated steal"), "{failure}");
        let replayed = explorer
            .replay(&failure.choices, failure.preemption_budget, make(1))
            .expect_err("the recorded schedule must reproduce the failure");
        assert_eq!(replayed.message, failure.message);
    }

    /// The seeded random walk finds the duplicated steal too.
    #[test]
    fn random_walk_finds_the_racy_steal() {
        let make = || {
            let pool = Arc::new(BrokenSteal::new(4));
            pool.offer(1).unwrap();
            pool.offer(2).unwrap();
            let seen = Arc::new(crate::sync::AtomicU64::new(0));
            let (p1, p2) = (Arc::clone(&pool), Arc::clone(&pool));
            let (s1, s2) = (Arc::clone(&seen), Arc::clone(&seen));
            let mark = |s: &crate::sync::AtomicU64, v: u64| {
                // One bit per distinct value; a second steal of the same
                // value trips the assert inside the model.
                let bit = 1u64 << v;
                let prev = s.fetch_or(bit, Ordering::SeqCst);
                assert_eq!(prev & bit, 0, "value {v} stolen twice");
            };
            Scenario::new()
                .thread_on(0, move || {
                    if let Some(v) = p1.steal() {
                        mark(&s1, v);
                    }
                })
                .thread_on(1, move || {
                    if let Some(v) = p2.steal() {
                        mark(&s2, v);
                    }
                })
        };
        let explorer = Explorer {
            preemption_budget: 0,
            ..Explorer::default()
        };
        let report = explorer.random_walk(0x57EA1, 200, make);
        assert!(
            report.failure.is_some(),
            "200 seeded cross-CPU schedules should hit the torn steal"
        );
    }

    fn evacuate_scenario() -> Scenario {
        // CPU 1 is quarantined holding tids 7 and 8; CPU 0 is healthy.
        // One thread evacuates the chain, while CPU 0 concurrently
        // enqueues a freshly woken tid 9 into its own chain.
        let ev = Arc::new(BrokenEvacuate::new(&[7, 8], 8));
        let (e1, e2) = (Arc::clone(&ev), Arc::clone(&ev));
        Scenario::new()
            .thread(move || while e1.evacuate_one() {})
            .thread(move || {
                e2.enqueue(9);
            })
            .check(move || {
                let mut got = ev.snapshot();
                got.sort_unstable();
                if got == [7, 8, 9] {
                    Ok(())
                } else {
                    Err(format!("dropped TTE: chain holds {got:?}, want [7, 8, 9]"))
                }
            })
    }

    /// The unlocked quarantine evacuation must be caught dropping a TTE,
    /// with a minimal single-preemption trace that replays byte-for-byte
    /// — the sim-level witness for the kernel's rule that chain re-routes
    /// happen only under the dispatch lock.
    #[test]
    fn unlocked_evacuation_drops_a_tte_with_replayable_trace() {
        let explorer = Explorer {
            preemption_budget: 3,
            ..Explorer::default()
        };
        let report = explorer.explore_minimal(evacuate_scenario);
        let failure = report
            .failure
            .expect("DFS must find the dropped-TTE interleaving");
        assert_eq!(
            failure.preemption_budget, 1,
            "minimal witness preempts once, inside the torn append"
        );
        assert!(failure.message.contains("dropped TTE"), "{failure}");

        let replayed = explorer
            .replay(
                &failure.choices,
                failure.preemption_budget,
                evacuate_scenario,
            )
            .expect_err("the recorded schedule must reproduce the failure");
        assert_eq!(replayed.message, failure.message);

        // Sequential schedules (budget 0, one CPU) never trip it: the
        // window only opens when the appends interleave.
        let seq = Explorer {
            preemption_budget: 0,
            ..Explorer::default()
        };
        seq.explore(evacuate_scenario).assert_ok();
    }

    /// The random-walk mode finds the same bug from a fixed seed.
    #[test]
    fn random_walk_finds_the_torn_claim() {
        let explorer = Explorer {
            preemption_budget: 4,
            ..Explorer::default()
        };
        let report = explorer.random_walk(0xC0FFEE, 500, scenario);
        assert!(
            report.failure.is_some(),
            "500 random schedules at budget 4 should hit the race"
        );
    }
}
