//! A deliberately broken queue, used to prove the explorer has teeth.
//!
//! [`BrokenMpsc`] is the Figure 2 multi-producer claim with its CAS
//! replaced by a plain load + store — exactly the bug the paper's
//! optimistic protocol exists to prevent. Two producers that read the
//! same head both write the same slot; one item vanishes. The fixture is
//! `u64`-only and slot values are offset by one so no `unsafe` is needed.
//!
//! The acceptance test (`sim::broken::tests`) asserts that bounded DFS
//! catches the lost update with a *minimal* schedule (a single
//! preemption, between the load and the store) and that the recorded
//! trace replays to the same failure.

use crate::sync::{AtomicU64, Ordering};

/// Multi-producer array queue with a torn (non-CAS) claim. Test fixture
/// only — it is wrong by design.
pub struct BrokenMpsc {
    head: AtomicU64,
    /// `0` = empty, else `value + 1`.
    slots: Vec<AtomicU64>,
}

impl BrokenMpsc {
    /// Queue with room for `cap` items.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            head: AtomicU64::new(0),
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The broken claim: where the real mpsc queue does
    /// `compare_exchange(h, h + 1)`, this does `load; store(h + 1)` —
    /// a second producer scheduled between the two steals the slot.
    ///
    /// # Errors
    ///
    /// Returns `Err(v)` when the queue is full.
    pub fn put(&self, v: u64) -> Result<(), u64> {
        let h = self.head.load(Ordering::Acquire);
        if h as usize >= self.slots.len() {
            return Err(v);
        }
        self.head.store(h + 1, Ordering::Release); // BUG: should be a CAS
        self.slots[h as usize].store(v + 1, Ordering::Release);
        Ok(())
    }

    /// All values present, in slot order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .filter(|&v| v != 0)
            .map(|v| v - 1)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Explorer, Scenario};
    use std::sync::Arc;

    fn scenario() -> Scenario {
        let q = Arc::new(BrokenMpsc::new(4));
        let (p1, p2) = (Arc::clone(&q), Arc::clone(&q));
        Scenario::new()
            .thread(move || {
                p1.put(10).unwrap();
            })
            .thread(move || {
                p2.put(20).unwrap();
            })
            .check(move || {
                let mut got = q.snapshot();
                got.sort_unstable();
                if got == [10, 20] {
                    Ok(())
                } else {
                    Err(format!("lost update: queue holds {got:?}, want [10, 20]"))
                }
            })
    }

    /// The explorer must catch the torn claim, with a minimal (single
    /// preemption) trace that replays byte-for-byte.
    #[test]
    fn broken_claim_is_caught_with_replayable_minimal_trace() {
        let explorer = Explorer {
            preemption_budget: 3,
            ..Explorer::default()
        };
        let report = explorer.explore_minimal(scenario);
        let failure = report
            .failure
            .expect("DFS must find the lost-update interleaving");
        assert_eq!(
            failure.preemption_budget, 1,
            "minimal witness preempts once, between the head load and store"
        );
        assert!(failure.message.contains("lost update"), "{failure}");

        let replayed = explorer
            .replay(&failure.choices, failure.preemption_budget, scenario)
            .expect_err("the recorded schedule must reproduce the failure");
        assert_eq!(replayed.message, failure.message);

        // And sanity: sequential schedules (budget 0) never trip it.
        let seq = Explorer {
            preemption_budget: 0,
            ..Explorer::default()
        };
        seq.explore(scenario).assert_ok();
    }

    /// The random-walk mode finds the same bug from a fixed seed.
    #[test]
    fn random_walk_finds_the_torn_claim() {
        let explorer = Explorer {
            preemption_budget: 4,
            ..Explorer::default()
        };
        let report = explorer.random_walk(0xC0FFEE, 500, scenario);
        assert!(
            report.failure.is_some(),
            "500 random schedules at budget 4 should hit the race"
        );
    }
}
