//! Instrumented stand-ins for `std::sync::atomic` types and
//! `UnsafeCell`, aliased in by [`crate::sync`] under `--features sim`.
//!
//! Every atomic operation first calls [`crate::sim::sim_point`]: when the
//! calling thread is a registered model thread of a running simulation,
//! that parks the thread and lets the scheduler decide who performs the
//! next shared-memory access; outside a simulation it is a cheap
//! thread-local check and the operation behaves exactly like the real
//! atomic. The values themselves are still held in real `std` atomics, so
//! the shims are correct under real parallelism too — determinism comes
//! from the executor serializing model threads, not from the shims.
//!
//! Two deliberate deviations from `std`, both in the direction of
//! deterministic exploration:
//!
//! - `compare_exchange_weak` never fails spuriously (it delegates to the
//!   strong version). A spurious failure is a hardware scheduling event;
//!   under the simulator all scheduling is explicit.
//! - The interleavings explored are sequentially consistent: only one
//!   model thread runs between preemption points. Weak-memory
//!   reorderings are out of scope (as in most stateless model checkers
//!   with this design).

use std::sync::atomic::Ordering;

use super::sim_point;

macro_rules! sim_atomic_int {
    ($(#[$meta:meta])* $name:ident, $std:ident, $raw:ty) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        #[repr(transparent)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            /// Create a new atomic holding `v`.
            #[must_use]
            pub const fn new(v: $raw) -> Self {
                Self { inner: std::sync::atomic::$std::new(v) }
            }

            /// Atomic load; a simulator preemption point.
            pub fn load(&self, order: Ordering) -> $raw {
                sim_point();
                self.inner.load(order)
            }

            /// Atomic store; a simulator preemption point.
            pub fn store(&self, v: $raw, order: Ordering) {
                sim_point();
                self.inner.store(v, order);
            }

            /// Atomic swap; a simulator preemption point.
            pub fn swap(&self, v: $raw, order: Ordering) -> $raw {
                sim_point();
                self.inner.swap(v, order)
            }

            /// Atomic fetch-add; a simulator preemption point.
            pub fn fetch_add(&self, v: $raw, order: Ordering) -> $raw {
                sim_point();
                self.inner.fetch_add(v, order)
            }

            /// Atomic fetch-sub; a simulator preemption point.
            pub fn fetch_sub(&self, v: $raw, order: Ordering) -> $raw {
                sim_point();
                self.inner.fetch_sub(v, order)
            }

            /// Atomic fetch-or; a simulator preemption point.
            pub fn fetch_or(&self, v: $raw, order: Ordering) -> $raw {
                sim_point();
                self.inner.fetch_or(v, order)
            }

            /// Atomic compare-exchange; a simulator preemption point.
            ///
            /// # Errors
            ///
            /// Returns the observed value when it differs from `current`.
            pub fn compare_exchange(
                &self,
                current: $raw,
                new: $raw,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$raw, $raw> {
                sim_point();
                self.inner.compare_exchange(current, new, success, failure)
            }

            /// Like [`Self::compare_exchange`], but never fails spuriously:
            /// under the simulator every failure must be attributable to a
            /// real interleaving, so "weak" delegates to the strong form.
            ///
            /// # Errors
            ///
            /// Returns the observed value when it differs from `current`.
            pub fn compare_exchange_weak(
                &self,
                current: $raw,
                new: $raw,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$raw, $raw> {
                self.compare_exchange(current, new, success, failure)
            }
        }
    };
}

sim_atomic_int!(
    /// Instrumented [`std::sync::atomic::AtomicU32`].
    SimAtomicU32,
    AtomicU32,
    u32
);
sim_atomic_int!(
    /// Instrumented [`std::sync::atomic::AtomicU64`].
    SimAtomicU64,
    AtomicU64,
    u64
);
sim_atomic_int!(
    /// Instrumented [`std::sync::atomic::AtomicUsize`].
    SimAtomicUsize,
    AtomicUsize,
    usize
);

/// Instrumented [`std::sync::atomic::AtomicBool`].
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct SimAtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl SimAtomicBool {
    /// Create a new atomic holding `v`.
    #[must_use]
    pub const fn new(v: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    /// Atomic load; a simulator preemption point.
    pub fn load(&self, order: Ordering) -> bool {
        sim_point();
        self.inner.load(order)
    }

    /// Atomic store; a simulator preemption point.
    pub fn store(&self, v: bool, order: Ordering) {
        sim_point();
        self.inner.store(v, order);
    }

    /// Atomic swap; a simulator preemption point.
    pub fn swap(&self, v: bool, order: Ordering) -> bool {
        sim_point();
        self.inner.swap(v, order)
    }

    /// Atomic compare-exchange; a simulator preemption point.
    ///
    /// # Errors
    ///
    /// Returns the observed value when it differs from `current`.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        sim_point();
        self.inner.compare_exchange(current, new, success, failure)
    }
}

/// Drop-in for [`std::cell::UnsafeCell`] under the simulator alias.
///
/// Plain data accesses are *not* preemption points: all cross-thread
/// publication in this crate goes through the atomics, so scheduling
/// decisions at atomic operations already explore every distinguishable
/// interleaving of the cell contents.
#[derive(Debug, Default)]
#[repr(transparent)]
pub struct SimCell<T> {
    inner: std::cell::UnsafeCell<T>,
}

impl<T> SimCell<T> {
    /// Wrap `v`.
    #[must_use]
    pub const fn new(v: T) -> Self {
        Self {
            inner: std::cell::UnsafeCell::new(v),
        }
    }

    /// Raw pointer to the contents (same contract as
    /// [`std::cell::UnsafeCell::get`]).
    #[must_use]
    pub fn get(&self) -> *mut T {
        self.inner.get()
    }
}
