//! Deterministic schedule-exploration executor for the optimistic queues.
//!
//! A mini [loom]-style model checker: a scenario's model threads are real
//! OS threads, but a token-passing controller serializes them so that only
//! one runs at a time, and every atomic operation (via the shims in
//! [`shim`], aliased in by [`crate::sync`] under `--features sim`) is a
//! *preemption point* where the scheduler decides who runs next. Because
//! the schedule is the only source of nondeterminism, a run is a pure
//! function of its decision list — which gives us:
//!
//! - **Bounded exhaustive DFS** ([`Explorer::explore`]): enumerate every
//!   schedule with at most `preemption_budget` involuntary context
//!   switches. Small budgets already cover the classic lost-update and
//!   ABA interleavings; the budget bounds the tree so exploration
//!   terminates.
//! - **Iterative deepening** ([`Explorer::explore_minimal`]): try budgets
//!   `0..=B` in order, so the first failure found uses the *minimal*
//!   number of preemptions — the most readable counterexample.
//! - **Seeded random walk** ([`Explorer::random_walk`]): probe schedules
//!   deeper than the DFS budget affords, reproducibly.
//! - **Byte-for-byte replay** ([`Explorer::replay`]): re-run a recorded
//!   decision list; a [`Failure`] prints the exact call to make.
//!
//! The executor explores sequentially-consistent interleavings (one
//! thread runs between points); weak-memory reorderings are out of scope.
//! Model threads must not block on anything the scheduler cannot see
//! (e.g. an OS mutex held *across* a preemption point by another model
//! thread) — scenarios built from the queues' non-blocking APIs satisfy
//! this by construction.
//!
//! [loom]: https://docs.rs/loom
//!
//! This module only exists under `--features sim`; production builds
//! compile the queues against raw `std::sync::atomic` with zero overhead.

pub mod broken;
pub mod shim;

use std::cell::RefCell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// What the controller knows about one model thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TStat {
    /// Executing user code between preemption points (or not yet at its
    /// first point).
    Running,
    /// Parked at a preemption point, waiting for a grant.
    AtPoint,
    /// Finished (normally, by panic, or by abort).
    Done,
}

struct CtlState {
    status: Vec<TStat>,
    /// Which thread may proceed through its current preemption point.
    grant: Option<usize>,
    /// Set when the step cap is exceeded; parked threads unwind out.
    abort: bool,
}

/// Shared between the scheduler (test thread) and the model threads.
struct Controller {
    state: Mutex<CtlState>,
    /// Model threads wait here for their grant.
    thread_cv: Condvar,
    /// The scheduler waits here until no thread is `Running`.
    sched_cv: Condvar,
    /// Monotone logical clock: one tick per scheduled atomic operation.
    /// Read by [`now`] to timestamp operations for linearizability checks.
    steps: AtomicU64,
}

thread_local! {
    /// Set for the duration of a model thread's closure; `None` everywhere
    /// else, which makes [`sim_point`] a no-op for ordinary threads (so
    /// the regular test suite still runs unchanged under `--features sim`).
    static SIM_CTX: RefCell<Option<(Arc<Controller>, usize)>> = const { RefCell::new(None) };
}

/// Panic payload used to unwind a parked model thread when a run aborts
/// (step cap exceeded). Never escapes the module: the model-thread wrapper
/// catches it.
struct SimAbort;

/// A preemption point. Called by every shim atomic operation.
///
/// On a registered model thread this parks until the scheduler grants the
/// next step; on any other thread it returns immediately.
pub fn sim_point() {
    let ctx = SIM_CTX.with(|c| c.borrow().clone());
    let Some((ctl, id)) = ctx else { return };
    let mut st = ctl.state.lock().unwrap();
    st.status[id] = TStat::AtPoint;
    ctl.sched_cv.notify_one();
    loop {
        if st.abort {
            drop(st); // release before unwinding so the mutex is not poisoned
            panic::panic_any(SimAbort);
        }
        if st.grant == Some(id) {
            st.grant = None;
            return; // scheduler already marked us Running
        }
        st = ctl.thread_cv.wait(st).unwrap();
    }
}

/// The executor's logical clock: number of atomic operations scheduled so
/// far in the current run. Monotonically increasing; usable as a
/// timestamp for operation intervals. Returns 0 outside a model thread.
#[must_use]
pub fn now() -> u64 {
    SIM_CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map_or(0, |(ctl, _)| ctl.steps.load(Ordering::Relaxed))
    })
}

/// Body wrapper for one model thread: registers the thread-local context,
/// runs the closure, and reports `Done` even if the closure panics.
/// Returns the panic message if the closure failed for a reason other
/// than a run abort.
fn model_thread(ctl: Arc<Controller>, id: usize, f: Box<dyn FnOnce() + Send>) -> Option<String> {
    SIM_CTX.with(|c| *c.borrow_mut() = Some((ctl.clone(), id)));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    SIM_CTX.with(|c| *c.borrow_mut() = None);
    let mut st = ctl.state.lock().unwrap();
    st.status[id] = TStat::Done;
    ctl.sched_cv.notify_one();
    drop(st);
    match result {
        Ok(()) => None,
        Err(p) if p.is::<SimAbort>() => None,
        Err(p) => Some(panic_message(&p)),
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        format!("model thread panicked: {s}")
    } else if let Some(s) = p.downcast_ref::<String>() {
        format!("model thread panicked: {s}")
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// One branching point in a schedule: which of `n` candidate threads was
/// chosen. The candidate list is ordered deterministically (the
/// previously running thread first if still runnable, then the rest in
/// ascending id order), so `chosen` alone replays the branch.
#[derive(Clone, Copy, Debug)]
struct Decision {
    chosen: u32,
    n: u32,
}

/// How the scheduler picks at each decision point.
enum ModeState<'a> {
    /// Follow a prefix of forced choices, then always pick 0 (continue).
    Dfs { prefix: &'a [u32] },
    /// Seeded random walk.
    Random(SplitMix),
    /// Follow a recorded decision list byte-for-byte.
    Replay { choices: &'a [u32] },
}

impl ModeState<'_> {
    fn pick(&mut self, idx: usize, n: u32) -> u32 {
        match self {
            ModeState::Dfs { prefix } => prefix.get(idx).copied().unwrap_or(0).min(n - 1),
            ModeState::Random(rng) => (rng.next_u64() % u64::from(n)) as u32,
            ModeState::Replay { choices } => choices.get(idx).copied().unwrap_or(0).min(n - 1),
        }
    }
}

/// Drives one run to completion. Returns the decisions taken and whether
/// the run aborted on the step cap.
///
/// `cpus[i]` is model thread `i`'s CPU pin ([`Scenario::thread_on`]) or
/// `None` for an unpinned thread. Switching between threads pinned to
/// *different* CPUs models true parallelism — on real hardware both run
/// concurrently, so such an interleaving point is not a preemption and
/// never charges the budget. Same-CPU (and unpinned) switches cost one
/// preemption, exactly as before.
fn schedule_loop(
    ctl: &Controller,
    mode: &mut ModeState<'_>,
    mut budget: u32,
    max_steps: u64,
    cpus: &[Option<usize>],
) -> (Vec<Decision>, bool) {
    let mut decisions: Vec<Decision> = Vec::new();
    let mut prev: Option<usize> = None;
    let mut steps = 0u64;
    let free = |a: usize, b: usize| matches!((cpus[a], cpus[b]), (Some(x), Some(y)) if x != y);
    let mut st = ctl.state.lock().unwrap();
    loop {
        // Wait for every thread to park at a point or finish.
        while st.status.contains(&TStat::Running) {
            st = ctl.sched_cv.wait(st).unwrap();
        }
        let runnable: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == TStat::AtPoint)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            return (decisions, false); // all Done
        }
        steps += 1;
        if steps > max_steps {
            // Livelock guard: unwind everyone and report an aborted run.
            st.abort = true;
            ctl.thread_cv.notify_all();
            while st.status.iter().any(|s| *s != TStat::Done) {
                st = ctl.sched_cv.wait(st).unwrap();
            }
            return (decisions, true);
        }
        let prev_runnable = prev.is_some_and(|p| runnable.contains(&p));
        // Candidate order: continuation first (choice 0), then the rest
        // ascending — so the all-zeros path is the least-switchy schedule
        // and traces read naturally. With the budget spent, only the
        // continuation and free (cross-CPU) switches remain candidates.
        let cands: Vec<usize> = if let Some(p) = prev.filter(|_| prev_runnable) {
            let mut c = vec![p];
            c.extend(
                runnable
                    .iter()
                    .copied()
                    .filter(|&t| t != p && (budget > 0 || free(p, t))),
            );
            c
        } else {
            runnable
        };
        let tid = if cands.len() == 1 {
            // Forced continuation (or a lone runnable thread): not a
            // decision point.
            cands[0]
        } else {
            let n = cands.len() as u32;
            let choice = mode.pick(decisions.len(), n);
            decisions.push(Decision { chosen: choice, n });
            cands[choice as usize]
        };
        if prev_runnable && tid != prev.unwrap() && !free(prev.unwrap(), tid) {
            budget -= 1; // switching away from a runnable same-CPU thread
        }
        st.grant = Some(tid);
        st.status[tid] = TStat::Running;
        ctl.steps.fetch_add(1, Ordering::Relaxed);
        ctl.thread_cv.notify_all();
        prev = Some(tid);
    }
}

/// One closed test case for the executor: the model threads to interleave
/// and a final check to run (on the test thread, after every model thread
/// finished).
///
/// The explorer constructs a *fresh* scenario per schedule, so the
/// closures own (or share via `Arc`) all state they touch.
#[derive(Default)]
pub struct Scenario {
    threads: Vec<Box<dyn FnOnce() + Send>>,
    /// Per-thread CPU pin, parallel to `threads`. `None` = unpinned
    /// (classic single-CPU preemption semantics).
    cpus: Vec<Option<usize>>,
    check_fn: Option<Box<dyn FnOnce() -> Result<(), String>>>,
}

impl Scenario {
    /// Empty scenario; add threads with [`Self::thread`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a model thread. Closures may assert internally (a panic is
    /// reported as a schedule failure) and must terminate under *every*
    /// schedule — use bounded retry counts, never unbounded spins on
    /// another thread's progress.
    #[must_use]
    pub fn thread(mut self, f: impl FnOnce() + Send + 'static) -> Self {
        self.threads.push(Box::new(f));
        self.cpus.push(None);
        self
    }

    /// Add a model thread pinned to `cpu`. Interleaving points between
    /// threads pinned to *different* CPUs are explored without charging
    /// the preemption budget: two CPUs genuinely run in parallel, so
    /// their cross-products are reachable schedules even at budget 0.
    /// Switches between threads sharing a CPU (or involving an unpinned
    /// thread) still cost one preemption each.
    #[must_use]
    pub fn thread_on(mut self, cpu: usize, f: impl FnOnce() + Send + 'static) -> Self {
        self.threads.push(Box::new(f));
        self.cpus.push(Some(cpu));
        self
    }

    /// Set the final check, run after all model threads complete.
    #[must_use]
    pub fn check(mut self, f: impl FnOnce() -> Result<(), String> + 'static) -> Self {
        self.check_fn = Some(Box::new(f));
        self
    }
}

struct RunOutcome {
    decisions: Vec<Decision>,
    error: Option<String>,
}

fn run_one(
    scenario: Scenario,
    mode: &mut ModeState<'_>,
    budget: u32,
    max_steps: u64,
) -> RunOutcome {
    let n = scenario.threads.len();
    assert!(n >= 1, "scenario needs at least one model thread");
    let cpus = scenario.cpus.clone();
    let ctl = Arc::new(Controller {
        state: Mutex::new(CtlState {
            status: vec![TStat::Running; n],
            grant: None,
            abort: false,
        }),
        thread_cv: Condvar::new(),
        sched_cv: Condvar::new(),
        steps: AtomicU64::new(0),
    });
    let mut handles = Vec::with_capacity(n);
    for (id, f) in scenario.threads.into_iter().enumerate() {
        let c = Arc::clone(&ctl);
        handles.push(std::thread::spawn(move || model_thread(c, id, f)));
    }
    let (decisions, aborted) = schedule_loop(&ctl, mode, budget, max_steps, &cpus);
    let mut error: Option<String> = None;
    for h in handles {
        match h.join() {
            Ok(None) => {}
            Ok(Some(msg)) => {
                error.get_or_insert(msg);
            }
            Err(_) => {
                error.get_or_insert_with(|| "model thread died outside its wrapper".to_string());
            }
        }
    }
    if error.is_none() && !aborted {
        if let Some(check) = scenario.check_fn {
            if let Err(msg) = check() {
                error = Some(msg);
            }
        }
    }
    RunOutcome { decisions, error }
}

/// Next DFS prefix after a completed run, or `None` when the tree is
/// exhausted: drop fully-explored trailing decisions, bump the deepest
/// one that still has an untried branch.
fn backtrack(mut trace: Vec<Decision>) -> Option<Vec<u32>> {
    loop {
        let last = trace.last()?;
        if last.chosen + 1 < last.n {
            let mut prefix: Vec<u32> = trace.iter().map(|d| d.chosen).collect();
            *prefix.last_mut().unwrap() += 1;
            return Some(prefix);
        }
        trace.pop();
    }
}

/// A schedule that broke the scenario, with everything needed to re-run
/// it byte-for-byte.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Why the run failed: a model thread's panic message or the final
    /// check's error.
    pub message: String,
    /// The decision list of the failing run. Pass to
    /// [`Explorer::replay`] together with `preemption_budget`.
    pub choices: Vec<u32>,
    /// Budget the failing run executed under. Replay must use the same
    /// value: it determines where continuation is forced vs. chosen.
    pub preemption_budget: u32,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schedule exploration failed: {}", self.message)?;
        write!(
            f,
            "  replay: Explorer::default().replay(&{:?}, {}, || scenario())",
            self.choices, self.preemption_budget
        )
    }
}

/// Result of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Schedules executed.
    pub schedules: u64,
    /// First failing schedule, if any.
    pub failure: Option<Failure>,
    /// True when the bounded DFS tree was fully enumerated (never set by
    /// [`Explorer::random_walk`]).
    pub exhausted: bool,
}

impl Report {
    /// Panic with the replayable trace if the exploration found a failure.
    pub fn assert_ok(&self) {
        if let Some(fail) = &self.failure {
            panic!("{fail}");
        }
    }
}

/// Bounded exhaustive schedule exploration.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Maximum involuntary context switches per schedule. The DFS tree —
    /// and so the exploration time — grows roughly exponentially in this.
    pub preemption_budget: u32,
    /// Stop after this many schedules even if the tree is not exhausted.
    pub max_schedules: u64,
    /// Per-run step cap (livelock guard); aborted runs are counted but
    /// not treated as failures.
    pub max_steps: u64,
}

impl Default for Explorer {
    fn default() -> Self {
        Self {
            preemption_budget: 2,
            max_schedules: 200_000,
            max_steps: 100_000,
        }
    }
}

impl Explorer {
    /// Exhaustive DFS at exactly [`Self::preemption_budget`].
    pub fn explore(&self, mut make: impl FnMut() -> Scenario) -> Report {
        let mut schedules = 0;
        let (failure, exhausted) =
            self.explore_at(self.preemption_budget, &mut make, &mut schedules);
        Report {
            schedules,
            failure,
            exhausted,
        }
    }

    /// Iterative deepening over budgets `0..=preemption_budget`; the first
    /// failure found therefore uses the minimal number of preemptions.
    pub fn explore_minimal(&self, mut make: impl FnMut() -> Scenario) -> Report {
        let mut schedules = 0;
        for budget in 0..=self.preemption_budget {
            let (failure, exhausted) = self.explore_at(budget, &mut make, &mut schedules);
            if failure.is_some() {
                return Report {
                    schedules,
                    failure,
                    exhausted: false,
                };
            }
            if !exhausted {
                // Hit max_schedules mid-tree; deeper budgets would only
                // repeat the truncation.
                return Report {
                    schedules,
                    failure: None,
                    exhausted: false,
                };
            }
        }
        Report {
            schedules,
            failure: None,
            exhausted: true,
        }
    }

    fn explore_at(
        &self,
        budget: u32,
        make: &mut dyn FnMut() -> Scenario,
        schedules: &mut u64,
    ) -> (Option<Failure>, bool) {
        let mut prefix: Vec<u32> = Vec::new();
        loop {
            if *schedules >= self.max_schedules {
                return (None, false);
            }
            let mut mode = ModeState::Dfs { prefix: &prefix };
            let out = run_one(make(), &mut mode, budget, self.max_steps);
            *schedules += 1;
            if let Some(message) = out.error {
                return (
                    Some(Failure {
                        message,
                        choices: out.decisions.iter().map(|d| d.chosen).collect(),
                        preemption_budget: budget,
                    }),
                    false,
                );
            }
            match backtrack(out.decisions) {
                Some(p) => prefix = p,
                None => return (None, true),
            }
        }
    }

    /// `runs` seeded random schedules at [`Self::preemption_budget`].
    /// Each run's seed derives from `seed` and the run index, so a suite
    /// reproduces from one number.
    pub fn random_walk(&self, seed: u64, runs: u64, mut make: impl FnMut() -> Scenario) -> Report {
        let mut schedules = 0;
        for i in 0..runs {
            let run_seed = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut mode = ModeState::Random(SplitMix::new(run_seed));
            let out = run_one(make(), &mut mode, self.preemption_budget, self.max_steps);
            schedules += 1;
            if let Some(message) = out.error {
                return Report {
                    schedules,
                    failure: Some(Failure {
                        message,
                        choices: out.decisions.iter().map(|d| d.chosen).collect(),
                        preemption_budget: self.preemption_budget,
                    }),
                    exhausted: false,
                };
            }
        }
        Report {
            schedules,
            failure: None,
            exhausted: false,
        }
    }

    /// Re-run one recorded schedule byte-for-byte. `budget` must be the
    /// failing run's [`Failure::preemption_budget`].
    ///
    /// # Errors
    ///
    /// Returns the reproduced [`Failure`] if the schedule still fails.
    pub fn replay(
        &self,
        choices: &[u32],
        budget: u32,
        make: impl FnOnce() -> Scenario,
    ) -> Result<(), Failure> {
        let mut mode = ModeState::Replay { choices };
        let out = run_one(make(), &mut mode, budget, self.max_steps);
        match out.error {
            Some(message) => Err(Failure {
                message,
                choices: out.decisions.iter().map(|d| d.chosen).collect(),
                preemption_budget: budget,
            }),
            None => Ok(()),
        }
    }
}

/// Tiny deterministic RNG (splitmix64) so the random-walk mode needs no
/// external dependency.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix(u64);

impl SplitMix {
    /// Seeded generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{AtomicU64 as ShimU64, Ordering as Ord2};

    /// With budget 0 and two single-op threads, the only choice is which
    /// thread goes first: exactly 2 schedules, both passing.
    #[test]
    fn budget_zero_enumerates_thread_orders() {
        let explorer = Explorer {
            preemption_budget: 0,
            ..Explorer::default()
        };
        let report = explorer.explore(|| {
            let counter = Arc::new(ShimU64::new(0));
            let (a, b) = (Arc::clone(&counter), Arc::clone(&counter));
            Scenario::new()
                .thread(move || {
                    a.fetch_add(1, Ord2::SeqCst);
                })
                .thread(move || {
                    b.fetch_add(2, Ord2::SeqCst);
                })
                .check(move || {
                    let v = counter.load(Ord2::SeqCst);
                    if v == 3 {
                        Ok(())
                    } else {
                        Err(format!("counter = {v}, want 3"))
                    }
                })
        });
        report.assert_ok();
        assert_eq!(report.schedules, 2, "two sequential orders of two threads");
        assert!(report.exhausted);
    }

    /// fetch_add is atomic under the shims, so no schedule loses an update.
    #[test]
    fn atomic_counter_has_no_failing_schedule() {
        let report = Explorer::default().explore(|| {
            let counter = Arc::new(ShimU64::new(0));
            let mk = |c: Arc<ShimU64>| {
                move || {
                    for _ in 0..3 {
                        c.fetch_add(1, Ord2::SeqCst);
                    }
                }
            };
            let (a, b) = (Arc::clone(&counter), Arc::clone(&counter));
            Scenario::new().thread(mk(a)).thread(mk(b)).check(move || {
                let v = counter.load(Ord2::SeqCst);
                if v == 6 {
                    Ok(())
                } else {
                    Err(format!("lost update: counter = {v}, want 6"))
                }
            })
        });
        report.assert_ok();
        assert!(report.exhausted);
        assert!(report.schedules > 2);
    }

    /// A load+store "increment" torn by one preemption: DFS finds it, the
    /// minimal trace needs exactly one preemption, and the recorded
    /// choices replay to the same failure.
    #[test]
    fn torn_increment_is_caught_minimally_and_replays() {
        let make = || {
            let counter = Arc::new(ShimU64::new(0));
            let mk = |c: Arc<ShimU64>| {
                move || {
                    let v = c.load(Ord2::SeqCst);
                    c.store(v + 1, Ord2::SeqCst);
                }
            };
            let (a, b) = (Arc::clone(&counter), Arc::clone(&counter));
            Scenario::new().thread(mk(a)).thread(mk(b)).check(move || {
                let v = counter.load(Ord2::SeqCst);
                if v == 2 {
                    Ok(())
                } else {
                    Err(format!("lost update: counter = {v}, want 2"))
                }
            })
        };
        let explorer = Explorer {
            preemption_budget: 3,
            ..Explorer::default()
        };
        let report = explorer.explore_minimal(make);
        let failure = report.failure.expect("torn increment must be caught");
        assert_eq!(
            failure.preemption_budget, 1,
            "one preemption (between load and store) is the minimal trace"
        );
        let replayed = explorer
            .replay(&failure.choices, failure.preemption_budget, make)
            .expect_err("replay must reproduce the failure byte-for-byte");
        assert_eq!(replayed.message, failure.message);
        assert_eq!(replayed.choices, failure.choices);
    }

    /// Two threads pinned to different CPUs interleave freely even at
    /// budget 0: cross-CPU switches model parallelism, not preemption.
    /// The same pair pinned to ONE CPU degenerates to the two sequential
    /// orders, exactly like unpinned threads.
    #[test]
    fn cross_cpu_interleavings_are_free() {
        let make_on = |cpu_b: usize| {
            move || {
                let counter = Arc::new(ShimU64::new(0));
                let mk = |c: Arc<ShimU64>| {
                    move || {
                        for _ in 0..2 {
                            c.fetch_add(1, Ord2::SeqCst);
                        }
                    }
                };
                let (a, b) = (Arc::clone(&counter), Arc::clone(&counter));
                Scenario::new().thread_on(0, mk(a)).thread_on(cpu_b, mk(b))
            }
        };
        let explorer = Explorer {
            preemption_budget: 0,
            ..Explorer::default()
        };
        let same = explorer.explore(make_on(0));
        same.assert_ok();
        assert_eq!(
            same.schedules, 2,
            "same-CPU pins at budget 0: only the two sequential orders"
        );
        let cross = explorer.explore(make_on(1));
        cross.assert_ok();
        assert!(
            cross.schedules > 2,
            "cross-CPU pins must explore interleavings at budget 0 \
             (got {} schedules)",
            cross.schedules
        );
    }

    /// A torn increment split across two CPUs is caught with zero
    /// preemption budget — the cross-CPU race needs no preemptions at
    /// all, which is precisely why uniprocessor-tuned code breaks on SMP.
    #[test]
    fn cross_cpu_race_is_caught_at_budget_zero() {
        let make = || {
            let counter = Arc::new(ShimU64::new(0));
            let mk = |c: Arc<ShimU64>| {
                move || {
                    let v = c.load(Ord2::SeqCst);
                    c.store(v + 1, Ord2::SeqCst);
                }
            };
            let (a, b) = (Arc::clone(&counter), Arc::clone(&counter));
            Scenario::new()
                .thread_on(0, mk(a))
                .thread_on(1, mk(b))
                .check(move || {
                    let v = counter.load(Ord2::SeqCst);
                    if v == 2 {
                        Ok(())
                    } else {
                        Err(format!("lost update: counter = {v}, want 2"))
                    }
                })
        };
        let explorer = Explorer {
            preemption_budget: 0,
            ..Explorer::default()
        };
        let report = explorer.explore(make);
        let failure = report.failure.expect("cross-CPU lost update");
        explorer
            .replay(&failure.choices, failure.preemption_budget, make)
            .expect_err("recorded cross-CPU schedule must replay");
    }

    /// The same prefix always drives the same run: determinism is what
    /// makes DFS backtracking and replay sound.
    #[test]
    fn identical_replays_take_identical_decisions() {
        let make = || {
            let counter = Arc::new(ShimU64::new(0));
            let mk = |c: Arc<ShimU64>| {
                move || {
                    for _ in 0..2 {
                        let v = c.load(Ord2::SeqCst);
                        c.store(v + 1, Ord2::SeqCst);
                    }
                }
            };
            let (a, b) = (Arc::clone(&counter), Arc::clone(&counter));
            Scenario::new().thread(mk(a)).thread(mk(b))
        };
        let choices = vec![1, 0, 1];
        let explorer = Explorer::default();
        for _ in 0..3 {
            // A passing replay returns Ok; what we check is that it never
            // diverges (a divergent schedule would clamp choices and could
            // panic inside the scheduler or fail differently).
            explorer.replay(&choices, 2, make).expect("benign scenario");
        }
    }
}
