//! The MP-MC optimistic queue: multiple producers *and* consumers.
//!
//! Both sides stake claims with compare-and-swap; per-slot sequence
//! counters (the lap-safe form of Figure 2's flag array) arbitrate slot
//! ownership. This is the fully general optimistic queue of Section 3.2:
//! "Optimistic queues accept queue insert and queue delete operations from
//! multiple producers and multiple consumers."

use std::mem::MaybeUninit;
use std::sync::Arc;

use crossbeam::utils::CachePadded;

use crate::sync::{AtomicU64, Ordering, UnsafeCell};
use crate::{BatchFull, Full};

struct Slot<T> {
    seq: AtomicU64,
    val: UnsafeCell<MaybeUninit<T>>,
}

struct Shared<T> {
    buf: Box<[Slot<T>]>,
    head: CachePadded<AtomicU64>,
    tail: CachePadded<AtomicU64>,
    retries: CachePadded<AtomicU64>,
}

// SAFETY: Slot value access is serialized by the seq protocol: a producer
// owns the slot between winning the head CAS and stamping seq = c + 1; a
// consumer owns it between winning the tail CAS (enabled by seq == c + 1)
// and stamping seq = c + cap.
unsafe impl<T: Send> Send for Shared<T> {}
// SAFETY: See above.
unsafe impl<T: Send> Sync for Shared<T> {}

/// A cloneable handle serving both put and get.
pub struct Handle<T> {
    q: Arc<Shared<T>>,
}

impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        Handle { q: self.q.clone() }
    }
}

// SAFETY: All shared access is protocol-mediated.
unsafe impl<T: Send> Send for Handle<T> {}
// SAFETY: See above.
unsafe impl<T: Send> Sync for Handle<T> {}

/// Create an MP-MC queue with `capacity` slots.
///
/// `capacity` must be at least 2: with a single slot the sequence stamp
/// for "slot holds counter c" (`c + 1`) would collide with "slot free for
/// counter c + 1" (`c + cap = c + 1`), so occupancy would be ambiguous.
#[must_use]
pub fn channel<T>(capacity: usize) -> Handle<T> {
    assert!(capacity >= 2, "mpmc requires capacity >= 2");
    let buf: Box<[Slot<T>]> = (0..capacity as u64)
        .map(|i| Slot {
            seq: AtomicU64::new(i),
            val: UnsafeCell::new(MaybeUninit::uninit()),
        })
        .collect();
    Handle {
        q: Arc::new(Shared {
            buf,
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(0)),
            retries: CachePadded::new(AtomicU64::new(0)),
        }),
    }
}

impl<T> Handle<T> {
    /// Insert an item.
    ///
    /// # Errors
    ///
    /// Returns [`Full`] when no slot is free.
    pub fn put(&self, data: T) -> Result<(), Full<T>> {
        let cap = self.q.buf.len() as u64;
        loop {
            let h = self.q.head.load(Ordering::Relaxed);
            let slot = &self.q.buf[(h % cap) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == h {
                // Free for this counter: claim it.
                match self.q.head.compare_exchange_weak(
                    h,
                    h + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: Winning the claim on counter h gives us
                        // the slot until we stamp it filled.
                        unsafe {
                            (*slot.val.get()).write(data);
                        }
                        slot.seq.store(h + 1, Ordering::Release);
                        crate::tap::record(
                            crate::tap::OpKind::Put,
                            std::sync::Arc::as_ptr(&self.q) as usize as u32,
                            1,
                        );
                        return Ok(());
                    }
                    Err(_) => {
                        self.q.retries.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
            }
            if seq < h {
                // The slot still holds last lap's item: full.
                return Err(Full(data));
            }
            // seq > h: our head read is stale; retry.
            std::hint::spin_loop();
        }
    }

    /// Insert a whole batch, all-or-nothing (the paper's multi-item
    /// insert): stake a claim to `n` slots with a *single*
    /// compare-and-swap on the head — Figure 2's multi-item claim.
    ///
    /// Every slot in the claim range is checked free *before* the CAS.
    /// Checking cannot go stale between the check and a successful CAS:
    /// a free slot's stamp advances only when the producer owning its
    /// counter fills it, and counters `h..h+n` can only be owned by
    /// winning the head CAS from `h` — which is us. Consumers finishing
    /// out of order is why each slot must be checked individually (a
    /// later slot can be free while an earlier one is still being read).
    ///
    /// # Errors
    ///
    /// Returns [`BatchFull`] handing the batch back untouched when the
    /// batch does not fit.
    pub fn put_many(&self, data: Vec<T>) -> Result<(), BatchFull<T>> {
        let n = data.len() as u64;
        if n == 0 {
            return Ok(());
        }
        let cap = self.q.buf.len() as u64;
        if n > cap {
            return Err(BatchFull(data));
        }
        loop {
            let h = self.q.head.load(Ordering::Relaxed);
            let mut stale = false;
            let mut full = false;
            for j in 0..n {
                let seq = self.q.buf[((h + j) % cap) as usize]
                    .seq
                    .load(Ordering::Acquire);
                if seq < h + j {
                    full = true; // last lap's item still in the slot
                    break;
                }
                if seq > h + j {
                    stale = true; // our head read is behind; retry
                    break;
                }
            }
            if full {
                return Err(BatchFull(data));
            }
            if stale {
                std::hint::spin_loop();
                continue;
            }
            match self
                .q
                .head
                .compare_exchange_weak(h, h + n, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => {
                    for (j, item) in data.into_iter().enumerate() {
                        let c = h + j as u64;
                        let slot = &self.q.buf[(c % cap) as usize];
                        // SAFETY: Winning the claim on counters h..h+n
                        // gives us each slot until we stamp it filled.
                        unsafe {
                            (*slot.val.get()).write(item);
                        }
                        slot.seq.store(c + 1, Ordering::Release);
                    }
                    crate::tap::record(
                        crate::tap::OpKind::Put,
                        std::sync::Arc::as_ptr(&self.q) as usize as u32,
                        n as u32,
                    );
                    return Ok(());
                }
                Err(_) => {
                    self.q.retries.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Take an item, or `None` when the queue is empty.
    pub fn get(&self) -> Option<T> {
        let cap = self.q.buf.len() as u64;
        loop {
            let t = self.q.tail.load(Ordering::Relaxed);
            let slot = &self.q.buf[(t % cap) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == t + 1 {
                match self.q.tail.compare_exchange_weak(
                    t,
                    t + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: Winning the tail claim for a slot
                        // stamped filled gives exclusive read ownership.
                        let data = unsafe { (*slot.val.get()).assume_init_read() };
                        slot.seq.store(t + cap, Ordering::Release);
                        crate::tap::record(
                            crate::tap::OpKind::Get,
                            std::sync::Arc::as_ptr(&self.q) as usize as u32,
                            1,
                        );
                        return Some(data);
                    }
                    Err(_) => {
                        self.q.retries.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
            }
            if seq <= t {
                return None; // not yet filled: empty
            }
            // seq > t + 1: stale tail; retry.
            std::hint::spin_loop();
        }
    }

    /// CAS retries across all parties.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.q.retries.load(Ordering::Relaxed)
    }

    /// The queue's capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.q.buf.len()
    }

    /// Approximate occupancy, never exceeding [`Self::capacity`].
    ///
    /// Tail is read first: reading head first lets concurrent put/get
    /// pairs advance both counters in between, so `head - old_tail`
    /// could exceed the capacity. Even with this order the difference
    /// can overshoot (tail may lag arbitrarily behind the later head
    /// read under wraparound), so the result is clamped — occupancy can
    /// never truly exceed the slot count.
    #[must_use]
    pub fn len_hint(&self) -> usize {
        let t = self.q.tail.load(Ordering::Acquire);
        let h = self.q.head.load(Ordering::Relaxed);
        (h.saturating_sub(t) as usize).min(self.q.buf.len())
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        let cap = self.buf.len() as u64;
        let mut t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Relaxed);
        while t < h {
            let slot = &self.buf[(t % cap) as usize];
            if slot.seq.load(Ordering::Relaxed) == t + 1 {
                // SAFETY: Filled, unconsumed; sole owner now.
                unsafe {
                    (*slot.val.get()).assume_init_drop();
                }
            }
            t += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn fifo_single_threaded() {
        let q = channel(4);
        q.put(1).unwrap();
        q.put(2).unwrap();
        assert_eq!(q.get(), Some(1));
        q.put(3).unwrap();
        q.put(4).unwrap();
        q.put(5).unwrap();
        assert_eq!(q.put(6), Err(Full(6)));
        assert_eq!(q.get(), Some(2));
        assert_eq!(q.get(), Some(3));
        assert_eq!(q.get(), Some(4));
        assert_eq!(q.get(), Some(5));
        assert_eq!(q.get(), None);
    }

    #[test]
    fn many_to_many_stress() {
        const PRODUCERS: u64 = 4;
        const CONSUMERS: usize = 4;
        const PER: u64 = 5_000;
        let q = channel(256);
        let seen = Arc::new(Mutex::new(HashSet::new()));
        let mut handles = Vec::new();
        for t in 0..PRODUCERS {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    let mut v = t * PER + i;
                    loop {
                        match q.put(v) {
                            Ok(()) => break,
                            Err(Full(back)) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..CONSUMERS {
            let q = q.clone();
            let seen = seen.clone();
            let done = done.clone();
            handles.push(std::thread::spawn(move || {
                let mut local = Vec::new();
                while done.load(Ordering::Relaxed) < PRODUCERS * PER {
                    if let Some(v) = q.get() {
                        local.push(v);
                        done.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::thread::yield_now();
                    }
                }
                let mut s = seen.lock().unwrap();
                for v in local {
                    assert!(s.insert(v), "duplicate {v}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(seen.lock().unwrap().len(), (PRODUCERS * PER) as usize);
        assert_eq!(q.get(), None);
    }

    #[test]
    fn drop_with_items_in_flight() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let q = channel(8);
            q.put(D).unwrap();
            q.put(D).unwrap();
            drop(q.get());
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }
}
