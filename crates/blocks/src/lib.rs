//! # synthesis-blocks — the Synthesis kernel building blocks, in Rust
//!
//! "Most quajects are implemented by combining a small number of building
//! blocks. Some of the building blocks are well known, such as monitors,
//! queues, and schedulers. The others are simple but somewhat unusual:
//! switches, pumps and gauges" (Massalin & Pu, SOSP 1989, Section 2.3).
//!
//! This crate implements those building blocks as *real Rust concurrency
//! primitives*, runnable on modern multicore hardware — the layer of the
//! reproduction that demonstrates the paper's **optimistic
//! synchronization** claims with actual parallelism (the in-simulator
//! layer demonstrates the cycle counts):
//!
//! - [`spsc`] — the single-producer single-consumer queue of **Figure 1**:
//!   head written only by the producer, tail only by the consumer (Code
//!   Isolation), no locks at all;
//! - [`mpsc`] — the multiple-producer optimistic queue of **Figure 2**:
//!   producers "stake a claim" to queue space with a single
//!   compare-and-swap and publish each element through a valid-flag
//!   array, including the atomic *multi-item* insert;
//! - [`spmc`], [`mpmc`] — the remaining two multiplicities, using
//!   per-slot sequence counters (the lap-safe generalization of the
//!   valid-flag array);
//! - [`dedicated`] — "dedicated queues use the knowledge that only one
//!   producer (or consumer) is using the queue and omit the
//!   synchronization code" (Section 2.3);
//! - [`blocking`] — the *synchronous* queue flavour (blocks at full /
//!   empty); [`signal`] — the *asynchronous* flavour (signals at those
//!   conditions);
//! - [`buffered`] — the buffered queue of Section 5.4 that amortizes
//!   queue overhead by a blocking factor (how the A/D server survives
//!   44,100 interrupts per second);
//! - [`monitor`], [`switch`], [`pump`], [`gauge`] — the remaining blocks.

#![warn(missing_docs)]

pub mod blocking;
pub mod buffered;
pub mod dedicated;
pub mod gauge;
pub mod monitor;
pub mod mpmc;
pub mod mpsc;
pub mod pump;
pub mod signal;
#[cfg(feature = "sim")]
pub mod sim;
pub mod spmc;
pub mod spsc;
pub mod steal;
pub mod switch;
pub mod sync;
pub mod tap;

/// Result of a non-blocking queue insert: the queue was full and the item
/// is handed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Full<T>(pub T);

/// Result of a non-blocking multi-item insert: the whole batch is refused
/// if it does not fit (the paper's multi-insert is all-or-nothing).
#[derive(Debug, PartialEq, Eq)]
pub struct BatchFull<T>(pub Vec<T>);

/// The peer side of a queue is gone (its thread died or closed the
/// queue); the item is handed back so nothing is lost silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected<T>(pub T);
