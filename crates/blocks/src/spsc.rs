//! The SP-SC queue of paper Figure 1.
//!
//! "When the queue buffer is neither full nor empty, the consumer and the
//! producer operate on different parts of the buffer. Therefore,
//! synchronization is necessary only when the buffer becomes empty or
//! full" (Section 3.2). Correctness comes from Code Isolation: "Of the two
//! variables being written, `Q_head` is updated only by the producer and
//! `Q_tail` only by the consumer", and from publishing order: "we update
//! `Q_head` at the last instruction during `Q_put`, [so] the consumer will
//! not detect an item until the producer has finished."
//!
//! Faithful details: one slot is sacrificed to distinguish full from empty
//! (`next(head) == tail` means full), exactly like Figure 1.

use crate::sync::{AtomicUsize, Ordering, UnsafeCell};
use std::mem::MaybeUninit;
use std::sync::Arc;

use crossbeam::utils::CachePadded;

use crate::{BatchFull, Full};

struct Shared<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot the producer will write. Written ONLY by the producer.
    head: CachePadded<AtomicUsize>,
    /// Next slot the consumer will read. Written ONLY by the consumer.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: `Shared` hands out element access such that the producer touches
// only slots in [head, tail) (mod cap) and the consumer only [tail, head);
// the head/tail publication protocol (Release store after the slot write,
// Acquire load before the slot read) transfers ownership of each slot.
unsafe impl<T: Send> Send for Shared<T> {}
// SAFETY: See above; the only shared mutation is through the protocol.
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Shared<T> {
    #[inline]
    fn next(&self, i: usize) -> usize {
        // Figure 1's next(): wrap at Q_size.
        let n = i + 1;
        if n == self.buf.len() {
            0
        } else {
            n
        }
    }
}

/// The producer handle (`Q_put`).
pub struct Producer<T> {
    q: Arc<Shared<T>>,
    /// Cached copy of head (only we write it, so no reload needed).
    head: usize,
    /// Last-seen tail, refreshed only when the queue looks full.
    tail_cache: usize,
}

/// The consumer handle (`Q_get`).
pub struct Consumer<T> {
    q: Arc<Shared<T>>,
    tail: usize,
    head_cache: usize,
}

// SAFETY: Producer owns the producer side exclusively; moving it between
// threads is fine for T: Send. It is !Sync by containing no Sync surface
// that matters — but be explicit:
unsafe impl<T: Send> Send for Producer<T> {}
// SAFETY: As above for the consumer side.
unsafe impl<T: Send> Send for Consumer<T> {}

/// Create an SP-SC queue holding up to `capacity` items.
///
/// Internally allocates `capacity + 1` slots: Figure 1 distinguishes full
/// from empty by sacrificing one slot.
#[must_use]
pub fn channel<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity >= 1, "capacity must be at least 1");
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..=capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let q = Arc::new(Shared {
        buf,
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
    });
    (
        Producer {
            q: q.clone(),
            head: 0,
            tail_cache: 0,
        },
        Consumer {
            q,
            tail: 0,
            head_cache: 0,
        },
    )
}

impl<T> Producer<T> {
    /// `Q_put`: insert an item, or hand it back if the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`Full`] when `next(head) == tail`.
    pub fn put(&mut self, data: T) -> Result<(), Full<T>> {
        let h = self.head;
        let nh = self.q.next(h);
        if nh == self.tail_cache {
            // Looks full: refresh the cached tail with an Acquire load
            // (synchronizes with the consumer's Release store).
            self.tail_cache = self.q.tail.load(Ordering::Acquire);
            if nh == self.tail_cache {
                return Err(Full(data));
            }
        }
        // SAFETY: Slot `h` is owned by the producer: the consumer only
        // reads slots in [tail, head), and h == head is outside that
        // range until the Release store below publishes it.
        unsafe {
            (*self.q.buf[h].get()).write(data);
        }
        // "We update Q_head at the last instruction during Q_put."
        self.q.head.store(nh, Ordering::Release);
        self.head = nh;
        crate::tap::record(
            crate::tap::OpKind::Put,
            std::sync::Arc::as_ptr(&self.q) as usize as u32,
            1,
        );
        Ok(())
    }

    /// Insert a whole batch, all-or-nothing (the paper's multi-item
    /// insert). Because Figure 1 publishes with the head store alone, one
    /// Release store at the end makes the entire batch visible atomically:
    /// the consumer can never observe a prefix of it.
    ///
    /// # Errors
    ///
    /// Returns [`BatchFull`] handing the batch back untouched when fewer
    /// than `data.len()` slots are free.
    pub fn put_many(&mut self, data: Vec<T>) -> Result<(), BatchFull<T>> {
        let n = data.len();
        if n == 0 {
            return Ok(());
        }
        let size = self.q.buf.len();
        // Free slots from the producer's view; one slot is sacrificed.
        let free = |tail: usize, head: usize| (tail + size - 1 - head) % size;
        if free(self.tail_cache, self.head) < n {
            self.tail_cache = self.q.tail.load(Ordering::Acquire);
            if free(self.tail_cache, self.head) < n {
                return Err(BatchFull(data));
            }
        }
        let mut h = self.head;
        for item in data {
            // SAFETY: `free >= n` slots starting at head belong to the
            // producer; none is visible to the consumer until the single
            // head store below.
            unsafe {
                (*self.q.buf[h].get()).write(item);
            }
            h = self.q.next(h);
        }
        self.q.head.store(h, Ordering::Release);
        self.head = h;
        crate::tap::record(
            crate::tap::OpKind::Put,
            std::sync::Arc::as_ptr(&self.q) as usize as u32,
            n as u32,
        );
        Ok(())
    }

    /// Whether the queue looked full at the last interaction.
    #[must_use]
    pub fn is_full_hint(&self) -> bool {
        self.q.next(self.head) == self.q.tail.load(Ordering::Relaxed)
    }

    /// The queue's capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.q.buf.len() - 1
    }
}

impl<T> Consumer<T> {
    /// `Q_get`: take an item, or `None` when the queue is empty.
    pub fn get(&mut self) -> Option<T> {
        let t = self.tail;
        if t == self.head_cache {
            self.head_cache = self.q.head.load(Ordering::Acquire);
            if t == self.head_cache {
                return None;
            }
        }
        // SAFETY: head != tail, so slot `t` holds an initialized item
        // published by the producer's Release store of head, which our
        // Acquire load observed.
        let data = unsafe { (*self.q.buf[t].get()).assume_init_read() };
        self.q.tail.store(self.q.next(t), Ordering::Release);
        self.tail = self.q.next(t);
        crate::tap::record(
            crate::tap::OpKind::Get,
            std::sync::Arc::as_ptr(&self.q) as usize as u32,
            1,
        );
        Some(data)
    }

    /// Approximate number of items queued.
    #[must_use]
    pub fn len_hint(&self) -> usize {
        let h = self.q.head.load(Ordering::Relaxed);
        let t = self.tail;
        let cap = self.q.buf.len();
        (h + cap - t) % cap
    }

    /// The queue's capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.q.buf.len() - 1
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Drain un-consumed items so their destructors run.
        let mut t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Relaxed);
        while t != h {
            // SAFETY: Both handles are gone (we are dropping the only
            // remaining owner), so [tail, head) holds initialized items.
            unsafe {
                (*self.buf[t].get()).assume_init_drop();
            }
            t = self.next(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (mut p, mut c) = channel(8);
        for i in 0..5 {
            p.put(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(c.get(), Some(i));
        }
        assert_eq!(c.get(), None);
    }

    #[test]
    fn full_detection_at_capacity() {
        let (mut p, mut c) = channel(3);
        p.put(1).unwrap();
        p.put(2).unwrap();
        p.put(3).unwrap();
        assert_eq!(p.put(4), Err(Full(4)));
        assert_eq!(c.get(), Some(1));
        p.put(4).unwrap();
        assert_eq!(p.put(5), Err(Full(5)));
    }

    #[test]
    fn interleaved_wraparound() {
        let (mut p, mut c) = channel(4);
        for round in 0..100 {
            p.put(round * 2).unwrap();
            p.put(round * 2 + 1).unwrap();
            assert_eq!(c.get(), Some(round * 2));
            assert_eq!(c.get(), Some(round * 2 + 1));
        }
        assert_eq!(c.get(), None);
    }

    #[test]
    fn capacity_reporting() {
        let (p, c) = channel::<u8>(7);
        assert_eq!(p.capacity(), 7);
        assert_eq!(c.capacity(), 7);
    }

    #[test]
    fn drop_runs_destructors() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        {
            let (mut p, mut c) = channel(8);
            p.put(D).unwrap();
            p.put(D).unwrap();
            p.put(D).unwrap();
            drop(c.get()); // one consumed
        }
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn two_thread_stress() {
        const N: u64 = 20_000;
        let (mut p, mut c) = channel(64);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match p.put(v) {
                        Ok(()) => break,
                        Err(Full(back)) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expected = 0;
        while expected < N {
            if let Some(v) = c.get() {
                assert_eq!(v, expected, "FIFO order violated");
                expected += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(c.get(), None);
    }
}
