//! Monitors: serialized access for the *multiple* side of a composition.
//!
//! "If there are multiple producers or consumers (multiple-single), we
//! attach a monitor to the end with multiple participants to serialize
//! their access" (Section 5.2). Contention statistics are exposed so the
//! comparison against optimistic queues (the paper's central
//! synchronization claim) can be measured.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// A monitor wrapping shared state `T`.
#[derive(Debug, Default)]
pub struct Monitor<T> {
    state: Mutex<T>,
    entries: AtomicU64,
    contended: AtomicU64,
}

impl<T> Monitor<T> {
    /// A monitor around `state`.
    pub fn new(state: T) -> Monitor<T> {
        Monitor {
            state: Mutex::new(state),
            entries: AtomicU64::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Enter the monitor and run `f` with exclusive access.
    pub fn enter<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        self.entries.fetch_add(1, Ordering::Relaxed);
        let mut guard = match self.state.try_lock() {
            Some(g) => g,
            None => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.state.lock()
            }
        };
        f(&mut guard)
    }

    /// Total entries.
    #[must_use]
    pub fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// Entries that had to wait for the lock.
    #[must_use]
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// Consume the monitor, returning the state.
    pub fn into_inner(self) -> T {
        self.state.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn serializes_access() {
        let m = Arc::new(Monitor::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    m.enter(|v| *v += 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.enter(|v| *v), 80_000);
        assert_eq!(m.entries(), 80_001);
    }

    #[test]
    fn into_inner_returns_state() {
        let m = Monitor::new(vec![1, 2, 3]);
        m.enter(|v| v.push(4));
        assert_eq!(m.into_inner(), vec![1, 2, 3, 4]);
    }
}
