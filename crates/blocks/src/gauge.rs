//! Gauges: event counters that feed the fine-grain scheduler.
//!
//! "A gauge counts events (e.g., procedure calls, data arrival,
//! interrupts). Schedulers use gauges to collect data for scheduling
//! decisions" (Section 2.3). A thread's "need to execute" is judged by the
//! rate its I/O gauges report (Section 4.4), so gauges support interval
//! rate measurement.

use std::sync::atomic::{AtomicU64, Ordering};

/// A lock-free event counter with rate sampling.
#[derive(Debug, Default)]
pub struct Gauge {
    count: AtomicU64,
}

/// A point-in-time gauge sample used to compute rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Count at sample time.
    pub count: u64,
    /// The sampling timestamp in arbitrary ticks (the caller supplies a
    /// consistent clock — cycles on the Quamachine, nanos on the host).
    pub at_ticks: u64,
}

impl Gauge {
    /// A zeroed gauge.
    #[must_use]
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Count one event.
    #[inline]
    pub fn tick(&self) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events (e.g. a burst drained from a buffered queue).
    #[inline]
    pub fn add(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[must_use]
    pub fn read(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Snapshot for rate computation.
    #[must_use]
    pub fn snapshot(&self, at_ticks: u64) -> GaugeSnapshot {
        GaugeSnapshot {
            count: self.read(),
            at_ticks,
        }
    }
}

impl GaugeSnapshot {
    /// Events per tick between two snapshots (0 if no time passed).
    #[must_use]
    pub fn rate_since(&self, earlier: &GaugeSnapshot) -> f64 {
        let dt = self.at_ticks.saturating_sub(earlier.at_ticks);
        if dt == 0 {
            return 0.0;
        }
        let dc = self.count.saturating_sub(earlier.count);
        dc as f64 / dt as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let g = Gauge::new();
        g.tick();
        g.tick();
        g.add(10);
        assert_eq!(g.read(), 12);
    }

    #[test]
    fn rate_between_snapshots() {
        let g = Gauge::new();
        let s0 = g.snapshot(1000);
        g.add(500);
        let s1 = g.snapshot(2000);
        let r = s1.rate_since(&s0);
        assert!((r - 0.5).abs() < 1e-9, "500 events / 1000 ticks = {r}");
    }

    #[test]
    fn zero_interval_rate_is_zero() {
        let g = Gauge::new();
        let s0 = g.snapshot(10);
        g.tick();
        let s1 = g.snapshot(10);
        assert_eq!(s1.rate_since(&s0), 0.0);
    }

    #[test]
    fn concurrent_ticks_all_counted() {
        let g = std::sync::Arc::new(Gauge::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    g.tick();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.read(), 80_000);
    }
}
