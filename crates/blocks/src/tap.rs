//! Queue-operation tap (feature `trace`): a thread-local ring of recent
//! queue put/get operations.
//!
//! Code-Isolation style, like the queues it observes: each host thread
//! writes only its own ring, so the tap takes no locks and adds no
//! shared-memory traffic to the optimistic synchronization it is
//! watching. A harness drains the calling thread's ring with [`drain`].
//!
//! With the feature off, [`record`] is an empty inline function and the
//! queues compile to exactly the uninstrumented code.

/// What a tap record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Items were inserted (`Q_put` / the multi-item insert).
    Put,
    /// An item was removed (`Q_get`).
    Get,
}

/// One queue operation, as observed on the calling thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueOp {
    /// Put or get.
    pub kind: OpKind,
    /// Identifies the queue (the shared ring's address, truncated).
    pub queue: u32,
    /// Items moved by the operation.
    pub n: u32,
    /// Per-thread monotonic sequence number.
    pub seq: u64,
}

/// Per-thread ring capacity in records; on wraparound the newest records
/// win.
pub const TAP_RECORDS: usize = 4096;

#[cfg(feature = "trace")]
mod imp {
    use std::cell::RefCell;

    use super::{OpKind, QueueOp, TAP_RECORDS};

    struct Ring {
        buf: Vec<QueueOp>,
        head: usize,
        seq: u64,
    }

    thread_local! {
        static RING: RefCell<Ring> = const {
            RefCell::new(Ring { buf: Vec::new(), head: 0, seq: 0 })
        };
    }

    /// Record one queue operation on the calling thread's ring.
    pub fn record(kind: OpKind, queue: u32, n: u32) {
        RING.with(|r| {
            let mut r = r.borrow_mut();
            let seq = r.seq;
            r.seq += 1;
            let rec = QueueOp {
                kind,
                queue,
                n,
                seq,
            };
            if r.buf.len() < TAP_RECORDS {
                r.buf.push(rec);
            } else {
                let h = r.head;
                r.buf[h] = rec;
                r.head = (h + 1) % TAP_RECORDS;
            }
        });
    }

    /// Drain the calling thread's ring, oldest record first.
    pub fn drain() -> Vec<QueueOp> {
        RING.with(|r| {
            let mut r = r.borrow_mut();
            let mut v = Vec::with_capacity(r.buf.len());
            v.extend_from_slice(&r.buf[r.head..]);
            v.extend_from_slice(&r.buf[..r.head]);
            r.buf.clear();
            r.head = 0;
            v
        })
    }
}

#[cfg(feature = "trace")]
pub use imp::{drain, record};

/// Record one queue operation on the calling thread's ring (feature
/// `trace` off: compiles to nothing).
#[cfg(not(feature = "trace"))]
#[inline(always)]
pub fn record(_kind: OpKind, _queue: u32, _n: u32) {}

/// Drain the calling thread's ring (feature `trace` off: always empty).
#[cfg(not(feature = "trace"))]
#[must_use]
pub fn drain() -> Vec<QueueOp> {
    Vec::new()
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_keeping_newest_and_seq_is_monotonic() {
        let _ = drain();
        for i in 0..(TAP_RECORDS + 10) as u32 {
            record(OpKind::Put, 7, i);
        }
        let ops = drain();
        assert_eq!(ops.len(), TAP_RECORDS);
        // The oldest 10 were overwritten; what's left is in order.
        assert_eq!(ops[0].n, 10);
        assert!(ops.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert!(drain().is_empty(), "drain empties the ring");
    }

    #[test]
    fn rings_are_per_thread() {
        let _ = drain();
        record(OpKind::Put, 1, 1);
        let other = std::thread::spawn(|| {
            record(OpKind::Get, 2, 1);
            drain()
        })
        .join()
        .unwrap();
        let mine = drain();
        assert_eq!(other.len(), 1);
        assert_eq!(other[0].queue, 2);
        assert_eq!(mine.len(), 1, "the other thread's op stayed off my ring");
        assert_eq!(mine[0].queue, 1);
    }
}
