//! Model-based property tests: every queue flavour, driven by a random
//! sequence of put/get operations from a single thread, must behave
//! exactly like a bounded `VecDeque`.

use std::collections::VecDeque;

use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(u32),
    PutMany(Vec<u32>),
    Get,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u32>().prop_map(Op::Put),
        1 => proptest::collection::vec(any::<u32>(), 0..6).prop_map(Op::PutMany),
        4 => Just(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn spsc_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200), cap in 1usize..16) {
        let (mut p, mut c) = synthesis_blocks::spsc::channel::<u32>(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Put(v) => {
                    let r = p.put(v);
                    if model.len() < cap {
                        prop_assert!(r.is_ok());
                        model.push_back(v);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                Op::Get => {
                    prop_assert_eq!(c.get(), model.pop_front());
                }
                Op::PutMany(vs) => {
                    let fits = model.len() + vs.len() <= cap;
                    let r = p.put_many(vs.clone());
                    if vs.is_empty() || fits {
                        prop_assert!(r.is_ok());
                        model.extend(vs);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
            }
        }
        // Drain and compare the remainder.
        while let Some(v) = c.get() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    #[test]
    fn mpsc_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200), cap in 1usize..16) {
        let (p, mut c) = synthesis_blocks::mpsc::channel::<u32>(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Put(v) => {
                    let r = p.put(v);
                    if model.len() < cap {
                        prop_assert!(r.is_ok());
                        model.push_back(v);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                Op::PutMany(vs) => {
                    let fits = vs.len() <= cap && model.len() + vs.len() <= cap;
                    let r = p.put_many(vs.clone());
                    if vs.is_empty() {
                        prop_assert!(r.is_ok());
                    } else if fits {
                        prop_assert!(r.is_ok());
                        model.extend(vs);
                    } else {
                        prop_assert!(r.is_err(), "batch of {} into {} free", vs.len(), cap - model.len());
                    }
                }
                Op::Get => {
                    prop_assert_eq!(c.get(), model.pop_front());
                }
            }
        }
        while let Some(v) = c.get() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    #[test]
    fn mpmc_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200), cap in 2usize..16) {
        let q = synthesis_blocks::mpmc::channel::<u32>(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Put(v) => {
                    let r = q.put(v);
                    if model.len() < cap {
                        prop_assert!(r.is_ok());
                        model.push_back(v);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                Op::Get => {
                    prop_assert_eq!(q.get(), model.pop_front());
                }
                Op::PutMany(vs) => {
                    let fits = model.len() + vs.len() <= cap;
                    let r = q.put_many(vs.clone());
                    if vs.is_empty() || fits {
                        prop_assert!(r.is_ok());
                        model.extend(vs);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
            }
        }
        while let Some(v) = q.get() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    #[test]
    fn spmc_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200), cap in 2usize..16) {
        let (mut p, c) = synthesis_blocks::spmc::channel::<u32>(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Put(v) => {
                    let r = p.put(v);
                    if model.len() < cap {
                        prop_assert!(r.is_ok());
                        model.push_back(v);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                Op::Get => {
                    prop_assert_eq!(c.get(), model.pop_front());
                }
                Op::PutMany(vs) => {
                    let fits = model.len() + vs.len() <= cap;
                    let r = p.put_many(vs.clone());
                    if vs.is_empty() || fits {
                        prop_assert!(r.is_ok());
                        model.extend(vs);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
            }
        }
        while let Some(v) = c.get() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    #[test]
    fn dedicated_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200), cap in 1usize..16) {
        let mut q = synthesis_blocks::dedicated::DedicatedQueue::<u32>::new(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Put(v) => {
                    let r = q.put(v);
                    if model.len() < cap {
                        prop_assert!(r.is_ok());
                        model.push_back(v);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                Op::Get => {
                    prop_assert_eq!(q.get(), model.pop_front());
                }
                Op::PutMany(_) => {}
            }
            prop_assert_eq!(q.len(), model.len());
        }
    }

    /// The Figure 2 multi-item insert is all-or-nothing: a batch that
    /// does not fit is refused *before* any slot is claimed, so the
    /// queue's contents, order, and head position are untouched and the
    /// whole batch comes back to the caller.
    #[test]
    fn mpsc_batchfull_rolls_back_cleanly(
        prefill in proptest::collection::vec(any::<u32>(), 0..8),
        batch in proptest::collection::vec(any::<u32>(), 1..12),
        cap in 1usize..8,
    ) {
        let (p, mut c) = synthesis_blocks::mpsc::channel::<u32>(cap);
        let accepted: Vec<u32> = prefill.into_iter().take(cap).collect();
        for &v in &accepted {
            prop_assert!(p.put(v).is_ok());
        }
        let free = cap - accepted.len();
        if batch.len() > free {
            // Refused mid-claim: the batch is handed back intact...
            let synthesis_blocks::BatchFull(back) = p.put_many(batch.clone()).unwrap_err();
            prop_assert_eq!(&back, &batch, "the refused batch comes back in order");
            // ...and the queue still holds exactly the prefill, in order.
            let mut drained = Vec::new();
            while let Some(v) = c.get() {
                drained.push(v);
            }
            prop_assert_eq!(&drained, &accepted, "a refused batch leaves no trace");
            // The rollback did not corrupt the head: a fitting batch
            // still lands in the fully drained queue.
            let fitting: Vec<u32> = back.into_iter().take(cap).collect();
            let n = fitting.len();
            prop_assert!(p.put_many(fitting.clone()).is_ok());
            let mut after = Vec::new();
            while let Some(v) = c.get() {
                after.push(v);
            }
            prop_assert_eq!(after, fitting);
            prop_assert!(n <= cap);
        } else {
            prop_assert!(p.put_many(batch.clone()).is_ok());
            let mut drained = Vec::new();
            while let Some(v) = c.get() {
                drained.push(v);
            }
            let mut want = accepted;
            want.extend(batch);
            prop_assert_eq!(drained, want, "an accepted batch appends in order");
        }
        // Single-threaded there is no CAS contention: every insert took
        // the 11-instruction fast path.
        prop_assert_eq!(p.stats().retries, 0);
    }

    /// Same all-or-nothing contract for the SP-SC flavour, where the
    /// batch publishes via a single head store instead of per-slot
    /// flags: a refused batch must leave the cached head untouched.
    #[test]
    fn spsc_batchfull_rolls_back_cleanly(
        prefill in proptest::collection::vec(any::<u32>(), 0..8),
        batch in proptest::collection::vec(any::<u32>(), 1..12),
        cap in 1usize..8,
    ) {
        let (mut p, mut c) = synthesis_blocks::spsc::channel::<u32>(cap);
        let accepted: Vec<u32> = prefill.into_iter().take(cap).collect();
        for &v in &accepted {
            prop_assert!(p.put(v).is_ok());
        }
        let free = cap - accepted.len();
        if batch.len() > free {
            let synthesis_blocks::BatchFull(back) = p.put_many(batch.clone()).unwrap_err();
            prop_assert_eq!(&back, &batch, "the refused batch comes back in order");
            let mut drained = Vec::new();
            while let Some(v) = c.get() {
                drained.push(v);
            }
            prop_assert_eq!(&drained, &accepted, "a refused batch leaves no trace");
            let fitting: Vec<u32> = back.into_iter().take(cap).collect();
            prop_assert!(p.put_many(fitting.clone()).is_ok());
            let mut after = Vec::new();
            while let Some(v) = c.get() {
                after.push(v);
            }
            prop_assert_eq!(after, fitting, "the head survives a refusal");
        } else {
            prop_assert!(p.put_many(batch.clone()).is_ok());
            let mut drained = Vec::new();
            while let Some(v) = c.get() {
                drained.push(v);
            }
            let mut want = accepted;
            want.extend(batch);
            prop_assert_eq!(drained, want, "an accepted batch appends in order");
        }
    }

    /// SP-MC: the batch publishes per-slot through the Figure 2 flag
    /// array (sequence stamps), in slot order — so after a refusal the
    /// stamps must all still read "free" and a retry lands cleanly.
    #[test]
    fn spmc_batchfull_rolls_back_cleanly(
        prefill in proptest::collection::vec(any::<u32>(), 0..8),
        batch in proptest::collection::vec(any::<u32>(), 1..12),
        cap in 2usize..8,
    ) {
        let (mut p, c) = synthesis_blocks::spmc::channel::<u32>(cap);
        let accepted: Vec<u32> = prefill.into_iter().take(cap).collect();
        for &v in &accepted {
            prop_assert!(p.put(v).is_ok());
        }
        let free = cap - accepted.len();
        if batch.len() > free {
            let synthesis_blocks::BatchFull(back) = p.put_many(batch.clone()).unwrap_err();
            prop_assert_eq!(&back, &batch, "the refused batch comes back in order");
            let mut drained = Vec::new();
            while let Some(v) = c.get() {
                drained.push(v);
            }
            prop_assert_eq!(&drained, &accepted, "a refused batch leaves no trace");
            let fitting: Vec<u32> = back.into_iter().take(cap).collect();
            prop_assert!(p.put_many(fitting.clone()).is_ok());
            let mut after = Vec::new();
            while let Some(v) = c.get() {
                after.push(v);
            }
            prop_assert_eq!(after, fitting, "no slot stamp was disturbed by the refusal");
        } else {
            prop_assert!(p.put_many(batch.clone()).is_ok());
            let mut drained = Vec::new();
            while let Some(v) = c.get() {
                drained.push(v);
            }
            let mut want = accepted;
            want.extend(batch);
            prop_assert_eq!(drained, want, "an accepted batch appends in order");
        }
    }

    /// MP-MC: the claim is a single multi-slot CAS; a refusal happens
    /// before the CAS, so neither the head nor any sequence stamp moves.
    #[test]
    fn mpmc_batchfull_rolls_back_cleanly(
        prefill in proptest::collection::vec(any::<u32>(), 0..8),
        batch in proptest::collection::vec(any::<u32>(), 1..12),
        cap in 2usize..8,
    ) {
        let q = synthesis_blocks::mpmc::channel::<u32>(cap);
        let accepted: Vec<u32> = prefill.into_iter().take(cap).collect();
        for &v in &accepted {
            prop_assert!(q.put(v).is_ok());
        }
        let free = cap - accepted.len();
        if batch.len() > free {
            let synthesis_blocks::BatchFull(back) = q.put_many(batch.clone()).unwrap_err();
            prop_assert_eq!(&back, &batch, "the refused batch comes back in order");
            let mut drained = Vec::new();
            while let Some(v) = q.get() {
                drained.push(v);
            }
            prop_assert_eq!(&drained, &accepted, "a refused batch leaves no trace");
            let fitting: Vec<u32> = back.into_iter().take(cap).collect();
            prop_assert!(q.put_many(fitting.clone()).is_ok());
            let mut after = Vec::new();
            while let Some(v) = q.get() {
                after.push(v);
            }
            prop_assert_eq!(after, fitting, "the head claim counter survives a refusal");
        } else {
            prop_assert!(q.put_many(batch.clone()).is_ok());
            let mut drained = Vec::new();
            while let Some(v) = q.get() {
                drained.push(v);
            }
            let mut want = accepted;
            want.extend(batch);
            prop_assert_eq!(drained, want, "an accepted batch appends in order");
        }
        // Single-threaded: no contention, so the claim CAS never retried.
        prop_assert_eq!(q.retries(), 0);
    }

    #[test]
    fn buffered_preserves_order_and_amortizes(
        items in proptest::collection::vec(any::<u32>(), 0..200),
    ) {
        let (mut p, mut c) = synthesis_blocks::buffered::channel::<u32, 4>(64);
        for &v in &items {
            prop_assert!(p.put(v).is_ok());
        }
        let complete = items.len() / 4 * 4;
        let mut got = Vec::new();
        while let Some(v) = c.get() {
            got.push(v);
        }
        prop_assert_eq!(&got[..], &items[..complete], "complete chunks drain in order");
        prop_assert_eq!(p.staged(), items.len() % 4);
    }
}

/// Four producers hammering a tiny queue with mixed single and batch
/// inserts: every item is delivered exactly once, and the contention is
/// visible in [`PutStats::retries`] — "the failing thread goes once
/// around the retry loop".
#[test]
fn mpsc_contended_puts_count_cas_retries() {
    use synthesis_blocks::{BatchFull, Full};

    const PER_PRODUCER: u64 = 5_000;
    const PRODUCERS: u64 = 4;
    let (p, mut c) = synthesis_blocks::mpsc::channel::<u64>(4);
    let mut handles = Vec::new();
    for t in 0..PRODUCERS {
        let p = p.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_PRODUCER {
                let v = t * PER_PRODUCER + i;
                if i % 3 == 0 {
                    let mut b = vec![v];
                    loop {
                        match p.put_many(b) {
                            Ok(()) => break,
                            Err(BatchFull(back)) => {
                                b = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                } else {
                    let mut w = v;
                    loop {
                        match p.put(w) {
                            Ok(()) => break,
                            Err(Full(back)) => {
                                w = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }
        }));
    }
    let total = PRODUCERS * PER_PRODUCER;
    let mut sum: u64 = 0;
    let mut count: u64 = 0;
    while count < total {
        if let Some(v) = c.get() {
            sum = sum.wrapping_add(v);
            count += 1;
        } else {
            std::thread::yield_now();
        }
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(c.get(), None, "nothing duplicated or left behind");
    let expect: u64 = (0..total).sum();
    assert_eq!(sum, expect, "every item delivered exactly once");
    // With real parallelism the CAS windows overlap and the retry loop
    // is demonstrably taken. On a single hardware thread producers are
    // only preempted *between* claim attempts, so contention is not
    // guaranteed — the counter is merely consistent (shared by clones).
    let parallel = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if parallel > 1 {
        assert!(
            p.stats().retries > 0,
            "four producers on a four-slot queue must collide at the CAS"
        );
    }
    assert_eq!(
        p.stats().retries,
        p.clone().stats().retries,
        "clones report the shared counter"
    );
}
