//! Model-based property tests: every queue flavour, driven by a random
//! sequence of put/get operations from a single thread, must behave
//! exactly like a bounded `VecDeque`.

use std::collections::VecDeque;

use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(u32),
    PutMany(Vec<u32>),
    Get,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u32>().prop_map(Op::Put),
        1 => proptest::collection::vec(any::<u32>(), 0..6).prop_map(Op::PutMany),
        4 => Just(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn spsc_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200), cap in 1usize..16) {
        let (mut p, mut c) = synthesis_blocks::spsc::channel::<u32>(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Put(v) => {
                    let r = p.put(v);
                    if model.len() < cap {
                        prop_assert!(r.is_ok());
                        model.push_back(v);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                Op::Get => {
                    prop_assert_eq!(c.get(), model.pop_front());
                }
                Op::PutMany(_) => {} // spsc has no batch API
            }
        }
        // Drain and compare the remainder.
        while let Some(v) = c.get() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    #[test]
    fn mpsc_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200), cap in 1usize..16) {
        let (p, mut c) = synthesis_blocks::mpsc::channel::<u32>(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Put(v) => {
                    let r = p.put(v);
                    if model.len() < cap {
                        prop_assert!(r.is_ok());
                        model.push_back(v);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                Op::PutMany(vs) => {
                    let fits = vs.len() <= cap && model.len() + vs.len() <= cap;
                    let r = p.put_many(vs.clone());
                    if vs.is_empty() {
                        prop_assert!(r.is_ok());
                    } else if fits {
                        prop_assert!(r.is_ok());
                        model.extend(vs);
                    } else {
                        prop_assert!(r.is_err(), "batch of {} into {} free", vs.len(), cap - model.len());
                    }
                }
                Op::Get => {
                    prop_assert_eq!(c.get(), model.pop_front());
                }
            }
        }
        while let Some(v) = c.get() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    #[test]
    fn mpmc_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200), cap in 2usize..16) {
        let q = synthesis_blocks::mpmc::channel::<u32>(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Put(v) => {
                    let r = q.put(v);
                    if model.len() < cap {
                        prop_assert!(r.is_ok());
                        model.push_back(v);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                Op::Get => {
                    prop_assert_eq!(q.get(), model.pop_front());
                }
                Op::PutMany(_) => {}
            }
        }
        while let Some(v) = q.get() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    #[test]
    fn spmc_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200), cap in 2usize..16) {
        let (mut p, c) = synthesis_blocks::spmc::channel::<u32>(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Put(v) => {
                    let r = p.put(v);
                    if model.len() < cap {
                        prop_assert!(r.is_ok());
                        model.push_back(v);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                Op::Get => {
                    prop_assert_eq!(c.get(), model.pop_front());
                }
                Op::PutMany(_) => {}
            }
        }
        while let Some(v) = c.get() {
            prop_assert_eq!(Some(v), model.pop_front());
        }
        prop_assert!(model.is_empty());
    }

    #[test]
    fn dedicated_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200), cap in 1usize..16) {
        let mut q = synthesis_blocks::dedicated::DedicatedQueue::<u32>::new(cap);
        let mut model: VecDeque<u32> = VecDeque::new();
        for op in ops {
            match op {
                Op::Put(v) => {
                    let r = q.put(v);
                    if model.len() < cap {
                        prop_assert!(r.is_ok());
                        model.push_back(v);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                Op::Get => {
                    prop_assert_eq!(q.get(), model.pop_front());
                }
                Op::PutMany(_) => {}
            }
            prop_assert_eq!(q.len(), model.len());
        }
    }

    #[test]
    fn buffered_preserves_order_and_amortizes(
        items in proptest::collection::vec(any::<u32>(), 0..200),
    ) {
        let (mut p, mut c) = synthesis_blocks::buffered::channel::<u32, 4>(64);
        for &v in &items {
            prop_assert!(p.put(v).is_ok());
        }
        let complete = items.len() / 4 * 4;
        let mut got = Vec::new();
        while let Some(v) = c.get() {
            got.push(v);
        }
        prop_assert_eq!(&got[..], &items[..complete], "complete chunks drain in order");
        prop_assert_eq!(p.staged(), items.len() % 4);
    }
}
