//! Linearizability suite for the optimistic queues, driven by the
//! deterministic schedule-exploration executor (`--features sim`).
//!
//! Each scenario runs 2–4 model threads doing `put` / `put_many` / `get`
//! / `close` against a queue, recording a per-thread history of
//! operations with logical-clock intervals ([`sim::now`]). After the
//! threads finish, the main thread drains the queue (with timestamps
//! after every recorded op) and a Wing & Gold-style checker searches for
//! a legal sequential witness against a reference `VecDeque` model. The
//! explorer then enumerates ≥ 10k distinct schedules per queue flavor;
//! any schedule without a witness fails with a replayable trace.
//!
//! ## Strict vs. relaxed emptiness
//!
//! The claim-based flavors are *not* strictly linearizable for transient
//! emptiness, and correctly so: in the paper's Figure 2 protocol a
//! producer stakes a claim (head CAS) before publishing (valid flag), so
//! a consumer can observe "empty" while a *completed* later put is hidden
//! behind an earlier claim still in flight. The spec therefore accepts a
//! `Get -> None` (or a refused put) on those flavors iff some explaining
//! operation's interval overlaps it. Drain-phase operations get
//! timestamps after everything, so nothing overlaps them: lost updates,
//! duplicated items, reordering, and partial batches are still caught.

#![cfg(feature = "sim")]

use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use synthesis_blocks::blocking::BlockingQueue;
use synthesis_blocks::signal::SignalQueue;
use synthesis_blocks::sim::{self, Explorer, Scenario};
use synthesis_blocks::steal::WorkPool;
use synthesis_blocks::{mpmc, mpsc, spmc, spsc};

// ---------------------------------------------------------------------
// Histories
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Op {
    /// `Put(value, accepted)`; `accepted == false` means the queue
    /// refused it (Full / closed).
    Put(u64, bool),
    /// All-or-nothing batch insert and whether it was accepted.
    PutMany(Vec<u64>, bool),
    Get(Option<u64>),
    Close,
}

#[derive(Clone, Debug)]
struct OpRec {
    start: u64,
    end: u64,
    op: Op,
}

type Hist = Arc<Mutex<Vec<OpRec>>>;

/// Record one completed operation. The lock is only held between
/// preemption points (no shim atomic is touched while holding it), so
/// model threads never block each other here.
fn record(hist: &Hist, start: u64, op: Op) {
    let end = sim::now();
    hist.lock().unwrap().push(OpRec { start, end, op });
}

// ---------------------------------------------------------------------
// The checker: search for a sequential witness
// ---------------------------------------------------------------------

#[derive(Clone, Copy)]
struct Spec {
    cap: usize,
    /// Claim-based flavor: transient empty/full verdicts are legal when
    /// an overlapping operation explains them (see module docs).
    relaxed: bool,
    /// Puts are refused once the queue is closed (`SignalQueue`).
    refuse_when_closed: bool,
}

fn overlaps(a: &OpRec, b: &OpRec) -> bool {
    !(a.end < b.start || b.end < a.start)
}

struct Checker<'a> {
    hist: &'a [OpRec],
    spec: Spec,
    /// `must_before[i]`: bitmask of ops that finished strictly before op
    /// `i` started — they must all be linearized before `i`.
    must_before: Vec<u64>,
    /// `explained[i]`: an overlapping op exists that can explain a
    /// transient empty (for gets) or full (for refused puts) verdict.
    explained: Vec<bool>,
    memo: HashSet<(u64, Vec<u64>, bool)>,
}

impl<'a> Checker<'a> {
    fn new(hist: &'a [OpRec], spec: Spec) -> Self {
        let n = hist.len();
        assert!(n <= 64, "history too long for the bitmask checker");
        let mut must_before = vec![0u64; n];
        let mut explained = vec![false; n];
        for i in 0..n {
            for j in 0..n {
                if i != j && hist[j].end < hist[i].start {
                    must_before[i] |= 1 << j;
                }
            }
            explained[i] = hist.iter().enumerate().any(|(j, r)| {
                j != i
                    && overlaps(r, &hist[i])
                    && matches!(
                        r.op,
                        Op::Put(_, true) | Op::PutMany(_, true) | Op::Get(Some(_))
                    )
            });
        }
        Checker {
            hist,
            spec,
            must_before,
            explained,
            memo: HashSet::new(),
        }
    }

    fn search(&mut self) -> bool {
        let mut q = VecDeque::new();
        self.dfs(0, &mut q, false)
    }

    fn dfs(&mut self, taken: u64, q: &mut VecDeque<u64>, closed: bool) -> bool {
        let n = self.hist.len();
        if taken == (1u64 << n) - 1 {
            return true;
        }
        if !self
            .memo
            .insert((taken, q.iter().copied().collect(), closed))
        {
            return false;
        }
        let spec = self.spec;
        for i in 0..n {
            if taken & (1 << i) != 0 || self.must_before[i] & !taken != 0 {
                continue;
            }
            match &self.hist[i].op {
                Op::Put(v, true) => {
                    if q.len() < spec.cap && !(closed && spec.refuse_when_closed) {
                        q.push_back(*v);
                        if self.dfs(taken | 1 << i, q, closed) {
                            return true;
                        }
                        q.pop_back();
                    }
                }
                Op::Put(_, false) => {
                    let legal = q.len() >= spec.cap
                        || (closed && spec.refuse_when_closed)
                        || (spec.relaxed && self.explained[i]);
                    if legal && self.dfs(taken | 1 << i, q, closed) {
                        return true;
                    }
                }
                Op::PutMany(vs, true) => {
                    if q.len() + vs.len() <= spec.cap && !(closed && spec.refuse_when_closed) {
                        for &v in vs {
                            q.push_back(v);
                        }
                        if self.dfs(taken | 1 << i, q, closed) {
                            return true;
                        }
                        for _ in vs {
                            q.pop_back();
                        }
                    }
                }
                Op::PutMany(vs, false) => {
                    let legal = q.len() + vs.len() > spec.cap
                        || (closed && spec.refuse_when_closed)
                        || (spec.relaxed && self.explained[i]);
                    if legal && self.dfs(taken | 1 << i, q, closed) {
                        return true;
                    }
                }
                Op::Get(Some(v)) => {
                    if q.front() == Some(v) {
                        q.pop_front();
                        if self.dfs(taken | 1 << i, q, closed) {
                            return true;
                        }
                        q.push_front(*v);
                    }
                }
                Op::Get(None) => {
                    let legal = q.is_empty() || (spec.relaxed && self.explained[i]);
                    if legal && self.dfs(taken | 1 << i, q, closed) {
                        return true;
                    }
                }
                Op::Close => {
                    if self.dfs(taken | 1 << i, q, true) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

fn fmt_hist(hist: &[OpRec]) -> String {
    hist.iter()
        .map(|r| format!("  [{:>4},{:>4}] {:?}", r.start, r.end, r.op))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Append the drain-phase gets (timestamps after every recorded op, so
/// they never overlap anything) and run the witness search.
fn check_history(hist: &Hist, drained: Vec<Option<u64>>, spec: Spec) -> Result<(), String> {
    let mut h = hist.lock().unwrap().clone();
    let mut ts = 1u64 << 60;
    for item in drained {
        h.push(OpRec {
            start: ts,
            end: ts + 1,
            op: Op::Get(item),
        });
        ts += 2;
    }
    if Checker::new(&h, spec).search() {
        Ok(())
    } else {
        Err(format!(
            "no sequential witness for history:\n{}",
            fmt_hist(&h)
        ))
    }
}

// ---------------------------------------------------------------------
// Exploration driver (the acceptance criterion lives here)
// ---------------------------------------------------------------------

fn explore_flavor(name: &str, budget: u32, make: impl FnMut() -> Scenario) {
    let t0 = Instant::now();
    let explorer = Explorer {
        preemption_budget: budget,
        max_schedules: 12_000,
        max_steps: 20_000,
    };
    let report = explorer.explore(make);
    report.assert_ok();
    assert!(
        report.schedules >= 10_000,
        "{name}: only {} schedules explored{} — raise the preemption budget",
        report.schedules,
        if report.exhausted {
            " (tree exhausted)"
        } else {
            ""
        }
    );
    assert!(
        t0.elapsed() < Duration::from_secs(60),
        "{name}: exploration took {:?}, over the 60 s budget",
        t0.elapsed()
    );
}

/// A shared slot holding a loaned-out queue endpoint.
type Loan<C> = Arc<Mutex<Option<C>>>;

/// Hand a non-cloneable consumer into its model thread and back out to
/// the drain phase. The mutex is only touched at thread entry/exit and in
/// the final check, never concurrently.
fn loan<C: Send>(c: C) -> (Loan<C>, Loan<C>) {
    let slot = Arc::new(Mutex::new(Some(c)));
    (slot.clone(), slot)
}

// ---------------------------------------------------------------------
// Scenarios, one per flavor
// ---------------------------------------------------------------------

fn spsc_scenario() -> Scenario {
    // Figure 1 is so synchronization-light (cached indices; one atomic
    // store per put on the fast path) that a small scenario has a tiny
    // schedule tree — so this one pushes past capacity to force the
    // full/empty boundary refreshes, the only places spsc synchronizes.
    let (mut p, c) = spsc::channel::<u64>(3);
    let hist: Hist = Arc::new(Mutex::new(Vec::new()));
    let (c_in, c_out) = loan(c);
    let (hp, hc, hk) = (hist.clone(), hist.clone(), hist);
    Scenario::new()
        .thread(move || {
            for v in [1, 2, 3, 4] {
                let s = sim::now();
                let ok = p.put(v).is_ok();
                record(&hp, s, Op::Put(v, ok));
            }
            for batch in [vec![5, 6], vec![7, 8]] {
                let s = sim::now();
                let ok = p.put_many(batch.clone()).is_ok();
                record(&hp, s, Op::PutMany(batch, ok));
            }
        })
        .thread(move || {
            let mut c = c_in.lock().unwrap().take().unwrap();
            for _ in 0..6 {
                let s = sim::now();
                let got = c.get();
                record(&hc, s, Op::Get(got));
            }
            *c_in.lock().unwrap() = Some(c);
        })
        .check(move || {
            let mut c = c_out.lock().unwrap().take().unwrap();
            let mut drained = Vec::new();
            loop {
                let got = c.get();
                let done = got.is_none();
                drained.push(got);
                if done {
                    break;
                }
            }
            check_history(
                &hk,
                drained,
                Spec {
                    cap: 3,
                    relaxed: false, // Figure 1 publishes with a single head store
                    refuse_when_closed: false,
                },
            )
        })
}

fn mpsc_scenario() -> Scenario {
    let (p, c) = mpsc::channel::<u64>(4);
    let p2 = p.clone();
    let hist: Hist = Arc::new(Mutex::new(Vec::new()));
    let (c_in, c_out) = loan(c);
    let (h1, h2, hc, hk) = (hist.clone(), hist.clone(), hist.clone(), hist);
    Scenario::new()
        .thread(move || {
            for v in [1, 2] {
                let s = sim::now();
                let ok = p.put(v).is_ok();
                record(&h1, s, Op::Put(v, ok));
            }
        })
        .thread(move || {
            let s = sim::now();
            let ok = p2.put(11).is_ok();
            record(&h2, s, Op::Put(11, ok));
            let s = sim::now();
            let ok = p2.put_many(vec![12, 13]).is_ok();
            record(&h2, s, Op::PutMany(vec![12, 13], ok));
        })
        .thread(move || {
            let mut c = c_in.lock().unwrap().take().unwrap();
            for _ in 0..3 {
                let s = sim::now();
                let got = c.get();
                record(&hc, s, Op::Get(got));
            }
            *c_in.lock().unwrap() = Some(c);
        })
        .check(move || {
            let mut c = c_out.lock().unwrap().take().unwrap();
            let mut drained = Vec::new();
            loop {
                let got = c.get();
                let done = got.is_none();
                drained.push(got);
                if done {
                    break;
                }
            }
            check_history(
                &hk,
                drained,
                Spec {
                    cap: 4,
                    relaxed: true, // Figure 2 claims: empty can hide an in-flight claim
                    refuse_when_closed: false,
                },
            )
        })
}

/// Put-only spmc traffic is strictly linearizable: the single producer
/// publishes one item per seq stamp.
fn spmc_strict_scenario() -> Scenario {
    let (mut p, c) = spmc::channel::<u64>(4);
    let c2 = c.clone();
    let drain_c = c.clone();
    let hist: Hist = Arc::new(Mutex::new(Vec::new()));
    let (hp, h1, h2, hk) = (hist.clone(), hist.clone(), hist.clone(), hist);
    Scenario::new()
        .thread(move || {
            for v in [1, 2, 3] {
                let s = sim::now();
                let ok = p.put(v).is_ok();
                record(&hp, s, Op::Put(v, ok));
            }
        })
        .thread(move || {
            for _ in 0..2 {
                let s = sim::now();
                let got = c.get();
                record(&h1, s, Op::Get(got));
            }
        })
        .thread(move || {
            let s = sim::now();
            let got = c2.get();
            record(&h2, s, Op::Get(got));
        })
        .check(move || {
            let mut drained = Vec::new();
            loop {
                let got = drain_c.get();
                let done = got.is_none();
                drained.push(got);
                if done {
                    break;
                }
            }
            check_history(
                &hk,
                drained,
                Spec {
                    cap: 4,
                    relaxed: false,
                    refuse_when_closed: false,
                },
            )
        })
}

/// `put_many` on spmc publishes item-by-item (per-slot stamps), so a
/// consumer overlapping the batch may see a prefix — relaxed spec.
fn spmc_batch_scenario() -> Scenario {
    let (mut p, c) = spmc::channel::<u64>(4);
    let c2 = c.clone();
    let drain_c = c.clone();
    let hist: Hist = Arc::new(Mutex::new(Vec::new()));
    let (hp, h1, h2, hk) = (hist.clone(), hist.clone(), hist.clone(), hist);
    Scenario::new()
        .thread(move || {
            let s = sim::now();
            let ok = p.put(1).is_ok();
            record(&hp, s, Op::Put(1, ok));
            let s = sim::now();
            let ok = p.put_many(vec![2, 3]).is_ok();
            record(&hp, s, Op::PutMany(vec![2, 3], ok));
        })
        .thread(move || {
            for _ in 0..2 {
                let s = sim::now();
                let got = c.get();
                record(&h1, s, Op::Get(got));
            }
        })
        .thread(move || {
            let s = sim::now();
            let got = c2.get();
            record(&h2, s, Op::Get(got));
        })
        .check(move || {
            let mut drained = Vec::new();
            loop {
                let got = drain_c.get();
                let done = got.is_none();
                drained.push(got);
                if done {
                    break;
                }
            }
            check_history(
                &hk,
                drained,
                Spec {
                    cap: 4,
                    relaxed: true,
                    refuse_when_closed: false,
                },
            )
        })
}

fn mpmc_scenario() -> Scenario {
    let q = mpmc::channel::<u64>(3);
    let (q1, q2, q3, qd) = (q.clone(), q.clone(), q.clone(), q);
    let hist: Hist = Arc::new(Mutex::new(Vec::new()));
    let (h1, h2, h3, hk) = (hist.clone(), hist.clone(), hist.clone(), hist);
    Scenario::new()
        .thread(move || {
            for v in [1, 2] {
                let s = sim::now();
                let ok = q1.put(v).is_ok();
                record(&h1, s, Op::Put(v, ok));
            }
        })
        .thread(move || {
            let s = sim::now();
            let ok = q2.put_many(vec![11, 12]).is_ok();
            record(&h2, s, Op::PutMany(vec![11, 12], ok));
        })
        .thread(move || {
            for _ in 0..3 {
                let s = sim::now();
                let got = q3.get();
                record(&h3, s, Op::Get(got));
            }
        })
        .check(move || {
            let mut drained = Vec::new();
            loop {
                let got = qd.get();
                let done = got.is_none();
                drained.push(got);
                if done {
                    break;
                }
            }
            check_history(
                &hk,
                drained,
                Spec {
                    cap: 3,
                    relaxed: true,
                    refuse_when_closed: false,
                },
            )
        })
}

fn signal_scenario() -> Scenario {
    let q = SignalQueue::<u64>::new(3);
    let (qa, qb, qc, qd) = (q.clone(), q.clone(), q.clone(), q);
    let hist: Hist = Arc::new(Mutex::new(Vec::new()));
    let (ha, hb, hc, hk) = (hist.clone(), hist.clone(), hist.clone(), hist);
    Scenario::new()
        .thread(move || {
            let s = sim::now();
            let ok = qa.put(1).is_ok();
            record(&ha, s, Op::Put(1, ok));
            let s = sim::now();
            let ok = qa.put_many(vec![2, 3]).is_ok();
            record(&ha, s, Op::PutMany(vec![2, 3], ok));
        })
        .thread(move || {
            let s = sim::now();
            qb.close();
            record(&hb, s, Op::Close);
            let s = sim::now();
            let ok = qb.put(21).is_ok();
            record(&hb, s, Op::Put(21, ok));
        })
        .thread(move || {
            for _ in 0..2 {
                let s = sim::now();
                let got = qc.get();
                record(&hc, s, Op::Get(got));
            }
        })
        .check(move || {
            let mut drained = Vec::new();
            loop {
                let got = qd.get();
                let done = got.is_none();
                drained.push(got);
                if done {
                    break;
                }
            }
            check_history(
                &hk,
                drained,
                Spec {
                    cap: 3,
                    relaxed: true,
                    refuse_when_closed: true, // SignalQueue refuses puts once closed
                },
            )
        })
}

fn blocking_scenario() -> Scenario {
    let q = BlockingQueue::<u64>::new(2);
    let (qa, qb, qc, qd) = (q.clone(), q.clone(), q.clone(), q);
    let hist: Hist = Arc::new(Mutex::new(Vec::new()));
    let (ha, hb, hc, hk) = (hist.clone(), hist.clone(), hist.clone(), hist);
    Scenario::new()
        .thread(move || {
            let s = sim::now();
            let ok = qa.try_put(1).is_ok();
            record(&ha, s, Op::Put(1, ok));
            let s = sim::now();
            let ok = qa.try_put_many(vec![2, 3]).is_ok();
            record(&ha, s, Op::PutMany(vec![2, 3], ok));
        })
        .thread(move || {
            let s = sim::now();
            qb.close();
            record(&hb, s, Op::Close);
            let s = sim::now();
            let ok = qb.try_put(21).is_ok();
            record(&hb, s, Op::Put(21, ok));
        })
        .thread(move || {
            for _ in 0..2 {
                let s = sim::now();
                let got = qc.try_get();
                record(&hc, s, Op::Get(got));
            }
        })
        .check(move || {
            let mut drained = Vec::new();
            loop {
                let got = qd.try_get();
                let done = got.is_none();
                drained.push(got);
                if done {
                    break;
                }
            }
            check_history(
                &hk,
                drained,
                Spec {
                    cap: 2,
                    relaxed: true,
                    // BlockingQueue::try_put deliberately ignores close
                    // (items enqueued before a racing close still count).
                    refuse_when_closed: false,
                },
            )
        })
}

/// The SMP scheduler's work-stealing pool: a victim CPU offers surplus
/// threads while two thief CPUs steal, every model thread pinned to its
/// own CPU so cross-CPU interleavings are explored budget-free (the
/// production concurrency pattern exactly). Offers are puts, steals are
/// gets; the pool rides the mpmc claim protocol, so the relaxed spec
/// applies.
fn steal_scenario() -> Scenario {
    let pool = WorkPool::<u64>::new(3);
    let (pv, p1, p2, pd) = (pool.clone(), pool.clone(), pool.clone(), pool);
    let hist: Hist = Arc::new(Mutex::new(Vec::new()));
    let (hv, h1, h2, hk) = (hist.clone(), hist.clone(), hist.clone(), hist);
    Scenario::new()
        .thread_on(0, move || {
            // The victim CPU offloads two surplus threads, then pulls one
            // back (a victim may reclaim its own offer).
            for v in [1, 2] {
                let s = sim::now();
                let ok = pv.offer(v).is_ok();
                record(&hv, s, Op::Put(v, ok));
            }
            let s = sim::now();
            let got = pv.steal();
            record(&hv, s, Op::Get(got));
        })
        .thread_on(1, move || {
            let s = sim::now();
            let got = p1.steal();
            record(&h1, s, Op::Get(got));
        })
        .thread_on(2, move || {
            let s = sim::now();
            let ok = p2.offer(11).is_ok();
            record(&h2, s, Op::Put(11, ok));
            let s = sim::now();
            let got = p2.steal();
            record(&h2, s, Op::Get(got));
        })
        .check(move || {
            let mut drained = Vec::new();
            loop {
                let got = pd.steal();
                let done = got.is_none();
                drained.push(got);
                if done {
                    break;
                }
            }
            // The counters must agree with the history before the
            // witness search: every accepted offer counted once, every
            // successful steal counted once.
            let h = hk.lock().unwrap().clone();
            let puts = h
                .iter()
                .filter(|r| matches!(r.op, Op::Put(_, true)))
                .count() as u64;
            let gets = h
                .iter()
                .filter(|r| matches!(r.op, Op::Get(Some(_))))
                .count() as u64
                + drained.iter().filter(|g| g.is_some()).count() as u64;
            if pd.offered() != puts {
                return Err(format!("offered() = {}, history has {puts}", pd.offered()));
            }
            if pd.stolen() != gets {
                return Err(format!("stolen() = {}, history has {gets}", pd.stolen()));
            }
            check_history(
                &hk,
                drained,
                Spec {
                    cap: 3,
                    relaxed: true, // mpmc claims underneath
                    refuse_when_closed: false,
                },
            )
        })
}

// ---------------------------------------------------------------------
// The tests
// ---------------------------------------------------------------------

#[test]
fn spsc_linearizable_under_bounded_dfs() {
    explore_flavor("spsc", 10, spsc_scenario);
}

#[test]
fn mpsc_linearizable_under_bounded_dfs() {
    explore_flavor("mpsc", 3, mpsc_scenario);
}

#[test]
fn spmc_put_only_strictly_linearizable() {
    explore_flavor("spmc", 4, spmc_strict_scenario);
}

#[test]
fn spmc_batched_linearizable_under_bounded_dfs() {
    explore_flavor("spmc-batch", 4, spmc_batch_scenario);
}

#[test]
fn mpmc_linearizable_under_bounded_dfs() {
    explore_flavor("mpmc", 3, mpmc_scenario);
}

#[test]
fn signal_wrapper_linearizable_with_close() {
    explore_flavor("signal", 3, signal_scenario);
}

#[test]
fn blocking_wrapper_linearizable_with_close() {
    explore_flavor("blocking", 4, blocking_scenario);
}

#[test]
fn steal_pool_linearizable_across_cpus() {
    explore_flavor("steal", 2, steal_scenario);
}

/// Deeper-than-DFS probing with a fixed seed; same witness check.
#[test]
fn mpmc_random_walk_stays_linearizable() {
    let explorer = Explorer {
        preemption_budget: 8,
        max_schedules: u64::MAX,
        max_steps: 20_000,
    };
    explorer
        .random_walk(0x5EED, 2_000, mpmc_scenario)
        .assert_ok();
}

/// Satellite: `len_hint` must never exceed `capacity`, even while puts
/// and gets race around the ring's wraparound. The observer thread
/// asserts from inside the model, so a violation fails with a replayable
/// schedule.
#[test]
fn mpmc_len_hint_never_exceeds_capacity() {
    let explorer = Explorer {
        preemption_budget: 3,
        max_schedules: 30_000,
        max_steps: 20_000,
    };
    let report = explorer.explore(|| {
        let q = mpmc::channel::<u64>(2);
        let (qp, qc, qw) = (q.clone(), q.clone(), q);
        Scenario::new()
            .thread(move || {
                for v in [1, 2, 3] {
                    let _ = qp.put(v);
                }
            })
            .thread(move || {
                for _ in 0..2 {
                    let _ = qc.get();
                }
            })
            .thread(move || {
                for _ in 0..3 {
                    let len = qw.len_hint();
                    let cap = qw.capacity();
                    assert!(len <= cap, "len_hint {len} exceeds capacity {cap}");
                }
            })
    });
    report.assert_ok();
}
