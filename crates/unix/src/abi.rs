//! The UNIX system-call ABI of the benchmark binaries.
//!
//! Calls are `trap #3` with the call number in `d0`; arguments in `d1`,
//! `d2`, and `a0`; the result (or a negative errno) returns in `d0`.
//! The call numbers follow the SUNOS 3.5 table for the calls the
//! benchmarks use.

/// The trap used for UNIX system calls.
pub const UNIX_TRAP: u8 = 3;

/// `exit(status = d1)`.
pub const SYS_EXIT: u32 = 1;
/// `read(fd = d1, buf = a0, count = d2)`.
pub const SYS_READ: u32 = 3;
/// `write(fd = d1, buf = a0, count = d2)`.
pub const SYS_WRITE: u32 = 4;
/// `open(path = a0, flags = d1)`.
pub const SYS_OPEN: u32 = 5;
/// `close(fd = d1)`.
pub const SYS_CLOSE: u32 = 6;
/// `creat(path = a0, mode = d1)`.
pub const SYS_CREAT: u32 = 8;
/// `lseek(fd = d1, offset = d2, whence = 0)`.
pub const SYS_LSEEK: u32 = 19;
/// `getpid()`.
pub const SYS_GETPID: u32 = 20;
/// `pipe()` → `(rfd << 8) | wfd` (simplified return convention).
pub const SYS_PIPE: u32 = 42;

/// The `kcall` selector the Synthesis-side emulator uses for calls that
/// are not pure register translations.
pub const KCALL_UNIX: u16 = 0x40;

/// The `kcall` selector of the fused-path *bind* thunk: a rewritten
/// `read`/`write` call site lands here on its first execution; the
/// emulator synthesizes the fd's fused wrapper and patches the site's
/// `jsr` to enter it directly from then on (see `emu::UnixEmulator`).
pub const KCALL_RW_BIND: u16 = 0x41;
