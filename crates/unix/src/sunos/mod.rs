//! The SUNOS-like baseline kernel.
//!
//! Table 1 compares Synthesis against SUNOS 3.5 running the same
//! binaries. We cannot run SUNOS, so this module implements the
//! *structure* the paper attributes its cost to, on the same machine and
//! cycle model, with nothing specialized:
//!
//! - every system call saves **all** the registers and builds a C-style
//!   stack frame ("they always do the work of a complete switch",
//!   Section 4.2);
//! - `read`/`write` pass through fd-table indirection, access checks, a
//!   uio-style transfer descriptor, and a vnode-style operations table
//!   fetched from memory and called through a register;
//! - pipes take a test-and-set lock, move **one byte at a time** with the
//!   counters re-loaded and re-stored around every byte, and scan the
//!   process table for sleepers afterwards;
//! - file I/O walks a buffer-cache hash chain per 512-byte block and
//!   copies byte-wise;
//! - `open` runs `namei`: the path is parsed component by component, each
//!   component compared (forwards, character by character) against every
//!   directory entry in turn, then the file table and fd table are
//!   scanned linearly for free slots.
//!
//! All of that is simulated 68020 code executed under the same cost model
//! as the Synthesis kernel; the host only lays out tables and loads
//! blocks. The ratios of Table 1 emerge from these structural
//! differences, not from a fudge factor.

mod build;

pub use build::Sunos;

/// Kernel-internal file types (file-table `type` field).
pub mod ftype {
    /// Free slot.
    pub const FREE: u32 = 0;
    /// `/dev/null`.
    pub const NULL: u32 = 1;
    /// The tty.
    pub const TTY: u32 = 2;
    /// A regular file.
    pub const FILE: u32 = 3;
    /// Pipe read end.
    pub const PIPE_R: u32 = 4;
    /// Pipe write end.
    pub const PIPE_W: u32 = 5;
}

/// The baseline kernel's memory layout.
pub mod layout {
    /// Vector table.
    pub const VEC: u32 = 0x0000;
    /// System-call jump table (64 longs).
    pub const JTAB: u32 = 0x1000;
    /// The (single) process's fd table: 16 longs holding file-entry
    /// addresses.
    pub const FDTAB: u32 = 0x1100;
    /// The file table: 32 entries × 32 bytes.
    pub const FTAB: u32 = 0x1200;
    /// Bytes per file-table entry.
    pub const FTAB_ENT: u32 = 32;
    /// Number of file-table entries.
    pub const FTAB_N: u32 = 32;
    /// Pipe descriptors: 4 × 32 bytes.
    pub const PIPES: u32 = 0x1A00;
    /// The process table scanned by wakeup: 32 × 32 bytes.
    pub const PROC: u32 = 0x1B00;
    /// Number of proc entries.
    pub const PROC_N: u32 = 32;
    /// namei's component buffer.
    pub const NAMEBUF: u32 = 0x2300;
    /// Buffer-cache hash heads: 64 longs.
    pub const HASHTAB: u32 = 0x2400;
    /// Buffer-cache entries: `[blkno, inode, data, next]` × 128.
    pub const CACHE: u32 = 0x2500;
    /// Directory/inode area.
    pub const DIRS: u32 = 0x3000;
    /// Pipe data buffers: 4 × 8192.
    pub const PIPEBUF: u32 = 0x8000;
    /// Pipe buffer size.
    pub const PIPE_SIZE: u32 = 8192;
    /// File data area (the cached benchmark file).
    pub const FILEDATA: u32 = 0x1_0000;
    /// Kernel stack top.
    pub const KSTACK_TOP: u32 = 0x2_8000;
    /// Kernel code area.
    pub const CODE: u32 = 0x3_0000;
}
