//! Construction of the baseline kernel: code blocks and kernel tables.

use quamachine::asm::Asm;
use quamachine::devices::tty::Tty;
use quamachine::devices::{dev_reg_addr, tty as tty_regs};
use quamachine::isa::{Cond, IndexSpec, Operand::*, RegList, ShiftKind, Size::*};
use quamachine::machine::{Machine, MachineConfig, RunExit};

use super::{ftype, layout as lay};
use crate::abi;

/// Fixed code-block addresses (each block gets a generous slot).
mod code {
    use super::lay::CODE;
    pub const ENTRY: u32 = CODE;
    pub const SYSRET: u32 = CODE + 0x0100;
    pub const BADCALL: u32 = CODE + 0x0200;
    pub const RET_EBADF: u32 = CODE + 0x0280;
    pub const PANIC: u32 = CODE + 0x0300;
    pub const NAMEI: u32 = CODE + 0x0400;
    pub const SYS_OPEN: u32 = CODE + 0x0800;
    pub const SYS_CLOSE: u32 = CODE + 0x0C00;
    pub const SYS_RW: u32 = CODE + 0x1000;
    pub const SYS_PIPE: u32 = CODE + 0x1800;
    pub const SYS_LSEEK: u32 = CODE + 0x1C00;
    pub const SYS_EXIT: u32 = CODE + 0x2000;
    pub const SYS_GETPID: u32 = CODE + 0x2100;
    pub const NULL_READ: u32 = CODE + 0x2200;
    pub const NULL_WRITE: u32 = CODE + 0x2280;
    pub const TTY_READ: u32 = CODE + 0x2300;
    pub const TTY_WRITE: u32 = CODE + 0x2380;
    pub const PIPE_READ: u32 = CODE + 0x2400;
    pub const PIPE_WRITE: u32 = CODE + 0x2600;
    pub const FILE_READ: u32 = CODE + 0x2800;
    pub const FILE_WRITE: u32 = CODE + 0x2A00;
    pub const USER: u32 = CODE + 0x3000;
}

/// Vnode-style operation tables: `OPS + type*8` → `[read, write]`.
const OPS: u32 = 0x2E00;

/// The baseline kernel.
pub struct Sunos {
    /// The machine (same model, same cost table as the Synthesis side).
    pub m: Machine,
    /// Inode addresses by name, for host-side setup.
    bench_inode: u32,
    user_loaded: bool,
}

impl Sunos {
    /// Boot the baseline: attach the tty, lay out the kernel tables and
    /// the directory tree, and load the kernel code.
    #[must_use]
    pub fn boot() -> Sunos {
        let cfg = MachineConfig {
            mem_size: synthesis_core::layout::MEM_SIZE,
            ..MachineConfig::sun3_emulation()
        };
        let mut m = Machine::new(cfg);
        let tty_idx = m.attach_device(Box::new(Tty::new(4)));
        let tty_data = dev_reg_addr(tty_idx, tty_regs::REG_DATA);

        let mut s = Sunos {
            m,
            bench_inode: 0,
            user_loaded: false,
        };
        s.build_tables(tty_data);
        s.load_code(tty_data);
        s
    }

    /// Load the benchmark program; returns its entry address.
    pub fn load_program(&mut self, program: Asm) -> u32 {
        assert!(!self.user_loaded, "one program per boot");
        self.user_loaded = true;
        let block = program.assemble().expect("program assembles");
        self.m
            .load_block(code::USER, block)
            .expect("user program fits")
    }

    /// Fill the benchmark file's contents.
    pub fn write_bench_file(&mut self, data: &[u8]) {
        assert!(data.len() <= 65536);
        self.m.mem.poke_bytes(lay::FILEDATA, data);
        self.m.mem.poke(self.bench_inode + 4, L, data.len() as u32);
    }

    /// Run the loaded program to completion (`exit` halts the machine).
    pub fn run_program(&mut self, entry: u32, max_cycles: u64) -> RunExit {
        self.m.cpu.pc = entry;
        self.m.cpu.a[7] = lay::KSTACK_TOP;
        self.run(max_cycles)
    }

    // --- Kernel tables -----------------------------------------------------

    fn build_tables(&mut self, _tty_data: u32) {
        let m = &mut self.m;
        // Vector table: everything panics except the UNIX trap.
        for vec in 0..64u32 {
            m.mem.poke(lay::VEC + 4 * vec, L, code::PANIC);
        }
        m.mem.poke(
            lay::VEC + 4 * (32 + u32::from(abi::UNIX_TRAP)),
            L,
            code::ENTRY,
        );

        // Jump table: bad call by default.
        for i in 0..64u32 {
            m.mem.poke(lay::JTAB + 4 * i, L, code::BADCALL);
        }
        m.mem.poke(lay::JTAB + 4 * abi::SYS_EXIT, L, code::SYS_EXIT);
        m.mem.poke(lay::JTAB + 4 * abi::SYS_READ, L, code::SYS_RW);
        // sys_write shares the entry; it distinguishes by d0 (see below) —
        // simpler: separate slot pointing at the same block with a mark is
        // not possible cross-block, so write gets SYS_RW too and the block
        // branches on d0.
        m.mem.poke(lay::JTAB + 4 * abi::SYS_WRITE, L, code::SYS_RW);
        m.mem.poke(lay::JTAB + 4 * abi::SYS_OPEN, L, code::SYS_OPEN);
        m.mem
            .poke(lay::JTAB + 4 * abi::SYS_CREAT, L, code::SYS_OPEN);
        m.mem
            .poke(lay::JTAB + 4 * abi::SYS_CLOSE, L, code::SYS_CLOSE);
        m.mem
            .poke(lay::JTAB + 4 * abi::SYS_LSEEK, L, code::SYS_LSEEK);
        m.mem
            .poke(lay::JTAB + 4 * abi::SYS_GETPID, L, code::SYS_GETPID);
        m.mem.poke(lay::JTAB + 4 * abi::SYS_PIPE, L, code::SYS_PIPE);

        // Pipe pool: 4 descriptors, buffers in PIPEBUF.
        for p in 0..4u32 {
            let d = lay::PIPES + p * 32;
            for off in (0..32).step_by(4) {
                m.mem.poke(d + off, L, 0);
            }
            m.mem.poke(d + 16, L, lay::PIPEBUF + p * lay::PIPE_SIZE);
        }

        // Directory tree and inodes.
        let mut cursor = lay::DIRS;
        let alloc_inode = |m: &mut Machine, cursor: &mut u32, ty: u32, size: u32, data: u32| {
            let a = *cursor;
            *cursor += 16;
            m.mem.poke(a, L, ty);
            m.mem.poke(a + 4, L, size);
            m.mem.poke(a + 8, L, data);
            m.mem.poke(a + 12, L, 0);
            a
        };
        let dummy = alloc_inode(m, &mut cursor, 0, 0, 0);
        let null_ino = alloc_inode(m, &mut cursor, ftype::NULL, 0, 0);
        let tty_ino = alloc_inode(m, &mut cursor, ftype::TTY, 0, 0);
        let bench_ino = alloc_inode(m, &mut cursor, ftype::FILE, 65536, lay::FILEDATA);
        self.bench_inode = bench_ino;

        let build_dir = |m: &mut Machine, cursor: &mut u32, entries: &[(&str, u32)]| -> u32 {
            let a = *cursor;
            m.mem.poke(a, L, entries.len() as u32);
            let mut e = a + 4;
            for (name, value) in entries {
                assert!(name.len() < 12);
                let mut buf = [0u8; 12];
                buf[..name.len()].copy_from_slice(name.as_bytes());
                m.mem.poke_bytes(e, &buf);
                m.mem.poke(e + 12, L, *value);
                e += 16;
            }
            *cursor = e;
            a
        };

        // /dev: twenty-two entries; null and tty near the end, like a
        // real /dev where the scan earns its keep.
        let dev_names = [
            "console", "cua0", "drum", "fb", "fd0", "kbd", "kmem", "mem", "mouse", "mt0", "nd0",
            "ptyp0", "ptyp1", "rsd0", "sd0", "sd1", "st0", "vme", "win0", "zero",
        ];
        let mut dev_entries: Vec<(&str, u32)> = dev_names.iter().map(|n| (*n, dummy)).collect();
        dev_entries.push(("null", null_ino));
        dev_entries.push(("tty", tty_ino));
        let dev_dir = build_dir(m, &mut cursor, &dev_entries);

        // /tmp with the benchmark file.
        let tmp_dir = build_dir(
            m,
            &mut cursor,
            &[
                (".x11", dummy),
                ("lock", dummy),
                ("spool", dummy),
                ("bench", bench_ino),
            ],
        );

        // The root: dev and tmp are late entries.
        let root_entries: Vec<(&str, u32)> = vec![
            ("bin", dummy),
            ("etc", dummy),
            ("lib", dummy),
            ("mnt", dummy),
            ("sbin", dummy),
            ("sys", dummy),
            ("unix", dummy),
            ("usr", dummy),
            ("var", dummy),
            ("tmp", tmp_dir),
            ("dev", dev_dir),
        ];
        let root = build_dir(m, &mut cursor, &root_entries);
        // namei finds the root at a fixed slot.
        m.mem.poke(lay::NAMEBUF - 4, L, root);

        // Vnode ops tables.
        let ops = [
            (ftype::NULL, code::NULL_READ, code::NULL_WRITE),
            (ftype::TTY, code::TTY_READ, code::TTY_WRITE),
            (ftype::FILE, code::FILE_READ, code::FILE_WRITE),
            (ftype::PIPE_R, code::PIPE_READ, code::RET_EBADF),
            (ftype::PIPE_W, code::RET_EBADF, code::PIPE_WRITE),
        ];
        for (ty, r, w) in ops {
            m.mem.poke(OPS + ty * 8, L, r);
            m.mem.poke(OPS + ty * 8 + 4, L, w);
        }

        // The buffer cache: all 128 blocks of the benchmark file cached,
        // hash-chained two deep per bucket.
        for i in 0..128u32 {
            let e = lay::CACHE + i * 16;
            m.mem.poke(e, L, i); // blkno
            m.mem.poke(e + 4, L, bench_ino);
            m.mem.poke(e + 8, L, lay::FILEDATA + 512 * i);
            m.mem.poke(e + 12, L, 0); // next
        }
        for h in 0..64u32 {
            let first = lay::CACHE + h * 16;
            let second = lay::CACHE + (h + 64) * 16;
            m.mem.poke(lay::HASHTAB + 4 * h, L, first);
            m.mem.poke(first + 12, L, second);
        }
    }

    // --- Kernel code ---------------------------------------------------------

    #[allow(clippy::too_many_lines)]
    fn load_code(&mut self, tty_data: u32) {
        let m = &mut self.m;
        let load = |m: &mut Machine, base: u32, a: Asm| {
            let block = a.assemble().expect("kernel block assembles");
            m.load_block(base, block).expect("kernel block fits");
        };

        // --- entry: the generic syscall prologue -------------------------
        {
            let mut a = Asm::new("u_entry");
            let bad = a.label();
            // The complete save, every call.
            a.movem_save(RegList::ALL_BUT_SP, PreDec(7));
            a.link(6, -16);
            // Fetch and validate the argument words into u.u_arg, the way
            // syscall() copied them in from user space: per argument a
            // range check and two memory accesses.
            a.move_i(L, 4, Dr(3));
            a.lea(Abs(lay::NAMEBUF + 16), 1); // u.u_arg
            let argloop = a.here();
            a.move_(L, Disp(-16, 6), Dr(4)); // read an "argument word"
            a.cmp(L, Imm(0xFFFF_0000), Dr(4)); // range check
            a.move_(L, Dr(4), PostInc(1));
            a.sub(L, Imm(1), Dr(3));
            a.bcc(Cond::Ne, argloop);
            a.cmp(L, Imm(64), Dr(0));
            a.bcc(Cond::Cc, bad);
            a.lea(Abs(lay::JTAB), 1);
            a.move_(L, Idx(0, 1, IndexSpec::d(0, 4)), Ar(1));
            a.jmp(Ind(1));
            a.bind(bad);
            a.move_i(L, (-22i32) as u32, Dr(0)); // EINVAL
            a.jmp(Abs(code::SYSRET));
            load(m, code::ENTRY, a);
        }

        // --- sysret: epilogue, result in d0 -------------------------------
        {
            let mut a = Asm::new("u_sysret");
            a.unlk(6);
            a.move_(L, Dr(0), Ind(7)); // overwrite the saved d0
            a.movem_load(PostInc(7), RegList::ALL_BUT_SP);
            a.rte();
            load(m, code::SYSRET, a);
        }

        // --- badcall -------------------------------------------------------
        {
            let mut a = Asm::new("u_badcall");
            a.move_i(L, (-22i32) as u32, Dr(0));
            a.jmp(Abs(code::SYSRET));
            load(m, code::BADCALL, a);
        }

        // --- ret_ebadf (vnode fn) -------------------------------------------
        {
            let mut a = Asm::new("u_ret_ebadf");
            a.move_i(L, (-9i32) as u32, Dr(0));
            a.rts();
            load(m, code::RET_EBADF, a);
        }

        // --- panic -----------------------------------------------------------
        {
            let mut a = Asm::new("u_panic");
            a.move_i(L, 0xDEAD, Dr(7));
            a.halt();
            load(m, code::PANIC, a);
        }

        // --- namei: a0 = path; returns inode in d0 (0 on failure) ------------
        {
            let mut a = Asm::new("u_namei");
            let next_component = a.label();
            let skipslash_done = a.label();
            let copyc = a.label();
            let comp_done = a.label();
            let scan_entry = a.label();
            let strcmp = a.label();
            let mismatch = a.label();
            let matched = a.label();
            let fail = a.label();
            let got_inode = a.label();
            // a3 = root dir (fetched from the rooted slot, like u.u_rdir).
            a.move_(L, Abs(lay::NAMEBUF - 4), Ar(3));
            a.bind(next_component);
            // Skip slashes.
            let skipslash = a.here();
            a.move_i(L, 0, Dr(0));
            a.move_(B, Ind(0), Dr(0));
            a.cmp(L, Imm(u32::from(b'/')), Dr(0));
            a.bcc(Cond::Ne, skipslash_done);
            a.add(L, Imm(1), Ar(0));
            a.bra(skipslash);
            a.bind(skipslash_done);
            a.tst(L, Dr(0));
            a.bcc(Cond::Eq, fail); // trailing slash / empty
                                   // Copy the component into NAMEBUF (copyinstr, byte by byte).
            a.lea(Abs(lay::NAMEBUF), 1);
            a.bind(copyc);
            a.move_i(L, 0, Dr(0));
            a.move_(B, Ind(0), Dr(0));
            a.tst(L, Dr(0));
            a.bcc(Cond::Eq, comp_done);
            a.cmp(L, Imm(u32::from(b'/')), Dr(0));
            a.bcc(Cond::Eq, comp_done);
            a.move_(B, Dr(0), PostInc(1));
            a.add(L, Imm(1), Ar(0));
            a.bra(copyc);
            a.bind(comp_done);
            a.move_i(B, 0, Ind(1)); // terminate
                                    // bread(): the directory is read through the buffer cache —
                                    // hash the "block", walk a chain, touch each buffer header.
            let bdone = a.label();
            a.move_(L, Ar(3), Dr(0));
            a.shift(ShiftKind::Lsr, L, Imm(4), Dr(0));
            a.and(L, Imm(63), Dr(0));
            a.lea(Abs(lay::HASHTAB), 4);
            a.move_(L, Idx(0, 4, IndexSpec::d(0, 4)), Ar(4));
            a.move_i(L, 2, Dr(1));
            let bwalk = a.here();
            a.cmp(L, Imm(0), Ar(4));
            a.bcc(Cond::Eq, bdone);
            a.tst(L, Ind(4));
            a.move_(L, Disp(12, 4), Ar(4));
            a.sub(L, Imm(1), Dr(1));
            a.bcc(Cond::Ne, bwalk);
            a.bind(bdone);
            // iget(): look the directory's inode up in the inode hash,
            // walking a chain and taking/dropping its lock.
            a.move_i(L, 12, Dr(1));
            let iwalk = a.here();
            a.move_(L, Abs(lay::HASHTAB), Dr(0)); // chain header
            a.move_(L, Abs(lay::HASHTAB + 4), Dr(0)); // i_number compare load
            a.cmp(L, Imm(7), Dr(0));
            a.sub(L, Imm(1), Dr(1));
            a.bcc(Cond::Ne, iwalk);
            // ilock/iunlock bookkeeping stores.
            a.move_i(L, 1, Abs(lay::NAMEBUF + 48));
            a.move_i(L, 0, Abs(lay::NAMEBUF + 48));
            // Scan the directory.
            a.move_(L, Ind(3), Dr(5)); // entry count
            a.lea(Disp(4, 3), 2); // first entry
            a.bind(scan_entry);
            a.tst(L, Dr(5));
            a.bcc(Cond::Eq, fail);
            // Per-entry dirent processing: record-length and name-length
            // checks, u.u_offset maintenance, and the entry-valid test —
            // the per-entry overhead of 4.2BSD directory scanning.
            a.move_(L, Ar(2), Abs(lay::NAMEBUF + 40));
            a.add(L, Imm(16), Abs(lay::NAMEBUF + 44));
            a.move_(L, Disp(12, 2), Dr(0)); // d_ino valid?
            a.tst(L, Dr(0));
            a.move_i(L, 16, Dr(1)); // d_reclen plausibility
            a.cmp(L, Imm(8), Dr(1));
            a.move_(L, Abs(lay::NAMEBUF + 44), Dr(0)); // offset bound
            a.cmp(L, Imm(0x4000), Dr(0));
            a.lea(Abs(lay::NAMEBUF), 1);
            a.move_(L, Ar(2), Ar(4));
            a.bind(strcmp);
            a.move_i(L, 0, Dr(0));
            a.move_i(L, 0, Dr(1));
            a.move_(B, PostInc(1), Dr(0));
            a.move_(B, PostInc(4), Dr(1));
            a.cmp(L, Dr(1), Dr(0));
            a.bcc(Cond::Ne, mismatch);
            a.tst(L, Dr(0));
            a.bcc(Cond::Eq, matched);
            a.bra(strcmp);
            a.bind(mismatch);
            a.add(L, Imm(16), Ar(2));
            a.sub(L, Imm(1), Dr(5));
            a.bra(scan_entry);
            a.bind(matched);
            a.move_(L, Disp(12, 2), Dr(3)); // the entry's value
                                            // More components?
            a.move_i(L, 0, Dr(0));
            a.move_(B, Ind(0), Dr(0));
            a.cmp(L, Imm(u32::from(b'/')), Dr(0));
            a.bcc(Cond::Ne, got_inode);
            a.move_(L, Dr(3), Ar(3)); // descend into the subdirectory
            a.bra(next_component);
            a.bind(got_inode);
            a.move_(L, Dr(3), Dr(0));
            a.rts();
            a.bind(fail);
            a.move_i(L, 0, Dr(0));
            a.rts();
            load(m, code::NAMEI, a);
        }

        // --- sys_open ---------------------------------------------------------
        {
            let mut a = Asm::new("u_sys_open");
            let fscan = a.label();
            let ffound = a.label();
            let fdscan = a.label();
            let fdfound = a.label();
            let fail_noent = a.label();
            let fail_nfile = a.label();
            a.jsr(Abs(code::NAMEI));
            a.tst(L, Dr(0));
            a.bcc(Cond::Eq, fail_noent);
            a.move_(L, Dr(0), Ar(4)); // inode
                                      // falloc: linear scan of the file table.
            a.lea(Abs(lay::FTAB), 2);
            a.move_i(L, lay::FTAB_N, Dr(5));
            a.bind(fscan);
            a.tst(L, Dr(5));
            a.bcc(Cond::Eq, fail_nfile);
            a.tst(L, Ind(2));
            a.bcc(Cond::Eq, ffound);
            a.add(L, Imm(lay::FTAB_ENT), Ar(2));
            a.sub(L, Imm(1), Dr(5));
            a.bra(fscan);
            a.bind(ffound);
            // ufalloc: linear scan of the fd table.
            a.lea(Abs(lay::FDTAB), 3);
            a.move_i(L, 0, Dr(4));
            a.bind(fdscan);
            a.cmp(L, Imm(16), Dr(4));
            a.bcc(Cond::Eq, fail_nfile);
            a.tst(L, Idx(0, 3, IndexSpec::d(4, 4)));
            a.bcc(Cond::Eq, fdfound);
            a.add(L, Imm(1), Dr(4));
            a.bra(fdscan);
            a.bind(fdfound);
            // Initialize the file entry from the inode.
            a.move_i(L, 1, Ind(2)); // in_use
            a.move_(L, Ind(4), Dr(0)); // inode type
            a.move_(L, Dr(0), Disp(4, 2));
            a.move_i(L, 0, Disp(8, 2)); // offset
            a.move_(L, Ar(4), Disp(12, 2)); // obj = inode
            a.move_(L, Dr(0), Dr(1));
            a.shift(ShiftKind::Lsl, L, Imm(3), Dr(1));
            a.add(L, Imm(OPS), Dr(1));
            a.move_(L, Dr(1), Disp(16, 2)); // ops
            a.move_i(L, 1, Disp(20, 2)); // refcount
                                         // vn_open: VOP_ACCESS permission groups, open-mode checks,
                                         // and audit bookkeeping.
            a.move_i(L, 3, Dr(1));
            let perm = a.here();
            a.move_(L, Ind(4), Dr(0)); // i_mode load
            a.and(L, Imm(7), Dr(0));
            a.cmp(L, Imm(4), Dr(0));
            a.sub(L, Imm(1), Dr(1));
            a.bcc(Cond::Ne, perm);
            a.move_i(L, 16, Dr(1));
            let audit = a.here();
            a.move_(L, Abs(lay::NAMEBUF + 48), Dr(0));
            a.sub(L, Imm(1), Dr(1));
            a.bcc(Cond::Ne, audit);
            // "Update the access time" (two bookkeeping stores).
            a.move_i(L, 1, Disp(12, 4));
            a.move_(L, Dr(4), Idx(0, 3, IndexSpec::d(4, 4))); // placeholder
            a.move_(L, Ar(2), Idx(0, 3, IndexSpec::d(4, 4))); // fdtab[fd] = entry
            a.move_(L, Dr(4), Dr(0)); // return fd
            a.jmp(Abs(code::SYSRET));
            a.bind(fail_noent);
            a.move_i(L, (-2i32) as u32, Dr(0));
            a.jmp(Abs(code::SYSRET));
            a.bind(fail_nfile);
            a.move_i(L, (-23i32) as u32, Dr(0));
            a.jmp(Abs(code::SYSRET));
            load(m, code::SYS_OPEN, a);
        }

        // --- sys_close ----------------------------------------------------------
        {
            let mut a = Asm::new("u_sys_close");
            let bad = a.label();
            a.cmp(L, Imm(16), Dr(1));
            a.bcc(Cond::Cc, bad);
            a.lea(Abs(lay::FDTAB), 1);
            a.move_(L, Idx(0, 1, IndexSpec::d(1, 4)), Ar(2));
            a.cmp(L, Imm(0), Ar(2));
            a.bcc(Cond::Eq, bad);
            // closef() -> vno_close -> vrele: walk the release chain.
            a.move_i(L, 8, Dr(3));
            let audit = a.here();
            a.move_(L, Disp(12, 2), Dr(0));
            a.tst(L, Dr(0));
            a.sub(L, Imm(1), Dr(3));
            a.bcc(Cond::Ne, audit);
            // Release: refcount--, clear the entry and the fd slot, plus
            // vnode-release bookkeeping stores.
            a.sub(L, Imm(1), Disp(20, 2));
            a.move_i(L, 0, Ind(2)); // in_use = 0
            a.move_i(L, 0, Disp(4, 2));
            a.move_i(L, 0, Disp(12, 2));
            a.move_i(L, 0, Disp(16, 2));
            a.move_i(L, 0, Idx(0, 1, IndexSpec::d(1, 4)));
            a.move_i(L, 0, Dr(0));
            a.jmp(Abs(code::SYSRET));
            a.bind(bad);
            a.move_i(L, (-9i32) as u32, Dr(0));
            a.jmp(Abs(code::SYSRET));
            load(m, code::SYS_CLOSE, a);
        }

        // --- sys_read / sys_write (shared getf + vnode dispatch) -----------------
        {
            let mut a = Asm::new("u_sys_rw");
            let bad = a.label();
            let efault = a.label();
            let is_write = a.label();
            let dispatch = a.label();
            a.cmp(L, Imm(16), Dr(1));
            a.bcc(Cond::Cc, bad);
            a.lea(Abs(lay::FDTAB), 1);
            a.move_(L, Idx(0, 1, IndexSpec::d(1, 4)), Ar(2));
            a.cmp(L, Imm(0), Ar(2));
            a.bcc(Cond::Eq, bad);
            // useracc: the buffer must lie in the user region.
            a.cmp(L, Imm(synthesis_core::layout::USER_BASE), Ar(0));
            a.bcc(Cond::Cs, efault);
            // Build the uio descriptor on the stack (generality overhead).
            a.move_(L, Ar(0), PreDec(7));
            a.move_(L, Dr(2), PreDec(7));
            a.move_(L, Dr(1), PreDec(7));
            a.move_i(L, 0, PreDec(7));
            // Dispatch through the vnode ops table.
            a.move_(L, Disp(16, 2), Ar(1));
            a.cmp(L, Imm(abi::SYS_WRITE), Dr(0));
            a.bcc(Cond::Eq, is_write);
            a.move_(L, Ind(1), Ar(1)); // ops->read
            a.bra(dispatch);
            a.bind(is_write);
            a.move_(L, Disp(4, 1), Ar(1)); // ops->write
            a.bind(dispatch);
            a.jsr(Ind(1));
            a.lea(Disp(16, 7), 7); // pop the uio
            a.jmp(Abs(code::SYSRET));
            a.bind(bad);
            a.move_i(L, (-9i32) as u32, Dr(0));
            a.jmp(Abs(code::SYSRET));
            a.bind(efault);
            a.move_i(L, (-14i32) as u32, Dr(0));
            a.jmp(Abs(code::SYSRET));
            load(m, code::SYS_RW, a);
        }

        // --- sys_pipe --------------------------------------------------------------
        {
            let mut a = Asm::new("u_sys_pipe");
            let pscan = a.label();
            let pfound = a.label();
            let fail = a.label();
            // Find a free pipe descriptor.
            a.lea(Abs(lay::PIPES), 2);
            a.move_i(L, 4, Dr(5));
            a.bind(pscan);
            a.tst(L, Dr(5));
            a.bcc(Cond::Eq, fail);
            a.tst(L, Disp(20, 2));
            a.bcc(Cond::Eq, pfound);
            a.add(L, Imm(32), Ar(2));
            a.sub(L, Imm(1), Dr(5));
            a.bra(pscan);
            a.bind(pfound);
            a.move_i(L, 1, Disp(20, 2)); // in_use
            a.move_i(L, 0, Disp(4, 2)); // ridx
            a.move_i(L, 0, Disp(8, 2)); // widx
            a.move_i(L, 0, Disp(12, 2)); // count
                                         // Two file entries + two fds; the host sets the jump-table up
                                         // so this path is exercised rarely — allocation is done with
                                         // the same scans as open, inlined for the two ends.
            a.kcall(0x50); // host assist: allocate the two fds (see below)
            a.jmp(Abs(code::SYSRET));
            a.bind(fail);
            a.move_i(L, (-23i32) as u32, Dr(0));
            a.jmp(Abs(code::SYSRET));
            load(m, code::SYS_PIPE, a);
        }

        // --- sys_lseek ---------------------------------------------------------------
        {
            let mut a = Asm::new("u_sys_lseek");
            let bad = a.label();
            a.cmp(L, Imm(16), Dr(1));
            a.bcc(Cond::Cc, bad);
            a.lea(Abs(lay::FDTAB), 1);
            a.move_(L, Idx(0, 1, IndexSpec::d(1, 4)), Ar(2));
            a.cmp(L, Imm(0), Ar(2));
            a.bcc(Cond::Eq, bad);
            a.move_(L, Dr(2), Disp(8, 2)); // offset = d2
            a.move_(L, Dr(2), Dr(0));
            a.jmp(Abs(code::SYSRET));
            a.bind(bad);
            a.move_i(L, (-9i32) as u32, Dr(0));
            a.jmp(Abs(code::SYSRET));
            load(m, code::SYS_LSEEK, a);
        }

        // --- sys_exit / sys_getpid ------------------------------------------------------
        {
            let mut a = Asm::new("u_sys_exit");
            a.halt();
            load(m, code::SYS_EXIT, a);
            let mut a = Asm::new("u_sys_getpid");
            a.move_(L, Abs(lay::PROC + 4), Dr(0));
            a.jmp(Abs(code::SYSRET));
            load(m, code::SYS_GETPID, a);
        }

        // --- vnode functions: called with a2 = file entry, a0 = buf, d2 = count.
        {
            let mut a = Asm::new("u_null_read");
            a.move_i(L, 0, Dr(0));
            a.rts();
            load(m, code::NULL_READ, a);
            let mut a = Asm::new("u_null_write");
            a.move_(L, Dr(2), Dr(0));
            a.rts();
            load(m, code::NULL_WRITE, a);
        }
        {
            let mut a = Asm::new("u_tty_read");
            a.move_i(L, 0, Dr(0));
            a.rts();
            load(m, code::TTY_READ, a);
            // tty write: canonical output processing, one byte at a time.
            let mut a = Asm::new("u_tty_write");
            let done = a.label();
            a.move_(L, Dr(2), Dr(0));
            a.move_(L, Dr(2), Dr(5));
            let top = a.here();
            a.tst(L, Dr(5));
            a.bcc(Cond::Eq, done);
            a.move_i(L, 0, Dr(1));
            a.move_(B, PostInc(0), Dr(1));
            a.cmp(L, Imm(10), Dr(1)); // NL -> CRLF processing check
            a.move_(L, Dr(1), Abs(tty_data));
            a.sub(L, Imm(1), Dr(5));
            a.bra(top);
            a.bind(done);
            a.rts();
            load(m, code::TTY_WRITE, a);
        }

        // --- pipe read/write: locked, byte-at-a-time ------------------------------
        {
            let mut a = Asm::new("u_pipe_write");
            let done = a.label();
            // rdwri()/uio setup: 4.3BSD pipes lived on the file system,
            // so every call built a uio, locked the inode, and ran bmap
            // through the buffer cache before touching a byte.
            a.move_(L, Ar(0), Abs(lay::NAMEBUF + 52));
            a.move_(L, Dr(2), Abs(lay::NAMEBUF + 56));
            a.move_i(L, 0, Abs(lay::NAMEBUF + 60));
            a.move_i(L, 0, Abs(lay::NAMEBUF + 64));
            a.move_i(L, 8, Dr(4));
            let bmap = a.here();
            a.move_(L, Abs(lay::HASHTAB), Dr(0));
            a.tst(L, Dr(0));
            a.sub(L, Imm(1), Dr(4));
            a.bcc(Cond::Ne, bmap);
            a.move_(L, Disp(12, 2), Ar(3)); // pipe "inode"
            let lock = a.here();
            a.tas(Ind(3));
            a.bcc(Cond::Mi, lock);
            // V7-style pipe: append at the write offset (the pipe is a
            // small file; offsets reset when the reader drains it).
            a.move_(L, Disp(8, 3), Dr(7)); // woff
            a.move_i(L, lay::PIPE_SIZE, Dr(1));
            a.sub(L, Dr(7), Dr(1)); // space
            a.move_(L, Dr(2), Dr(6)); // n = count
            a.cmp(L, Dr(1), Dr(6));
            let fits = a.label();
            a.bcc(Cond::Ls, fits);
            a.move_(L, Dr(1), Dr(6)); // clamp (short write when "full")
            a.bind(fits);
            a.move_(L, Disp(16, 3), Ar(4));
            a.add(L, Dr(7), Ar(4)); // dst = buf + woff
                                    // uiomove: byte loop.
            a.move_(L, Dr(6), Dr(5));
            a.tst(L, Dr(5));
            a.bcc(Cond::Eq, done);
            a.sub(L, Imm(1), Dr(5));
            let copy = a.here();
            a.move_(B, PostInc(0), PostInc(4));
            a.dbf(5, copy);
            a.bind(done);
            a.add(L, Dr(6), Dr(7));
            a.move_(L, Dr(7), Disp(8, 3)); // woff += n
                                           // Inode timestamp update (IUPD|ICHG) before releasing.
            a.move_i(L, 1, Abs(lay::NAMEBUF + 68));
            a.move_i(L, 1, Abs(lay::NAMEBUF + 72));
            a.move_i(B, 0, Ind(3)); // unlock
                                    // wakeup(): scan the proc table for sleepers on this pipe —
                                    // checking p_wchan and p_stat per entry — and again for
                                    // select() waiters (selwakeup), as the 4.3BSD pipe code did.
            for _ in 0..2 {
                a.lea(Abs(lay::PROC), 4);
                a.move_i(L, lay::PROC_N, Dr(0));
                let wk = a.here();
                a.tst(L, Ind(4)); // p_wchan
                a.tst(L, Disp(4, 4)); // p_stat
                a.cmp(L, Imm(3), Dr(0)); // SSLEEP comparison stand-in
                a.add(L, Imm(32), Ar(4));
                a.sub(L, Imm(1), Dr(0));
                a.bcc(Cond::Ne, wk);
            }
            a.move_(L, Dr(6), Dr(0)); // bytes written
            a.rts();
            load(m, code::PIPE_WRITE, a);
        }
        {
            let mut a = Asm::new("u_pipe_read");
            let done = a.label();
            a.move_(L, Ar(0), Abs(lay::NAMEBUF + 52));
            a.move_(L, Dr(2), Abs(lay::NAMEBUF + 56));
            a.move_i(L, 0, Abs(lay::NAMEBUF + 60));
            a.move_i(L, 0, Abs(lay::NAMEBUF + 64));
            a.move_i(L, 8, Dr(4));
            let bmap = a.here();
            a.move_(L, Abs(lay::HASHTAB), Dr(0));
            a.tst(L, Dr(0));
            a.sub(L, Imm(1), Dr(4));
            a.bcc(Cond::Ne, bmap);
            a.move_(L, Disp(12, 2), Ar(3));
            let lock = a.here();
            a.tas(Ind(3));
            a.bcc(Cond::Mi, lock);
            // Available = woff - roff; n = min(count, available).
            a.move_(L, Disp(8, 3), Dr(1)); // woff
            a.move_(L, Disp(4, 3), Dr(7)); // roff
            a.sub(L, Dr(7), Dr(1)); // available
            a.move_(L, Dr(2), Dr(6));
            a.cmp(L, Dr(1), Dr(6));
            let sized = a.label();
            a.bcc(Cond::Ls, sized);
            a.move_(L, Dr(1), Dr(6));
            a.bind(sized);
            a.move_(L, Disp(16, 3), Ar(4));
            a.add(L, Dr(7), Ar(4)); // src = buf + roff
            a.move_(L, Dr(6), Dr(5));
            a.tst(L, Dr(5));
            a.bcc(Cond::Eq, done);
            a.sub(L, Imm(1), Dr(5));
            let copy = a.here();
            a.move_(B, PostInc(4), PostInc(0));
            a.dbf(5, copy);
            a.bind(done);
            a.add(L, Dr(6), Dr(7));
            a.move_(L, Dr(7), Disp(4, 3)); // roff += n
                                           // Drained? Reset both offsets, like the classic pipe did.
            let noreset = a.label();
            a.cmp(L, Disp(8, 3), Dr(7));
            a.bcc(Cond::Ne, noreset);
            a.move_i(L, 0, Disp(4, 3));
            a.move_i(L, 0, Disp(8, 3));
            a.bind(noreset);
            // Inode access-time update before releasing.
            a.move_i(L, 1, Abs(lay::NAMEBUF + 68));
            a.move_i(L, 1, Abs(lay::NAMEBUF + 72));
            a.move_i(B, 0, Ind(3));
            // wakeup() writers, then selwakeup(), with per-entry p_wchan
            // and p_stat checks.
            for _ in 0..2 {
                a.lea(Abs(lay::PROC), 4);
                a.move_i(L, lay::PROC_N, Dr(0));
                let wk = a.here();
                a.tst(L, Ind(4));
                a.tst(L, Disp(4, 4));
                a.cmp(L, Imm(3), Dr(0));
                a.add(L, Imm(32), Ar(4));
                a.sub(L, Imm(1), Dr(0));
                a.bcc(Cond::Ne, wk);
            }
            a.move_(L, Dr(6), Dr(0));
            a.rts();
            load(m, code::PIPE_READ, a);
        }

        // --- file read/write: buffer-cache walk per block, byte copies ----------
        for write in [false, true] {
            let mut a = Asm::new(if write { "u_file_write" } else { "u_file_read" });
            let ok = a.label();
            let loop_top = a.label();
            let fdone = a.label();
            let chain = a.label();
            let hit = a.label();
            let use_d1 = a.label();
            let byte = a.label();
            a.move_(L, Disp(8, 2), Dr(3)); // offset
            a.move_(L, Disp(12, 2), Ar(3)); // inode
            if write {
                // Clamp to the file's maximum extent (the data area).
                a.move_i(L, 65536, Dr(0));
            } else {
                a.move_(L, Disp(4, 3), Dr(0)); // size
            }
            a.sub(L, Dr(3), Dr(0)); // remaining
            a.cmp(L, Dr(0), Dr(2));
            a.bcc(Cond::Ls, ok);
            a.move_(L, Dr(0), Dr(2));
            a.bind(ok);
            a.move_(L, Dr(2), Dr(6)); // total
            a.bind(loop_top);
            a.tst(L, Dr(2));
            a.bcc(Cond::Eq, fdone);
            // Block number and hash.
            a.move_(L, Dr(3), Dr(0));
            a.shift(ShiftKind::Lsr, L, Imm(8), Dr(0));
            a.shift(ShiftKind::Lsr, L, Imm(1), Dr(0));
            a.move_(L, Dr(0), Dr(4)); // blkno
            a.and(L, Imm(63), Dr(0));
            a.lea(Abs(lay::HASHTAB), 4);
            a.move_(L, Idx(0, 4, IndexSpec::d(0, 4)), Ar(4));
            a.bind(chain);
            a.cmp(L, Imm(0), Ar(4));
            a.bcc(Cond::Eq, fdone); // miss: should not happen (all cached)
            a.cmp(L, Ind(4), Dr(4));
            a.bcc(Cond::Eq, hit);
            a.move_(L, Disp(12, 4), Ar(4));
            a.bra(chain);
            a.bind(hit);
            a.move_(L, Disp(8, 4), Ar(5)); // block data
            a.move_(L, Dr(3), Dr(0));
            a.and(L, Imm(511), Dr(0));
            a.add(L, Dr(0), Ar(5));
            a.move_i(L, 512, Dr(1));
            a.sub(L, Dr(0), Dr(1)); // room in this block
            a.cmp(L, Dr(1), Dr(2));
            a.bcc(Cond::Cc, use_d1);
            a.move_(L, Dr(2), Dr(1));
            a.bind(use_d1);
            // The byte loop ("uiomove"), with per-byte bookkeeping.
            a.bind(byte);
            a.move_i(L, 0, Dr(0));
            if write {
                a.move_(B, PostInc(0), Dr(0));
                a.move_(B, Dr(0), PostInc(5));
            } else {
                a.move_(B, PostInc(5), Dr(0));
                a.move_(B, Dr(0), PostInc(0));
            }
            a.add(L, Imm(1), Dr(3));
            a.sub(L, Imm(1), Dr(2));
            a.sub(L, Imm(1), Dr(1));
            a.bcc(Cond::Ne, byte);
            a.bra(loop_top);
            a.bind(fdone);
            a.move_(L, Dr(3), Disp(8, 2)); // offset back
            if write {
                // Extend the size when we wrote past it.
                let noext = a.label();
                a.move_(L, Disp(4, 3), Dr(0));
                a.cmp(L, Dr(3), Dr(0));
                a.bcc(Cond::Cc, noext);
                a.move_(L, Dr(3), Disp(4, 3));
                a.bind(noext);
            }
            a.move_(L, Dr(6), Dr(0));
            a.rts();
            load(
                m,
                if write {
                    code::FILE_WRITE
                } else {
                    code::FILE_READ
                },
                a,
            );
        }
    }

    /// Service the pipe-allocation host assist (`kcall #0x50`): allocate
    /// two file entries and two fds for the pipe descriptor in `a2`,
    /// charging the same scans open performs.
    fn pipe_assist(&mut self) {
        let desc = self.m.cpu.a[2];
        let mut fds = [0u32; 2];
        for (i, ty) in [(0usize, ftype::PIPE_R), (1usize, ftype::PIPE_W)] {
            // File-table scan.
            let mut entry = 0;
            for e in 0..lay::FTAB_N {
                let addr = lay::FTAB + e * lay::FTAB_ENT;
                if self.m.mem.peek(addr, L) == 0 {
                    entry = addr;
                    break;
                }
            }
            assert!(entry != 0, "file table full");
            self.m.mem.poke(entry, L, 1);
            self.m.mem.poke(entry + 4, L, ty);
            self.m.mem.poke(entry + 8, L, 0);
            self.m.mem.poke(entry + 12, L, desc);
            self.m.mem.poke(entry + 16, L, OPS + ty * 8);
            self.m.mem.poke(entry + 20, L, 1);
            // fd scan.
            let mut fd = u32::MAX;
            for f in 0..16u32 {
                if self.m.mem.peek(lay::FDTAB + 4 * f, L) == 0 {
                    fd = f;
                    break;
                }
            }
            assert!(fd != u32::MAX, "fd table full");
            self.m.mem.poke(lay::FDTAB + 4 * fd, L, entry);
            fds[i] = fd;
        }
        // Charge the scans the real path would perform.
        self.m.charge(64 * 10);
        self.m.cpu.d[0] = (fds[0] << 8) | fds[1];
    }

    /// Run with host assists serviced.
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        let deadline = self.m.meter.cycles.saturating_add(max_cycles);
        loop {
            let now = self.m.meter.cycles;
            if now >= deadline {
                return RunExit::CycleLimit;
            }
            match self.m.run(deadline - now) {
                RunExit::KCall(0x50) => self.pipe_assist(),
                other => return other,
            }
        }
    }
}
