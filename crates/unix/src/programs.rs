//! The Appendix-A benchmark programs (Table 1).
//!
//! Seven programs, written once against the UNIX trap ABI and run
//! unmodified on both kernels:
//!
//! 1. the compute-bound calibration: a chaotic sequence (Hofstadter's
//!    Q-like recurrence) that "touches a large array at non-contiguous
//!    points, which ensures that we are not just measuring the
//!    'in-the-cache' performance" (Section 6.1);
//! 2. (through 4.) write-then-read-back through a pipe in chunks of 1,
//!    1024, and 4096 bytes;
//! 5. read and write a (cached) file in 1 KB chunks;
//! 6. `open("/dev/null")`/`close` loops;
//! 7. `open("/dev/tty")`/`close` loops.

use quamachine::asm::Asm;
use quamachine::isa::{Cond, IndexSpec, Operand::*, ShiftKind, Size::*};

use crate::abi;

/// Addresses the programs use for their data (inside the user quaspace).
pub mod addrs {
    use synthesis_core::layout::USER_BASE;

    /// I/O buffer (up to 8 KB).
    pub const BUF: u32 = USER_BASE + 0x2_0000;
    /// Path strings.
    pub const PATHS: u32 = USER_BASE + 0x2_8000;
    /// Result slot: programs may store a checksum here.
    pub const RESULT: u32 = USER_BASE + 0x2_9000;
    /// The chaotic-sequence array (up to 64 K entries × 4 bytes).
    pub const QARRAY: u32 = USER_BASE + 0x4_0000;
    /// Initial user stack pointer.
    pub const USTACK: u32 = USER_BASE + 0x1_0000;
}

/// Null-terminated path strings the loader must place at
/// [`addrs::PATHS`]: `/dev/null` at +0, `/dev/tty` at +0x10,
/// `/tmp/bench` at +0x20.
#[must_use]
pub fn path_blob() -> Vec<u8> {
    let mut v = vec![0u8; 0x30];
    v[..10].copy_from_slice(b"/dev/null\0");
    v[0x10..0x10 + 9].copy_from_slice(b"/dev/tty\0");
    v[0x20..0x20 + 11].copy_from_slice(b"/tmp/bench\0");
    v
}

fn emit_exit(a: &mut Asm) {
    a.move_i(L, abi::SYS_EXIT, Dr(0));
    a.move_i(L, 0, Dr(1));
    a.trap(abi::UNIX_TRAP);
    // Not reached; keeps the verifier happy about fallthrough.
    let dead = a.here();
    a.bcc(Cond::T, dead);
}

/// Program 1 — the compute calibration.
///
/// A Q-like chaotic recurrence over `len` entries, iterated `iters`
/// times: `q[i] = q[i - q[i-1] mod i] + q[i - q[i-2] mod i]` with the
/// indices bounced around the array non-contiguously. The checksum lands
/// in [`addrs::RESULT`].
#[must_use]
pub fn compute(len: u32, iters: u32) -> Asm {
    assert!(len.is_power_of_two() && len >= 4);
    let mask = len - 1;
    let mut a = Asm::new("p1_compute");
    // Seed q[0..2] = 1.
    a.move_i(L, 1, Abs(addrs::QARRAY));
    a.move_i(L, 1, Abs(addrs::QARRAY + 4));
    a.move_i(L, iters, Dr(7)); // outer counter
    let outer = a.here();
    // i runs 2..len; a1 = &q[0].
    a.lea(Abs(addrs::QARRAY), 1);
    a.move_i(L, 2, Dr(6)); // i
    let inner = a.here();
    // d0 = q[i-1]; d1 = q[i-2].
    a.move_(L, Dr(6), Dr(2));
    a.sub(L, Imm(1), Dr(2));
    a.shift(ShiftKind::Lsl, L, Imm(2), Dr(2));
    a.move_(L, Idx(0, 1, IndexSpec::d(2, 1)), Dr(0));
    a.move_(L, Dr(6), Dr(2));
    a.sub(L, Imm(2), Dr(2));
    a.shift(ShiftKind::Lsl, L, Imm(2), Dr(2));
    a.move_(L, Idx(0, 1, IndexSpec::d(2, 1)), Dr(1));
    // idx0 = (i - q[i-1]) & mask ; idx1 = (i - q[i-2]) & mask.
    a.move_(L, Dr(6), Dr(2));
    a.sub(L, Dr(0), Dr(2));
    a.and(L, Imm(mask), Dr(2));
    a.shift(ShiftKind::Lsl, L, Imm(2), Dr(2));
    a.move_(L, Dr(6), Dr(3));
    a.sub(L, Dr(1), Dr(3));
    a.and(L, Imm(mask), Dr(3));
    a.shift(ShiftKind::Lsl, L, Imm(2), Dr(3));
    // q[i] = q[idx0] + q[idx1] (non-contiguous touches).
    a.move_(L, Idx(0, 1, IndexSpec::d(2, 1)), Dr(0));
    a.add(L, Idx(0, 1, IndexSpec::d(3, 1)), Dr(0));
    a.and(L, Imm(0x00FF_FFFF), Dr(0)); // keep indices bounded
    a.move_(L, Dr(6), Dr(2));
    a.shift(ShiftKind::Lsl, L, Imm(2), Dr(2));
    a.move_(L, Dr(0), Idx(0, 1, IndexSpec::d(2, 1)));
    // i += 1; loop.
    a.add(L, Imm(1), Dr(6));
    a.cmp(L, Imm(len), Dr(6));
    a.bcc(Cond::Ne, inner);
    // Outer loop.
    a.sub(L, Imm(1), Dr(7));
    a.bcc(Cond::Ne, outer);
    // Checksum = q[len-1].
    a.move_(L, Abs(addrs::QARRAY + (len - 1) * 4), Abs(addrs::RESULT));
    emit_exit(&mut a);
    a
}

/// Programs 2–4 — pipe write/read-back in `chunk`-byte pieces,
/// `iters` iterations.
#[must_use]
pub fn pipe_rw(chunk: u32, iters: u32) -> Asm {
    let mut a = Asm::new(match chunk {
        1 => "p2_pipe_1",
        1024 => "p3_pipe_1k",
        _ => "p4_pipe_4k",
    });
    // pipe() -> d0 = (rfd<<8)|wfd; keep in d5.
    a.move_i(L, abi::SYS_PIPE, Dr(0));
    a.trap(abi::UNIX_TRAP);
    a.move_(L, Dr(0), Dr(5));
    a.move_i(L, iters, Dr(7));
    let top = a.here();
    // write(wfd, BUF, chunk)
    a.move_i(L, abi::SYS_WRITE, Dr(0));
    a.move_(L, Dr(5), Dr(1));
    a.and(L, Imm(0xFF), Dr(1));
    a.lea(Abs(addrs::BUF), 0);
    a.move_i(L, chunk, Dr(2));
    a.trap(abi::UNIX_TRAP);
    // read(rfd, BUF, chunk)
    a.move_i(L, abi::SYS_READ, Dr(0));
    a.move_(L, Dr(5), Dr(1));
    a.shift(ShiftKind::Lsr, L, Imm(8), Dr(1));
    a.lea(Abs(addrs::BUF), 0);
    a.move_i(L, chunk, Dr(2));
    a.trap(abi::UNIX_TRAP);
    a.sub(L, Imm(1), Dr(7));
    a.bcc(Cond::Ne, top);
    emit_exit(&mut a);
    a
}

/// Program 5 — file write/read in 1 KB chunks, `iters` iterations.
///
/// The file (`/tmp/bench`) must exist before the run; it stays cached in
/// main memory, as in the paper's measurement.
#[must_use]
pub fn file_rw(iters: u32) -> Asm {
    let mut a = Asm::new("p5_file_rw");
    // open("/tmp/bench") -> d6.
    a.move_i(L, abi::SYS_OPEN, Dr(0));
    a.lea(Abs(addrs::PATHS + 0x20), 0);
    a.move_i(L, 2, Dr(1)); // O_RDWR
    a.trap(abi::UNIX_TRAP);
    a.move_(L, Dr(0), Dr(6));
    a.move_i(L, iters, Dr(7));
    let top = a.here();
    // lseek(fd, 0); write(fd, BUF, 1024); lseek(fd, 0); read back.
    a.move_i(L, abi::SYS_LSEEK, Dr(0));
    a.move_(L, Dr(6), Dr(1));
    a.move_i(L, 0, Dr(2));
    a.trap(abi::UNIX_TRAP);
    a.move_i(L, abi::SYS_WRITE, Dr(0));
    a.move_(L, Dr(6), Dr(1));
    a.lea(Abs(addrs::BUF), 0);
    a.move_i(L, 1024, Dr(2));
    a.trap(abi::UNIX_TRAP);
    a.move_i(L, abi::SYS_LSEEK, Dr(0));
    a.move_(L, Dr(6), Dr(1));
    a.move_i(L, 0, Dr(2));
    a.trap(abi::UNIX_TRAP);
    a.move_i(L, abi::SYS_READ, Dr(0));
    a.move_(L, Dr(6), Dr(1));
    a.lea(Abs(addrs::BUF), 0);
    a.move_i(L, 1024, Dr(2));
    a.trap(abi::UNIX_TRAP);
    a.sub(L, Imm(1), Dr(7));
    a.bcc(Cond::Ne, top);
    // close(fd)
    a.move_i(L, abi::SYS_CLOSE, Dr(0));
    a.move_(L, Dr(6), Dr(1));
    a.trap(abi::UNIX_TRAP);
    emit_exit(&mut a);
    a
}

/// Programs 6 and 7 — `open`/`close` loops on a device path.
///
/// `path_off` is the offset into [`path_blob`]: 0 for `/dev/null`,
/// `0x10` for `/dev/tty`.
#[must_use]
pub fn open_close(path_off: u32, iters: u32) -> Asm {
    let mut a = Asm::new(if path_off == 0 {
        "p6_open_null"
    } else {
        "p7_open_tty"
    });
    a.move_i(L, iters, Dr(7));
    let top = a.here();
    a.move_i(L, abi::SYS_OPEN, Dr(0));
    a.lea(Abs(addrs::PATHS + path_off), 0);
    a.move_i(L, 0, Dr(1));
    a.trap(abi::UNIX_TRAP);
    a.move_(L, Dr(0), Dr(1));
    a.move_i(L, abi::SYS_CLOSE, Dr(0));
    a.trap(abi::UNIX_TRAP);
    a.sub(L, Imm(1), Dr(7));
    a.bcc(Cond::Ne, top);
    emit_exit(&mut a);
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_assemble() {
        assert!(compute(1024, 2).assemble().is_ok());
        assert!(pipe_rw(1, 10).assemble().is_ok());
        assert!(pipe_rw(1024, 10).assemble().is_ok());
        assert!(pipe_rw(4096, 10).assemble().is_ok());
        assert!(file_rw(10).assemble().is_ok());
        assert!(open_close(0, 10).assemble().is_ok());
        assert!(open_close(0x10, 10).assemble().is_ok());
    }

    #[test]
    fn path_blob_layout() {
        let b = path_blob();
        assert_eq!(&b[..9], b"/dev/null");
        assert_eq!(b[9], 0);
        assert_eq!(&b[0x10..0x18], b"/dev/tty");
        assert_eq!(&b[0x20..0x2A], b"/tmp/bench");
    }
}
