//! # synthesis-unix — the UNIX emulator and the SUNOS-like baseline
//!
//! The paper's headline comparison (Table 1) runs *the same object code*
//! on a real SUN 3/160 under SUNOS 3.5 and on the Quamachine under a UNIX
//! emulator over Synthesis: "With both hardware and software emulation, we
//! run the same object code on equivalent hardware to achieve a fair
//! comparison" (Section 6.1).
//!
//! This crate reproduces both sides over the same simulated machine:
//!
//! - [`abi`] — the UNIX system-call ABI the benchmark binaries use
//!   (`trap #3`, SUNOS-style call numbers);
//! - [`programs`] — the seven Appendix-A benchmark programs, built once
//!   and run unmodified on both kernels;
//! - [`emu`] — the UNIX emulator over the Synthesis kernel: a synthesized
//!   per-thread dispatcher translates `read`/`write` straight into the
//!   thread's synthesized fd dispatch (the ~2 µs "emulation trap
//!   overhead" of Table 2) and routes the rest through the kernel;
//! - [`sunos`] — the baseline: a deliberately *traditional* kernel on the
//!   same machine and cost model — full register save on every syscall,
//!   indirection through file and vnode tables, lock-protected pipes with
//!   byte-at-a-time copy loops, a buffer-cache hash walk on every file
//!   read, and `namei` directory scans on every open. Nothing here is
//!   synthesized; that is the point.

#![warn(missing_docs)]

pub mod abi;
pub mod emu;
pub mod programs;
pub mod sunos;
