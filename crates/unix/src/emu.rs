//! The UNIX emulator over the Synthesis kernel.
//!
//! "In the simplest case, the emulator translates the UNIX kernel call
//! into an equivalent Synthesis kernel call. Otherwise, multiple Synthesis
//! primitives are combined to emulate a UNIX call" (Section 6.1). "The
//! UNIX emulator used for performance measurement is implemented with
//! traps" (Section 4.3).
//!
//! The per-thread dispatcher is synthesized: the hot `read`/`write` calls
//! cost three extra instructions — a compare, two register moves, and a
//! jump straight into the thread's synthesized fd dispatch. That is
//! Table 2's "emulation trap overhead: 2 µs". Everything else drops into
//! the host through a `kcall` and maps onto the same kernel services the
//! native interface uses.

use std::collections::HashMap;

use quamachine::asm::Asm;
use quamachine::isa::{Cond, Operand::*, Size::*};
use quamachine::machine::RunExit;
use synthesis_codegen::creator::Synthesized;
use synthesis_codegen::template::{Bindings, Template};
use synthesis_core::kernel::{Kernel, KernelError};
use synthesis_core::syscall::errno;
use synthesis_core::thread::Tid;

use crate::abi;

/// The synthesized UNIX dispatcher template.
///
/// Holes: `dispatch_read`, `dispatch_write` — the thread's trap-1/2
/// handlers. Argument shuffle: UNIX passes `(d1=fd, a0=buf, d2=count)`;
/// Synthesis wants `(d0=fd, a0=buf, d1=count)`.
#[must_use]
pub fn unix_dispatch_template() -> Template {
    let mut a = Asm::new("unix_dispatch");
    let dr = a.abs_hole("dispatch_read");
    let dw = a.abs_hole("dispatch_write");
    let not_read = a.label();
    let not_write = a.label();
    a.cmp(L, Imm(abi::SYS_READ), Dr(0));
    a.bcc(Cond::Ne, not_read);
    a.move_(L, Dr(1), Dr(0));
    a.move_(L, Dr(2), Dr(1));
    a.jmp(dr);
    a.bind(not_read);
    a.cmp(L, Imm(abi::SYS_WRITE), Dr(0));
    a.bcc(Cond::Ne, not_write);
    a.move_(L, Dr(1), Dr(0));
    a.move_(L, Dr(2), Dr(1));
    a.jmp(dw);
    a.bind(not_write);
    a.kcall(abi::KCALL_UNIX);
    a.rte();
    Template::from_asm(a).expect("assembles")
}

/// The UNIX emulator: wraps a booted Synthesis kernel.
pub struct UnixEmulator {
    /// The underlying Synthesis kernel.
    pub k: Kernel,
    dispatchers: HashMap<Tid, Synthesized>,
}

impl UnixEmulator {
    /// Wrap a kernel (installs the dispatcher template).
    #[must_use]
    pub fn new(k: Kernel) -> UnixEmulator {
        let mut e = UnixEmulator {
            k,
            dispatchers: HashMap::new(),
        };
        e.k.creator.lib.add(unix_dispatch_template());
        e
    }

    /// Install the UNIX personality on a thread: synthesize its
    /// dispatcher and point `trap #3` at it.
    ///
    /// # Errors
    ///
    /// Fails on synthesis or unknown-thread errors.
    pub fn install(&mut self, tid: Tid) -> Result<(), KernelError> {
        let t = self.k.threads.get(&tid).ok_or(KernelError::NoThread(tid))?;
        // The thread's trap-1/2 dispatchers are its first two aux blocks
        // (a documented contract of Kernel::create_thread_inner; see the
        // CONTRACT comment at the Thread construction site).
        let dr = t.aux_code[0].base;
        let dw = t.aux_code[1].base;
        let code = self.k.creator.synthesize(
            &mut self.k.m,
            "unix_dispatch",
            Bindings::new()
                .bind("dispatch_read", dr)
                .bind("dispatch_write", dw),
            self.k.opts,
        )?;
        self.k
            .set_vector(tid, 32 + u32::from(abi::UNIX_TRAP), code.base)?;
        self.dispatchers.insert(tid, code);
        Ok(())
    }

    /// Run the emulated system, servicing the emulator's kernel calls.
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        let deadline = self.k.m.meter.cycles.saturating_add(max_cycles);
        loop {
            let now = self.k.m.meter.cycles;
            if now >= deadline {
                return RunExit::CycleLimit;
            }
            match self.k.run(deadline - now) {
                RunExit::KCall(sel) if sel == abi::KCALL_UNIX => self.unix_call(),
                other => return other,
            }
        }
    }

    /// Run until thread `tid` exits; returns whether it did.
    pub fn run_until_exit(&mut self, tid: Tid, max_cycles: u64) -> bool {
        let deadline = self.k.m.meter.cycles.saturating_add(max_cycles);
        let prev_watch = self.k.watch_exit.replace(tid);
        while !self.k.exited.contains(&tid) && self.k.m.meter.cycles < deadline {
            match self.run(deadline - self.k.m.meter.cycles) {
                RunExit::KCall(_) | RunExit::CycleLimit => break,
                RunExit::Halted => break,
                RunExit::Breakpoint(_) => {} // watched exit or debugger stop
                RunExit::Error(e) => panic!("machine error under emulation: {e}"),
            }
        }
        self.k.watch_exit = prev_watch;
        self.k.exited.contains(&tid)
    }

    /// Service one non-hot UNIX call (the `kcall` slow path).
    fn unix_call(&mut self) {
        let sysno = self.k.m.cpu.d[0];
        let d1 = self.k.m.cpu.d[1];
        let a0 = self.k.m.cpu.a[0];
        let result: i64 = match sysno {
            abi::SYS_EXIT => {
                if let Some(tid) = self.k.current_tid() {
                    let _ = self.k.destroy(tid);
                }
                0
            }
            abi::SYS_OPEN => match self.k.read_user_string(a0) {
                Ok(path) => match self.k.open(&path) {
                    Ok(fd) => i64::from(fd),
                    Err(e) => -i64::from(e),
                },
                Err(e) => -i64::from(e),
            },
            abi::SYS_CREAT => {
                let path = match self.k.read_user_string(a0) {
                    Ok(p) => p,
                    Err(e) => {
                        self.k.m.cpu.d[0] = (-i64::from(e)) as u32;
                        return;
                    }
                };
                if self.k.fs.lookup(&path).0.is_none() {
                    let _ = self
                        .k
                        .fs
                        .create(&mut self.k.m, &mut self.k.heap, &path, 65536);
                }
                match self.k.open(&path) {
                    Ok(fd) => i64::from(fd),
                    Err(e) => -i64::from(e),
                }
            }
            abi::SYS_CLOSE => match self.k.close(d1) {
                Ok(()) => 0,
                Err(e) => -i64::from(e),
            },
            abi::SYS_LSEEK => {
                // Whence is always 0 (absolute) in the benchmarks.
                let off = self.k.m.cpu.d[2];
                self.k_seek(d1, off)
            }
            abi::SYS_GETPID => i64::from(self.k.current_tid().unwrap_or(0)),
            abi::SYS_PIPE => match self.k.pipe() {
                Ok((rfd, wfd)) => i64::from((rfd << 8) | wfd),
                Err(e) => -i64::from(e),
            },
            _ => -i64::from(errno::EINVAL),
        };
        self.k.m.cpu.d[0] = result as u32;
    }

    fn k_seek(&mut self, fd: u32, pos: u32) -> i64 {
        use synthesis_core::channel::ChannelClass;
        use synthesis_core::thread::FdObject;
        let Some(tid) = self.k.current_tid() else {
            return -i64::from(errno::EBADF);
        };
        let t = &self.k.threads[&tid];
        match t.fds.get(fd as usize) {
            Some(FdObject::Channel {
                class: ChannelClass::File { offset_slot, .. },
                ..
            }) => {
                let slot = *offset_slot;
                self.k.m.mem.poke(slot, quamachine::isa::Size::L, pos);
                i64::from(pos)
            }
            _ => -i64::from(errno::EBADF),
        }
    }
}

/// Convenience: boot a Synthesis kernel, load a UNIX program, install the
/// emulator, and return everything ready to run.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn boot_with_program(
    cfg: synthesis_core::kernel::KernelConfig,
    program: Asm,
) -> Result<(UnixEmulator, Tid), KernelError> {
    use crate::programs::{addrs, path_blob};
    let k = Kernel::boot(cfg)?;
    let mut emu = UnixEmulator::new(k);
    let entry = emu
        .k
        .load_user_program(program.assemble().expect("program assembles"))?;
    emu.k.m.mem.poke_bytes(addrs::PATHS, &path_blob());
    let map = quamachine::mem::AddressMap::single(
        1,
        synthesis_core::layout::USER_BASE,
        synthesis_core::layout::USER_LEN,
    );
    let tid = emu.k.create_thread(entry, addrs::USTACK, map)?;
    emu.install(tid)?;
    emu.k.start(tid)?;
    Ok((emu, tid))
}
