//! The UNIX emulator over the Synthesis kernel.
//!
//! "In the simplest case, the emulator translates the UNIX kernel call
//! into an equivalent Synthesis kernel call. Otherwise, multiple Synthesis
//! primitives are combined to emulate a UNIX call" (Section 6.1). "The
//! UNIX emulator used for performance measurement is implemented with
//! traps" (Section 4.3).
//!
//! The per-thread dispatcher is synthesized: the hot `read`/`write` calls
//! cost three extra instructions — a compare, two register moves, and a
//! jump straight into the thread's synthesized fd dispatch. That is
//! Table 2's "emulation trap overhead: 2 µs". Everything else drops into
//! the host through a `kcall` and maps onto the same kernel services the
//! native interface uses.

use std::collections::HashMap;

use quamachine::asm::Asm;
use quamachine::isa::{BranchTarget, Cond, Instr, Operand, Operand::*, Size, Size::*};
use quamachine::machine::RunExit;
use synthesis_codegen::creator::Synthesized;
use synthesis_codegen::template::{Bindings, Template};
use synthesis_core::kernel::{Kernel, KernelError};
use synthesis_core::syscall::errno;
use synthesis_core::thread::Tid;

use crate::abi;

/// The synthesized UNIX dispatcher template.
///
/// Holes: `dispatch_read`, `dispatch_write` — the thread's trap-1/2
/// handlers. Argument shuffle: UNIX passes `(d1=fd, a0=buf, d2=count)`;
/// Synthesis wants `(d0=fd, a0=buf, d1=count)`.
#[must_use]
pub fn unix_dispatch_template() -> Template {
    let mut a = Asm::new("unix_dispatch");
    let dr = a.abs_hole("dispatch_read");
    let dw = a.abs_hole("dispatch_write");
    let not_read = a.label();
    let not_write = a.label();
    a.cmp(L, Imm(abi::SYS_READ), Dr(0));
    a.bcc(Cond::Ne, not_read);
    a.move_(L, Dr(1), Dr(0));
    a.move_(L, Dr(2), Dr(1));
    a.jmp(dr);
    a.bind(not_read);
    a.cmp(L, Imm(abi::SYS_WRITE), Dr(0));
    a.bcc(Cond::Ne, not_write);
    a.move_(L, Dr(1), Dr(0));
    a.move_(L, Dr(2), Dr(1));
    a.jmp(dw);
    a.bind(not_write);
    a.kcall(abi::KCALL_UNIX);
    a.rte();
    Template::from_asm(a).expect("assembles")
}

/// Trap-elision state: the static thunks rewritten call sites enter,
/// and the live fused bindings (for invalidation at `close`/`exit`).
/// One patched call site: its address, its direction (`true` = write),
/// and the cache reference pinning the fused wrapper it jumps to.
type BoundSite = (u32, bool, Synthesized);

struct Fusion {
    /// `[kcall KCALL_UNIX; rts]` — the slow calls, minus the trap.
    unix_thunk: u32,
    /// `[move #sysno,d0; kcall KCALL_RW_BIND; rts]`, one per direction —
    /// first execution of a `read`/`write` site lands here; the emulator
    /// binds the fused wrapper. The thunk re-materializes `d0` itself
    /// because elision deletes the caller's `move #sysno,d0` (the bound
    /// wrapper never reads it).
    bind_r: u32,
    /// See [`Fusion::bind_r`].
    bind_w: u32,
    /// `[move #sysno,d0; trap #3; rts]`, one per direction — the layered
    /// fallback for unfusable fds.
    shim_r: u32,
    /// See [`Fusion::shim_r`].
    shim_w: u32,
    /// `(tid, fd)` → the call sites patched to that fd's fused wrapper.
    sites: HashMap<(Tid, u32), Vec<BoundSite>>,
}

/// The UNIX emulator: wraps a booted Synthesis kernel.
pub struct UnixEmulator {
    /// The underlying Synthesis kernel.
    pub k: Kernel,
    dispatchers: HashMap<Tid, Synthesized>,
    fusion: Option<Fusion>,
}

/// Instruction indices that are branch targets of `instrs`.
fn branch_targets(instrs: &[Instr]) -> Vec<bool> {
    let mut t = vec![false; instrs.len()];
    for i in instrs {
        if let Instr::Bcc(_, BranchTarget::Idx(x)) | Instr::Dbf(_, BranchTarget::Idx(x)) = i {
            if let Some(f) = t.get_mut(*x as usize) {
                *f = true;
            }
        }
    }
    t
}

/// Whether the backward sysno scan may step over `i`: it neither writes
/// `d0` nor transfers control. Conservative — anything unrecognized
/// stops the scan and the trap is left alone.
fn scan_safe(i: &Instr) -> bool {
    let dst_safe = |dst: &Operand| !matches!(dst, Operand::Dr(0));
    match i {
        Instr::Move(_, _, dst)
        | Instr::Add(_, _, dst)
        | Instr::Sub(_, _, dst)
        | Instr::And(_, _, dst)
        | Instr::Or(_, _, dst)
        | Instr::Eor(_, _, dst)
        | Instr::Shift(_, _, _, dst) => dst_safe(dst),
        Instr::Lea(_, _) | Instr::Cmp(_, _, _) | Instr::Tst(_, _) | Instr::Nop => true,
        _ => false,
    }
}

/// Whether `i` may read `d0` — conservative: any operand that mentions
/// data register 0 (directly or as an index) counts as a read, even in
/// destination position.
fn reads_d0(i: &Instr) -> bool {
    i.operands().iter().any(|o| match o {
        Operand::Dr(0) => true,
        Operand::Idx(_, _, spec) => !spec.addr && spec.reg == 0,
        _ => false,
    })
}

/// The syscall number a fall-through execution of `instrs[trap_at]`
/// carries in `d0`: the nearest preceding `move.l #n,d0` with no
/// intervening branch target or unrecognized instruction. Returns the
/// number and the index of the `move` that loads it.
fn sysno_before(instrs: &[Instr], targets: &[bool], trap_at: usize) -> Option<(u32, usize)> {
    if targets[trap_at] {
        return None; // jumpers may arrive with a different d0
    }
    let mut j = trap_at;
    while j > 0 {
        j -= 1;
        if let Instr::Move(Size::L, Operand::Imm(n), Operand::Dr(0)) = instrs[j] {
            return Some((n, j)); // found — even if `j` is itself a target
        }
        if !scan_safe(&instrs[j]) || targets[j] {
            return None;
        }
    }
    None
}

/// Rewrite every statically-resolvable `trap #3` in a user program into
/// a `jsr` through a thunk: `read`/`write` sites get the *bind* thunk
/// (first call synthesizes and splices in the fd's fused wrapper), all
/// other calls the plain `kcall` thunk. Traps whose syscall number
/// cannot be proven from the instruction stream are left alone — the
/// layered path remains correct for them.
///
/// Index-based branch targets survive because the instruction *count*
/// is preserved (`trap` is 2 bytes, `jsr abs.l` 6 — byte offsets are
/// recomputed when the block is built). Returns the number of sites
/// rewritten.
///
/// `read`/`write` sites additionally have their `move #sysno,d0`
/// nop'd out: once bound, the fused wrapper keys on `d1`/`d2` only, and
/// every path that still needs the number (bind thunk, layered shim,
/// the wrapper's foreign-fd fallback) re-materializes `d0` itself. The
/// nop is legal because the backward scan already proved straight-line
/// flow from the move to the trap with no intervening entry point, and
/// we check no instruction in between *reads* `d0` (`scan_safe` only
/// rules out writes).
fn elide_traps(instrs: &mut [Instr], unix_thunk: u32, bind_r: u32, bind_w: u32) -> u32 {
    let targets = branch_targets(instrs);
    let mut rewritten = 0;
    for i in 0..instrs.len() {
        if !matches!(instrs[i], Instr::Trap(abi::UNIX_TRAP)) {
            continue;
        }
        let Some((sysno, mv)) = sysno_before(instrs, &targets, i) else {
            continue;
        };
        let thunk = match sysno {
            abi::SYS_READ => bind_r,
            abi::SYS_WRITE => bind_w,
            _ => unix_thunk,
        };
        if thunk != unix_thunk && !instrs[mv + 1..i].iter().any(reads_d0) {
            instrs[mv] = Instr::Nop;
        }
        instrs[i] = Instr::Jsr(Operand::Abs(thunk));
        rewritten += 1;
    }
    rewritten
}

/// Encoded size of `jsr abs.l` — the bind handler subtracts this from
/// the pushed return address to locate the call site.
const JSR_ABS_BYTES: u32 = 6;

impl UnixEmulator {
    /// Wrap a kernel (installs the dispatcher template).
    #[must_use]
    pub fn new(k: Kernel) -> UnixEmulator {
        let mut e = UnixEmulator {
            k,
            dispatchers: HashMap::new(),
            fusion: None,
        };
        e.k.creator.lib.add(unix_dispatch_template());
        e
    }

    /// Install the trap-elision thunks (idempotent). Requires the kernel
    /// to have booted with fusion on.
    ///
    /// # Errors
    ///
    /// [`KernelError::Invalid`] without [`KernelConfig::fuse`]
    /// (synthesis_core::kernel::KernelConfig::fuse); synthesis errors.
    pub fn install_fusion(&mut self) -> Result<(), KernelError> {
        if !self.k.fuse {
            return Err(KernelError::Invalid("fusion requires KernelConfig::fuse"));
        }
        if self.fusion.is_some() {
            return Ok(());
        }
        let mut stub = |name: &str, body: &dyn Fn(&mut Asm)| -> Result<u32, KernelError> {
            let mut a = Asm::new(name);
            body(&mut a);
            let t = Template::from_asm(a).expect("assembles");
            Ok(self
                .k
                .creator
                .synthesize_template(&mut self.k.m, &t, &Bindings::new(), self.k.opts)?
                .base)
        };
        let unix_thunk = stub("unix_jsr_thunk", &|a| {
            a.kcall(abi::KCALL_UNIX);
            a.rts();
        })?;
        // The bind thunks and layered shims carry the syscall number
        // themselves: elision nop'd the caller's `move #sysno,d0`.
        let bind_r = stub("rw_bind_thunk_r", &|a| {
            a.move_i(Size::L, abi::SYS_READ, Operand::Dr(0));
            a.kcall(abi::KCALL_RW_BIND);
            a.rts();
        })?;
        let bind_w = stub("rw_bind_thunk_w", &|a| {
            a.move_i(Size::L, abi::SYS_WRITE, Operand::Dr(0));
            a.kcall(abi::KCALL_RW_BIND);
            a.rts();
        })?;
        let shim_r = stub("unix_trap_shim_r", &|a| {
            a.move_i(Size::L, abi::SYS_READ, Operand::Dr(0));
            a.trap(abi::UNIX_TRAP);
            a.rts();
        })?;
        let shim_w = stub("unix_trap_shim_w", &|a| {
            a.move_i(Size::L, abi::SYS_WRITE, Operand::Dr(0));
            a.trap(abi::UNIX_TRAP);
            a.rts();
        })?;
        self.fusion = Some(Fusion {
            unix_thunk,
            bind_r,
            bind_w,
            shim_r,
            shim_w,
            sites: HashMap::new(),
        });
        Ok(())
    }

    /// Install the UNIX personality on a thread: synthesize its
    /// dispatcher and point `trap #3` at it.
    ///
    /// # Errors
    ///
    /// Fails on synthesis or unknown-thread errors.
    pub fn install(&mut self, tid: Tid) -> Result<(), KernelError> {
        let t = self.k.threads.get(&tid).ok_or(KernelError::NoThread(tid))?;
        // The thread's trap-1/2 dispatchers are its first two aux blocks
        // (a documented contract of Kernel::create_thread_inner; see the
        // CONTRACT comment at the Thread construction site).
        let dr = t.aux_code[0].base;
        let dw = t.aux_code[1].base;
        let code = self.k.creator.synthesize(
            &mut self.k.m,
            "unix_dispatch",
            Bindings::new()
                .bind("dispatch_read", dr)
                .bind("dispatch_write", dw),
            self.k.opts,
        )?;
        self.k
            .set_vector(tid, 32 + u32::from(abi::UNIX_TRAP), code.base)?;
        self.dispatchers.insert(tid, code);
        Ok(())
    }

    /// Run the emulated system, servicing the emulator's kernel calls.
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        let deadline = self.k.m.meter.cycles.saturating_add(max_cycles);
        loop {
            let now = self.k.m.meter.cycles;
            if now >= deadline {
                return RunExit::CycleLimit;
            }
            match self.k.run(deadline - now) {
                RunExit::KCall(sel) if sel == abi::KCALL_UNIX => self.unix_call(),
                RunExit::KCall(sel) if sel == abi::KCALL_RW_BIND => self.rw_bind(),
                other => return other,
            }
        }
    }

    /// Run until thread `tid` exits; returns whether it did.
    pub fn run_until_exit(&mut self, tid: Tid, max_cycles: u64) -> bool {
        let deadline = self.k.m.meter.cycles.saturating_add(max_cycles);
        let prev_watch = self.k.watch_exit.replace(tid);
        while !self.k.exited.contains(&tid) && self.k.m.meter.cycles < deadline {
            match self.run(deadline - self.k.m.meter.cycles) {
                RunExit::KCall(_) | RunExit::CycleLimit => break,
                RunExit::Halted => break,
                RunExit::Breakpoint(_) => {} // watched exit or debugger stop
                RunExit::Error(e) => panic!("machine error under emulation: {e}"),
            }
        }
        self.k.watch_exit = prev_watch;
        self.k.exited.contains(&tid)
    }

    /// Service the fused-path bind `kcall`: a rewritten `read`/`write`
    /// site is executing the bind thunk for the first time (or after an
    /// unfuse). Synthesize the fd's fused wrapper, patch the site's
    /// `jsr` to enter it directly, and redirect the current call into
    /// the fresh wrapper. Unfusable fds divert the site to the layered
    /// trap shim instead.
    fn rw_bind(&mut self) {
        let sysno = self.k.m.cpu.d[0];
        let fd = self.k.m.cpu.d[1];
        // The return address the site's jsr pushed locates the site.
        let ret = self.k.m.mem.peek(self.k.m.cpu.a[7], Size::L);
        let site = ret.wrapping_sub(JSR_ABS_BYTES);
        let write = sysno == abi::SYS_WRITE;
        let f = self.fusion.as_ref().expect("bind kcall ⇒ fused boot");
        let trap_shim = if write { f.shim_w } else { f.shim_r };
        let spec = self
            .k
            .current_tid()
            .and_then(|tid| self.k.fused_rw_spec(tid, fd, write).map(|s| (tid, s)));
        let Some((tid, (name, bindings))) = spec else {
            // Not fusable (foreign class, shared pipe, …): the site goes
            // layered for good (an unfuse re-arms it).
            let _ = self.k.m.code.patch_jsr_target(site, trap_shim);
            self.k.m.cpu.pc = trap_shim;
            return;
        };
        // Steer the pre-install equivalence trials down *both* guarded
        // paths: the 1-byte fast path (d1 = this fd, d2 = 1) and the
        // inlined general body (same fd, a count small enough that a
        // trial's copy finishes well inside the cycle budget).
        let mut opts = self.k.opts;
        opts.superopt = true;
        self.k.creator.diff_presets = vec![
            vec![(true, 1, fd), (true, 2, 1)],
            vec![(true, 1, fd), (true, 2, 5)],
        ];
        let s = self
            .k
            .creator
            .synthesize_cached(&mut self.k.m, &name, &bindings, opts);
        self.k.creator.diff_presets.clear();
        match s {
            Ok(s) => {
                let entry = s.base;
                let _ = self.k.m.code.patch_jsr_target(site, entry);
                self.fusion
                    .as_mut()
                    .expect("checked above")
                    .sites
                    .entry((tid, fd))
                    .or_default()
                    .push((site, write, s));
                // This call still has the thunk's return frame on the
                // stack; run it through the wrapper now.
                self.k.m.cpu.pc = entry;
            }
            Err(_) => {
                // Synthesis failed (code space): fall back layered.
                let _ = self.k.m.code.patch_jsr_target(site, trap_shim);
                self.k.m.cpu.pc = trap_shim;
            }
        }
    }

    /// Drop every fused binding for `(tid, fd)`: re-arm the sites to the
    /// bind thunk and release the wrappers' cache references.
    fn unfuse(&mut self, tid: Tid, fd: u32) {
        let Some(f) = self.fusion.as_mut() else {
            return;
        };
        let Some(v) = f.sites.remove(&(tid, fd)) else {
            return;
        };
        let (bind_r, bind_w) = (f.bind_r, f.bind_w);
        for (site, write, s) in v {
            let bind = if write { bind_w } else { bind_r };
            let _ = self.k.m.code.patch_jsr_target(site, bind);
            self.k.creator.destroy(&mut self.k.m, &s);
        }
    }

    /// Drop every fused binding `tid` holds (thread exit).
    fn unfuse_all(&mut self, tid: Tid) {
        let Some(f) = self.fusion.as_ref() else {
            return;
        };
        let fds: Vec<u32> = f
            .sites
            .keys()
            .filter(|(t, _)| *t == tid)
            .map(|&(_, fd)| fd)
            .collect();
        for fd in fds {
            self.unfuse(tid, fd);
        }
    }

    /// Service one non-hot UNIX call (the `kcall` slow path).
    fn unix_call(&mut self) {
        let sysno = self.k.m.cpu.d[0];
        let d1 = self.k.m.cpu.d[1];
        let a0 = self.k.m.cpu.a[0];
        let result: i64 = match sysno {
            abi::SYS_EXIT => {
                if let Some(tid) = self.k.current_tid() {
                    self.unfuse_all(tid);
                    let _ = self.k.destroy(tid);
                }
                0
            }
            abi::SYS_OPEN => match self.k.read_user_string(a0) {
                Ok(path) => match self.k.open(&path) {
                    Ok(fd) => i64::from(fd),
                    Err(e) => -i64::from(e),
                },
                Err(e) => -i64::from(e),
            },
            abi::SYS_CREAT => {
                let path = match self.k.read_user_string(a0) {
                    Ok(p) => p,
                    Err(e) => {
                        self.k.m.cpu.d[0] = (-i64::from(e)) as u32;
                        return;
                    }
                };
                if self.k.fs.lookup(&path).0.is_none() {
                    let _ = self
                        .k
                        .fs
                        .create(&mut self.k.m, &mut self.k.heap, &path, 65536);
                }
                match self.k.open(&path) {
                    Ok(fd) => i64::from(fd),
                    Err(e) => -i64::from(e),
                }
            }
            abi::SYS_CLOSE => {
                // The fd's fused call sites must not outlive the
                // channel: re-arm them and drop the cache references
                // before the close releases the endpoint code.
                if let Some(tid) = self.k.current_tid() {
                    self.unfuse(tid, d1);
                }
                match self.k.close(d1) {
                    Ok(()) => 0,
                    Err(e) => -i64::from(e),
                }
            }
            abi::SYS_LSEEK => {
                // Whence is always 0 (absolute) in the benchmarks.
                let off = self.k.m.cpu.d[2];
                self.k_seek(d1, off)
            }
            abi::SYS_GETPID => i64::from(self.k.current_tid().unwrap_or(0)),
            abi::SYS_PIPE => match self.k.pipe() {
                Ok((rfd, wfd)) => i64::from((rfd << 8) | wfd),
                Err(e) => -i64::from(e),
            },
            _ => -i64::from(errno::EINVAL),
        };
        self.k.m.cpu.d[0] = result as u32;
    }

    fn k_seek(&mut self, fd: u32, pos: u32) -> i64 {
        use synthesis_core::channel::ChannelClass;
        use synthesis_core::thread::FdObject;
        let Some(tid) = self.k.current_tid() else {
            return -i64::from(errno::EBADF);
        };
        let t = &self.k.threads[&tid];
        match t.fds.get(fd as usize) {
            Some(FdObject::Channel {
                class: ChannelClass::File { offset_slot, .. },
                ..
            }) => {
                let slot = *offset_slot;
                self.k.m.mem.poke(slot, quamachine::isa::Size::L, pos);
                i64::from(pos)
            }
            _ => -i64::from(errno::EBADF),
        }
    }
}

/// Convenience: boot a Synthesis kernel, load a UNIX program, install the
/// emulator, and return everything ready to run.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn boot_with_program(
    cfg: synthesis_core::kernel::KernelConfig,
    program: Asm,
) -> Result<(UnixEmulator, Tid), KernelError> {
    use crate::programs::{addrs, path_blob};
    let k = Kernel::boot(cfg)?;
    let mut emu = UnixEmulator::new(k);
    let mut block = program.assemble().expect("program assembles");
    if emu.k.fuse {
        // Trap elision: rewrite the program's statically-resolvable
        // syscall traps into jsr-thunk calls before loading (the fused
        // wrappers bind in lazily, per call site, at first execution).
        emu.install_fusion()?;
        let f = emu.fusion.as_ref().expect("just installed");
        let (ut, br, bw) = (f.unix_thunk, f.bind_r, f.bind_w);
        let mut instrs = block.instrs;
        elide_traps(&mut instrs, ut, br, bw);
        block = quamachine::code::CodeBlock::new(block.name, instrs);
    }
    let entry = emu.k.load_user_program(block)?;
    emu.k.m.mem.poke_bytes(addrs::PATHS, &path_blob());
    // Fused callers share the kernel's flat space (that is what makes
    // the trap redundant); the layered boot keeps the user window.
    let map = if emu.k.fuse {
        quamachine::mem::AddressMap::single(1, 0, emu.k.m.mem.size())
    } else {
        quamachine::mem::AddressMap::single(
            1,
            synthesis_core::layout::USER_BASE,
            synthesis_core::layout::USER_LEN,
        )
    };
    let tid = emu.k.create_thread(entry, addrs::USTACK, map)?;
    emu.install(tid)?;
    emu.k.start(tid)?;
    Ok((emu, tid))
}
