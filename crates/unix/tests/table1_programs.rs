//! The Appendix-A programs run correctly on BOTH kernels — the paper's
//! same-binaries methodology — and Synthesis beats the baseline.

use quamachine::isa::Size::L;
use quamachine::machine::RunExit;
use synthesis_core::kernel::KernelConfig;
use synthesis_unix::programs::{self, addrs};
use synthesis_unix::sunos::Sunos;

/// Run a program on the baseline; returns elapsed µs.
fn run_sunos(program: quamachine::asm::Asm, setup: impl FnOnce(&mut Sunos)) -> (Sunos, f64) {
    let mut s = Sunos::boot();
    let entry = s.load_program(program);
    s.m.mem.poke_bytes(addrs::PATHS, &programs::path_blob());
    setup(&mut s);
    let t0 = s.m.now_us();
    let exit = s.run_program(entry, 20_000_000_000);
    assert_eq!(exit, RunExit::Halted, "program must exit cleanly");
    let t = s.m.now_us() - t0;
    (s, t)
}

/// Run a program under the Synthesis UNIX emulator; returns elapsed µs.
fn run_synthesis(
    program: quamachine::asm::Asm,
    setup: impl FnOnce(&mut synthesis_unix::emu::UnixEmulator),
) -> (synthesis_unix::emu::UnixEmulator, f64) {
    let (mut emu, tid) =
        synthesis_unix::emu::boot_with_program(KernelConfig::default(), program).unwrap();
    setup(&mut emu);
    let t0 = emu.k.m.now_us();
    assert!(
        emu.run_until_exit(tid, 20_000_000_000),
        "program must exit cleanly under emulation"
    );
    let t = emu.k.m.now_us() - t0;
    (emu, t)
}

fn make_bench_file_synthesis(emu: &mut synthesis_unix::emu::UnixEmulator) {
    let fid = emu
        .k
        .fs
        .create(&mut emu.k.m, &mut emu.k.heap, "/tmp/bench", 65536)
        .unwrap();
    let data = vec![0xA5u8; 4096];
    emu.k.fs.write_contents(&mut emu.k.m, fid, &data);
}

#[test]
fn compute_program_runs_identically_on_both() {
    // Program 1 validates the "hardware emulation": same binary, same
    // machine model — the checksums must be bit-identical and the times
    // within a few percent (the kernel is not involved).
    let (s, t_sun) = run_sunos(programs::compute(1024, 3), |_| {});
    let sum_sun = s.m.mem.peek(addrs::RESULT, L);
    let (emu, t_syn) = run_synthesis(programs::compute(1024, 3), |_| {});
    let sum_syn = emu.k.m.mem.peek(addrs::RESULT, L);
    assert_eq!(sum_sun, sum_syn, "identical chaotic checksums");
    assert!(sum_syn != 0);
    let ratio = t_sun / t_syn;
    assert!(
        (0.8..1.25).contains(&ratio),
        "compute-bound parity: sunos {t_sun:.0}µs vs synthesis {t_syn:.0}µs"
    );
}

#[test]
fn pipe_1_byte_synthesis_wins_big() {
    const N: u32 = 50;
    let (_, t_sun) = run_sunos(programs::pipe_rw(1, N), |_| {});
    let (_, t_syn) = run_synthesis(programs::pipe_rw(1, N), |_| {});
    let ratio = t_sun / t_syn;
    // The paper reports 56× here; our baseline models SunOS's structure
    // but not its memory system, so the gap is smaller (see
    // EXPERIMENTS.md). The direction and order must hold.
    assert!(
        ratio > 4.0,
        "1-byte pipes: sunos {t_sun:.0}µs vs synthesis {t_syn:.0}µs (ratio {ratio:.1})"
    );
}

#[test]
fn pipe_4k_synthesis_wins_moderately() {
    const N: u32 = 10;
    let (_, t_sun) = run_sunos(programs::pipe_rw(4096, N), |_| {});
    let (_, t_syn) = run_synthesis(programs::pipe_rw(4096, N), |_| {});
    let ratio = t_sun / t_syn;
    assert!(
        ratio > 2.0,
        "4K pipes: sunos {t_sun:.0}µs vs synthesis {t_syn:.0}µs (ratio {ratio:.1})"
    );
}

#[test]
fn file_rw_works_on_both() {
    const N: u32 = 5;
    let (s, t_sun) = run_sunos(programs::file_rw(N), |s| {
        s.write_bench_file(&vec![0x5Au8; 4096]);
    });
    assert_eq!(s.m.mem.peek(addrs::BUF, L) >> 24, 0, "read-back happened");
    let (_, t_syn) = run_synthesis(programs::file_rw(N), make_bench_file_synthesis);
    let ratio = t_sun / t_syn;
    assert!(
        ratio > 1.5,
        "file R/W: sunos {t_sun:.0}µs vs synthesis {t_syn:.0}µs (ratio {ratio:.1})"
    );
}

#[test]
fn open_close_null_synthesis_wins() {
    const N: u32 = 20;
    let (_, t_sun) = run_sunos(programs::open_close(0, N), |_| {});
    let (_, t_syn) = run_synthesis(programs::open_close(0, N), |_| {});
    let ratio = t_sun / t_syn;
    assert!(
        ratio > 3.0,
        "open/close null: sunos {t_sun:.0}µs vs synthesis {t_syn:.0}µs (ratio {ratio:.1})"
    );
}

#[test]
fn open_close_tty_works_on_both() {
    const N: u32 = 20;
    let (_, t_sun) = run_sunos(programs::open_close(0x10, N), |_| {});
    let (_, t_syn) = run_synthesis(programs::open_close(0x10, N), |_| {});
    assert!(t_sun / t_syn > 1.8, "tty open: {t_sun:.0} vs {t_syn:.0}");
}

#[test]
fn pipe_data_integrity_both_kernels() {
    // Write a pattern through the pipe and read it back: contents must
    // survive on both kernels.
    const N: u32 = 3;
    let pattern: Vec<u8> = (0..1024u32).map(|i| (i * 13 % 251) as u8).collect();
    let (s, _) = run_sunos(programs::pipe_rw(1024, N), |s| {
        s.m.mem.poke_bytes(addrs::BUF, &pattern);
    });
    assert_eq!(s.m.mem.peek_bytes(addrs::BUF, 1024), pattern);
    let (emu, _) = run_synthesis(programs::pipe_rw(1024, N), |e| {
        e.k.m.mem.poke_bytes(addrs::BUF, &pattern);
    });
    assert_eq!(emu.k.m.mem.peek_bytes(addrs::BUF, 1024), pattern);
}
