//! Fused vs layered pipe I/O is observationally equivalent.
//!
//! The tentpole's contract: collapsing the pipe path into the caller
//! (trap-elided `jsr`-bound wrappers, superoptimized bodies) must not
//! change anything a program can see — only how many cycles it costs.
//! This property test runs the same transfer program on two Synthesis
//! kernels, one with `KernelConfig::fuse` on and one layered, across
//! randomized chunk sizes, data seeds, and 1/2/4-CPU machines, and
//! compares:
//!
//! - **bytes moved** — the program totals its `read`/`write` return
//!   values into a result slot; both kernels must report the full
//!   `2 × chunk × iters` and the destination buffer must hold the
//!   source bytes (the ring wraps many times for chunks that do not
//!   divide the 8 KB ring),
//! - **TraceQuery event sequence** — the pipe-queue wake events
//!   (`QueuePut`/`QueueGet`, class pipe) must match record for record,
//!   and elision must only ever *remove* syscall traps,
//! - **guest-visible state** — source buffer unclobbered, identical on
//!   both kernels.

use proptest::prelude::*;
use quamachine::asm::Asm;
use quamachine::isa::{Cond, Operand::*, ShiftKind, Size::L};
use synthesis_core::kernel::KernelConfig;
use synthesis_core::trace::{Kind, TraceQuery, QCLASS_PIPE};
use synthesis_unix::abi;
use synthesis_unix::emu::boot_with_program;
use synthesis_unix::programs::addrs;

/// Destination buffer, disjoint from the source at [`addrs::BUF`].
const DST: u32 = addrs::BUF + 0x4000;

/// Like `programs::pipe_rw`, but reads land in a *separate* buffer and
/// the `read`/`write` return values accumulate into `RESULT` — so the
/// test can check bytes moved and data integrity, not just completion.
fn pipe_xfer(chunk: u32, iters: u32) -> Asm {
    let mut a = Asm::new("prop_pipe_xfer");
    a.move_i(L, abi::SYS_PIPE, Dr(0));
    a.trap(abi::UNIX_TRAP);
    a.move_(L, Dr(0), Dr(5)); // (rfd<<8) | wfd
    a.move_i(L, iters, Dr(7));
    a.move_i(L, 0, Dr(6)); // bytes-moved total
    let top = a.here();
    // write(wfd, BUF, chunk)
    a.move_i(L, abi::SYS_WRITE, Dr(0));
    a.move_(L, Dr(5), Dr(1));
    a.and(L, Imm(0xFF), Dr(1));
    a.lea(Abs(addrs::BUF), 0);
    a.move_i(L, chunk, Dr(2));
    a.trap(abi::UNIX_TRAP);
    a.add(L, Dr(0), Dr(6));
    // read(rfd, DST, chunk)
    a.move_i(L, abi::SYS_READ, Dr(0));
    a.move_(L, Dr(5), Dr(1));
    a.shift(ShiftKind::Lsr, L, Imm(8), Dr(1));
    a.lea(Abs(DST), 0);
    a.move_i(L, chunk, Dr(2));
    a.trap(abi::UNIX_TRAP);
    a.add(L, Dr(0), Dr(6));
    a.sub(L, Imm(1), Dr(7));
    a.bcc(Cond::Ne, top);
    a.move_(L, Dr(6), Abs(addrs::RESULT));
    a.move_i(L, abi::SYS_EXIT, Dr(0));
    a.move_i(L, 0, Dr(1));
    a.trap(abi::UNIX_TRAP);
    let dead = a.here();
    a.bcc(Cond::T, dead);
    a
}

/// One run: boot, seed the source buffer, transfer, collect everything
/// a program (or a tracing observer) can see.
struct Observed {
    bytes_moved: u32,
    src: Vec<u8>,
    dst: Vec<u8>,
    pipe_events: Vec<(Kind, u32, u32)>,
    syscall_traps: usize,
}

fn run_one(fuse: bool, cpus: usize, chunk: u32, iters: u32, seed: u64) -> Observed {
    let cfg = KernelConfig {
        fuse,
        cpus,
        ..KernelConfig::default()
    };
    let (mut emu, tid) = boot_with_program(cfg, pipe_xfer(chunk, iters)).expect("boots");
    // Deterministic pseudo-random source bytes from the seed.
    let mut x = seed | 1;
    let data: Vec<u8> = (0..chunk)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 56) as u8
        })
        .collect();
    emu.k.m.mem.poke_bytes(addrs::BUF, &data);
    assert!(
        emu.run_until_exit(tid, 10_000_000_000),
        "transfer must finish (fuse={fuse}, cpus={cpus}, chunk={chunk}, iters={iters})"
    );
    let bytes_moved = emu.k.m.mem.peek(addrs::RESULT, quamachine::isa::Size::L);
    let src = emu.k.m.mem.peek_bytes(addrs::BUF, chunk);
    let dst = emu.k.m.mem.peek_bytes(DST, chunk);
    let q = TraceQuery::drain(&mut emu.k);
    let pipe_events: Vec<(Kind, u32, u32)> = q
        .records()
        .iter()
        .filter(|r| matches!(r.kind, Kind::QueuePut | Kind::QueueGet) && r.a == QCLASS_PIPE)
        .map(|r| (r.kind, r.a, r.b))
        .collect();
    let syscall_traps = q.thread(tid).count_kind(Kind::SyscallEnter);
    Observed {
        bytes_moved,
        src,
        dst,
        pipe_events,
        syscall_traps,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    #[test]
    fn fused_and_layered_pipes_agree(
        chunk in 1u32..4097,
        iters in 1u32..6,
        seed in any::<u64>(),
        cpus in prop_oneof![Just(1usize), Just(2usize), Just(4usize)],
    ) {
        let fused = run_one(true, cpus, chunk, iters, seed);
        let layered = run_one(false, cpus, chunk, iters, seed);

        // Bytes moved: both sides count every byte, twice (write+read).
        prop_assert_eq!(fused.bytes_moved, 2 * chunk * iters);
        prop_assert_eq!(fused.bytes_moved, layered.bytes_moved);

        // Data integrity: the destination holds the source bytes and
        // the source is unclobbered, identically on both kernels.
        prop_assert_eq!(&fused.dst, &fused.src);
        prop_assert_eq!(&fused.src, &layered.src);
        prop_assert_eq!(&fused.dst, &layered.dst);

        // The pipe-queue wake events match record for record (a solo
        // pipe that never blocks produces none on either side; any that
        // do fire must agree).
        prop_assert_eq!(&fused.pipe_events, &layered.pipe_events);

        // Trap elision only ever removes syscall traps.
        prop_assert!(
            fused.syscall_traps <= layered.syscall_traps,
            "fused path grew traps: {} > {}",
            fused.syscall_traps,
            layered.syscall_traps
        );
    }
}
