//! Table 2 as a tracked benchmark: single-call I/O costs.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("regenerate", |b| {
        b.iter(|| std::hint::black_box(synthesis_bench::table2::run()));
    });
    g.finish();
    for row in synthesis_bench::table2::run() {
        println!(
            "[table2] {}: paper {:?} vs measured {:.1} µs",
            row.what, row.paper, row.measured
        );
    }
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
