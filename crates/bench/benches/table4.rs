//! Table 4 (and Figure 3) as a tracked benchmark: the dispatcher.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4");
    g.sample_size(10);
    g.bench_function("regenerate", |b| {
        b.iter(|| std::hint::black_box(synthesis_bench::table4::run()));
    });
    g.finish();
    for row in synthesis_bench::table4::run() {
        println!(
            "[table4] {}: paper {:?} vs measured {:.1} µs",
            row.what, row.paper, row.measured
        );
    }
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
