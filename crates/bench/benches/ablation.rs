//! Ablations: the design choices DESIGN.md calls out, each toggled.
//!
//! - **Kernel code synthesis on/off**: the same UNIX program on a kernel
//!   that specializes (fold + collapse + peephole) vs one that only
//!   substitutes parameters.
//! - **Collapsing Layers on/off**: inlined vs layered composition of the
//!   same templates (measured in simulated cycles).
//! - **Lazy vs eager FP save**: the Table 4 delta, as a path cost.
//!
//! Virtual-time results print once; criterion tracks regeneration cost.

use criterion::{criterion_group, criterion_main, Criterion};
use quamachine::asm::Asm;
use quamachine::isa::{Operand::*, Size::L};
use quamachine::machine::{Machine, MachineConfig, RunExit};
use synthesis_codegen::creator::{QuajectCreator, SynthesisOptions};
use synthesis_codegen::template::{Bindings, Template};
use synthesis_core::kernel::KernelConfig;
use synthesis_unix::programs;

/// Run the 1 KB pipe program with a given synthesis switchboard; returns
/// virtual µs.
fn pipe_with_opts(opts: SynthesisOptions) -> f64 {
    let cfg = KernelConfig {
        synthesis: opts,
        ..synthesis_bench::measurement_config()
    };
    let (mut emu, tid) =
        synthesis_unix::emu::boot_with_program(cfg, programs::pipe_rw(1024, 10)).unwrap();
    let t0 = emu.k.m.now_us();
    assert!(emu.run_until_exit(tid, 60_000_000_000));
    emu.k.m.now_us() - t0
}

/// Collapsed vs layered composition of a two-layer call chain, in cycles.
fn collapse_cycles(collapse: bool) -> u64 {
    let mut m = Machine::new(MachineConfig::sun3_emulation());
    let mut c = QuajectCreator::new(0x10_0000, 0x2_0000);
    let mut leaf = Asm::new("leaf");
    leaf.add(L, Imm(7), Dr(0));
    leaf.rts();
    c.lib.add(Template::from_asm(leaf).unwrap());
    let s_leaf = c
        .synthesize(&mut m, "leaf", &Bindings::new(), SynthesisOptions::full())
        .unwrap();
    c.link("leaf", s_leaf.base);
    let mut outer = Asm::new("outer");
    let call = outer.abs_hole(Template::call_hole_name("leaf"));
    outer.move_i(L, 0, Dr(0));
    for _ in 0..4 {
        outer.jsr(call);
    }
    outer.halt();
    c.lib.add(Template::from_asm(outer).unwrap());
    let opts = SynthesisOptions {
        collapse,
        ..SynthesisOptions::full()
    };
    let s = c
        .synthesize(&mut m, "outer", &Bindings::new(), opts)
        .unwrap();
    m.cpu.pc = s.base;
    m.cpu.a[7] = 0x8000;
    let before = m.meter.cycles;
    assert_eq!(m.run(100_000), RunExit::Halted);
    m.meter.cycles - before
}

/// Specialized (synthesized-at-open) file read vs the general-purpose
/// routine that re-derives everything from a descriptor at run time —
/// the core Factoring Invariants claim. Returns cycles for a read of
/// `n` bytes.
fn read_cycles(n: u32, generic: bool) -> u64 {
    let mut m = Machine::new(MachineConfig::sun3_emulation());
    let mut c = QuajectCreator::new(0x10_0000, 0x2_0000);
    c.lib
        .add(synthesis_core::templates::rw::read_file_template());
    c.lib
        .add(synthesis_core::templates::rw::rw_generic_template());
    // File state: a 64 KB buffer at 0x2_0000, length/offset slots.
    let buf = 0x2_0000u32;
    let len_slot = 0x1_0000u32;
    let offset_slot = 0x1_0004u32;
    let gauge = 0x1_0008u32;
    let desc = 0x1_0020u32;
    m.mem.poke(len_slot, L, 65536);
    m.mem.poke(offset_slot, L, 0);
    // The generic routine's descriptor: kind=FILE, offset, len, buf, cap.
    m.mem
        .poke(desc, L, synthesis_core::templates::rw::obj_kind::FILE);
    m.mem.poke(desc + 4, L, 0);
    m.mem.poke(desc + 8, L, 65536);
    m.mem.poke(desc + 12, L, buf);
    m.mem.poke(desc + 16, L, 65536);

    let (entry, routine) = if generic {
        let s = c
            .synthesize(
                &mut m,
                "rw_generic",
                &Bindings::new(),
                SynthesisOptions::full(),
            )
            .unwrap();
        (s.entries["read"], s)
    } else {
        let s = c
            .synthesize(
                &mut m,
                "read_file",
                Bindings::new()
                    .bind("offset_slot", offset_slot)
                    .bind("len_slot", len_slot)
                    .bind("buf", buf)
                    .bind("gauge", gauge),
                SynthesisOptions::full(),
            )
            .unwrap();
        (s.base, s)
    };
    let _ = routine;
    // A halt block the routine's rte returns into, via a fabricated frame.
    let mut h = Asm::new("after");
    h.halt();
    let after = m.load_block(0xF000, h.assemble().unwrap()).unwrap();
    m.cpu.a[7] = 0x8000 - 6;
    m.mem.poke(0x8000 - 6, quamachine::isa::Size::W, 0x2000);
    m.mem.poke(0x8000 - 4, L, after);
    m.cpu.pc = entry;
    m.cpu.d[0] = 0; // fd
    m.cpu.d[1] = n; // count
    m.cpu.a[0] = 0x9000; // destination
    m.cpu.a[2] = desc;
    let before = m.meter.cycles;
    assert_eq!(m.run(10_000_000), RunExit::Halted);
    assert_eq!(m.cpu.d[0], n, "read returned the full count");
    m.meter.cycles - before
}

fn bench_ablation(c: &mut Criterion) {
    // Print the virtual-time ablations once.
    for n in [1u32, 1024] {
        let spec = read_cycles(n, false);
        let gen = read_cycles(n, true);
        println!(
            "[ablation] read {n} B: specialized {spec} cycles vs generic {gen} cycles ({:.2}x)",
            gen as f64 / spec as f64
        );
    }
    let full = pipe_with_opts(SynthesisOptions::full());
    let none = pipe_with_opts(SynthesisOptions::none());
    println!(
        "[ablation] pipe 1KB x10: synthesis FULL {full:.0} µs vs NONE {none:.0} µs ({:.2}x)",
        none / full
    );
    let collapsed = collapse_cycles(true);
    let layered = collapse_cycles(false);
    println!(
        "[ablation] 4-call chain: collapsed {collapsed} cycles vs layered {layered} cycles ({:.2}x)",
        layered as f64 / collapsed as f64
    );

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("pipe_synthesis_full", |b| {
        b.iter(|| std::hint::black_box(pipe_with_opts(SynthesisOptions::full())));
    });
    g.bench_function("pipe_synthesis_none", |b| {
        b.iter(|| std::hint::black_box(pipe_with_opts(SynthesisOptions::none())));
    });
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
