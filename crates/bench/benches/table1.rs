//! Table 1 as a tracked benchmark: the pipe and open/close programs on
//! both kernels (small iteration counts; the full sweep is `tables`).

use criterion::{criterion_group, criterion_main, Criterion};
use synthesis_bench::table1::{run_sunos, run_synthesis};
use synthesis_unix::programs;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("pipe_1b_sunos", |b| {
        b.iter(|| std::hint::black_box(run_sunos(programs::pipe_rw(1, 5), false)));
    });
    g.bench_function("pipe_1b_synthesis", |b| {
        b.iter(|| std::hint::black_box(run_synthesis(programs::pipe_rw(1, 5), false)));
    });
    g.bench_function("open_null_sunos", |b| {
        b.iter(|| std::hint::black_box(run_sunos(programs::open_close(0, 4), false)));
    });
    g.bench_function("open_null_synthesis", |b| {
        b.iter(|| std::hint::black_box(run_synthesis(programs::open_close(0, 4), false)));
    });
    g.finish();

    // Print the virtual-time comparison once (the quantity the paper
    // reports); criterion tracks the host cost of regenerating it.
    let sun = run_sunos(programs::pipe_rw(1, 20), false);
    let syn = run_synthesis(programs::pipe_rw(1, 20), false);
    println!(
        "[table1] pipe 1B x20: sunos {sun:.0} µs vs synthesis {syn:.0} µs = {:.1}x",
        sun / syn
    );
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
