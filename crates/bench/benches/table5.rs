//! Table 5 as a tracked benchmark: interrupt handling.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table5(c: &mut Criterion) {
    let mut g = c.benchmark_group("table5");
    g.sample_size(10);
    g.bench_function("regenerate", |b| {
        b.iter(|| std::hint::black_box(synthesis_bench::table5::run()));
    });
    g.finish();
    for row in synthesis_bench::table5::run() {
        println!(
            "[table5] {}: paper {:?} vs measured {:.1} µs",
            row.what, row.paper, row.measured
        );
    }
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
