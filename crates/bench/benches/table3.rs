//! Table 3 as a tracked benchmark: thread operations.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("regenerate", |b| {
        b.iter(|| std::hint::black_box(synthesis_bench::table3::run()));
    });
    g.finish();
    for row in synthesis_bench::table3::run() {
        println!(
            "[table3] {}: paper {:?} vs measured {:.1} µs",
            row.what, row.paper, row.measured
        );
    }
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
