//! The fast-fit allocator (Section 6.3) against a linear first-fit
//! free list (the code-buffer allocator) under churn.

use criterion::{criterion_group, criterion_main, Criterion};
use synthesis_codegen::codebuf::CodeBuf;
use synthesis_core::alloc::FastFit;

/// Uniform allocator interface for the comparison.
trait Arena {
    fn alloc(&mut self, size: u32) -> Option<u32>;
    fn free(&mut self, addr: u32, size: u32);
}

impl Arena for FastFit {
    fn alloc(&mut self, size: u32) -> Option<u32> {
        FastFit::alloc(self, size).ok()
    }
    fn free(&mut self, addr: u32, size: u32) {
        FastFit::free(self, addr, size);
    }
}

impl Arena for CodeBuf {
    fn alloc(&mut self, size: u32) -> Option<u32> {
        CodeBuf::alloc(self, size).ok()
    }
    fn free(&mut self, addr: u32, size: u32) {
        CodeBuf::free(self, addr, size);
    }
}

/// A deterministic alloc/free churn driver.
fn churn<A: Arena>(h: &mut A, rounds: u32) {
    let mut live: Vec<(u32, u32)> = Vec::new();
    let mut seed = 0x1234_5678u32;
    for _ in 0..rounds {
        seed = seed.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        let size = 16 + (seed >> 20) % 240;
        if live.len() > 48 || (live.len() > 8 && seed.is_multiple_of(3)) {
            let idx = (seed as usize) % live.len();
            let (a, l) = live.swap_remove(idx);
            h.free(a, l);
        } else if let Some(a) = h.alloc(size) {
            live.push((a, size));
        }
    }
    for (a, l) in live {
        h.free(a, l);
    }
}

fn bench_fastfit(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocator");
    g.bench_function("fastfit_churn_200", |b| {
        b.iter(|| {
            let mut h = FastFit::new(0, 0x4_0000);
            churn(&mut h, 200);
            std::hint::black_box(h.high_water);
        });
    });
    g.bench_function("firstfit_churn_200", |b| {
        b.iter(|| {
            let mut h = CodeBuf::new(0, 0x4_0000);
            churn(&mut h, 200);
            std::hint::black_box(h.high_water);
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fastfit
}
criterion_main!(benches);
