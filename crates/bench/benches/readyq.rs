//! Figure 3: the executable ready queue — insertion/removal patch costs
//! and end-to-end dispatch rate on the simulated machine.

use criterion::{criterion_group, criterion_main, Criterion};
use quamachine::asm::Asm;
use quamachine::isa::{Operand::*, Size::L};
use quamachine::machine::{Machine, MachineConfig};
use synthesis_codegen::execds::{ChainNode, JumpChain};

fn make_node(m: &mut Machine, base: u32, id: u32) -> ChainNode {
    let mut a = Asm::new(format!("node{id}"));
    a.move_i(L, id, Dr(0));
    a.add(L, Imm(1), Dr(1));
    let jmp_idx = a.len();
    a.jmp(Abs(0));
    let entry = m.load_block(base, a.assemble().unwrap()).unwrap();
    let jmp_at = m.code.addr_of(base, jmp_idx).unwrap();
    ChainNode { id, entry, jmp_at }
}

fn bench_readyq(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_ready_queue");
    g.bench_function("insert_remove_patch_pair", |b| {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let mut chain = JumpChain::new();
        for i in 0..8u32 {
            let n = make_node(&mut m, 0x1000 + i * 0x100, i);
            let at = if chain.is_empty() { None } else { Some(0) };
            chain.insert_after(&mut m, at, n).unwrap();
        }
        let extra = make_node(&mut m, 0x9000, 99);
        b.iter(|| {
            chain.insert_after(&mut m, Some(3), extra).unwrap();
            chain.remove(&mut m, 99).unwrap();
        });
    });
    g.bench_function("traverse_8_threads_simulated", |b| {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let mut chain = JumpChain::new();
        for i in 0..8u32 {
            let n = make_node(&mut m, 0x1000 + i * 0x100, i);
            let at = if chain.is_empty() { None } else { Some(0) };
            chain.insert_after(&mut m, at, n).unwrap();
        }
        m.cpu.pc = chain.nodes()[0].entry;
        m.cpu.a[7] = 0x8000;
        b.iter(|| {
            // One full lap: 8 nodes × 3 instructions.
            for _ in 0..24 {
                m.step().unwrap();
            }
            std::hint::black_box(m.cpu.d[0]);
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_readyq
}
criterion_main!(benches);
