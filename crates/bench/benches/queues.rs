//! Figures 1 and 2: the optimistic queues, on real hardware.
//!
//! Wall-clock criterion benches of the lock-free building blocks against
//! a lock-based queue — the optimistic-synchronization claim measured on
//! the machine this reproduction runs on (the simulated-cycle version is
//! in the `tables` binary).

use std::collections::VecDeque;

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_spsc");
    g.bench_function("put_get_pair", |b| {
        let (mut p, mut cns) = synthesis_blocks::spsc::channel::<u64>(1024);
        b.iter(|| {
            p.put(std::hint::black_box(42)).unwrap();
            std::hint::black_box(cns.get().unwrap());
        });
    });
    g.bench_function("dedicated_put_get_pair", |b| {
        let mut q = synthesis_blocks::dedicated::DedicatedQueue::<u64>::new(1024);
        b.iter(|| {
            q.put(std::hint::black_box(42)).unwrap();
            std::hint::black_box(q.get().unwrap());
        });
    });
    g.finish();

    let mut g = c.benchmark_group("fig2_mpsc");
    g.bench_function("put_get_pair", |b| {
        let (p, mut cns) = synthesis_blocks::mpsc::channel::<u64>(1024);
        b.iter(|| {
            p.put(std::hint::black_box(42)).unwrap();
            std::hint::black_box(cns.get().unwrap());
        });
    });
    g.bench_function("multi_insert_8", |b| {
        let (p, mut cns) = synthesis_blocks::mpsc::channel::<u64>(1024);
        b.iter(|| {
            p.put_many((0..8).collect()).unwrap();
            for _ in 0..8 {
                std::hint::black_box(cns.get().unwrap());
            }
        });
    });
    g.finish();

    let mut g = c.benchmark_group("queue_vs_lock");
    g.bench_function("optimistic_mpmc_pair", |b| {
        let q = synthesis_blocks::mpmc::channel::<u64>(1024);
        b.iter(|| {
            q.put(std::hint::black_box(42)).unwrap();
            std::hint::black_box(q.get().unwrap());
        });
    });
    g.bench_function("mutex_vecdeque_pair", |b| {
        let q: Mutex<VecDeque<u64>> = Mutex::new(VecDeque::with_capacity(1024));
        b.iter(|| {
            q.lock().push_back(std::hint::black_box(42));
            std::hint::black_box(q.lock().pop_front().unwrap());
        });
    });
    g.bench_function("monitor_vecdeque_pair", |b| {
        let q = synthesis_blocks::monitor::Monitor::new(VecDeque::<u64>::with_capacity(1024));
        b.iter(|| {
            q.enter(|v| v.push_back(std::hint::black_box(42)));
            std::hint::black_box(q.enter(|v| v.pop_front().unwrap()));
        });
    });
    g.finish();

    let mut g = c.benchmark_group("buffered_queue");
    g.bench_function("factor_8_put", |b| {
        let (mut p, mut cns) = synthesis_blocks::buffered::channel::<u32, 8>(4096);
        let mut i = 0u32;
        b.iter(|| {
            if p.put(i).is_err() {
                while cns.get().is_some() {}
                p.put(i).unwrap();
            }
            i = i.wrapping_add(1);
        });
    });
    g.bench_function("unbuffered_put", |b| {
        let (mut p, mut cns) = synthesis_blocks::spsc::channel::<u32>(4096 * 8);
        let mut i = 0u32;
        b.iter(|| {
            if p.put(i).is_err() {
                while cns.get().is_some() {}
                p.put(i).unwrap();
            }
            i = i.wrapping_add(1);
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_queues
}
criterion_main!(benches);
