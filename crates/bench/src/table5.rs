//! Table 5 — interrupt handling.
//!
//! Handler costs are static path sums over the *installed* synthesized
//! handlers (Section 6.3 counting); `set alarm` is the measured kernel
//! call; procedure chaining is the two frame rewrites plus the chained
//! stub's own overhead.

use quamachine::isa::Size;
use synthesis_codegen::template::Bindings;
use synthesis_core::monitor;

use crate::static_cost;
use crate::Row;

/// Regenerate Table 5.
#[must_use]
pub fn run() -> Vec<Row> {
    let mut k = crate::boot_kernel();
    let cost = k.m.cost;
    let entry_us = static_cost::irq_entry_us(&cost);

    // The shared tty receive handler is installed at boot; find it via a
    // fresh synthesis with the same bindings (same code, known base).
    let tty_rx = k
        .creator
        .synthesize(
            &mut k.m,
            "irq_tty_rx",
            Bindings::new()
                .bind("tty_data", k.tty_srv.data_reg)
                .bind("qhead", k.tty_srv.qhead_slot)
                .bind("qbuf", k.tty_srv.qbuf)
                .bind("qmask", k.tty_srv.qmask)
                .bind("gauge", k.tty_srv.gauge_slot)
                .bind("waiters", k.tty_srv.waiters_slot),
            k.opts,
        )
        .expect("synthesizes");
    let skip = static_cost::kcall_indices(&k.m, tty_rx.base);
    let tty_us = entry_us + static_cost::block_us(&k.m, tty_rx.base, &skip);

    // The specialized A/D slot handler (one of the eight of Section 5.4).
    let ad = k
        .creator
        .synthesize(
            &mut k.m,
            "irq_ad_0",
            Bindings::new()
                .bind("ad_data", 0xFF00_0300)
                .bind("slot", 0x5000)
                .bind("vec", 0x100)
                .bind("next", 0x2000),
            k.opts,
        )
        .expect("synthesizes");
    let ad_us = entry_us + static_cost::block_us(&k.m, ad.base, &[]);

    // The simple (pointer-based) A/D handler, for comparison.
    let ad_simple = k
        .creator
        .synthesize(
            &mut k.m,
            "irq_ad_simple",
            Bindings::new()
                .bind("ad_data", 0xFF00_0300)
                .bind("ptr_slot", 0x5100)
                .bind("end_slot", 0x5104)
                .bind("gauge", 0x5108),
            k.opts,
        )
        .expect("synthesizes");
    let skip = static_cost::kcall_indices(&k.m, ad_simple.base);
    let ad_simple_us = entry_us + static_cost::block_us(&k.m, ad_simple.base, &skip);

    // Set alarm: the measured kernel call.
    let (_, set_alarm) = monitor::measure(&mut k, |k| k.set_alarm(500));

    // Alarm interrupt: entry + the alarm handler (its kcall charges the
    // kernel-side work; count the handler body plus that charge).
    let alarm = k
        .creator
        .synthesize(
            &mut k.m,
            "irq_alarm",
            Bindings::new().bind("timer_ack", 0xFF00_010C),
            k.opts,
        )
        .expect("synthesizes");
    let skip = static_cost::kcall_indices(&k.m, alarm.base);
    let alarm_us = entry_us
        + static_cost::block_us(&k.m, alarm.base, &skip)
        + cost.cycles_to_us(synthesis_core::charges::kcall_overhead(&cost));

    // Procedure chaining: two frame rewrites (park the return address,
    // redirect it), plus the chained stub's jsr/dispatch overhead.
    let chain_us = cost.cycles_to_us(2 * synthesis_core::charges::code_patch(&cost));
    k.creator
        .lib
        .add(synthesis_core::interrupt::chain::chained_stub_template());
    let stub = k
        .creator
        .synthesize(
            &mut k.m,
            "chain_stub",
            Bindings::new()
                .bind("target", 0x2000)
                .bind("resume_slot", 0x5200),
            k.opts,
        )
        .expect("synthesizes");
    let stub_us = static_cost::block_us(&k.m, stub.base, &[]);

    // Chaining a signal to a thread: the parked-delivery bookkeeping.
    let sig_us = cost.cycles_to_us(
        synthesis_core::charges::kcall_overhead(&cost)
            + 3 * synthesis_core::charges::code_patch(&cost),
    ) + cost.cycles_to_us(u64::from(
        // The fabricated frame: two memory stores.
        2 * (2 + cost.bus_cycles() as u32),
    ));

    // Keep the probe threads' memory honest.
    let _ = k.m.mem.peek(0x5000, Size::L);

    vec![
        Row::new("service raw tty interrupt", Some(16.0), tty_us, "us"),
        Row::new(
            "service raw A/D interrupt (specialized)",
            Some(3.0),
            ad_us,
            "us",
        ),
        Row::new(
            "service raw A/D interrupt (simple)",
            None,
            ad_simple_us,
            "us",
        ),
        Row::new("set alarm", Some(9.0), set_alarm.us, "us"),
        Row::new("alarm interrupt", Some(7.0), alarm_us, "us"),
        Row::new(
            "chain to a procedure (no retry)",
            Some(4.0),
            chain_us + stub_us,
            "us",
        ),
        Row::new("chain (signal) a thread", Some(9.0), sig_us, "us"),
    ]
}
