//! Capacity soak: 10k+ threads and channels, O(1) dispatch by trace,
//! SpecCache eviction under pressure.
//!
//! Where Tables 1–5 time single calls and the SMP driver scales CPUs,
//! this driver scales *population*: boot a kernel whose quaspace
//! partition ([`MemLayout::for_threads`]) holds tens of thousands of
//! TTEs, drive mixed open/close + signal traffic through it, and read
//! three claims off the meters:
//!
//! 1. **O(1) dispatch.** The ready queue is the executable `jmp` chain
//!    (Figure 3), so the quantum-interrupt→next-dispatch path must cost
//!    the same cycles at 10,000 ready threads as at 100. The PR-5 trace
//!    layer timestamps both edges (`Irq` at the quantum level, then
//!    `CtxSwitch` from the next thread's `sw_in`), so the claim is a
//!    measured distribution, not a hope.
//! 2. **Eviction under pressure.** With a warm-entry byte budget, the
//!    specialization cache retains released code and re-links it on the
//!    next identical open; the hit-rate-vs-resident-bytes curve shows
//!    what each budget buys.
//! 3. **No churn leaks.** 10k× thread synthesize/destroy cycles return
//!    the fast-fit heap and the code buffer to their starting bytes.

use quamachine::asm::Asm;
use quamachine::isa::{Cond, Operand::*, Size::*};
use quamachine::mem::AddressMap;
use synthesis_core::kernel::{irq_levels, Kernel, KernelConfig};
use synthesis_core::layout::MemLayout;
use synthesis_core::syscall::{general, traps};
use synthesis_core::thread::tte::off;
use synthesis_core::thread::Tid;
use synthesis_core::trace::{Kind, TraceQuery};

/// Concurrent threads at full scale (the BENCH_8 acceptance floor).
pub const FULL_THREADS: usize = 10_000;
/// Open/close churn cycles per eviction-curve point at full scale.
pub const FULL_CHURN_PER_POINT: usize = 3_000;
/// Thread synthesize/destroy cycles at full scale.
pub const FULL_LIFECYCLE: usize = 10_000;
/// The dispatch baseline population.
pub const BASELINE_THREADS: usize = 100;
/// Eviction budgets swept by the hit-rate curve (bytes of warm code).
pub const BUDGETS: [u32; 5] = [0, 2_048, 8_192, 32_768, 131_072];
/// Virtual cycles the run phase covers per scale point.
pub const RUN_CYCLES: u64 = 2_000_000;

/// Full-scale counts in release builds; ~20× smaller under
/// `debug_assertions` so `cargo test` stays quick. The `tables` binary
/// is built in release, so BENCH_8 always reports full scale.
#[must_use]
pub fn default_threads() -> usize {
    if cfg!(debug_assertions) {
        500
    } else {
        FULL_THREADS
    }
}

/// Churn cycles per curve point, debug-scaled like
/// [`default_threads`].
#[must_use]
pub fn default_churn_per_point() -> usize {
    if cfg!(debug_assertions) {
        300
    } else {
        FULL_CHURN_PER_POINT
    }
}

/// Thread lifecycle cycles, debug-scaled like [`default_threads`].
#[must_use]
pub fn default_lifecycle() -> usize {
    if cfg!(debug_assertions) {
        500
    } else {
        FULL_LIFECYCLE
    }
}

/// Boot a kernel scaled to hold `threads` threads, with `cpus` CPUs and
/// a specialization-cache warm budget of `cache_budget` bytes. Trace
/// rings are kept small (64 records/thread) so 10k rings stay cheap.
#[must_use]
pub fn boot_capacity(threads: usize, cpus: usize, cache_budget: u32) -> Kernel {
    let layout = MemLayout::for_threads(u32::try_from(threads).unwrap_or(u32::MAX) + 64);
    Kernel::boot(KernelConfig {
        cpus,
        layout,
        cache_budget,
        trace_records: 64,
        ..KernelConfig::default()
    })
    .expect("capacity kernel boots")
}

/// The single-region user address map for a capacity kernel.
#[must_use]
pub fn user_map(k: &Kernel) -> AddressMap {
    AddressMap::single(1, k.layout.user_base, k.layout.user_len)
}

/// Load the shared spinner program: install the signal handler whose
/// entry is parked at `handler_slot`, then spin bumping `spin_ctr`.
/// Every thread runs this same code — entry, map, and quantum are
/// identical, so dispatch cost has no per-thread excuse to vary.
pub fn load_spinner(k: &mut Kernel, handler_slot: u32, spin_ctr: u32, sig_ctr: u32) -> u32 {
    let mut hb = Asm::new("cap_sighandler");
    hb.add(L, Imm(1), Abs(sig_ctr));
    hb.move_i(L, general::SIG_RETURN, Dr(0));
    hb.trap(traps::GENERAL);
    let dead = hb.here();
    hb.bcc(Cond::T, dead);
    let handler = k
        .load_user_program(hb.assemble().expect("assembles"))
        .expect("handler fits");
    k.m.mem.poke(handler_slot, L, handler);

    let mut a = Asm::new("cap_spinner");
    a.move_i(L, general::SET_SIG_HANDLER, Dr(0));
    a.move_(L, Abs(handler_slot), Dr(1));
    a.trap(traps::GENERAL);
    let top = a.here();
    a.add(L, Imm(1), Abs(spin_ctr));
    a.bcc(Cond::T, top);
    k.load_user_program(a.assemble().expect("assembles"))
        .expect("spinner fits")
}

/// Latency percentiles in virtual µs.
#[derive(Debug, Clone, Copy)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst observed.
    pub max: f64,
}

/// Percentiles of an unsorted sample set.
#[must_use]
pub fn percentiles(mut samples: Vec<f64>) -> Percentiles {
    if samples.is_empty() {
        return Percentiles {
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            max: 0.0,
        };
    }
    samples.sort_by(f64::total_cmp);
    let at = |p: f64| {
        let i = ((samples.len() - 1) as f64 * p).round() as usize;
        samples[i.min(samples.len() - 1)]
    };
    Percentiles {
        p50: at(0.50),
        p90: at(0.90),
        p99: at(0.99),
        max: *samples.last().expect("non-empty"),
    }
}

/// The quantum-interrupt→dispatch cycle distribution at one population.
#[derive(Debug, Clone)]
pub struct DispatchPoint {
    /// CPUs in the kernel.
    pub cpus: usize,
    /// Ready threads when measured.
    pub threads: usize,
    /// Measured `Irq(quantum)`→`CtxSwitch` deltas (virtual cycles).
    pub samples: usize,
    /// Median delta.
    pub median_cycles: u64,
    /// Worst delta.
    pub max_cycles: u64,
}

/// `Irq(quantum)`→next guest `CtxSwitch` cycle deltas from a drained
/// trace. Guest dispatches only (`CtxSwitch` with `a == 0`): host-side
/// `enter` calls are kernel surgery, not the executable chain.
#[must_use]
pub fn dispatch_deltas(q: &TraceQuery) -> Vec<u64> {
    let mut recs: Vec<_> = q.records().to_vec();
    recs.sort_by_key(|r| r.cycle);
    let mut pending: Option<u64> = None;
    let mut out = Vec::new();
    for r in &recs {
        match r.kind {
            Kind::Irq if r.a == u32::from(irq_levels::QUANTUM) => pending = Some(r.cycle),
            Kind::CtxSwitch if r.a == 0 => {
                if let Some(c0) = pending.take() {
                    out.push(r.cycle.saturating_sub(c0));
                }
            }
            _ => {}
        }
    }
    out
}

/// Median of a sample set (0 when empty).
#[must_use]
pub fn median(mut v: Vec<u64>) -> u64 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[v.len() / 2]
}

/// One population's worth of scale figures.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// CPUs in the kernel.
    pub cpus: usize,
    /// Threads created and started.
    pub threads: usize,
    /// Channels (fds) left open across the run — one per thread.
    pub channels_open: usize,
    /// create+start latency percentiles (virtual µs).
    pub spawn: Percentiles,
    /// Spinner loop iterations summed over all threads.
    pub spin_ops: u64,
    /// Virtual milliseconds the run phase covered.
    pub elapsed_ms: f64,
    /// `spin_ops / elapsed_ms`.
    pub ops_per_ms: f64,
    /// Signals sent from the host between slices.
    pub signals_sent: u64,
    /// Signal-handler executions observed in guest memory.
    pub signals_delivered: u64,
    /// Dispatch distribution measured *at this population*.
    pub dispatch: DispatchPoint,
    /// Fast-fit bytes in use after spawn (TTEs, stacks, vector tables).
    pub heap_in_use: u32,
    /// Code-buffer bytes in use after spawn.
    pub code_in_use: u32,
}

/// Boot at `threads` scale, spawn the population, open a channel per
/// thread, run with signal traffic, and measure dispatch by trace.
#[must_use]
pub fn scale_point(threads: usize, cpus: usize) -> ScalePoint {
    let mut k = boot_capacity(threads, cpus, 0);
    let ub = k.layout.user_base;
    let (handler_slot, spin_ctr, sig_ctr) = (ub + 0x100, ub + 0x108, ub + 0x110);
    let ustack = ub + 0x1_0000;
    let entry = load_spinner(&mut k, handler_slot, spin_ctr, sig_ctr);
    let map = user_map(&k);

    // Spawn phase: one create+start per thread, timed in virtual µs.
    // Homes round-robin over the CPUs so every chain carries its share.
    // The signal handler is installed host-side at spawn (the spinner's
    // own SET_SIG_HANDLER trap would only run once the thread is first
    // dispatched — at 10k threads most never are within the window).
    let handler = k.m.mem.peek(handler_slot, L);
    let mut tids = Vec::with_capacity(threads);
    let mut lat = Vec::with_capacity(threads);
    for i in 0..threads {
        let c0 = k.m.meter.cycles;
        let tid = k.create_thread(entry, ustack, map.clone()).expect("fits");
        k.threads.get_mut(&tid).expect("exists").cpu = i % cpus;
        k.start(tid).expect("starts");
        lat.push(k.m.cost.cycles_to_us(k.m.meter.cycles.saturating_sub(c0)));
        let tte = k.threads[&tid].tte;
        k.m.mem.poke(tte + off::SIG_HANDLER, L, handler);
        tids.push(tid);
    }

    // One open channel per thread, held across the run.
    let mut channels = 0usize;
    for &tid in &tids {
        if k.open_for(tid, "/dev/null").is_ok() {
            channels += 1;
        }
    }

    let heap_in_use = k.heap.in_use;
    let code_in_use = k.creator.codebuf.in_use;

    // Run phase with signal traffic: between slices, signal the threads
    // about to be dispatched (the chain nodes after the current one), so
    // delivery lands within a few quanta even at 10k threads.
    let start = (0..cpus).map(|i| k.m.cpu_cycles(i)).max().unwrap_or(0);
    let slices = 8u64;
    let mut signals_sent = 0u64;
    for _ in 0..slices {
        k.run(RUN_CYCLES / slices);
        let mut cursor = k.current_tid();
        for _ in 0..16 {
            let Some(cur) = cursor else { break };
            let Some(next) = k.cpus[0].ready.next_of_id(cur) else {
                break;
            };
            let installed = k
                .threads
                .get(&next.id)
                .is_some_and(|t| k.m.mem.peek(t.tte + off::SIG_HANDLER, L) != 0);
            if installed && k.signal(next.id, 1).is_ok() {
                signals_sent += 1;
            }
            cursor = Some(next.id);
        }
    }
    let end = (0..cpus).map(|i| k.m.cpu_cycles(i)).max().unwrap_or(0);
    let elapsed_ms = k.m.cost.cycles_to_us(end.saturating_sub(start)) / 1_000.0;

    let spin_ops = u64::from(k.m.mem.peek(spin_ctr, L));
    let signals_delivered = u64::from(k.m.mem.peek(sig_ctr, L));
    let deltas = dispatch_deltas(&TraceQuery::drain(&mut k));
    let dispatch = DispatchPoint {
        cpus,
        threads,
        samples: deltas.len(),
        median_cycles: median(deltas.clone()),
        max_cycles: deltas.iter().copied().max().unwrap_or(0),
    };
    ScalePoint {
        cpus,
        threads,
        channels_open: channels,
        spawn: percentiles(lat),
        spin_ops,
        elapsed_ms,
        ops_per_ms: if elapsed_ms > 0.0 {
            spin_ops as f64 / elapsed_ms
        } else {
            0.0
        },
        signals_sent,
        signals_delivered,
        dispatch,
        heap_in_use,
        code_in_use,
    }
}

/// The 100-thread dispatch baseline the O(1) assertion compares against.
#[must_use]
pub fn dispatch_baseline(cpus: usize) -> DispatchPoint {
    scale_point(BASELINE_THREADS, cpus).dispatch
}

/// One point of the hit-rate-vs-resident-bytes curve.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Warm-entry byte budget.
    pub budget: u32,
    /// Open/close cycles driven.
    pub cycles: usize,
    /// Cache hits during the churn.
    pub hits: u64,
    /// Cache misses during the churn.
    pub misses: u64,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
    /// Cache-resident code bytes at the end (live + warm).
    pub resident_bytes: u64,
    /// Warm (refcount-zero, retained) bytes at the end.
    pub warm_bytes: u64,
}

/// Drive `cycles` open/close cycles under `budget` and report the hit
/// accounting. The working set is `tids × paths` distinct channel keys
/// (per-thread gauge slots specialize the code per thread), several
/// times larger than the small budgets: the eviction policy has to
/// choose.
#[must_use]
pub fn churn_point(cycles: usize, budget: u32) -> CurvePoint {
    let mut k = boot_capacity(64, 1, budget);
    let ub = k.layout.user_base;
    let entry = load_spinner(&mut k, ub + 0x100, ub + 0x108, ub + 0x110);
    let map = user_map(&k);
    let ustack = ub + 0x1_0000;
    let tids: Vec<Tid> = (0..24)
        .map(|_| k.create_thread(entry, ustack, map.clone()).expect("fits"))
        .collect();
    for f in 0..6 {
        k.fs.create(&mut k.m, &mut k.heap, &format!("/tmp/cap{f}"), 4096)
            .expect("file fits");
    }
    let paths: Vec<String> = ["/dev/null".to_string(), "/dev/tty".to_string()]
        .into_iter()
        .chain((0..6).map(|f| format!("/tmp/cap{f}")))
        .collect();

    let (h0, m0) = (k.creator.stats.cache_hits, k.creator.stats.cache_misses);
    // Skewed traffic: 3 of 4 opens hit a hot set of 8 (tid, path) keys,
    // the rest sweep the full tids × paths cross product cyclically
    // (decoupled indices so the sweep is not gcd-locked). Small budgets
    // can capture the hot set; only large ones hold the cold tail.
    let mut cold = 0usize;
    for i in 0..cycles {
        let (tid, path) = if i % 4 != 0 {
            (tids[i % 8], &paths[i % 2])
        } else {
            cold += 1;
            (
                tids[cold % tids.len()],
                &paths[(cold / tids.len()) % paths.len()],
            )
        };
        if let Ok(fd) = k.open_for(tid, path) {
            let _ = k.close_for(tid, fd);
        }
    }
    let hits = k.creator.stats.cache_hits - h0;
    let misses = k.creator.stats.cache_misses - m0;
    CurvePoint {
        budget,
        cycles,
        hits,
        misses,
        hit_rate: if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        },
        resident_bytes: k.creator.cache.resident_bytes(),
        warm_bytes: k.creator.cache.warm_bytes(),
    }
}

/// The full eviction curve across [`BUDGETS`].
#[must_use]
pub fn churn_curve(cycles_per_point: usize) -> Vec<CurvePoint> {
    BUDGETS
        .iter()
        .map(|&b| churn_point(cycles_per_point, b))
        .collect()
}

/// Byte accounting across thread synthesize/destroy churn.
#[derive(Debug, Clone)]
pub struct LifecycleStats {
    /// create/destroy cycles driven.
    pub cycles: usize,
    /// Fast-fit bytes in use before the churn.
    pub heap_before: u32,
    /// Fast-fit bytes in use after the churn (must equal `heap_before`).
    pub heap_after: u32,
    /// Code-buffer bytes in use before the churn.
    pub code_before: u32,
    /// Code-buffer bytes in use after (must equal `code_before`).
    pub code_after: u32,
    /// Fast-fit high-water mark after the churn.
    pub heap_high_water: u32,
    /// Free-list fragments at the end.
    pub heap_fragments: usize,
    /// Largest free block at the end.
    pub heap_largest_free: u32,
}

/// 10k× synthesize/destroy a thread (4 quajects + 3 heap blocks per
/// cycle) and account every byte back.
#[must_use]
pub fn lifecycle_churn(cycles: usize) -> LifecycleStats {
    let mut k = boot_capacity(64, 1, 0);
    let ub = k.layout.user_base;
    let entry = load_spinner(&mut k, ub + 0x100, ub + 0x108, ub + 0x110);
    let map = user_map(&k);
    let ustack = ub + 0x1_0000;
    // One throwaway cycle so lazily-allocated kernel state settles.
    let tid = k.create_thread(entry, ustack, map.clone()).expect("fits");
    k.destroy(tid).expect("destroys");
    let (heap_before, code_before) = (k.heap.in_use, k.creator.codebuf.in_use);
    for _ in 0..cycles {
        let tid = k.create_thread(entry, ustack, map.clone()).expect("fits");
        k.destroy(tid).expect("destroys");
    }
    LifecycleStats {
        cycles,
        heap_before,
        heap_after: k.heap.in_use,
        code_before,
        code_after: k.creator.codebuf.in_use,
        heap_high_water: k.heap.high_water,
        heap_fragments: k.heap.fragments(),
        heap_largest_free: k.heap.largest_free(),
    }
}

/// The whole BENCH_8 report.
#[derive(Debug, Clone)]
pub struct CapacityReport {
    /// Scale points: the full population on 1 CPU and on 4 CPUs.
    pub scale: Vec<ScalePoint>,
    /// Dispatch baselines at [`BASELINE_THREADS`] for the same CPUs.
    pub baselines: Vec<DispatchPoint>,
    /// The eviction curve.
    pub curve: Vec<CurvePoint>,
    /// Thread lifecycle byte accounting.
    pub lifecycle: LifecycleStats,
    /// Total open/close cycles across the curve.
    pub open_close_cycles: usize,
}

/// Run the full capacity soak at `threads` scale.
#[must_use]
pub fn run_capacity(threads: usize, churn_per_point: usize, lifecycle: usize) -> CapacityReport {
    let scale: Vec<ScalePoint> = [1usize, 4]
        .iter()
        .map(|&c| scale_point(threads, c))
        .collect();
    let baselines: Vec<DispatchPoint> = [1usize, 4].iter().map(|&c| dispatch_baseline(c)).collect();
    let curve = churn_curve(churn_per_point);
    let open_close_cycles = curve.iter().map(|p| p.cycles).sum();
    CapacityReport {
        scale,
        baselines,
        curve,
        lifecycle: lifecycle_churn(lifecycle),
        open_close_cycles,
    }
}

/// Render the report as text.
#[must_use]
pub fn render(r: &CapacityReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "\n=== Capacity soak (BENCH_8) ===");
    let _ = writeln!(
        out,
        "{:<6} {:>8} {:>9} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "cpus",
        "threads",
        "channels",
        "spawn p50",
        "spawn p99",
        "ops/ms",
        "disp med",
        "sig sent",
        "sig rcvd"
    );
    for p in &r.scale {
        let _ = writeln!(
            out,
            "{:<6} {:>8} {:>9} {:>9.1}µ {:>9.1}µ {:>10.1} {:>9}cy {:>8} {:>8}",
            p.cpus,
            p.threads,
            p.channels_open,
            p.spawn.p50,
            p.spawn.p99,
            p.ops_per_ms,
            p.dispatch.median_cycles,
            p.signals_sent,
            p.signals_delivered
        );
    }
    let _ = writeln!(out, "\nO(1) dispatch: median cycles at baseline vs full");
    for (b, p) in r.baselines.iter().zip(&r.scale) {
        let _ = writeln!(
            out,
            "  {} cpu(s): {} threads -> {} cy ({} samples); {} threads -> {} cy ({} samples)",
            b.cpus,
            b.threads,
            b.median_cycles,
            b.samples,
            p.threads,
            p.dispatch.median_cycles,
            p.dispatch.samples
        );
    }
    let _ = writeln!(
        out,
        "\nSpecCache eviction: hit rate vs resident bytes ({} open/close cycles)",
        r.open_close_cycles
    );
    let _ = writeln!(
        out,
        "  {:>10} {:>8} {:>8} {:>9} {:>10} {:>10}",
        "budget", "hits", "misses", "hit rate", "resident", "warm"
    );
    for c in &r.curve {
        let _ = writeln!(
            out,
            "  {:>10} {:>8} {:>8} {:>8.1}% {:>10} {:>10}",
            c.budget,
            c.hits,
            c.misses,
            100.0 * c.hit_rate,
            c.resident_bytes,
            c.warm_bytes
        );
    }
    let l = &r.lifecycle;
    let _ = writeln!(
        out,
        "\nLifecycle churn: {} cycles, heap {} -> {} bytes, code {} -> {} bytes, \
         high water {}, {} fragments, largest free {}",
        l.cycles,
        l.heap_before,
        l.heap_after,
        l.code_before,
        l.code_after,
        l.heap_high_water,
        l.heap_fragments,
        l.heap_largest_free
    );
    out
}
