//! Table 4 — the dispatcher: context-switch costs.
//!
//! The full switch is the static cost of the synthesized switch path plus
//! timer-interrupt acceptance — exactly the instruction counting of
//! Section 6.3 — computed on the *installed* code of a live thread. The
//! FP number comes from a thread that took the lazy-FP resynthesis.
//! Block/unblock are the ready-queue unlink/insert operations (the paper's
//! spread-waiting-queue discipline) measured through the monitor.

use quamachine::mem::AddressMap;
use synthesis_core::layout;
use synthesis_core::monitor;

use crate::static_cost;
use crate::Row;

/// Static µs of a thread's installed switch path (skipping the
/// `sw_in_mmu` prologue), plus interrupt entry.
fn switch_us(k: &synthesis_core::Kernel, tid: u32) -> f64 {
    let t = &k.threads[&tid];
    let block = k.m.code.block(t.sw.base).expect("switch installed");
    let mmu_lo = t.sw.entries["sw_in_mmu"];
    let mmu_hi = t.sw.entries["sw_in"];
    // Convert entry addresses back to instruction indices.
    let idx_of = |addr: u32| {
        block
            .offsets
            .iter()
            .position(|&o| t.sw.base + o == addr)
            .expect("entry aligns")
    };
    let skip: Vec<usize> = (idx_of(mmu_lo)..idx_of(mmu_hi)).collect();
    static_cost::block_us(&k.m, t.sw.base, &skip) + static_cost::irq_entry_us(&k.m.cost)
}

/// Regenerate Table 4.
#[must_use]
pub fn run() -> Vec<Row> {
    let mut k = crate::boot_kernel();
    let map = AddressMap::single(1, layout::USER_BASE, layout::USER_LEN);

    // A plain thread and an FP thread (runs one FP instruction so the
    // kernel resynthesizes its switch).
    let mut a = quamachine::asm::Asm::new("plain");
    let top = a.here();
    a.bcc(quamachine::isa::Cond::T, top);
    let entry = k.load_user_program(a.assemble().unwrap()).unwrap();
    let plain = k
        .create_thread(entry, layout::USER_BASE + 0x1000, map.clone())
        .unwrap();

    let mut f = quamachine::asm::Asm::new("fpuser");
    f.fmove_load(quamachine::isa::Operand::Abs(layout::USER_BASE + 0x2000), 0);
    let ftop = f.here();
    f.bcc(quamachine::isa::Cond::T, ftop);
    let fentry = k.load_user_program(f.assemble().unwrap()).unwrap();
    let fp = k
        .create_thread(fentry, layout::USER_BASE + 0x1800, map)
        .unwrap();
    k.start(fp).unwrap();
    k.run(2_000_000); // long enough to fault into the FP resynthesis
    assert!(k.threads[&fp].uses_fp, "FP thread resynthesized");

    let full = switch_us(&k, plain);
    let full_fp = switch_us(&k, fp);
    // The "partial" switch: the paper switches "only the part of the
    // context being used"; the partial figure is the switch body without
    // the register-file moves (entry, stack, vbr, quantum, rte) — the
    // part every switch pays even when no registers need moving.
    let t = &k.threads[&plain];
    let block = k.m.code.block(t.sw.base).expect("installed");
    let movem_idx: Vec<usize> = block
        .instrs
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i, quamachine::isa::Instr::Movem { .. }))
        .map(|(i, _)| i)
        .collect();
    let mmu_lo = t.sw.entries["sw_in_mmu"];
    let mmu_hi = t.sw.entries["sw_in"];
    let idx_of = |addr: u32| {
        block
            .offsets
            .iter()
            .position(|&o| t.sw.base + o == addr)
            .expect("aligned")
    };
    let mut skip: Vec<usize> = (idx_of(mmu_lo)..idx_of(mmu_hi)).collect();
    skip.extend(movem_idx);
    let partial = static_cost::block_us(&k.m, t.sw.base, &skip);

    // Block/unblock: the ready-queue unlink and front-insert.
    k.stop(fp).unwrap();
    let (_, unblock) = monitor::measure(&mut k, |k| k.start(plain).unwrap());
    let (_, block_m) = monitor::measure(&mut k, |k| k.stop(plain).unwrap());

    vec![
        Row::new("full context switch (no FP)", Some(11.0), full, "us"),
        Row::new(
            "full context switch (FP registers)",
            Some(21.0),
            full_fp,
            "us",
        ),
        Row::new("partial context switch", Some(3.0), partial, "us"),
        Row::new(
            "block thread (unlink from ready queue)",
            Some(4.0),
            block_m.us,
            "us",
        ),
        Row::new(
            "unblock thread (insert at front)",
            Some(4.0),
            unblock.us,
            "us",
        ),
    ]
}
