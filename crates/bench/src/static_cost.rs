//! Static path-cost computation: the paper's Section 6.3 methodology.
//!
//! "Using this trace, we can calculate the exact kernel call times by
//! counting the memory references and each instruction execution time."
//! For straight-line handlers we can do the counting directly on the
//! installed code.

use quamachine::cost::{instr_cost, CostModel, EXCEPTION_BASE, EXCEPTION_REFS, IACK_BASE};
use quamachine::isa::Instr;
use quamachine::machine::Machine;

/// Sum the static cost of an installed block's instructions, skipping
/// any in `skip` (instruction indices), in µs.
#[must_use]
pub fn block_us(m: &Machine, base: u32, skip: &[usize]) -> f64 {
    let cost = m.cost;
    let block = m.code.block(base).expect("block installed");
    let mut cycles = 0u64;
    for (i, ins) in block.instrs.iter().enumerate() {
        if skip.contains(&i) {
            continue;
        }
        let (b, r) = instr_cost(ins);
        cycles += b + r * cost.bus_cycles();
    }
    cost.cycles_to_us(cycles)
}

/// The cost of interrupt acceptance (acknowledge + exception processing),
/// in µs.
#[must_use]
pub fn irq_entry_us(cost: &CostModel) -> f64 {
    cost.cycles_to_us(IACK_BASE + EXCEPTION_BASE + EXCEPTION_REFS * cost.bus_cycles())
}

/// The cost of trap entry (exception processing without the acknowledge),
/// in µs.
#[must_use]
pub fn trap_entry_us(cost: &CostModel) -> f64 {
    cost.cycles_to_us(EXCEPTION_BASE + EXCEPTION_REFS * cost.bus_cycles())
}

/// Indices of `kcall`-related instructions in a block (the wake-check
/// branches that do not execute on the fast path).
#[must_use]
pub fn kcall_indices(m: &Machine, base: u32) -> Vec<usize> {
    let block = m.code.block(base).expect("block installed");
    block
        .instrs
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i, Instr::KCall(_)))
        .map(|(i, _)| i)
        .collect()
}
