//! # synthesis-bench — the measurement harness
//!
//! Drivers that regenerate every table and figure of the paper's
//! evaluation (Section 6). The `tables` binary prints them side by side
//! with the paper's numbers; the Criterion benches under `benches/` track
//! the same quantities (plus real-hardware wall-clock for the lock-free
//! building blocks).
//!
//! Methodology notes live in EXPERIMENTS.md. Simulated times are virtual
//! microseconds in SUN 3/160 emulation mode (16 MHz + 1 wait state),
//! produced by the same instruction-and-memory-reference counting the
//! paper used (Section 6.3).

#![warn(missing_docs)]

pub mod capacity;
pub mod profile;
pub mod smp;
pub mod static_cost;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

use synthesis_core::kernel::{Kernel, KernelConfig};

/// A measurement-friendly kernel configuration: a long CPU quantum so
/// single-call timings are not polluted by preemption (the paper timed
/// single calls on a trace, with no switches inside), kernel⇄caller
/// fusion on (the Table 1 binaries are single processes sharing the
/// flat space — the paper's measured configuration), and a warm
/// specialization cache so reopened channels relink instead of
/// resynthesizing.
#[must_use]
pub fn measurement_config() -> KernelConfig {
    KernelConfig {
        default_quantum_us: 50_000,
        fuse: true,
        cache_budget: 128 * 1024,
        ..KernelConfig::default()
    }
}

/// Boot a kernel with the measurement configuration.
#[must_use]
pub fn boot_kernel() -> Kernel {
    Kernel::boot(measurement_config()).expect("kernel boots")
}

/// One row of a paper-vs-measured report.
#[derive(Debug, Clone)]
pub struct Row {
    /// What the row measures.
    pub what: String,
    /// The paper's value (µs unless the table says otherwise).
    pub paper: Option<f64>,
    /// Our measured value.
    pub measured: f64,
    /// Unit label.
    pub unit: &'static str,
}

impl Row {
    /// Build a row.
    #[must_use]
    pub fn new(
        what: impl Into<String>,
        paper: Option<f64>,
        measured: f64,
        unit: &'static str,
    ) -> Row {
        Row {
            what: what.into(),
            paper,
            measured,
            unit,
        }
    }
}

/// Render rows as an aligned text table.
#[must_use]
pub fn render(title: &str, rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!("\n=== {title} ===\n"));
    out.push_str(&format!(
        "{:<44} {:>10} {:>12} {:>8}\n",
        "operation", "paper", "measured", "ratio"
    ));
    for r in rows {
        let paper = r.paper.map_or("-".to_string(), |p| format!("{p:.1}"));
        let ratio = r
            .paper
            .map_or("-".to_string(), |p| format!("{:.2}", r.measured / p));
        out.push_str(&format!(
            "{:<44} {:>10} {:>9.1} {} {:>6}\n",
            r.what, paper, r.measured, r.unit, ratio
        ));
    }
    out
}
