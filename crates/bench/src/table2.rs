//! Table 2 — file and device I/O, native Synthesis vs UNIX emulation.
//!
//! Single-call costs come from loop measurements: a program performs the
//! operation `N` times; an otherwise identical empty loop is subtracted;
//! the difference divides by `N`. Everything runs on the simulated
//! machine under the cycle model — the paper's own counting methodology.

use quamachine::asm::Asm;
use quamachine::isa::{Cond, Operand::*, Size::*};
use quamachine::mem::AddressMap;
use synthesis_core::kernel::Kernel;
use synthesis_core::layout;
use synthesis_core::syscall::{general, traps};
use synthesis_unix::abi;

use crate::Row;

const USTACK: u32 = layout::USER_BASE + 0x1_0000;
const UBUF: u32 = layout::USER_BASE + 0x2_0000;
const UPATH: u32 = layout::USER_BASE + 0x2_8000;

fn user_map() -> AddressMap {
    AddressMap::single(1, layout::USER_BASE, layout::USER_LEN)
}

/// Measure a loop body's per-iteration cost in µs on a fresh kernel.
///
/// `prep` runs host-side before the thread starts (create files, open
/// fds...). `body` emits the measured operation. The fd the prep opened
/// (if any) is 0.
pub fn measure_native(
    iters: u32,
    prep: impl Fn(&mut Kernel, u32),
    body: impl Fn(&mut Asm),
    unix_personality: bool,
) -> f64 {
    let run_once = |with_body: bool| -> f64 {
        let mut k = crate::boot_kernel();
        let mut a = Asm::new("bench");
        a.move_i(L, iters, Dr(7));
        let top = a.here();
        if with_body {
            body(&mut a);
        }
        a.sub(L, Imm(1), Dr(7));
        a.bcc(Cond::Ne, top);
        a.move_i(L, general::EXIT, Dr(0));
        a.trap(traps::GENERAL);
        let dead = a.here();
        a.bcc(Cond::T, dead);

        k.m.mem.poke_bytes(UPATH, b"/dev/null\0");
        k.m.mem.poke_bytes(UPATH + 0x10, b"/dev/tty\0");
        let entry = k
            .load_user_program(a.assemble().expect("assembles"))
            .unwrap();
        let tid = k.create_thread(entry, USTACK, user_map()).unwrap();
        prep(&mut k, tid);
        if unix_personality {
            let mut emu = synthesis_unix::emu::UnixEmulator::new(k);
            emu.install(tid).unwrap();
            emu.k.start(tid).unwrap();
            let t0 = emu.k.m.now_us();
            assert!(emu.run_until_exit(tid, 60_000_000_000));
            emu.k.m.now_us() - t0
        } else {
            k.start(tid).unwrap();
            let t0 = k.m.now_us();
            assert!(k.run_until_exit(tid, 60_000_000_000));
            k.m.now_us() - t0
        }
    };
    let with = run_once(true);
    let without = run_once(false);
    (with - without) / f64::from(iters)
}

fn open_file_prep(name: &'static str, contents: u32) -> impl Fn(&mut Kernel, u32) {
    move |k: &mut Kernel, tid: u32| {
        if !name.starts_with("/dev/") {
            let fid =
                k.fs.create(&mut k.m, &mut k.heap, name, 65536)
                    .expect("file fits");
            k.fs.write_contents(&mut k.m, fid, &vec![0x33u8; contents as usize]);
        }
        let fd = k.open_for(tid, name).expect("opens");
        assert_eq!(fd, 0);
    }
}

/// Emit a native read: `read(fd=0, UBUF, n)`.
fn native_read(n: u32) -> impl Fn(&mut Asm) {
    move |a: &mut Asm| {
        a.move_i(L, 0, Dr(0));
        a.lea(Abs(UBUF), 0);
        a.move_i(L, n, Dr(1));
        a.trap(traps::READ);
    }
}

/// Emit a UNIX-ABI read.
fn unix_read(n: u32) -> impl Fn(&mut Asm) {
    move |a: &mut Asm| {
        a.move_i(L, abi::SYS_READ, Dr(0));
        a.move_i(L, 0, Dr(1));
        a.lea(Abs(UBUF), 0);
        a.move_i(L, n, Dr(2));
        a.trap(abi::UNIX_TRAP);
    }
}

/// Measure an open+close pair through the native general call.
fn native_open_close(path_off: u32) -> impl Fn(&mut Asm) {
    move |a: &mut Asm| {
        a.move_i(L, general::OPEN, Dr(0));
        a.lea(Abs(UPATH + path_off), 0);
        a.trap(traps::GENERAL);
        a.move_(L, Dr(0), Dr(1));
        a.move_i(L, general::CLOSE, Dr(0));
        a.trap(traps::GENERAL);
    }
}

fn unix_open_close(path_off: u32) -> impl Fn(&mut Asm) {
    move |a: &mut Asm| {
        a.move_i(L, abi::SYS_OPEN, Dr(0));
        a.lea(Abs(UPATH + path_off), 0);
        a.move_i(L, 0, Dr(1));
        a.trap(abi::UNIX_TRAP);
        a.move_(L, Dr(0), Dr(1));
        a.move_i(L, abi::SYS_CLOSE, Dr(0));
        a.trap(abi::UNIX_TRAP);
    }
}

/// The specialization-cache measurement behind the cold/warm open rows
/// and the `--json` report.
#[derive(Debug, Clone, Copy)]
pub struct CacheBench {
    /// First `open()` of a path: full synthesis (µs).
    pub cold_us: f64,
    /// Second `open()` of the same path: cache hit, link cost only (µs).
    pub warm_us: f64,
    /// Specialization-cache hits over the measurement.
    pub hits: u64,
    /// Specialization-cache misses over the measurement.
    pub misses: u64,
    /// Hit rate over the measurement.
    pub hit_rate: f64,
    /// Bytes of synthesized code shared instead of duplicated.
    pub shared_bytes: u64,
}

/// Measure a cold open (synthesizes both channel ends) against a warm
/// open of the same path (both ends come from the specialization cache),
/// host-side with the kernel monitor's interval meter.
#[must_use]
pub fn open_cold_warm() -> CacheBench {
    let mut k = crate::boot_kernel();
    let mut a = Asm::new("parked");
    a.move_i(L, general::EXIT, Dr(0));
    a.trap(traps::GENERAL);
    let entry = k
        .load_user_program(a.assemble().expect("assembles"))
        .unwrap();
    let tid = k.create_thread(entry, USTACK, user_map()).unwrap();
    k.fs.create(&mut k.m, &mut k.heap, "/tmp/bench", 65536)
        .expect("file fits");

    let (_, cold) = synthesis_core::monitor::measure(&mut k, |k| {
        k.open_for(tid, "/tmp/bench").expect("cold open")
    });
    let (_, warm) = synthesis_core::monitor::measure(&mut k, |k| {
        k.open_for(tid, "/tmp/bench").expect("warm open")
    });
    let stats = &k.creator.stats;
    CacheBench {
        cold_us: cold.us,
        warm_us: warm.us,
        hits: stats.cache_hits,
        misses: stats.cache_misses,
        hit_rate: stats.hit_rate(),
        shared_bytes: k.creator.cache.shared_bytes(),
    }
}

/// Regenerate Table 2.
#[must_use]
pub fn run() -> Vec<Row> {
    const N: u32 = 64;
    let noop = |_: &mut Kernel, _: u32| {};

    // The emulation trap overhead: emulated minus native /dev/null read.
    let nat_null = measure_native(N, open_file_prep("/dev/null", 0), native_read(16), false);
    let emu_null = measure_native(N, open_file_prep("/dev/null", 0), unix_read(16), true);

    // read 1 char and 1 KB from a cached 64 KB file (offset never wraps:
    // 64 × 1024 = 64 KB exactly).
    let read1_nat = measure_native(N, open_file_prep("/tmp/f", 65536), native_read(1), false);
    let read1_emu = measure_native(N, open_file_prep("/tmp/f", 65536), unix_read(1), true);
    let read1k_nat = measure_native(N, open_file_prep("/tmp/f", 65536), native_read(1024), false);
    let read1k_emu = measure_native(N, open_file_prep("/tmp/f", 65536), unix_read(1024), true);

    // open+close pairs (native general call vs emulated); fewer iters so
    // synthesized-code space cycles comfortably.
    let oc_null_nat = measure_native(16, noop, native_open_close(0), false);
    let oc_null_emu = measure_native(16, noop, unix_open_close(0), true);
    let oc_tty_nat = measure_native(16, noop, native_open_close(0x10), false);
    let oc_tty_emu = measure_native(16, noop, unix_open_close(0x10), true);

    // Cold vs warm open of the same file: the specialization cache
    // turning the second open into pure linking.
    let cache = open_cold_warm();

    vec![
        Row::new(
            "emulation trap overhead",
            Some(2.0),
            emu_null - nat_null,
            "us",
        ),
        Row::new(
            "open+close /dev/null (native)",
            Some(61.0),
            oc_null_nat,
            "us",
        ),
        Row::new(
            "open+close /dev/null (emulated)",
            Some(71.0),
            oc_null_emu,
            "us",
        ),
        Row::new("open+close /dev/tty (native)", Some(80.0), oc_tty_nat, "us"),
        Row::new(
            "open+close /dev/tty (emulated)",
            Some(90.0),
            oc_tty_emu,
            "us",
        ),
        Row::new("read 1 char from file (native)", Some(9.0), read1_nat, "us"),
        Row::new(
            "read 1 char from file (emulated)",
            Some(10.0),
            read1_emu,
            "us",
        ),
        Row::new(
            "read 1 KB from file (native, 9+N/8)",
            Some(137.0),
            read1k_nat,
            "us",
        ),
        Row::new(
            "read 1 KB from file (emulated, 10+N/8)",
            Some(138.0),
            read1k_emu,
            "us",
        ),
        Row::new("read N from /dev/null (native)", Some(6.0), nat_null, "us"),
        Row::new(
            "read N from /dev/null (emulated)",
            Some(8.0),
            emu_null,
            "us",
        ),
        Row::new("open file, cold (synthesizes)", None, cache.cold_us, "us"),
        Row::new("open file, warm (cache hit)", None, cache.warm_us, "us"),
    ]
}
