//! Table 3 — thread operations.
//!
//! These are kernel-call paths measured through the monitor (the host
//! services charge honest cycles per the work they do; see
//! `synthesis_core::charges`).

use quamachine::isa::Size;
use quamachine::mem::AddressMap;
use synthesis_core::layout;
use synthesis_core::monitor;
use synthesis_core::thread::tte::off;

use crate::Row;

/// Regenerate Table 3.
#[must_use]
pub fn run() -> Vec<Row> {
    let mut k = crate::boot_kernel();
    // A parked target thread doing nothing.
    let mut a = quamachine::asm::Asm::new("victim");
    let top = a.here();
    a.add(
        Size::L,
        quamachine::isa::Operand::Imm(1),
        quamachine::isa::Operand::Dr(0),
    );
    a.bcc(quamachine::isa::Cond::T, top);
    let entry = k.load_user_program(a.assemble().unwrap()).unwrap();
    let map = AddressMap::single(1, layout::USER_BASE, layout::USER_LEN);

    let (tid, create) = monitor::measure(&mut k, |k| {
        k.create_thread(entry, layout::USER_BASE + 0x1000, map.clone())
            .unwrap()
    });
    let (_, start) = monitor::measure(&mut k, |k| k.start(tid).unwrap());
    let (_, stop) = monitor::measure(&mut k, |k| k.stop(tid).unwrap());
    let (_, step) = monitor::measure(&mut k, |k| k.step_thread(tid).unwrap());
    // Install a signal handler so delivery succeeds (the handler address
    // only has to be non-zero for the parked-delivery bookkeeping).
    let h = entry;
    let slot = k.threads[&tid].tte + off::SIG_HANDLER;
    k.m.mem.poke(slot, Size::L, h);
    let (_, signal) = monitor::measure(&mut k, |k| k.signal(tid, 1).unwrap());
    let (_, destroy) = monitor::measure(&mut k, |k| k.destroy(tid).unwrap());

    vec![
        Row::new("thread create", Some(142.0), create.us, "us"),
        Row::new("thread destroy", Some(11.0), destroy.us, "us"),
        Row::new("thread stop", Some(8.0), stop.us, "us"),
        Row::new("thread start", Some(8.0), start.us, "us"),
        Row::new("thread step (debugger)", Some(37.0), step.us, "us"),
        Row::new(
            "thread signal (thread to thread)",
            Some(8.0),
            signal.us,
            "us",
        ),
    ]
}
