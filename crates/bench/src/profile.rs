//! The trace profiler: a mixed workload run under adaptive scheduling,
//! distilled through the kernel's event trace.
//!
//! Where Tables 1–5 time single calls, this driver answers the Section
//! 4.4 question — *who* is doing I/O, at what rate, and what did the
//! fine-grain scheduler do about it. It boots a kernel, runs an
//! I/O-bound writer, a CPU-bound spinner, and a pipe producer/consumer
//! pair side by side, adapts quanta between windows, and reports
//! [`monitor::trace_report`]'s per-thread I/O-rate table plus the final
//! quanta. Built without the `trace` feature the same workload runs but
//! every trace row is zero — the scheduler then falls back to the TTE
//! gauges.

use quamachine::asm::Asm;
use quamachine::isa::{Cond, Operand::*, Size::*};
use quamachine::mem::AddressMap;
use synthesis_core::kernel::{Kernel, KernelConfig};
use synthesis_core::layout;
use synthesis_core::monitor::{self, TraceReport};
use synthesis_core::sched::FineGrain;
use synthesis_core::syscall::{general, traps};
use synthesis_core::thread::Tid;

const USTACK: u32 = layout::USER_BASE + 0x1_0000;
const UBUF: u32 = layout::USER_BASE + 0x2_0000;
const UPATH: u32 = layout::USER_BASE + 0x2_8000;

/// One profiled thread: its role in the workload and where the
/// scheduler left its quantum.
#[derive(Debug, Clone)]
pub struct ProfiledThread {
    /// The thread.
    pub tid: Tid,
    /// Workload role label.
    pub role: &'static str,
    /// CPU quantum after the last adaptation pass, in µs.
    pub quantum_us: u32,
}

/// The profiler's output: the distilled trace plus scheduler outcomes.
#[derive(Debug, Clone)]
pub struct ProfileResult {
    /// The per-thread trace report (all zeros without the `trace`
    /// feature).
    pub report: TraceReport,
    /// The workload threads and their final quanta.
    pub threads: Vec<ProfiledThread>,
    /// Adaptation passes run.
    pub passes: u64,
    /// Quanta actually changed across those passes.
    pub adjustments: u64,
}

fn user_map() -> AddressMap {
    AddressMap::single(1, layout::USER_BASE, layout::USER_LEN)
}

/// A thread writing 8-byte records to `/dev/null` forever.
fn io_writer(k: &mut Kernel) -> Tid {
    let mut a = Asm::new("prof_io");
    a.move_i(L, general::OPEN, Dr(0));
    a.lea(Abs(UPATH), 0);
    a.trap(traps::GENERAL);
    a.move_(L, Dr(0), Dr(5));
    let top = a.here();
    a.move_(L, Dr(5), Dr(0));
    a.lea(Abs(UBUF), 0);
    a.move_i(L, 8, Dr(1));
    a.trap(traps::WRITE);
    a.bcc(Cond::T, top);
    let entry = k.load_user_program(a.assemble().unwrap()).unwrap();
    k.create_thread(entry, USTACK, user_map()).unwrap()
}

/// A thread spinning on register arithmetic forever.
fn cpu_spinner(k: &mut Kernel) -> Tid {
    let mut a = Asm::new("prof_cpu");
    let top = a.here();
    a.add(L, Imm(1), Dr(0));
    a.bcc(Cond::T, top);
    let entry = k.load_user_program(a.assemble().unwrap()).unwrap();
    k.create_thread(entry, USTACK + 0x1000, user_map()).unwrap()
}

/// A pipe producer/consumer pair: the producer writes 8 bytes per loop,
/// the consumer reads them; both block on the pipe as it fills and
/// drains, exercising the wake queues.
fn pipe_pair(k: &mut Kernel) -> (Tid, Tid) {
    let mut w = Asm::new("prof_pipe_w");
    let wtop = w.here();
    w.move_i(L, 1, Dr(0)); // wfd
    w.lea(Abs(UBUF), 0);
    w.move_i(L, 8, Dr(1));
    w.trap(traps::WRITE);
    w.bcc(Cond::T, wtop);
    let mut r = Asm::new("prof_pipe_r");
    let rtop = r.here();
    r.move_i(L, 0, Dr(0)); // rfd
    r.lea(Abs(UBUF + 0x100), 0);
    r.move_i(L, 8, Dr(1));
    r.trap(traps::READ);
    r.bcc(Cond::T, rtop);
    let we = k.load_user_program(w.assemble().unwrap()).unwrap();
    let re = k.load_user_program(r.assemble().unwrap()).unwrap();
    let wt = k.create_thread(we, USTACK + 0x2000, user_map()).unwrap();
    let rt = k.create_thread(re, USTACK + 0x3000, user_map()).unwrap();
    let (rfd, wfd) = k.pipe_for(rt).unwrap();
    assert_eq!((rfd, wfd), (0, 1));
    let attached = k.pipe_attach(wt, 0).unwrap();
    assert_eq!(attached, (0, 1));
    (wt, rt)
}

/// Run the mixed workload for `windows` scheduling windows of
/// `window_cycles` each, adapting quanta between windows, and distill
/// the trace. The CPU count comes from [`KernelConfig::default`] (the
/// `SYNTHESIS_CPUS` environment variable, 1 when unset).
#[must_use]
pub fn run(windows: u32, window_cycles: u64) -> ProfileResult {
    run_on(KernelConfig::default().cpus, windows, window_cycles)
}

/// [`run`], on an explicit number of CPUs.
#[must_use]
pub fn run_on(cpus: usize, windows: u32, window_cycles: u64) -> ProfileResult {
    let mut k = Kernel::boot(KernelConfig {
        cpus,
        ..KernelConfig::default()
    })
    .expect("kernel boots");
    k.m.mem.poke_bytes(UPATH, b"/dev/null\0");

    let io = io_writer(&mut k);
    let cpu = cpu_spinner(&mut k);
    let (pipe_w, pipe_r) = pipe_pair(&mut k);
    let roles = [
        (io, "io: write /dev/null"),
        (cpu, "cpu: spin"),
        (pipe_w, "pipe: producer"),
        (pipe_r, "pipe: consumer"),
    ];
    for (tid, _) in roles {
        k.start(tid).unwrap();
    }

    let mut policy = FineGrain::new();
    for _ in 0..windows {
        k.run(window_cycles);
        policy.adapt(&mut k);
    }

    let report = monitor::trace_report(&mut k);
    let threads = roles
        .iter()
        .map(|&(tid, role)| ProfiledThread {
            tid,
            role,
            quantum_us: k.threads[&tid].quantum_us,
        })
        .collect();
    ProfileResult {
        report,
        threads,
        passes: policy.passes,
        adjustments: policy.adjustments,
    }
}

impl ProfileResult {
    /// Render the profile as text: the trace report's table plus the
    /// scheduler outcome per workload thread.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = self.report.render();
        let _ = writeln!(
            out,
            "scheduler: {} adaptation passes, {} quantum changes",
            self.passes, self.adjustments
        );
        for t in &self.threads {
            let _ = writeln!(
                out,
                "  tid {:>2} {:<24} quantum {:>4} µs",
                t.tid, t.role, t.quantum_us
            );
        }
        out
    }
}
