//! Regenerate every table of the paper's evaluation section.
//!
//! ```text
//! tables            # all tables
//! tables --table 3  # one table
//! tables --kernel-size
//! tables --iters 100
//! tables --json BENCH_4.json  # tables 1-3 + cache figures, as JSON
//! tables --trace-report       # profiler: per-thread I/O rates + quanta
//! tables --trace-report --json BENCH_5.json
//! tables --cpus 4             # SMP scaling table at 1, 2, and 4 CPUs
//! tables --cpus 4 --json BENCH_6.json
//! tables --recovery-report --cpus 4 --seed 7   # chaos-soak scoreboard
//! tables --recovery-report --cpus 4 --json RECOVERY.json
//! tables --capacity                  # 10k-thread capacity soak (BENCH_8)
//! tables --capacity --json BENCH_8.json
//! tables --capacity --threads 2000   # reduced population
//! tables --capacity-gate NEW.json BASELINE.json   # CI regression gate
//! tables --table1-gate NEW.json BASELINE.json     # Table 1 ratio gate
//! ```
//!
//! `--cpus 1` (the default) reproduces the uniprocessor kernel byte for
//! byte: every other mode's output is unchanged from the pre-SMP
//! binary. `--cpus N` with N > 1 switches to the SMP scaling report
//! (and makes `--trace-report` profile an N-CPU kernel).

use synthesis_bench::{
    capacity, profile, render, smp, table1, table2, table3, table4, table5, Row,
};

/// Minimal JSON string escaping (the row labels are plain ASCII, but be
/// safe about quotes and backslashes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_rows(rows: &[Row]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            let paper = r.paper.map_or("null".to_string(), |p| format!("{p}"));
            format!(
                "    {{\"what\": {}, \"paper\": {}, \"measured\": {:.3}, \"unit\": {}}}",
                json_str(&r.what),
                paper,
                r.measured,
                json_str(r.unit)
            )
        })
        .collect();
    format!("[\n{}\n  ]", items.join(",\n"))
}

/// Emit Tables 1–3 plus the specialization-cache figures as JSON.
fn emit_json(path: &str, iters: u32) {
    eprintln!("[json: running tables 1-3 and the cache benchmark ({iters} iterations)...]");
    let t1 = table1::run(iters);
    let t2 = table2::run();
    let t3 = table3::run();
    let cache = table2::open_cold_warm();
    let json = format!(
        "{{\n  \"machine\": \"16 MHz + 1 wait state (SUN 3/160 emulation mode)\",\n  \
         \"iters\": {iters},\n  \
         \"table1\": {},\n  \
         \"table2\": {},\n  \
         \"table3\": {},\n  \
         \"cache\": {{\n    \
         \"cold_open_us\": {:.3},\n    \
         \"warm_open_us\": {:.3},\n    \
         \"hits\": {},\n    \
         \"misses\": {},\n    \
         \"hit_rate\": {:.4},\n    \
         \"shared_bytes\": {}\n  }}\n}}\n",
        json_rows(&t1),
        json_rows(&t2),
        json_rows(&t3),
        cache.cold_us,
        cache.warm_us,
        cache.hits,
        cache.misses,
        cache.hit_rate,
        cache.shared_bytes
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}

/// Emit the SMP scaling table plus the cross-CPU cache figures as JSON
/// (the BENCH_6 shape).
fn emit_smp_json(path: &str, points: &[smp::ScalingPoint], cache: &smp::CacheSmp) {
    let base = points.first().map_or(0.0, |p| p.ops_per_ms);
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            let per_cpu: Vec<String> = p
                .per_cpu
                .iter()
                .map(|c| {
                    format!(
                        "        {{\"cpu\": {}, \"steals\": {}, \"offloads\": {}, \
                         \"busy_cycles\": {}, \"idle_cycles\": {}}}",
                        c.cpu, c.steals, c.offloads, c.busy_cycles, c.idle_cycles
                    )
                })
                .collect();
            format!(
                "    {{\"cpus\": {}, \"total_ops\": {}, \"elapsed_ms\": {:.3}, \
                 \"ops_per_ms\": {:.3}, \"speedup\": {:.3},\n      \"per_cpu\": [\n{}\n      ]}}",
                p.cpus,
                p.total_ops,
                p.elapsed_ms,
                p.ops_per_ms,
                if base > 0.0 { p.ops_per_ms / base } else { 0.0 },
                per_cpu.join(",\n")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"machine\": \"16 MHz + 1 wait state (SUN 3/160 emulation mode)\",\n  \
         \"workload\": \"{} counter spinners + {} /dev/null writers, {} cycles per point\",\n  \
         \"scaling\": [\n{}\n  ],\n  \
         \"cache_smp\": {{\n    \
         \"cold_open_us\": {:.3},\n    \
         \"warm_local_us\": {:.3},\n    \
         \"warm_cross_us\": {:.3},\n    \
         \"hits_local\": {},\n    \
         \"hits_cross\": {},\n    \
         \"bytes_shared_cross\": {},\n    \
         \"shared_tier_bytes\": {}\n  }}\n}}\n",
        smp::SPINNERS,
        smp::WRITERS,
        smp::RUN_CYCLES,
        rows.join(",\n"),
        cache.cold_open_us,
        cache.warm_local_us,
        cache.warm_cross_us,
        cache.hits_local,
        cache.hits_cross,
        cache.bytes_shared_cross,
        cache.shared_tier_bytes
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}

/// Serialize the profiler's result (the per-thread I/O-rate table and
/// scheduler outcomes) as JSON.
fn trace_report_json(p: &profile::ProfileResult) -> String {
    let quanta: std::collections::HashMap<u32, (&str, u32)> = p
        .threads
        .iter()
        .map(|t| (t.tid, (t.role, t.quantum_us)))
        .collect();
    let rows: Vec<String> = p
        .report
        .threads
        .iter()
        .map(|t| {
            let (role, q) = quanta.get(&t.tid).copied().unwrap_or(("kernel/idle", 0));
            let latency: Vec<String> = t.latency.iter().map(u64::to_string).collect();
            format!(
                "    {{\"tid\": {}, \"role\": {}, \"ctx_switches\": {}, \"syscalls\": {}, \
                 \"irqs\": {}, \"queue_puts\": {}, \"queue_gets\": {}, \"cache_hits\": {}, \
                 \"cache_misses\": {}, \"recoveries\": {}, \"io_events\": {}, \
                 \"io_per_ms\": {:.3}, \"quantum_us\": {}, \"latency\": [{}]}}",
                t.tid,
                json_str(role),
                t.ctx_switches,
                t.syscalls,
                t.irqs,
                t.queue_puts,
                t.queue_gets,
                t.cache_hits,
                t.cache_misses,
                t.recoveries,
                t.io_events,
                t.io_per_ms,
                q,
                latency.join(", ")
            )
        })
        .collect();
    // Only multiprocessor reports carry per-CPU rows; on one CPU the
    // key is omitted entirely so the JSON is byte-identical to the
    // uniprocessor binary's.
    let cpus_section = if p.report.cpus.is_empty() {
        String::new()
    } else {
        let rows: Vec<String> = p
            .report
            .cpus
            .iter()
            .map(|c| {
                format!(
                    "    {{\"cpu\": {}, \"utilization\": {:.4}, \"steals\": {}, \
                     \"steal_records\": {}, \"offloads\": {}, \"busy_cycles\": {}, \
                     \"idle_cycles\": {}}}",
                    c.cpu,
                    c.utilization,
                    c.steals,
                    c.steal_records,
                    c.offloads,
                    c.busy_cycles,
                    c.idle_cycles
                )
            })
            .collect();
        format!("  \"cpus\": [\n{}\n  ],\n", rows.join(",\n"))
    };
    format!(
        "{{\n  \"machine\": \"16 MHz + 1 wait state (SUN 3/160 emulation mode)\",\n  \
         \"window_start\": {},\n  \"window_end\": {},\n  \"records\": {},\n  \
         \"dropped\": {},\n  \"adapt_passes\": {},\n  \"quantum_changes\": {},\n  \
         \"latency_buckets\": {:?},\n{}  \"threads\": [\n{}\n  ]\n}}\n",
        p.report.window_start,
        p.report.window_end,
        p.report.records,
        p.report.dropped,
        p.passes,
        p.adjustments,
        synthesis_core::monitor::LATENCY_BUCKETS,
        cpus_section,
        rows.join(",\n")
    )
}

/// Serialize the capacity soak (the BENCH_8 shape).
fn capacity_json(r: &capacity::CapacityReport) -> String {
    let scale: Vec<String> = r
        .scale
        .iter()
        .map(|p| {
            format!(
                "    {{\"cpus\": {}, \"threads\": {}, \"channels_open\": {}, \
                 \"spawn_p50_us\": {:.3}, \"spawn_p90_us\": {:.3}, \"spawn_p99_us\": {:.3}, \
                 \"spawn_max_us\": {:.3}, \"spin_ops\": {}, \"elapsed_ms\": {:.3}, \
                 \"ops_per_ms\": {:.3}, \"signals_sent\": {}, \"signals_delivered\": {}, \
                 \"dispatch_median_cycles\": {}, \"dispatch_max_cycles\": {}, \
                 \"dispatch_samples\": {}, \"heap_in_use\": {}, \"code_in_use\": {}}}",
                p.cpus,
                p.threads,
                p.channels_open,
                p.spawn.p50,
                p.spawn.p90,
                p.spawn.p99,
                p.spawn.max,
                p.spin_ops,
                p.elapsed_ms,
                p.ops_per_ms,
                p.signals_sent,
                p.signals_delivered,
                p.dispatch.median_cycles,
                p.dispatch.max_cycles,
                p.dispatch.samples,
                p.heap_in_use,
                p.code_in_use
            )
        })
        .collect();
    let baselines: Vec<String> = r
        .baselines
        .iter()
        .map(|b| {
            format!(
                "    {{\"cpus\": {}, \"threads\": {}, \"samples\": {}, \
                 \"median_cycles\": {}, \"max_cycles\": {}}}",
                b.cpus, b.threads, b.samples, b.median_cycles, b.max_cycles
            )
        })
        .collect();
    let curve: Vec<String> = r
        .curve
        .iter()
        .map(|c| {
            format!(
                "    {{\"budget\": {}, \"cycles\": {}, \"hits\": {}, \"misses\": {}, \
                 \"hit_rate\": {:.4}, \"resident_bytes\": {}, \"warm_bytes\": {}}}",
                c.budget, c.cycles, c.hits, c.misses, c.hit_rate, c.resident_bytes, c.warm_bytes
            )
        })
        .collect();
    let l = &r.lifecycle;
    format!(
        "{{\n  \"machine\": \"16 MHz + 1 wait state (SUN 3/160 emulation mode)\",\n  \
         \"threads\": {},\n  \"open_close_cycles\": {},\n  \
         \"scale\": [\n{}\n  ],\n  \
         \"dispatch_baselines\": [\n{}\n  ],\n  \
         \"eviction_curve\": [\n{}\n  ],\n  \
         \"lifecycle\": {{\"cycles\": {}, \"heap_before\": {}, \"heap_after\": {}, \
         \"code_before\": {}, \"code_after\": {}, \"heap_high_water\": {}, \
         \"heap_fragments\": {}, \"heap_largest_free\": {}}}\n}}\n",
        r.scale.first().map_or(0, |p| p.threads),
        r.open_close_cycles,
        scale.join(",\n"),
        baselines.join(",\n"),
        curve.join(",\n"),
        l.cycles,
        l.heap_before,
        l.heap_after,
        l.code_before,
        l.code_after,
        l.heap_high_water,
        l.heap_fragments,
        l.heap_largest_free
    )
}

/// First numeric value following `"key":` in a JSON document (enough
/// for the gate's two scalar reads — no dependency needed).
fn json_num(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compare a fresh BENCH_8 against the checked-in baseline: spawn p99
/// may grow at most 10%, ops/ms may drop at most 10%. Exits non-zero on
/// a regression so CI fails the job.
fn capacity_gate(new_path: &str, base_path: &str) {
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("error: cannot read {p}: {e}");
            std::process::exit(1);
        })
    };
    let (new, base) = (read(new_path), read(base_path));
    let need = |doc: &str, path: &str, key: &str| {
        json_num(doc, key).unwrap_or_else(|| {
            eprintln!("error: {path} has no {key:?}");
            std::process::exit(1);
        })
    };
    let (new_p99, base_p99) = (
        need(&new, new_path, "spawn_p99_us"),
        need(&base, base_path, "spawn_p99_us"),
    );
    let (new_ops, base_ops) = (
        need(&new, new_path, "ops_per_ms"),
        need(&base, base_path, "ops_per_ms"),
    );
    let mut failed = false;
    if new_p99 > base_p99 * 1.10 {
        eprintln!("GATE FAIL: spawn p99 {new_p99:.3} µs > baseline {base_p99:.3} µs + 10%");
        failed = true;
    }
    if new_ops < base_ops * 0.90 {
        eprintln!(
            "GATE FAIL: throughput {new_ops:.3} ops/ms < baseline {base_ops:.3} ops/ms - 10%"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "capacity gate ok: p99 {new_p99:.3} µs (baseline {base_p99:.3}), \
         {new_ops:.3} ops/ms (baseline {base_ops:.3})"
    );
}

/// Extract the `(what, measured)` pairs of the `"table1"` array from a
/// BENCH-shape JSON document. The writer is [`emit_json`], so the
/// layout is known: one row object per line inside the array.
fn table1_rows(doc: &str, path: &str) -> Vec<(String, f64)> {
    let Some(start) = doc.find("\"table1\": [") else {
        eprintln!("error: {path} has no \"table1\" array");
        std::process::exit(1);
    };
    let body = &doc[start..];
    // The array closer sits alone on its own line ("\n  ]"); a bare ']'
    // would stop at the "[speedup]" inside the first row label.
    let end = body.find("\n  ]").unwrap_or(body.len());
    let mut rows = Vec::new();
    for line in body[..end].lines() {
        let Some(w) = line.find("\"what\": \"") else {
            continue;
        };
        let rest = &line[w + 9..];
        let Some(q) = rest.find('"') else { continue };
        let Some(m) = json_num(line, "measured") else {
            continue;
        };
        rows.push((rest[..q].to_string(), m));
    }
    if rows.is_empty() {
        eprintln!("error: {path} has an empty \"table1\" array");
        std::process::exit(1);
    }
    rows
}

/// Compare a fresh Table 1 against the checked-in baseline: no row may
/// lose more than 5% of its speedup ratio (the simulation is
/// deterministic, so real drift means a real code change), and the
/// fused-pipe acceptance floors are absolute — pipe-1B ≥ 20×, open/
/// close `/dev/null` ≥ 15×, `/dev/tty` ≥ 8×. Exits non-zero on any
/// failure so CI fails the job.
fn table1_gate(new_path: &str, base_path: &str) {
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("error: cannot read {p}: {e}");
            std::process::exit(1);
        })
    };
    let (new, base) = (read(new_path), read(base_path));
    let new_rows = table1_rows(&new, new_path);
    let base_rows = table1_rows(&base, base_path);
    let mut failed = false;
    for (what, base_m) in &base_rows {
        let Some((_, new_m)) = new_rows.iter().find(|(w, _)| w == what) else {
            eprintln!("GATE FAIL: row {what:?} missing from {new_path}");
            failed = true;
            continue;
        };
        if *new_m < base_m * 0.95 {
            eprintln!("GATE FAIL: {what}: {new_m:.2}x < baseline {base_m:.2}x - 5%");
            failed = true;
        }
    }
    for (needle, floor) in [
        ("pipe, 1 byte", 20.0),
        ("/dev/null", 15.0),
        ("/dev/tty", 8.0),
    ] {
        match new_rows.iter().find(|(w, _)| w.contains(needle)) {
            Some((what, m)) if *m >= floor => println!("  {what}: {m:.1}x >= {floor}x"),
            Some((what, m)) => {
                eprintln!("GATE FAIL: {what}: {m:.2}x < absolute floor {floor}x");
                failed = true;
            }
            None => {
                eprintln!("GATE FAIL: no Table 1 row matching {needle:?} in {new_path}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "table1 gate ok: {} rows held against {base_path}",
        base_rows.len()
    );
}

fn kernel_size() -> Vec<Row> {
    // Section 6.4: the whole kernel assembles to 64 KB; with 3 processes
    // running the resident kernel is 32 KB, growing with threads and
    // open files.
    let mut k = synthesis_bench::boot_kernel();
    let boot_report = synthesis_core::monitor::size_report(&k);
    let boot_code = boot_report.code_resident as f64 / 1024.0;

    // Three threads, like the paper's "3 processes running" figure.
    let map = quamachine::mem::AddressMap::single(
        1,
        synthesis_core::layout::USER_BASE,
        synthesis_core::layout::USER_LEN,
    );
    let mut a = quamachine::asm::Asm::new("spin");
    let top = a.here();
    a.bcc(quamachine::isa::Cond::T, top);
    let entry = k.load_user_program(a.assemble().unwrap()).unwrap();
    let mut tids = Vec::new();
    for i in 0..3 {
        let tid = k
            .create_thread(
                entry,
                synthesis_core::layout::USER_BASE + 0x1000 + i * 0x800,
                map.clone(),
            )
            .unwrap();
        tids.push(tid);
    }
    let three = synthesis_core::monitor::size_report(&k);

    // Open ten files on the first thread: space grows with open files.
    for i in 0..10 {
        let name = format!("/f{i}");
        k.fs.create(&mut k.m, &mut k.heap, &name, 4096).unwrap();
        k.open_for(tids[0], &name).unwrap();
    }
    let ten_files = synthesis_core::monitor::size_report(&k);

    vec![
        Row::new(
            "static kernel code at boot [KB]",
            Some(32.0),
            boot_code,
            "KB",
        ),
        Row::new(
            "code with 3 threads [KB]",
            None,
            three.code_resident as f64 / 1024.0,
            "KB",
        ),
        Row::new(
            "code with 3 threads + 10 open files [KB]",
            None,
            ten_files.code_resident as f64 / 1024.0,
            "KB",
        ),
        Row::new(
            "kernel heap with 3 threads [KB]",
            None,
            f64::from(three.heap_in_use) / 1024.0,
            "KB",
        ),
        Row::new(
            "synthesized blocks resident",
            None,
            ten_files.code_blocks as f64,
            "blocks",
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let only: Option<u32> = match get("--table") {
        Some(s) => match s.parse::<u32>() {
            Ok(n @ 1..=5) => Some(n),
            _ => {
                eprintln!("error: --table takes a number 1-5, got {s:?}");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let iters: u32 = match get("--iters") {
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("error: --iters takes a positive number, got {s:?}");
            std::process::exit(2);
        }),
        None => 40,
    };
    if iters == 0 {
        eprintln!("error: --iters must be at least 1");
        std::process::exit(2);
    }
    let cpus: usize = match get("--cpus") {
        Some(s) => match s.parse::<usize>() {
            Ok(n @ 1..=8) => n,
            _ => {
                eprintln!("error: --cpus takes a number 1-8, got {s:?}");
                std::process::exit(2);
            }
        },
        None => 1,
    };
    let size_only = args.iter().any(|a| a == "--kernel-size");

    if let Some(i) = args.iter().position(|a| a == "--capacity-gate") {
        let (Some(new_path), Some(base_path)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!("error: --capacity-gate takes NEW.json BASELINE.json");
            std::process::exit(2);
        };
        capacity_gate(new_path, base_path);
        return;
    }

    if let Some(i) = args.iter().position(|a| a == "--table1-gate") {
        let (Some(new_path), Some(base_path)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!("error: --table1-gate takes NEW.json BASELINE.json");
            std::process::exit(2);
        };
        table1_gate(new_path, base_path);
        return;
    }

    if args.iter().any(|a| a == "--capacity") {
        let threads: usize = match get("--threads") {
            Some(s) => s.parse().unwrap_or_else(|_| {
                eprintln!("error: --threads takes a positive number, got {s:?}");
                std::process::exit(2);
            }),
            None => capacity::default_threads(),
        };
        eprintln!(
            "[capacity: {threads} threads on 1 and 4 CPUs, eviction curve, lifecycle churn...]"
        );
        let report = capacity::run_capacity(
            threads,
            capacity::default_churn_per_point(),
            capacity::default_lifecycle(),
        );
        if let Some(path) = get("--json") {
            if let Err(e) = std::fs::write(&path, capacity_json(&report)) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        } else {
            print!("{}", capacity::render(&report));
        }
        return;
    }

    if args.iter().any(|a| a == "--recovery-report") {
        let seed: u64 = match get("--seed") {
            Some(s) => s.parse().unwrap_or_else(|_| {
                eprintln!("error: --seed takes a number, got {s:?}");
                std::process::exit(2);
            }),
            None => 42,
        };
        eprintln!("[recovery report: chaos workload on {cpus} CPU(s), seed {seed}...]");
        let k = smp::chaos_run(cpus, seed);
        let report = synthesis_core::monitor::recovery_report(&k);
        if let Some(path) = get("--json") {
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        } else {
            print!("{}", report.render());
        }
        return;
    }

    if args.iter().any(|a| a == "--trace-report") {
        eprintln!("[trace report: profiling the mixed workload...]");
        let p = if cpus > 1 {
            profile::run_on(cpus, 8, 2_000_000)
        } else {
            profile::run(8, 2_000_000)
        };
        if let Some(path) = get("--json") {
            if let Err(e) = std::fs::write(&path, trace_report_json(&p)) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        } else {
            print!("{}", p.render());
        }
        return;
    }

    if cpus > 1 {
        eprintln!(
            "[smp: running the mixed workload at {:?} CPUs...]",
            smp::points_for(cpus)
        );
        let points = smp::scaling(cpus);
        let cache = smp::cache_smp();
        if let Some(path) = get("--json") {
            emit_smp_json(&path, &points, &cache);
        } else {
            println!("Synthesis kernel reproduction — SMP scaling");
            println!("machine: 16 MHz + 1 wait state (SUN 3/160 emulation mode)");
            print!("{}", smp::render(&points));
            println!(
                "cache: cold {:.1} µs, warm local {:.1} µs, warm cross-CPU {:.1} µs \
                 ({} local / {} cross hits, {} B shared tier)",
                cache.cold_open_us,
                cache.warm_local_us,
                cache.warm_cross_us,
                cache.hits_local,
                cache.hits_cross,
                cache.shared_tier_bytes
            );
        }
        return;
    }

    if let Some(path) = get("--json") {
        emit_json(&path, iters);
        return;
    }

    println!("Synthesis kernel reproduction — paper (SOSP '89) vs measured");
    println!("machine: 16 MHz + 1 wait state (SUN 3/160 emulation mode)");

    if size_only {
        print!("{}", render("Kernel size (Section 6.4)", &kernel_size()));
        return;
    }

    if only.is_none() || only == Some(1) {
        println!("\n[table 1: running the seven programs on both kernels ({iters} iterations)...]");
        print!(
            "{}",
            render(
                "Table 1: measured UNIX system calls (speedup, SUNOS-like / Synthesis)",
                &table1::run(iters)
            )
        );
    }
    if only.is_none() || only == Some(2) {
        println!("\n[table 2: single-call file and device I/O...]");
        print!(
            "{}",
            render("Table 2: file and device I/O (µs)", &table2::run())
        );
    }
    if only.is_none() || only == Some(3) {
        print!(
            "{}",
            render("Table 3: thread operations (µs)", &table3::run())
        );
    }
    if only.is_none() || only == Some(4) {
        print!(
            "{}",
            render("Table 4: dispatcher/scheduler (µs)", &table4::run())
        );
    }
    if only.is_none() || only == Some(5) {
        print!(
            "{}",
            render("Table 5: interrupt handling (µs)", &table5::run())
        );
    }
    if only.is_none() {
        print!("{}", render("Kernel size (Section 6.4)", &kernel_size()));
    }
}
