//! Regenerate every table of the paper's evaluation section.
//!
//! ```text
//! tables            # all tables
//! tables --table 3  # one table
//! tables --kernel-size
//! tables --iters 100
//! tables --json BENCH_4.json  # tables 1-3 + cache figures, as JSON
//! tables --trace-report       # profiler: per-thread I/O rates + quanta
//! tables --trace-report --json BENCH_5.json
//! tables --cpus 4             # SMP scaling table at 1, 2, and 4 CPUs
//! tables --cpus 4 --json BENCH_6.json
//! tables --recovery-report --cpus 4 --seed 7   # chaos-soak scoreboard
//! tables --recovery-report --cpus 4 --json RECOVERY.json
//! ```
//!
//! `--cpus 1` (the default) reproduces the uniprocessor kernel byte for
//! byte: every other mode's output is unchanged from the pre-SMP
//! binary. `--cpus N` with N > 1 switches to the SMP scaling report
//! (and makes `--trace-report` profile an N-CPU kernel).

use synthesis_bench::{profile, render, smp, table1, table2, table3, table4, table5, Row};

/// Minimal JSON string escaping (the row labels are plain ASCII, but be
/// safe about quotes and backslashes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_rows(rows: &[Row]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            let paper = r.paper.map_or("null".to_string(), |p| format!("{p}"));
            format!(
                "    {{\"what\": {}, \"paper\": {}, \"measured\": {:.3}, \"unit\": {}}}",
                json_str(&r.what),
                paper,
                r.measured,
                json_str(r.unit)
            )
        })
        .collect();
    format!("[\n{}\n  ]", items.join(",\n"))
}

/// Emit Tables 1–3 plus the specialization-cache figures as JSON.
fn emit_json(path: &str, iters: u32) {
    eprintln!("[json: running tables 1-3 and the cache benchmark ({iters} iterations)...]");
    let t1 = table1::run(iters);
    let t2 = table2::run();
    let t3 = table3::run();
    let cache = table2::open_cold_warm();
    let json = format!(
        "{{\n  \"machine\": \"16 MHz + 1 wait state (SUN 3/160 emulation mode)\",\n  \
         \"iters\": {iters},\n  \
         \"table1\": {},\n  \
         \"table2\": {},\n  \
         \"table3\": {},\n  \
         \"cache\": {{\n    \
         \"cold_open_us\": {:.3},\n    \
         \"warm_open_us\": {:.3},\n    \
         \"hits\": {},\n    \
         \"misses\": {},\n    \
         \"hit_rate\": {:.4},\n    \
         \"shared_bytes\": {}\n  }}\n}}\n",
        json_rows(&t1),
        json_rows(&t2),
        json_rows(&t3),
        cache.cold_us,
        cache.warm_us,
        cache.hits,
        cache.misses,
        cache.hit_rate,
        cache.shared_bytes
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}

/// Emit the SMP scaling table plus the cross-CPU cache figures as JSON
/// (the BENCH_6 shape).
fn emit_smp_json(path: &str, points: &[smp::ScalingPoint], cache: &smp::CacheSmp) {
    let base = points.first().map_or(0.0, |p| p.ops_per_ms);
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            let per_cpu: Vec<String> = p
                .per_cpu
                .iter()
                .map(|c| {
                    format!(
                        "        {{\"cpu\": {}, \"steals\": {}, \"offloads\": {}, \
                         \"busy_cycles\": {}, \"idle_cycles\": {}}}",
                        c.cpu, c.steals, c.offloads, c.busy_cycles, c.idle_cycles
                    )
                })
                .collect();
            format!(
                "    {{\"cpus\": {}, \"total_ops\": {}, \"elapsed_ms\": {:.3}, \
                 \"ops_per_ms\": {:.3}, \"speedup\": {:.3},\n      \"per_cpu\": [\n{}\n      ]}}",
                p.cpus,
                p.total_ops,
                p.elapsed_ms,
                p.ops_per_ms,
                if base > 0.0 { p.ops_per_ms / base } else { 0.0 },
                per_cpu.join(",\n")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"machine\": \"16 MHz + 1 wait state (SUN 3/160 emulation mode)\",\n  \
         \"workload\": \"{} counter spinners + {} /dev/null writers, {} cycles per point\",\n  \
         \"scaling\": [\n{}\n  ],\n  \
         \"cache_smp\": {{\n    \
         \"cold_open_us\": {:.3},\n    \
         \"warm_local_us\": {:.3},\n    \
         \"warm_cross_us\": {:.3},\n    \
         \"hits_local\": {},\n    \
         \"hits_cross\": {},\n    \
         \"bytes_shared_cross\": {},\n    \
         \"shared_tier_bytes\": {}\n  }}\n}}\n",
        smp::SPINNERS,
        smp::WRITERS,
        smp::RUN_CYCLES,
        rows.join(",\n"),
        cache.cold_open_us,
        cache.warm_local_us,
        cache.warm_cross_us,
        cache.hits_local,
        cache.hits_cross,
        cache.bytes_shared_cross,
        cache.shared_tier_bytes
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {path}");
}

/// Serialize the profiler's result (the per-thread I/O-rate table and
/// scheduler outcomes) as JSON.
fn trace_report_json(p: &profile::ProfileResult) -> String {
    let quanta: std::collections::HashMap<u32, (&str, u32)> = p
        .threads
        .iter()
        .map(|t| (t.tid, (t.role, t.quantum_us)))
        .collect();
    let rows: Vec<String> = p
        .report
        .threads
        .iter()
        .map(|t| {
            let (role, q) = quanta.get(&t.tid).copied().unwrap_or(("kernel/idle", 0));
            let latency: Vec<String> = t.latency.iter().map(u64::to_string).collect();
            format!(
                "    {{\"tid\": {}, \"role\": {}, \"ctx_switches\": {}, \"syscalls\": {}, \
                 \"irqs\": {}, \"queue_puts\": {}, \"queue_gets\": {}, \"cache_hits\": {}, \
                 \"cache_misses\": {}, \"recoveries\": {}, \"io_events\": {}, \
                 \"io_per_ms\": {:.3}, \"quantum_us\": {}, \"latency\": [{}]}}",
                t.tid,
                json_str(role),
                t.ctx_switches,
                t.syscalls,
                t.irqs,
                t.queue_puts,
                t.queue_gets,
                t.cache_hits,
                t.cache_misses,
                t.recoveries,
                t.io_events,
                t.io_per_ms,
                q,
                latency.join(", ")
            )
        })
        .collect();
    // Only multiprocessor reports carry per-CPU rows; on one CPU the
    // key is omitted entirely so the JSON is byte-identical to the
    // uniprocessor binary's.
    let cpus_section = if p.report.cpus.is_empty() {
        String::new()
    } else {
        let rows: Vec<String> = p
            .report
            .cpus
            .iter()
            .map(|c| {
                format!(
                    "    {{\"cpu\": {}, \"utilization\": {:.4}, \"steals\": {}, \
                     \"steal_records\": {}, \"offloads\": {}, \"busy_cycles\": {}, \
                     \"idle_cycles\": {}}}",
                    c.cpu,
                    c.utilization,
                    c.steals,
                    c.steal_records,
                    c.offloads,
                    c.busy_cycles,
                    c.idle_cycles
                )
            })
            .collect();
        format!("  \"cpus\": [\n{}\n  ],\n", rows.join(",\n"))
    };
    format!(
        "{{\n  \"machine\": \"16 MHz + 1 wait state (SUN 3/160 emulation mode)\",\n  \
         \"window_start\": {},\n  \"window_end\": {},\n  \"records\": {},\n  \
         \"dropped\": {},\n  \"adapt_passes\": {},\n  \"quantum_changes\": {},\n  \
         \"latency_buckets\": {:?},\n{}  \"threads\": [\n{}\n  ]\n}}\n",
        p.report.window_start,
        p.report.window_end,
        p.report.records,
        p.report.dropped,
        p.passes,
        p.adjustments,
        synthesis_core::monitor::LATENCY_BUCKETS,
        cpus_section,
        rows.join(",\n")
    )
}

fn kernel_size() -> Vec<Row> {
    // Section 6.4: the whole kernel assembles to 64 KB; with 3 processes
    // running the resident kernel is 32 KB, growing with threads and
    // open files.
    let mut k = synthesis_bench::boot_kernel();
    let boot_report = synthesis_core::monitor::size_report(&k);
    let boot_code = boot_report.code_resident as f64 / 1024.0;

    // Three threads, like the paper's "3 processes running" figure.
    let map = quamachine::mem::AddressMap::single(
        1,
        synthesis_core::layout::USER_BASE,
        synthesis_core::layout::USER_LEN,
    );
    let mut a = quamachine::asm::Asm::new("spin");
    let top = a.here();
    a.bcc(quamachine::isa::Cond::T, top);
    let entry = k.load_user_program(a.assemble().unwrap()).unwrap();
    let mut tids = Vec::new();
    for i in 0..3 {
        let tid = k
            .create_thread(
                entry,
                synthesis_core::layout::USER_BASE + 0x1000 + i * 0x800,
                map.clone(),
            )
            .unwrap();
        tids.push(tid);
    }
    let three = synthesis_core::monitor::size_report(&k);

    // Open ten files on the first thread: space grows with open files.
    for i in 0..10 {
        let name = format!("/f{i}");
        k.fs.create(&mut k.m, &mut k.heap, &name, 4096).unwrap();
        k.open_for(tids[0], &name).unwrap();
    }
    let ten_files = synthesis_core::monitor::size_report(&k);

    vec![
        Row::new(
            "static kernel code at boot [KB]",
            Some(32.0),
            boot_code,
            "KB",
        ),
        Row::new(
            "code with 3 threads [KB]",
            None,
            three.code_resident as f64 / 1024.0,
            "KB",
        ),
        Row::new(
            "code with 3 threads + 10 open files [KB]",
            None,
            ten_files.code_resident as f64 / 1024.0,
            "KB",
        ),
        Row::new(
            "kernel heap with 3 threads [KB]",
            None,
            f64::from(three.heap_in_use) / 1024.0,
            "KB",
        ),
        Row::new(
            "synthesized blocks resident",
            None,
            ten_files.code_blocks as f64,
            "blocks",
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let only: Option<u32> = match get("--table") {
        Some(s) => match s.parse::<u32>() {
            Ok(n @ 1..=5) => Some(n),
            _ => {
                eprintln!("error: --table takes a number 1-5, got {s:?}");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let iters: u32 = match get("--iters") {
        Some(s) => s.parse().unwrap_or_else(|_| {
            eprintln!("error: --iters takes a positive number, got {s:?}");
            std::process::exit(2);
        }),
        None => 40,
    };
    if iters == 0 {
        eprintln!("error: --iters must be at least 1");
        std::process::exit(2);
    }
    let cpus: usize = match get("--cpus") {
        Some(s) => match s.parse::<usize>() {
            Ok(n @ 1..=8) => n,
            _ => {
                eprintln!("error: --cpus takes a number 1-8, got {s:?}");
                std::process::exit(2);
            }
        },
        None => 1,
    };
    let size_only = args.iter().any(|a| a == "--kernel-size");

    if args.iter().any(|a| a == "--recovery-report") {
        let seed: u64 = match get("--seed") {
            Some(s) => s.parse().unwrap_or_else(|_| {
                eprintln!("error: --seed takes a number, got {s:?}");
                std::process::exit(2);
            }),
            None => 42,
        };
        eprintln!("[recovery report: chaos workload on {cpus} CPU(s), seed {seed}...]");
        let k = smp::chaos_run(cpus, seed);
        let report = synthesis_core::monitor::recovery_report(&k);
        if let Some(path) = get("--json") {
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        } else {
            print!("{}", report.render());
        }
        return;
    }

    if args.iter().any(|a| a == "--trace-report") {
        eprintln!("[trace report: profiling the mixed workload...]");
        let p = if cpus > 1 {
            profile::run_on(cpus, 8, 2_000_000)
        } else {
            profile::run(8, 2_000_000)
        };
        if let Some(path) = get("--json") {
            if let Err(e) = std::fs::write(&path, trace_report_json(&p)) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        } else {
            print!("{}", p.render());
        }
        return;
    }

    if cpus > 1 {
        eprintln!(
            "[smp: running the mixed workload at {:?} CPUs...]",
            smp::points_for(cpus)
        );
        let points = smp::scaling(cpus);
        let cache = smp::cache_smp();
        if let Some(path) = get("--json") {
            emit_smp_json(&path, &points, &cache);
        } else {
            println!("Synthesis kernel reproduction — SMP scaling");
            println!("machine: 16 MHz + 1 wait state (SUN 3/160 emulation mode)");
            print!("{}", smp::render(&points));
            println!(
                "cache: cold {:.1} µs, warm local {:.1} µs, warm cross-CPU {:.1} µs \
                 ({} local / {} cross hits, {} B shared tier)",
                cache.cold_open_us,
                cache.warm_local_us,
                cache.warm_cross_us,
                cache.hits_local,
                cache.hits_cross,
                cache.shared_tier_bytes
            );
        }
        return;
    }

    if let Some(path) = get("--json") {
        emit_json(&path, iters);
        return;
    }

    println!("Synthesis kernel reproduction — paper (SOSP '89) vs measured");
    println!("machine: 16 MHz + 1 wait state (SUN 3/160 emulation mode)");

    if size_only {
        print!("{}", render("Kernel size (Section 6.4)", &kernel_size()));
        return;
    }

    if only.is_none() || only == Some(1) {
        println!("\n[table 1: running the seven programs on both kernels ({iters} iterations)...]");
        print!(
            "{}",
            render(
                "Table 1: measured UNIX system calls (speedup, SUNOS-like / Synthesis)",
                &table1::run(iters)
            )
        );
    }
    if only.is_none() || only == Some(2) {
        println!("\n[table 2: single-call file and device I/O...]");
        print!(
            "{}",
            render("Table 2: file and device I/O (µs)", &table2::run())
        );
    }
    if only.is_none() || only == Some(3) {
        print!(
            "{}",
            render("Table 3: thread operations (µs)", &table3::run())
        );
    }
    if only.is_none() || only == Some(4) {
        print!(
            "{}",
            render("Table 4: dispatcher/scheduler (µs)", &table4::run())
        );
    }
    if only.is_none() || only == Some(5) {
        print!(
            "{}",
            render("Table 5: interrupt handling (µs)", &table5::run())
        );
    }
    if only.is_none() {
        print!("{}", render("Kernel size (Section 6.4)", &kernel_size()));
    }
}
