//! SMP scaling: the mixed workload across 1, 2, and 4 CPUs.
//!
//! Where Tables 1–5 time single calls on one CPU, this driver asks the
//! multiprocessor question: boot the same kernel with more CPUs, run the
//! same mixed workload (CPU-bound counters plus `/dev/null` writers),
//! and measure aggregate throughput plus the per-CPU scheduler traffic —
//! how many threads each CPU stole from or offered to the shared pool,
//! and how its slice cycles split between real threads and the idle
//! thread. One CPU is the uniprocessor kernel byte for byte; the scaling
//! points only add CPUs.
//!
//! A second probe, [`cache_smp`], times the specialization cache across
//! CPUs: a cold open on CPU 0, a warm same-CPU open, and a warm open
//! from CPU 1 that promotes the cached code to the shared read-mostly
//! tier.

use quamachine::asm::Asm;
use quamachine::isa::{Cond, Operand::*, Size::*};
use quamachine::mem::AddressMap;
use synthesis_core::kernel::{Kernel, KernelConfig};
use synthesis_core::layout;
use synthesis_core::monitor;
use synthesis_core::syscall::{general, traps};

const USTACK: u32 = layout::USER_BASE + 0x1_0000;
const UBUF: u32 = layout::USER_BASE + 0x2_0000;
const UPATH: u32 = layout::USER_BASE + 0x2_8000;
/// Per-thread op counters live here, one longword per worker.
const UCTRS: u32 = layout::USER_BASE + 0x3_0000;

/// Counter-spinning workers in the mixed workload.
pub const SPINNERS: usize = 6;
/// `/dev/null`-writing workers in the mixed workload.
pub const WRITERS: usize = 2;
/// Virtual cycles each scaling point runs for.
pub const RUN_CYCLES: u64 = 2_000_000;

/// One CPU's scheduler figures after a scaling run.
#[derive(Debug, Clone)]
pub struct CpuFigures {
    /// The CPU.
    pub cpu: usize,
    /// Threads pulled out of the shared steal pool.
    pub steals: u64,
    /// Threads offered into the pool for others to steal.
    pub offloads: u64,
    /// Slice cycles spent running real threads.
    pub busy_cycles: u64,
    /// Slice cycles spent in the idle thread.
    pub idle_cycles: u64,
}

/// One point of the scaling table.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// CPUs in this kernel.
    pub cpus: usize,
    /// Worker loop iterations completed, summed over all workers.
    pub total_ops: u64,
    /// Virtual milliseconds the run covered.
    pub elapsed_ms: f64,
    /// Aggregate throughput: `total_ops / elapsed_ms`.
    pub ops_per_ms: f64,
    /// Per-CPU scheduler figures.
    pub per_cpu: Vec<CpuFigures>,
}

fn user_map() -> AddressMap {
    AddressMap::single(1, layout::USER_BASE, layout::USER_LEN)
}

/// A worker spinning on a memory counter: every loop iteration bumps
/// its own longword at `UCTRS + 8*i`.
fn counter_spinner(k: &mut Kernel, i: usize) -> u32 {
    let mut a = Asm::new("smp_cnt");
    let ctr = UCTRS + 8 * u32::try_from(i).unwrap();
    let top = a.here();
    a.add(L, Imm(1), Dr(0));
    a.move_(L, Dr(0), Abs(ctr));
    a.bcc(Cond::T, top);
    let entry = k.load_user_program(a.assemble().unwrap()).unwrap();
    k.create_thread(
        entry,
        USTACK + 0x1000 * u32::try_from(i).unwrap(),
        user_map(),
    )
    .unwrap()
}

/// A worker writing 8-byte records to `/dev/null`, bumping its counter
/// once per write.
fn null_writer(k: &mut Kernel, i: usize) -> u32 {
    let mut a = Asm::new("smp_io");
    let ctr = UCTRS + 8 * u32::try_from(i).unwrap();
    a.move_i(L, general::OPEN, Dr(0));
    a.lea(Abs(UPATH), 0);
    a.trap(traps::GENERAL);
    a.move_(L, Dr(0), Dr(5));
    let top = a.here();
    a.move_(L, Dr(5), Dr(0));
    a.lea(Abs(UBUF), 0);
    a.move_i(L, 8, Dr(1));
    a.trap(traps::WRITE);
    a.add(L, Imm(1), Dr(6));
    a.move_(L, Dr(6), Abs(ctr));
    a.bcc(Cond::T, top);
    let entry = k.load_user_program(a.assemble().unwrap()).unwrap();
    k.create_thread(
        entry,
        USTACK + 0x1000 * u32::try_from(i).unwrap(),
        user_map(),
    )
    .unwrap()
}

/// Run the mixed workload on an `n`-CPU kernel for [`RUN_CYCLES`].
#[must_use]
pub fn run_point(n: usize) -> ScalingPoint {
    let mut k = Kernel::boot(KernelConfig {
        cpus: n,
        ..KernelConfig::default()
    })
    .expect("kernel boots");
    k.m.mem.poke_bytes(UPATH, b"/dev/null\0");

    let mut tids = Vec::new();
    for i in 0..SPINNERS {
        tids.push(counter_spinner(&mut k, i));
    }
    for i in 0..WRITERS {
        tids.push(null_writer(&mut k, SPINNERS + i));
    }
    for &tid in &tids {
        k.start(tid).unwrap();
    }

    let start = (0..n).map(|i| k.m.cpu_cycles(i)).max().unwrap_or(0);
    k.run(RUN_CYCLES);
    let end = (0..n).map(|i| k.m.cpu_cycles(i)).max().unwrap_or(0);
    let elapsed_ms = k.m.cost.cycles_to_us(end.saturating_sub(start)) / 1_000.0;

    let total_ops: u64 = (0..SPINNERS + WRITERS)
        .map(|i| u64::from(k.m.mem.peek(UCTRS + 8 * u32::try_from(i).unwrap(), L)))
        .sum();
    let per_cpu = (0..n)
        .map(|i| CpuFigures {
            cpu: i,
            steals: k.cpus[i].steals,
            offloads: k.cpus[i].offloads,
            busy_cycles: k.cpus[i].busy_cycles,
            idle_cycles: k.cpus[i].idle_cycles,
        })
        .collect();
    ScalingPoint {
        cpus: n,
        total_ops,
        elapsed_ms,
        ops_per_ms: if elapsed_ms > 0.0 {
            total_ops as f64 / elapsed_ms
        } else {
            0.0
        },
        per_cpu,
    }
}

/// The scaling points to run for a `--cpus n` request: powers of two up
/// to `n`, plus `n` itself (so `--cpus 4` measures 1, 2, and 4).
#[must_use]
pub fn points_for(n: usize) -> Vec<usize> {
    let mut pts: Vec<usize> = (0..).map(|i| 1usize << i).take_while(|&p| p <= n).collect();
    if pts.last() != Some(&n) {
        pts.push(n);
    }
    pts
}

/// Run the whole scaling table.
#[must_use]
pub fn scaling(n: usize) -> Vec<ScalingPoint> {
    points_for(n).into_iter().map(run_point).collect()
}

/// Run the mixed workload under the seeded chaos fault plan and return
/// the kernel so the caller can snapshot
/// [`monitor::recovery_report`](synthesis_core::monitor::recovery_report).
/// A uniprocessor kernel gets the classic soak plan; a multiprocessor
/// one adds the SMP fault domain (lost/delayed/spurious IPIs, dispatch
/// stalls).
#[must_use]
pub fn chaos_run(cpus: usize, seed: u64) -> Kernel {
    use quamachine::fault::{FaultConfig, FaultPlan};
    let mut k = Kernel::boot(KernelConfig {
        cpus,
        ..KernelConfig::default()
    })
    .expect("kernel boots");
    let cfg = if cpus > 1 {
        FaultConfig::soak_smp(cpus)
    } else {
        FaultConfig::soak()
    };
    k.m.fault = FaultPlan::seeded(seed, cfg);
    k.m.mem.poke_bytes(UPATH, b"/dev/null\0");
    let mut tids = Vec::new();
    for i in 0..SPINNERS {
        tids.push(counter_spinner(&mut k, i));
    }
    for i in 0..WRITERS {
        tids.push(null_writer(&mut k, SPINNERS + i));
    }
    for &tid in &tids {
        k.start(tid).unwrap();
    }
    k.run(RUN_CYCLES);
    k
}

/// Cross-CPU specialization-cache figures.
#[derive(Debug, Clone)]
pub struct CacheSmp {
    /// First open of the file: full synthesis pipeline (µs).
    pub cold_open_us: f64,
    /// Second open, same CPU: cache hit, pure linking (µs).
    pub warm_local_us: f64,
    /// Third open, from CPU 1: cache hit across CPUs (µs).
    pub warm_cross_us: f64,
    /// Cache hits taken on the inserting CPU.
    pub hits_local: u64,
    /// Cache hits taken from another CPU.
    pub hits_cross: u64,
    /// Bytes of cached code handed across CPUs.
    pub bytes_shared_cross: u64,
    /// Bytes in the shared read-mostly tier (entries seen by >1 CPU).
    pub shared_tier_bytes: u64,
}

/// Time a cold open, a warm same-CPU open, and a warm cross-CPU open on
/// a two-CPU kernel; report the cache's tier accounting.
#[must_use]
pub fn cache_smp() -> CacheSmp {
    let mut k = Kernel::boot(KernelConfig {
        cpus: 2,
        ..crate::measurement_config()
    })
    .expect("kernel boots");
    let mut a = Asm::new("parked");
    a.move_i(L, general::EXIT, Dr(0));
    a.trap(traps::GENERAL);
    let entry = k
        .load_user_program(a.assemble().expect("assembles"))
        .unwrap();
    let tid = k.create_thread(entry, USTACK, user_map()).unwrap();
    k.fs.create(&mut k.m, &mut k.heap, "/tmp/smp", 65536)
        .expect("file fits");

    let (_, cold) = monitor::measure(&mut k, |k| k.open_for(tid, "/tmp/smp").expect("cold open"));
    let (_, warm) = monitor::measure(&mut k, |k| k.open_for(tid, "/tmp/smp").expect("warm open"));
    k.m.switch_cpu(1);
    let (_, cross) = monitor::measure(&mut k, |k| {
        k.open_for(tid, "/tmp/smp").expect("cross-CPU open")
    });
    k.m.switch_cpu(0);

    let stats = &k.creator.stats;
    CacheSmp {
        cold_open_us: cold.us,
        warm_local_us: warm.us,
        warm_cross_us: cross.us,
        hits_local: stats.cache_hits_local,
        hits_cross: stats.cache_hits_cross,
        bytes_shared_cross: stats.bytes_shared_cross,
        shared_tier_bytes: k.creator.cache.shared_tier_bytes(),
    }
}

/// Render the scaling table as text.
#[must_use]
pub fn render(points: &[ScalingPoint]) -> String {
    use std::fmt::Write;
    let base = points.first().map_or(0.0, |p| p.ops_per_ms);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\n=== SMP scaling: mixed workload ({SPINNERS} counters + {WRITERS} writers, {RUN_CYCLES} cycles) ==="
    );
    let _ = writeln!(
        out,
        "{:<6} {:>12} {:>12} {:>8}   per-CPU (steals/offloads, busy%)",
        "cpus", "total ops", "ops/ms", "speedup"
    );
    for p in points {
        let speedup = if base > 0.0 { p.ops_per_ms / base } else { 0.0 };
        let per_cpu: Vec<String> = p
            .per_cpu
            .iter()
            .map(|c| {
                let total = c.busy_cycles + c.idle_cycles;
                let busy = if total > 0 {
                    100.0 * c.busy_cycles as f64 / total as f64
                } else {
                    0.0
                };
                format!("cpu{} {}/{} {busy:.0}%", c.cpu, c.steals, c.offloads)
            })
            .collect();
        let _ = writeln!(
            out,
            "{:<6} {:>12} {:>12.1} {:>7.2}x   {}",
            p.cpus,
            p.total_ops,
            p.ops_per_ms,
            speedup,
            per_cpu.join("  ")
        );
    }
    out
}
