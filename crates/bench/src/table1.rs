//! Table 1 — the same UNIX binaries on the baseline and on Synthesis.

use quamachine::asm::Asm;
use quamachine::machine::RunExit;
use synthesis_unix::emu::{boot_with_program, UnixEmulator};
use synthesis_unix::programs::{self, addrs};
use synthesis_unix::sunos::Sunos;

use crate::Row;

/// Run a program on the baseline kernel; returns elapsed virtual µs.
#[must_use]
pub fn run_sunos(program: Asm, bench_file: bool) -> f64 {
    let mut s = Sunos::boot();
    let entry = s.load_program(program);
    s.m.mem.poke_bytes(addrs::PATHS, &programs::path_blob());
    if bench_file {
        s.write_bench_file(&vec![0x5Au8; 4096]);
    }
    let t0 = s.m.now_us();
    let exit = s.run_program(entry, 60_000_000_000);
    assert_eq!(exit, RunExit::Halted, "baseline program must exit");
    s.m.now_us() - t0
}

/// Run a program under the Synthesis UNIX emulator; returns elapsed µs.
#[must_use]
pub fn run_synthesis(program: Asm, bench_file: bool) -> f64 {
    let (mut emu, tid) =
        boot_with_program(crate::measurement_config(), program).expect("emulator boots");
    if bench_file {
        make_bench_file(&mut emu);
    }
    let t0 = emu.k.m.now_us();
    assert!(
        emu.run_until_exit(tid, 60_000_000_000),
        "emulated program must exit"
    );
    emu.k.m.now_us() - t0
}

fn make_bench_file(emu: &mut UnixEmulator) {
    let fid = emu
        .k
        .fs
        .create(&mut emu.k.m, &mut emu.k.heap, "/tmp/bench", 65536)
        .expect("file fits");
    emu.k
        .fs
        .write_contents(&mut emu.k.m, fid, &vec![0x5Au8; 4096]);
}

/// The paper's Table 1 speedup factors (SUN time / Synthesis time),
/// derived from its seconds columns.
#[must_use]
pub fn paper_ratios() -> [(&'static str, f64); 7] {
    [
        ("1  compute (calibration)", 1.0), // 20.9 vs ~21: parity
        ("2  r/w pipe, 1 byte", 56.0),
        ("3  r/w pipe, 1 KB", 4.7), // ~15.3 vs ~3.3
        ("4  r/w pipe, 4 KB", 6.0), // 38.2 vs ~6.5
        ("5  r/w file, 1 KB", 9.0),
        ("6  open /dev/null + close", 28.0), // "20 to 40 times"
        ("7  open /dev/tty + close", 28.0),
    ]
}

/// A boxed program builder.
type ProgBuilder = Box<dyn Fn() -> Asm>;

/// Regenerate Table 1 with `iters` loop iterations per program.
#[must_use]
pub fn run(iters: u32) -> Vec<Row> {
    let progs: [(usize, ProgBuilder, bool); 7] = [
        (0, Box::new(move || programs::compute(1024, 2)), false),
        // Row 2 times the cheapest operation in the table (a fused
        // 1-byte write+read lands near 200 cycles), so it gets the most
        // iterations: one-shot costs — pipe open, first-call wrapper
        // synthesis — must amortize out of a steady-state figure, just
        // as the paper timed long-running loops. Both kernels run the
        // identical scaled program, so the ratio stays like-for-like
        // (rows 4-7 already scale per-row, in the other direction).
        (1, Box::new(move || programs::pipe_rw(1, iters * 25)), false),
        (2, Box::new(move || programs::pipe_rw(1024, iters)), false),
        (
            3,
            Box::new(move || programs::pipe_rw(4096, iters.div_ceil(4))),
            false,
        ),
        (
            4,
            Box::new(move || programs::file_rw(iters.div_ceil(2))),
            true,
        ),
        (
            5,
            Box::new(move || programs::open_close(0, iters.div_ceil(2))),
            false,
        ),
        (
            6,
            Box::new(move || programs::open_close(0x10, iters.div_ceil(2))),
            false,
        ),
    ];
    let names = paper_ratios();
    let mut rows = Vec::new();
    for (idx, build, file) in progs {
        let sun = run_sunos(build(), file);
        let syn = run_synthesis(build(), file);
        let (name, paper) = names[idx];
        rows.push(Row::new(
            format!("{name} [speedup]"),
            Some(paper),
            sun / syn,
            "x",
        ));
    }
    rows
}
