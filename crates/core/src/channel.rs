//! The quaject channel registry: declarative `open` specs.
//!
//! Every openable kernel object — `/dev/null`, the tty, cached files,
//! pipe ends — describes itself as a [`ChannelSpec`]: which templates to
//! specialize for the `read` and `write` ends, the bindings (the
//! invariants the creator factors in), and the class-specific state to
//! release at teardown. `Kernel::open_for` is then one generic pipeline
//! — lookup → specialize (cached) → dynamic-link — with a single
//! rollback path, instead of a per-device match with hand-cloned error
//! unwinds. Adding a device class means writing a new spec constructor,
//! not another match arm.

use synthesis_codegen::template::Bindings;

use crate::fs::File;
use crate::io::pipe::Pipe;
use crate::io::tty::TtyServer;

/// The kernel object behind a channel, with the state its teardown must
/// release. This is the host-side mirror stored in the fd table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelClass {
    /// `/dev/null`.
    Null,
    /// The tty (`/dev/tty` cooked, `/dev/tty-raw` raw).
    Tty {
        /// Whether this is the cooked (line-editing) discipline.
        cooked: bool,
    },
    /// A cached file.
    File {
        /// File identifier in the [`crate::fs::Fs`].
        fid: u32,
        /// The seek-offset slot, shared by every open of this file in
        /// this thread (so identical invariants mean identical code).
        offset_slot: u32,
    },
    /// One end of a pipe.
    Pipe {
        /// Pipe identifier.
        pid: u32,
        /// Whether this is the read end.
        read_end: bool,
    },
}

/// One endpoint to specialize: a template name plus its bindings.
#[derive(Debug, Clone)]
pub struct EndSpec {
    /// Template name in the creator's library.
    pub template: &'static str,
    /// The invariants to factor in.
    pub bindings: Bindings,
}

/// Everything the generic open pipeline needs: the class (teardown
/// state) and the endpoint specs. An absent end links the shared
/// `EBADF` routine.
#[derive(Debug, Clone)]
pub struct ChannelSpec {
    /// The object class.
    pub class: ChannelClass,
    /// The `read` endpoint, if the channel is readable.
    pub read: Option<EndSpec>,
    /// The `write` endpoint, if the channel is writable.
    pub write: Option<EndSpec>,
}

impl ChannelSpec {
    /// `/dev/null`.
    #[must_use]
    pub fn null(gauge: u32) -> ChannelSpec {
        ChannelSpec {
            class: ChannelClass::Null,
            read: Some(EndSpec {
                template: "read_null",
                bindings: Bindings::new().with("gauge", gauge),
            }),
            write: Some(EndSpec {
                template: "write_null",
                bindings: Bindings::new().with("gauge", gauge),
            }),
        }
    }

    /// The tty, cooked or raw.
    #[must_use]
    pub fn tty(srv: &TtyServer, cooked: bool, gauge: u32) -> ChannelSpec {
        let mut rb = Bindings::new();
        rb.bind("qhead", srv.qhead_slot)
            .bind("qtail", srv.qtail_slot)
            .bind("qbuf", srv.qbuf)
            .bind("qmask", srv.qmask)
            .bind("gauge", gauge);
        if cooked {
            rb.bind("tty_data", srv.data_reg);
        }
        ChannelSpec {
            class: ChannelClass::Tty { cooked },
            read: Some(EndSpec {
                template: if cooked { "cooked_read" } else { "read_tty" },
                bindings: rb,
            }),
            write: Some(EndSpec {
                template: "write_tty",
                bindings: Bindings::new()
                    .with("tty_data", srv.data_reg)
                    .with("gauge", gauge),
            }),
        }
    }

    /// A cached file, reading and writing through `offset_slot`.
    #[must_use]
    pub fn file(f: &File, offset_slot: u32, gauge: u32) -> ChannelSpec {
        ChannelSpec {
            class: ChannelClass::File {
                fid: f.fid,
                offset_slot,
            },
            read: Some(EndSpec {
                template: "read_file",
                bindings: Bindings::new()
                    .with("offset_slot", offset_slot)
                    .with("len_slot", f.len_slot)
                    .with("buf", f.buf)
                    .with("gauge", gauge),
            }),
            write: Some(EndSpec {
                template: "write_file",
                bindings: Bindings::new()
                    .with("offset_slot", offset_slot)
                    .with("len_slot", f.len_slot)
                    .with("buf", f.buf)
                    .with("cap", f.cap)
                    .with("gauge", gauge),
            }),
        }
    }

    /// One end of a pipe (`read_end` selects which).
    #[must_use]
    pub fn pipe(p: &Pipe, read_end: bool, gauge: u32) -> ChannelSpec {
        let b = Self::pipe_bindings(p, gauge);
        let end = |template| {
            Some(EndSpec {
                template,
                bindings: b.clone(),
            })
        };
        ChannelSpec {
            class: ChannelClass::Pipe {
                pid: p.pid,
                read_end,
            },
            read: if read_end { end("pipe_read") } else { None },
            write: if read_end { None } else { end("pipe_write") },
        }
    }

    /// The trap-elided fused wrapper for one end of this channel: the
    /// template name and the full binding set (wrapper holes plus the
    /// collapsed callee's holes, namespaced `"<callee>~rts.<hole>"` the
    /// way Collapsing Layers renames them).
    ///
    /// `None` when the end does not exist or has no fused form (e.g.
    /// the cooked tty's line-editing read). Pipe-end eligibility (solo
    /// pipes only) is the *kernel's* call — see
    /// [`Kernel::fused_rw_spec`](crate::kernel::Kernel::fused_rw_spec)
    /// — because it needs the live reader/writer counts.
    #[must_use]
    pub fn fused_end(&self, read_end: bool, fd: u32) -> Option<(String, Bindings)> {
        let end = if read_end {
            self.read.as_ref()
        } else {
            self.write.as_ref()
        }?;
        if !matches!(
            end.template,
            "pipe_read"
                | "pipe_write"
                | "read_null"
                | "write_null"
                | "read_tty"
                | "write_tty"
                | "read_file"
                | "write_file"
        ) {
            return None;
        }
        let fused = format!("fused_{}", end.template);
        let callee = format!("{}~rts", end.template);
        let mut b = Bindings::new();
        b.bind("fd", fd);
        // The pipe wrappers carry their own copy of the ring invariants
        // for the 1-byte fast path.
        if end.template == "pipe_write" || end.template == "pipe_read" {
            for name in ["head_slot", "tail_slot", "buf", "mask", "gauge"] {
                b.bind(name, end.bindings.get(name)?);
            }
            if end.template == "pipe_write" {
                b.bind("size", end.bindings.get("size")?);
            }
        }
        // The collapsed callee's holes, namespaced by Collapsing Layers.
        for (name, val) in end.bindings.sorted_pairs() {
            b.bind(format!("{callee}.{name}"), val);
        }
        Some((fused, b))
    }

    fn pipe_bindings(p: &Pipe, gauge: u32) -> Bindings {
        Bindings::new()
            .with("head_slot", p.head_slot)
            .with("tail_slot", p.tail_slot)
            .with("buf", p.buf)
            .with("size", p.size)
            .with("mask", p.size - 1)
            .with("gauge", gauge)
            .with("pid", p.pid)
            .with("r_wait", p.r_wait_slot)
            .with("w_wait", p.w_wait_slot)
    }
}

/// Per-`(thread, file)` channel state: one seek-offset slot shared by
/// every open of that file in that thread, so reopening hits the
/// specialization cache (same invariants ⇒ same code). `refs` counts
/// fds using the slot; it is freed when the last closes.
#[derive(Debug)]
pub struct FileChan {
    /// The shared seek-offset slot in kernel memory.
    pub offset_slot: u32,
    /// Open fds using this slot.
    pub refs: u32,
}
