//! Interrupt handling and Procedure Chaining (Sections 3.1, 5.3).

pub mod chain;
