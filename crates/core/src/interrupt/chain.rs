//! Procedure Chaining (Section 3.1).
//!
//! "Procedure Chaining avoids synchronization by serializing the execution
//! of conflicting threads. Instead of allowing concurrent execution ...
//! we chain the new procedure to be executed to the end of the currently
//! running procedure. ... Procedure Chaining is implemented efficiently
//! by simply changing the return addresses on the stack."
//!
//! [`chain_procedure`] rewrites the return address of the *innermost
//! active exception frame* so that when the current handler returns, the
//! chained procedure runs first; the original continuation address is
//! parked in a per-chain slot that the chained procedure's final `jmp`
//! reads. A chained procedure is a code block ending in
//! `jmp (<resume_slot>).l`-style indirection, built by
//! [`chained_stub_template`].

use quamachine::asm::Asm;
use quamachine::isa::{Operand, Size};
use quamachine::machine::Machine;
use synthesis_codegen::template::Template;

use crate::charges;

/// Build a chained-procedure stub: runs `body` (emitted by the caller
/// into `asm` beforehand is not possible with a template, so the stub
/// calls `target` with `jsr`), then jumps to the address parked in
/// `resume_slot`.
///
/// Holes: `target` (the procedure to run), `resume_slot` (where
/// [`chain_procedure`] parks the displaced return address).
#[must_use]
pub fn chained_stub_template() -> Template {
    let mut a = Asm::new("chain_stub");
    let target = a.abs_hole("target");
    let resume_slot = a.abs_hole("resume_slot");
    a.jsr(target);
    // Resume the displaced continuation: load it and go.
    a.move_(Size::L, resume_slot, Operand::Ar(0));
    a.jmp(Operand::Ind(0));
    Template::from_asm(a).expect("assembles")
}

/// Chain `stub_entry` onto the end of the current exception handler:
/// the stacked return PC (at `sp + 2`) is parked in `resume_slot` and
/// replaced by `stub_entry`.
///
/// Charges the paper's "chain to a procedure" work: two memory moves
/// (Table 5: 4 µs, 7 µs with one retry).
pub fn chain_procedure(m: &mut Machine, resume_slot: u32, stub_entry: u32) {
    let sp = m.cpu.a[7];
    let old_pc = m.mem.peek(sp.wrapping_add(2), Size::L);
    m.mem.poke(resume_slot, Size::L, old_pc);
    m.mem.poke(sp.wrapping_add(2), Size::L, stub_entry);
    let c = 2 * charges::code_patch(&m.cost);
    m.charge(c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::asm::Asm;
    use quamachine::isa::{Operand::*, Size::L};
    use quamachine::machine::{Machine, MachineConfig, RunExit};
    use synthesis_codegen::creator::{QuajectCreator, SynthesisOptions};
    use synthesis_codegen::template::Bindings;

    /// End-to-end: a trap handler chains a procedure; the procedure runs
    /// after the handler's rte, then control resumes at the displaced
    /// continuation.
    #[test]
    fn chained_procedure_runs_after_handler_returns() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let mut c = QuajectCreator::new(0x10_0000, 0x1_0000);
        let resume_slot = 0x2000;

        // The procedure to chain: d5 = 77; rts.
        let mut p = Asm::new("proc");
        p.move_i(L, 77, Dr(5));
        p.rts();
        let proc_code = c
            .synthesize_template(
                &mut m,
                &synthesis_codegen::template::Template::from_asm(p).unwrap(),
                &Bindings::new(),
                SynthesisOptions::full(),
            )
            .unwrap();

        // The chain stub.
        c.lib.add(chained_stub_template());
        let stub = c
            .synthesize(
                &mut m,
                "chain_stub",
                Bindings::new()
                    .bind("target", proc_code.base)
                    .bind("resume_slot", resume_slot),
                SynthesisOptions::full(),
            )
            .unwrap();

        // Trap handler: kcall #42 (the host chains during it), rte.
        let mut h = Asm::new("handler");
        h.kcall(42);
        h.rte();
        let handler = c
            .synthesize_template(
                &mut m,
                &synthesis_codegen::template::Template::from_asm(h).unwrap(),
                &Bindings::new(),
                SynthesisOptions::full(),
            )
            .unwrap();
        m.cpu.vbr = 0x100;
        m.mem.poke(0x100 + 4 * 32, L, handler.base);

        // Main: trap #0; then d6 = 1; halt.
        let mut main = Asm::new("main");
        main.trap(0);
        main.move_i(L, 1, Dr(6));
        main.halt();
        let mb = m.load_block(0x8000, main.assemble().unwrap()).unwrap();
        m.cpu.pc = mb;
        m.cpu.a[7] = 0xF000;

        // Run to the kcall, chain, resume.
        match m.run(100_000) {
            RunExit::KCall(42) => chain_procedure(&mut m, resume_slot, stub.base),
            other => panic!("expected kcall, got {other:?}"),
        }
        assert_eq!(m.run(100_000), RunExit::Halted);
        assert_eq!(m.cpu.d[5], 77, "chained procedure ran");
        assert_eq!(m.cpu.d[6], 1, "original continuation resumed after it");
    }
}
