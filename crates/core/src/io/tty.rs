//! The tty device server and the cooked-tty filter.
//!
//! "The Synthesis equivalent of UNIX cooked tty driver is a filter that
//! processes the output from the raw tty server and interprets the erase
//! and kill control characters. This filter reads characters from the raw
//! keyboard server through a dedicated queue. To send characters to the
//! screen, however, the filter writes to an optimistic queue, since
//! output can come from both a user program or the echoing of input
//! characters" (Section 5.1).
//!
//! The raw server is the synthesized receive-interrupt handler
//! ([`crate::templates::irq::tty_rx_template`]) feeding a dedicated ring
//! in kernel memory; the cooked filter below is synthesized per open and
//! collapses the raw-queue `get` inline (Collapsing Layers: "instead of
//! communicating to the raw tty through a pipe ... the cooked tty makes a
//! procedure call to the raw tty to get the next character", Section
//! 5.4).

use quamachine::asm::Asm;
use quamachine::isa::Size;
use quamachine::isa::{Cond, IndexSpec, Operand::*, Size::*};
use quamachine::machine::Machine;
use synthesis_codegen::template::Template;

use crate::alloc::fastfit::OutOfMemory;
use crate::alloc::FastFit;

/// Raw input ring size (power of two).
pub const RAW_RING: u32 = 256;

/// The erase character (backspace).
pub const CH_ERASE: u32 = 0x08;
/// The kill character (^U).
pub const CH_KILL: u32 = 0x15;

/// Kernel-side state of the tty server.
#[derive(Debug)]
pub struct TtyServer {
    /// Head-counter slot (written by the receive interrupt).
    pub qhead_slot: u32,
    /// Tail-counter slot (written by readers).
    pub qtail_slot: u32,
    /// Ring base.
    pub qbuf: u32,
    /// Ring mask.
    pub qmask: u32,
    /// Interrupt gauge slot (for the scheduler).
    pub gauge_slot: u32,
    /// Reader-waiting flag slot.
    pub waiters_slot: u32,
    /// The tty device's DATA register address.
    pub data_reg: u32,
}

impl TtyServer {
    /// Allocate the server's kernel memory.
    ///
    /// # Errors
    ///
    /// Fails when the kernel heap is exhausted.
    pub fn allocate(
        m: &mut Machine,
        heap: &mut FastFit,
        data_reg: u32,
    ) -> Result<TtyServer, OutOfMemory> {
        let slots = heap.alloc(16)?;
        let qbuf = heap.alloc(RAW_RING)?;
        for off in (0..16).step_by(4) {
            m.mem.poke(slots + off, Size::L, 0);
        }
        Ok(TtyServer {
            qhead_slot: slots,
            qtail_slot: slots + 4,
            gauge_slot: slots + 8,
            waiters_slot: slots + 12,
            qbuf,
            qmask: RAW_RING - 1,
            data_reg,
        })
    }

    /// Characters currently buffered in the raw ring.
    #[must_use]
    pub fn available(&self, m: &Machine) -> u32 {
        m.mem
            .peek(self.qhead_slot, Size::L)
            .wrapping_sub(m.mem.peek(self.qtail_slot, Size::L))
    }
}

/// The cooked-tty read routine: reads raw characters (inline dedicated-
/// queue `get` — the collapsed layer), interprets erase/kill, echoes to
/// the screen, and returns at newline or when the buffer is full.
///
/// Arguments per the read ABI (`a0` buffer, `d1` max). Returns the line
/// length in `d0` (including the newline).
///
/// Holes: `qhead`, `qtail`, `qbuf`, `qmask`, `tty_data` (echo register),
/// `gauge`.
#[must_use]
pub fn cooked_read_template() -> Template {
    let mut a = Asm::new("cooked_read");
    let qhead = a.abs_hole("qhead");
    let qtail = a.abs_hole("qtail");
    let qbuf = a.imm_hole("qbuf");
    let qmask = a.imm_hole("qmask");
    let tty_data = a.abs_hole("tty_data");
    let gauge = a.abs_hole("gauge");

    let get_retry = a.label();
    let have = a.label();
    let not_erase = a.label();
    let not_kill = a.label();
    let no_undo = a.label();
    let store = a.label();
    let done = a.label();

    a.move_(L, Ar(0), Ar(2)); // line start (for erase/kill and count)

    // --- get one raw character into d0 (collapsed dedicated-queue get).
    a.bind(get_retry);
    let top = a.here();
    a.move_(L, qtail, Dr(2));
    a.cmp(L, qhead, Dr(2));
    a.bcc(Cond::Ne, have);
    a.kcall(crate::syscall::kcalls::WAIT_TTY);
    a.bra(get_retry);
    a.bind(have);
    a.move_(L, Dr(2), Dr(3));
    a.and(L, qmask, Dr(3));
    a.move_(L, qbuf, Ar(1));
    a.move_i(L, 0, Dr(0));
    a.move_(B, Idx(0, 1, IndexSpec::d(3, 1)), Dr(0));
    a.add(L, Imm(1), Dr(2));
    a.move_(L, Dr(2), qtail);

    // --- the discipline.
    a.cmp(L, Imm(CH_ERASE), Dr(0));
    a.bcc(Cond::Ne, not_erase);
    // Erase: drop the last character, if any; echo the backspace.
    a.cmp(L, Ar(0), Ar(2)); // start - cursor... flags of (a2 - a0)
    a.bcc(Cond::Eq, no_undo);
    a.sub(L, Imm(1), Ar(0));
    a.move_(L, Dr(0), tty_data);
    a.bind(no_undo);
    a.bra(top);
    a.bind(not_erase);
    a.cmp(L, Imm(CH_KILL), Dr(0));
    a.bcc(Cond::Ne, not_kill);
    // Kill: restart the line; echo a newline.
    a.move_(L, Ar(2), Ar(0));
    a.move_i(L, 10, Dr(2));
    a.move_(L, Dr(2), tty_data);
    a.bra(top);
    a.bind(not_kill);
    // Ordinary character: store, echo, stop at newline or full buffer.
    a.bind(store);
    a.move_(B, Dr(0), PostInc(0));
    a.move_(L, Dr(0), tty_data); // echo
    a.cmp(L, Imm(10), Dr(0));
    a.bcc(Cond::Eq, done);
    a.move_(L, Ar(0), Dr(2));
    a.sub(L, Ar(2), Dr(2)); // length so far
    a.cmp(L, Dr(2), Dr(1)); // max - length
    a.bcc(Cond::Hi, top); // room left: keep reading
    a.bind(done);
    a.move_(L, Ar(0), Dr(0));
    a.sub(L, Ar(2), Dr(0)); // line length
    a.add(L, Imm(1), gauge);
    a.rte();
    Template::from_asm(a).expect("assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use synthesis_codegen::verify;

    #[test]
    fn cooked_template_verifies() {
        verify::verify(&cooked_read_template()).unwrap();
    }

    #[test]
    fn tty_server_allocates_ring() {
        let mut m = Machine::new(quamachine::machine::MachineConfig::sun3_emulation());
        let mut heap = FastFit::new(
            crate::layout::KERNEL_HEAP_BASE,
            crate::layout::KERNEL_HEAP_LEN,
        );
        let t = TtyServer::allocate(&mut m, &mut heap, 0xFF00_0000).unwrap();
        assert_eq!(t.available(&m), 0);
        m.mem.poke(t.qhead_slot, Size::L, 5);
        assert_eq!(t.available(&m), 5);
    }
}
