//! Kernel pipe objects.
//!
//! A pipe is an SP-SC byte ring in kernel memory; `open`-time synthesis
//! folds its addresses into the endpoints' `read`/`write` code
//! ([`crate::templates::pipe`]). The descriptor slots live in simulated
//! memory because the synthesized code manipulates them directly.

use quamachine::isa::Size;
use quamachine::machine::Machine;

use crate::alloc::fastfit::OutOfMemory;
use crate::alloc::FastFit;

/// Default pipe capacity in bytes (a power of two; comfortably above the
/// 4 KB chunks of Table 1's program 4).
pub const DEFAULT_PIPE_SIZE: u32 = 8192;

/// A kernel pipe.
#[derive(Debug)]
pub struct Pipe {
    /// Pipe id (index in the kernel's pipe table).
    pub pid: u32,
    /// Address of the free-running head counter (writer-owned).
    pub head_slot: u32,
    /// Address of the free-running tail counter (reader-owned).
    pub tail_slot: u32,
    /// Ring buffer base.
    pub buf: u32,
    /// Ring size (power of two).
    pub size: u32,
    /// Reader-waiting flag slot (checked by the synthesized writer).
    pub r_wait_slot: u32,
    /// Writer-waiting flag slot (checked by the synthesized reader).
    pub w_wait_slot: u32,
    /// Open read-end fds (the kernel frees the ring when both end
    /// counts reach zero).
    pub readers: u32,
    /// Open write-end fds.
    pub writers: u32,
}

impl Pipe {
    /// Allocate a pipe's kernel memory.
    ///
    /// # Errors
    ///
    /// Fails when the kernel heap is exhausted.
    pub fn allocate(
        m: &mut Machine,
        heap: &mut FastFit,
        pid: u32,
        size: u32,
    ) -> Result<Pipe, OutOfMemory> {
        assert!(size.is_power_of_two(), "pipe size must be a power of two");
        let slots = heap.alloc(16)?;
        let buf = heap.alloc(size)?;
        for off in (0..16).step_by(4) {
            m.mem.poke(slots + off, Size::L, 0);
        }
        Ok(Pipe {
            pid,
            head_slot: slots,
            tail_slot: slots + 4,
            r_wait_slot: slots + 8,
            w_wait_slot: slots + 12,
            buf,
            size,
            readers: 0,
            writers: 0,
        })
    }

    /// Free the pipe's kernel memory.
    pub fn release(&self, heap: &mut FastFit) {
        heap.free(self.head_slot, 16);
        heap.free(self.buf, self.size);
    }

    /// Bytes currently buffered.
    #[must_use]
    pub fn available(&self, m: &Machine) -> u32 {
        let h = m.mem.peek(self.head_slot, Size::L);
        let t = m.mem.peek(self.tail_slot, Size::L);
        h.wrapping_sub(t)
    }

    /// Free space in bytes.
    #[must_use]
    pub fn space(&self, m: &Machine) -> u32 {
        self.size - self.available(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::machine::MachineConfig;

    #[test]
    fn allocate_and_inspect() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let mut heap = FastFit::new(
            crate::layout::KERNEL_HEAP_BASE,
            crate::layout::KERNEL_HEAP_LEN,
        );
        let p = Pipe::allocate(&mut m, &mut heap, 0, 4096).unwrap();
        assert_eq!(p.available(&m), 0);
        assert_eq!(p.space(&m), 4096);
        // Simulate the synthesized writer bumping head.
        m.mem.poke(p.head_slot, Size::L, 100);
        assert_eq!(p.available(&m), 100);
        assert_eq!(p.space(&m), 3996);
        p.release(&mut heap);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let mut heap = FastFit::new(
            crate::layout::KERNEL_HEAP_BASE,
            crate::layout::KERNEL_HEAP_LEN,
        );
        let _ = Pipe::allocate(&mut m, &mut heap, 0, 1000);
    }
}
