//! The disk path: raw disk server, disk scheduler, and cache manager.
//!
//! "Connected to the disk hardware we have a raw disk device server. The
//! next stage in the pipeline is the disk scheduler, which contains the
//! disk request queue, followed by the default file system cache manager,
//! which contains the queue of data transfer buffers" (Section 5.1).

use std::collections::{BTreeMap, HashMap, VecDeque};

use quamachine::devices::dev_reg_addr;
use quamachine::devices::disk::{
    CMD_READ, CMD_WRITE, REG_ADDR, REG_CMD, REG_COUNT, REG_SECTOR, SECTOR_SIZE,
};
use quamachine::machine::Machine;

use crate::alloc::fastfit::OutOfMemory;
use crate::alloc::FastFit;

/// A queued disk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRequest {
    /// First sector.
    pub sector: u32,
    /// Sectors to transfer.
    pub count: u32,
    /// DMA address.
    pub addr: u32,
    /// Read (`true`) or write.
    pub read: bool,
    /// Requester cookie (e.g. a thread id to wake).
    pub cookie: u32,
}

/// The disk scheduler: an elevator over the request queue.
///
/// Requests are serviced in ascending-sector order from the current head
/// position, then the elevator reverses — the classic SCAN policy the
/// request queue exists to enable.
#[derive(Debug)]
pub struct DiskScheduler {
    device: usize,
    queue: BTreeMap<u32, VecDeque<DiskRequest>>,
    inflight: Option<DiskRequest>,
    head_pos: u32,
    ascending: bool,
    /// Requests completed.
    pub completed: u64,
    /// Total sectors moved.
    pub sectors_moved: u64,
}

impl DiskScheduler {
    /// A scheduler driving device index `device`.
    #[must_use]
    pub fn new(device: usize) -> DiskScheduler {
        DiskScheduler {
            device,
            queue: BTreeMap::new(),
            inflight: None,
            head_pos: 0,
            ascending: true,
            completed: 0,
            sectors_moved: 0,
        }
    }

    /// Enqueue a request; starts the disk if it was idle.
    pub fn submit(&mut self, m: &mut Machine, req: DiskRequest) {
        self.queue.entry(req.sector).or_default().push_back(req);
        if self.inflight.is_none() {
            self.issue_next(m);
        }
    }

    /// Pick the next request by the elevator and program the device.
    fn issue_next(&mut self, m: &mut Machine) {
        let next = if self.ascending {
            self.queue
                .range(self.head_pos..)
                .next()
                .map(|(&s, _)| s)
                .or_else(|| {
                    self.ascending = false;
                    self.queue
                        .range(..self.head_pos)
                        .next_back()
                        .map(|(&s, _)| s)
                })
        } else {
            self.queue
                .range(..=self.head_pos)
                .next_back()
                .map(|(&s, _)| s)
                .or_else(|| {
                    self.ascending = true;
                    self.queue.range(self.head_pos..).next().map(|(&s, _)| s)
                })
        };
        let Some(sector) = next else {
            return;
        };
        let q = self.queue.get_mut(&sector).expect("key exists");
        let req = q.pop_front().expect("non-empty");
        if q.is_empty() {
            self.queue.remove(&sector);
        }
        let d = self.device;
        m.host_reg_write(dev_reg_addr(d, REG_SECTOR), req.sector);
        m.host_reg_write(dev_reg_addr(d, REG_ADDR), req.addr);
        m.host_reg_write(dev_reg_addr(d, REG_COUNT), req.count);
        m.host_reg_write(
            dev_reg_addr(d, REG_CMD),
            if req.read { CMD_READ } else { CMD_WRITE },
        );
        self.inflight = Some(req);
    }

    /// The device finished the in-flight request; returns it and issues
    /// the next one.
    pub fn on_complete(&mut self, m: &mut Machine) -> Option<DiskRequest> {
        let done = self.inflight.take()?;
        self.head_pos = done.sector + done.count;
        self.completed += 1;
        self.sectors_moved += u64::from(done.count);
        self.issue_next(m);
        Some(done)
    }

    /// Whether a request is being serviced.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.inflight.is_some()
    }

    /// Queued (not yet issued) requests.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.values().map(VecDeque::len).sum()
    }
}

/// The buffer-cache manager: sector-granular cache buffers in kernel
/// memory.
#[derive(Debug, Default)]
pub struct BufferCache {
    map: HashMap<u32, u32>, // sector -> buffer addr
    lru: VecDeque<u32>,
    capacity: usize,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

impl BufferCache {
    /// A cache of at most `capacity` sector buffers.
    #[must_use]
    pub fn new(capacity: usize) -> BufferCache {
        BufferCache {
            capacity,
            ..BufferCache::default()
        }
    }

    /// Look up a sector; `Some(addr)` on a hit.
    pub fn get(&mut self, sector: u32) -> Option<u32> {
        match self.map.get(&sector) {
            Some(&addr) => {
                self.hits += 1;
                self.lru.retain(|&s| s != sector);
                self.lru.push_back(sector);
                Some(addr)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a sector buffer, evicting the least recently used if full.
    /// Returns the evicted `(sector, addr)` so the caller can free or
    /// write it back.
    pub fn insert(&mut self, sector: u32, addr: u32) -> Option<(u32, u32)> {
        let evicted = if self.map.len() >= self.capacity {
            self.lru.pop_front().map(|s| {
                let a = self.map.remove(&s).expect("lru entry in map");
                (s, a)
            })
        } else {
            None
        };
        self.map.insert(sector, addr);
        self.lru.push_back(sector);
        evicted
    }

    /// Allocate a sector buffer from the heap.
    ///
    /// # Errors
    ///
    /// Fails when the heap is exhausted.
    pub fn alloc_buffer(heap: &mut FastFit) -> Result<u32, OutOfMemory> {
        heap.alloc(SECTOR_SIZE)
    }

    /// Number of cached sectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::devices::disk::Disk;
    use quamachine::machine::{Machine, MachineConfig};

    fn machine_with_disk() -> (Machine, usize) {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let d = m.attach_device(Box::new(Disk::new(2, 1024)));
        (m, d)
    }

    /// Drive the machine until the disk IRQ is pending, then ack it.
    fn wait_done(m: &mut Machine) {
        for _ in 0..100_000 {
            m.process_events();
            if m.irq.any_pending() {
                // Ack by reading STATUS.
                let _ = m.host_reg_read(dev_reg_addr(0, quamachine::devices::disk::REG_STATUS));
                return;
            }
            m.meter.cycles += 1000;
        }
        panic!("disk never completed");
    }

    #[test]
    fn requests_complete_and_dma_lands() {
        let (mut m, dev) = machine_with_disk();
        // Put recognizable data on sector 7.
        let img: Vec<u8> = (0..512u32).map(|i| (i % 251) as u8).collect();
        m.device_mut::<Disk>(dev).unwrap().load_image(7, &img);
        let mut sched = DiskScheduler::new(dev);
        sched.submit(
            &mut m,
            DiskRequest {
                sector: 7,
                count: 1,
                addr: 0x2_0000,
                read: true,
                cookie: 0,
            },
        );
        assert!(sched.busy());
        wait_done(&mut m);
        let done = sched.on_complete(&mut m).unwrap();
        assert_eq!(done.sector, 7);
        assert_eq!(m.mem.peek_bytes(0x2_0000, 512), img);
        assert!(!sched.busy());
        assert_eq!(sched.completed, 1);
    }

    #[test]
    fn elevator_orders_by_sector() {
        let (mut m, dev) = machine_with_disk();
        let mut sched = DiskScheduler::new(dev);
        // Submit out of order while the first is in flight.
        sched.submit(
            &mut m,
            DiskRequest {
                sector: 100,
                count: 1,
                addr: 0x2_0000,
                read: true,
                cookie: 0,
            },
        );
        sched.submit(
            &mut m,
            DiskRequest {
                sector: 900,
                count: 1,
                addr: 0x2_0200,
                read: true,
                cookie: 0,
            },
        );
        sched.submit(
            &mut m,
            DiskRequest {
                sector: 300,
                count: 1,
                addr: 0x2_0400,
                read: true,
                cookie: 0,
            },
        );
        sched.submit(
            &mut m,
            DiskRequest {
                sector: 200,
                count: 1,
                addr: 0x2_0600,
                read: true,
                cookie: 0,
            },
        );
        let mut order = Vec::new();
        order.push(100); // in flight already
        for _ in 0..3 {
            wait_done(&mut m);
            let done = sched.on_complete(&mut m).unwrap();
            if done.sector != 100 {
                order.push(done.sector);
            }
        }
        wait_done(&mut m);
        let done = sched.on_complete(&mut m).unwrap();
        order.push(done.sector);
        assert_eq!(order, vec![100, 200, 300, 900], "ascending elevator sweep");
    }

    #[test]
    fn cache_lru_eviction() {
        let mut c = BufferCache::new(2);
        assert!(c.get(1).is_none());
        c.insert(1, 0x1000);
        c.insert(2, 0x2000);
        assert_eq!(c.get(1), Some(0x1000)); // 1 is now most recent
        let evicted = c.insert(3, 0x3000);
        assert_eq!(evicted, Some((2, 0x2000)));
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(0x1000));
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 2);
    }
}
