//! The disk path: raw disk server, disk scheduler, and cache manager.
//!
//! "Connected to the disk hardware we have a raw disk device server. The
//! next stage in the pipeline is the disk scheduler, which contains the
//! disk request queue, followed by the default file system cache manager,
//! which contains the queue of data transfer buffers" (Section 5.1).
//!
//! The scheduler also owns error recovery: a completion with
//! `STATUS_ERR` is retried with bounded exponential backoff (programmed
//! into the device's `EXTRA_DELAY` register so the wait is modelled disk
//! time, not host spinning); sectors that keep failing — or that the
//! device reports permanently bad — are *quarantined*, after which every
//! request touching them fails fast with an I/O error instead of
//! touching the hardware.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use quamachine::devices::dev_reg_addr;
use quamachine::devices::disk::{
    CMD_READ, CMD_WRITE, ERR_BAD_SECTOR, ERR_NONE, ERR_TRANSIENT, REG_ADDR, REG_CMD, REG_COUNT,
    REG_ERROR, REG_EXTRA_DELAY, REG_SECTOR, SECTOR_SIZE,
};
use quamachine::machine::Machine;

use crate::alloc::fastfit::OutOfMemory;
use crate::alloc::FastFit;

/// A queued disk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskRequest {
    /// First sector.
    pub sector: u32,
    /// Sectors to transfer.
    pub count: u32,
    /// DMA address.
    pub addr: u32,
    /// Read (`true`) or write.
    pub read: bool,
    /// Requester cookie (e.g. a thread id to wake).
    pub cookie: u32,
}

/// How one serviced request ended, as reported by
/// [`DiskScheduler::on_complete`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOutcome {
    /// The transfer succeeded; data is where the request asked.
    Done(DiskRequest),
    /// The transfer failed transiently; the scheduler re-issued it with
    /// backoff and it is in flight again. No caller action needed.
    Retrying {
        /// The request being retried.
        req: DiskRequest,
        /// Which attempt is now in flight (first retry = 2).
        attempt: u32,
        /// Backoff programmed into the device, in µs.
        backoff_us: u32,
    },
    /// The transfer failed permanently (bad sector or retries
    /// exhausted); the failing sector is quarantined. The caller should
    /// surface an I/O error to the requester in `req.cookie`.
    Failed(DiskRequest),
}

/// Retries per request before the scheduler gives up and quarantines.
pub const MAX_RETRIES: u32 = 4;
/// First-retry backoff in µs; doubles each further attempt.
pub const BACKOFF_BASE_US: u32 = 500;
/// Backoff ceiling in µs.
pub const BACKOFF_CAP_US: u32 = 8_000;

/// The disk scheduler: an elevator over the request queue.
///
/// Requests are serviced in ascending-sector order from the current head
/// position, then the elevator reverses — the classic SCAN policy the
/// request queue exists to enable.
#[derive(Debug)]
pub struct DiskScheduler {
    device: usize,
    queue: BTreeMap<u32, VecDeque<DiskRequest>>,
    inflight: Option<DiskRequest>,
    /// Attempts made for the in-flight request (1 = first issue).
    attempts: u32,
    head_pos: u32,
    ascending: bool,
    quarantined: BTreeSet<u32>,
    /// Requests completed.
    pub completed: u64,
    /// Total sectors moved.
    pub sectors_moved: u64,
    /// Re-issues after transient errors.
    pub retries: u64,
    /// Requests that failed permanently.
    pub failed: u64,
    /// Total backoff programmed across retries, in µs.
    pub backoff_us_total: u64,
    /// Requests rejected at submit because a sector was quarantined.
    pub rejected_quarantined: u64,
}

impl DiskScheduler {
    /// A scheduler driving device index `device`.
    #[must_use]
    pub fn new(device: usize) -> DiskScheduler {
        DiskScheduler {
            device,
            queue: BTreeMap::new(),
            inflight: None,
            attempts: 0,
            head_pos: 0,
            ascending: true,
            quarantined: BTreeSet::new(),
            completed: 0,
            sectors_moved: 0,
            retries: 0,
            failed: 0,
            backoff_us_total: 0,
            rejected_quarantined: 0,
        }
    }

    /// Enqueue a request; starts the disk if it was idle.
    ///
    /// # Errors
    ///
    /// Fails fast (returning the request) when the range touches a
    /// quarantined sector — the hardware is known bad there and the
    /// caller should report an I/O error without waiting.
    pub fn submit(&mut self, m: &mut Machine, req: DiskRequest) -> Result<(), DiskRequest> {
        if self.is_quarantined_range(req.sector, req.count) {
            self.rejected_quarantined += 1;
            return Err(req);
        }
        self.queue.entry(req.sector).or_default().push_back(req);
        if self.inflight.is_none() {
            self.issue_next(m);
        }
        Ok(())
    }

    /// Whether `[sector, sector + count)` touches a quarantined sector.
    #[must_use]
    pub fn is_quarantined_range(&self, sector: u32, count: u32) -> bool {
        self.quarantined
            .range(sector..sector.saturating_add(count.max(1)))
            .next()
            .is_some()
    }

    /// Sectors currently quarantined, ascending.
    pub fn quarantined(&self) -> impl Iterator<Item = u32> + '_ {
        self.quarantined.iter().copied()
    }

    /// Number of quarantined sectors.
    #[must_use]
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// Pick the next request by the elevator and program the device.
    fn issue_next(&mut self, m: &mut Machine) {
        let next = if self.ascending {
            self.queue
                .range(self.head_pos..)
                .next()
                .map(|(&s, _)| s)
                .or_else(|| {
                    self.ascending = false;
                    self.queue
                        .range(..self.head_pos)
                        .next_back()
                        .map(|(&s, _)| s)
                })
        } else {
            self.queue
                .range(..=self.head_pos)
                .next_back()
                .map(|(&s, _)| s)
                .or_else(|| {
                    self.ascending = true;
                    self.queue.range(self.head_pos..).next().map(|(&s, _)| s)
                })
        };
        let Some(sector) = next else {
            return;
        };
        let q = self.queue.get_mut(&sector).expect("key exists");
        let req = q.pop_front().expect("non-empty");
        if q.is_empty() {
            self.queue.remove(&sector);
        }
        self.program_device(m, &req);
        self.inflight = Some(req);
        self.attempts = 1;
    }

    fn program_device(&self, m: &mut Machine, req: &DiskRequest) {
        let d = self.device;
        m.host_reg_write(dev_reg_addr(d, REG_SECTOR), req.sector);
        m.host_reg_write(dev_reg_addr(d, REG_ADDR), req.addr);
        m.host_reg_write(dev_reg_addr(d, REG_COUNT), req.count);
        m.host_reg_write(
            dev_reg_addr(d, REG_CMD),
            if req.read { CMD_READ } else { CMD_WRITE },
        );
    }

    /// The device finished the in-flight request (successfully or not);
    /// classifies the completion, retries or quarantines on error, and
    /// issues the next request when this one is finished for good.
    ///
    /// The caller must already have read (acked) `STATUS`; this reads the
    /// sticky `ERROR` register to tell success from failure.
    pub fn on_complete(&mut self, m: &mut Machine) -> Option<DiskOutcome> {
        let req = self.inflight.take()?;
        self.head_pos = req.sector + req.count;
        self.sectors_moved += u64::from(req.count);
        let err = m.host_reg_read(dev_reg_addr(self.device, REG_ERROR));
        match err {
            ERR_NONE => {
                self.completed += 1;
                self.issue_next(m);
                Some(DiskOutcome::Done(req))
            }
            ERR_TRANSIENT if self.attempts <= MAX_RETRIES => {
                // Retry in place with exponential backoff, spent as
                // modelled device time so waiters sleep through it.
                let backoff_us = (BACKOFF_BASE_US << (self.attempts - 1)).min(BACKOFF_CAP_US);
                self.retries += 1;
                self.backoff_us_total += u64::from(backoff_us);
                self.attempts += 1;
                m.host_reg_write(dev_reg_addr(self.device, REG_EXTRA_DELAY), backoff_us);
                self.program_device(m, &req);
                self.inflight = Some(req);
                Some(DiskOutcome::Retrying {
                    req,
                    attempt: self.attempts,
                    backoff_us,
                })
            }
            _ => {
                // Permanently bad: the device said the medium is bad
                // (`ERR_BAD_SECTOR`), retries were exhausted, or the
                // request itself was invalid. Quarantine the range's
                // first sector (the finest blame the device reports) so
                // later requests fail fast instead of waiting.
                if err == ERR_TRANSIENT || err == ERR_BAD_SECTOR {
                    self.quarantined.insert(req.sector);
                }
                self.failed += 1;
                self.issue_next(m);
                Some(DiskOutcome::Failed(req))
            }
        }
    }

    /// Whether a request is being serviced.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.inflight.is_some()
    }

    /// Queued (not yet issued) requests.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.values().map(VecDeque::len).sum()
    }
}

/// The buffer-cache manager: sector-granular cache buffers in kernel
/// memory.
#[derive(Debug, Default)]
pub struct BufferCache {
    map: HashMap<u32, u32>, // sector -> buffer addr
    lru: VecDeque<u32>,
    capacity: usize,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

impl BufferCache {
    /// A cache of at most `capacity` sector buffers.
    #[must_use]
    pub fn new(capacity: usize) -> BufferCache {
        BufferCache {
            capacity,
            ..BufferCache::default()
        }
    }

    /// Look up a sector; `Some(addr)` on a hit.
    pub fn get(&mut self, sector: u32) -> Option<u32> {
        match self.map.get(&sector) {
            Some(&addr) => {
                self.hits += 1;
                self.lru.retain(|&s| s != sector);
                self.lru.push_back(sector);
                Some(addr)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a sector buffer, evicting the least recently used if full.
    /// Returns the evicted `(sector, addr)` so the caller can free or
    /// write it back.
    pub fn insert(&mut self, sector: u32, addr: u32) -> Option<(u32, u32)> {
        let evicted = if self.map.len() >= self.capacity {
            self.lru.pop_front().map(|s| {
                let a = self.map.remove(&s).expect("lru entry in map");
                (s, a)
            })
        } else {
            None
        };
        self.map.insert(sector, addr);
        self.lru.push_back(sector);
        evicted
    }

    /// Allocate a sector buffer from the heap.
    ///
    /// # Errors
    ///
    /// Fails when the heap is exhausted.
    pub fn alloc_buffer(heap: &mut FastFit) -> Result<u32, OutOfMemory> {
        heap.alloc(SECTOR_SIZE)
    }

    /// Number of cached sectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quamachine::devices::disk::Disk;
    use quamachine::machine::{Machine, MachineConfig};

    fn machine_with_disk() -> (Machine, usize) {
        let mut m = Machine::new(MachineConfig::sun3_emulation());
        let d = m.attach_device(Box::new(Disk::new(2, 1024)));
        (m, d)
    }

    /// Drive the machine until the disk IRQ is pending, then ack it.
    fn wait_done(m: &mut Machine) {
        for _ in 0..100_000 {
            m.process_events();
            if m.irq.any_pending() {
                // Ack by reading STATUS.
                let _ = m.host_reg_read(dev_reg_addr(0, quamachine::devices::disk::REG_STATUS));
                return;
            }
            m.meter.cycles += 1000;
        }
        panic!("disk never completed");
    }

    #[test]
    fn requests_complete_and_dma_lands() {
        let (mut m, dev) = machine_with_disk();
        // Put recognizable data on sector 7.
        let img: Vec<u8> = (0..512u32).map(|i| (i % 251) as u8).collect();
        m.device_mut::<Disk>(dev).unwrap().load_image(7, &img);
        let mut sched = DiskScheduler::new(dev);
        sched
            .submit(
                &mut m,
                DiskRequest {
                    sector: 7,
                    count: 1,
                    addr: 0x2_0000,
                    read: true,
                    cookie: 0,
                },
            )
            .unwrap();
        assert!(sched.busy());
        wait_done(&mut m);
        let DiskOutcome::Done(done) = sched.on_complete(&mut m).unwrap() else {
            panic!("clean disk must complete successfully");
        };
        assert_eq!(done.sector, 7);
        assert_eq!(m.mem.peek_bytes(0x2_0000, 512), img);
        assert!(!sched.busy());
        assert_eq!(sched.completed, 1);
    }

    #[test]
    fn elevator_orders_by_sector() {
        let (mut m, dev) = machine_with_disk();
        let mut sched = DiskScheduler::new(dev);
        // Submit out of order while the first is in flight.
        for (sector, addr) in [
            (100, 0x2_0000),
            (900, 0x2_0200),
            (300, 0x2_0400),
            (200, 0x2_0600),
        ] {
            sched
                .submit(
                    &mut m,
                    DiskRequest {
                        sector,
                        count: 1,
                        addr,
                        read: true,
                        cookie: 0,
                    },
                )
                .unwrap();
        }
        let mut order = Vec::new();
        order.push(100); // in flight already
        for _ in 0..3 {
            wait_done(&mut m);
            let DiskOutcome::Done(done) = sched.on_complete(&mut m).unwrap() else {
                panic!("clean disk must complete successfully");
            };
            if done.sector != 100 {
                order.push(done.sector);
            }
        }
        wait_done(&mut m);
        let DiskOutcome::Done(done) = sched.on_complete(&mut m).unwrap() else {
            panic!("clean disk must complete successfully");
        };
        order.push(done.sector);
        assert_eq!(order, vec![100, 200, 300, 900], "ascending elevator sweep");
    }

    /// Drive one submitted request to its final outcome, stepping through
    /// any retries.
    fn drive(sched: &mut DiskScheduler, m: &mut Machine) -> DiskOutcome {
        for _ in 0..32 {
            wait_done(m);
            match sched.on_complete(m).expect("an op was in flight") {
                DiskOutcome::Retrying { .. } => {}
                outcome => return outcome,
            }
        }
        panic!("request never reached a final outcome");
    }

    #[test]
    fn transient_errors_retry_to_success() {
        let (mut m, dev) = machine_with_disk();
        m.fault = quamachine::fault::FaultPlan::seeded(
            11,
            quamachine::fault::FaultConfig {
                disk_transient_permille: 400,
                ..quamachine::fault::FaultConfig::none()
            },
        );
        let img: Vec<u8> = (0..512u32).map(|i| (i % 241) as u8).collect();
        let mut sched = DiskScheduler::new(dev);
        let mut done = 0;
        for i in 0..16u32 {
            m.device_mut::<Disk>(dev).unwrap().load_image(i, &img);
            sched
                .submit(
                    &mut m,
                    DiskRequest {
                        sector: i,
                        count: 1,
                        addr: 0x2_0000 + i * 512,
                        read: true,
                        cookie: 0,
                    },
                )
                .unwrap();
            match drive(&mut sched, &mut m) {
                DiskOutcome::Done(req) => {
                    done += 1;
                    assert_eq!(
                        m.mem.peek_bytes(req.addr, 512),
                        img,
                        "a successful read must carry intact data"
                    );
                }
                DiskOutcome::Failed(_) => {}
                DiskOutcome::Retrying { .. } => unreachable!(),
            }
        }
        assert!(done >= 12, "most requests succeed: {done}/16");
        assert!(sched.retries > 0, "a 40% error rate must trigger retries");
        assert!(
            sched.backoff_us_total >= u64::from(BACKOFF_BASE_US) * sched.retries,
            "every retry waits at least the base backoff"
        );
    }

    #[test]
    fn exhausted_retries_quarantine_and_fail_fast() {
        let (mut m, dev) = machine_with_disk();
        m.fault = quamachine::fault::FaultPlan::seeded(
            1,
            quamachine::fault::FaultConfig {
                disk_transient_permille: 1000, // every command fails
                ..quamachine::fault::FaultConfig::none()
            },
        );
        let mut sched = DiskScheduler::new(dev);
        let req = DiskRequest {
            sector: 42,
            count: 1,
            addr: 0x2_0000,
            read: true,
            cookie: 0,
        };
        sched.submit(&mut m, req).unwrap();
        assert_eq!(drive(&mut sched, &mut m), DiskOutcome::Failed(req));
        assert_eq!(sched.retries, u64::from(MAX_RETRIES));
        // 500 + 1000 + 2000 + 4000.
        assert_eq!(sched.backoff_us_total, 7_500);
        assert_eq!(sched.quarantined().collect::<Vec<_>>(), vec![42]);
        // Fail fast from now on: no hardware round trip.
        assert_eq!(sched.submit(&mut m, req), Err(req));
        assert!(!sched.busy());
        assert_eq!(sched.rejected_quarantined, 1);
    }

    #[test]
    fn bad_sectors_fail_without_retries() {
        let (mut m, dev) = machine_with_disk();
        m.fault.poison_sector(7);
        let mut sched = DiskScheduler::new(dev);
        let req = DiskRequest {
            sector: 5,
            count: 4, // covers the poisoned sector 7
            addr: 0x2_0000,
            read: true,
            cookie: 0,
        };
        sched.submit(&mut m, req).unwrap();
        assert_eq!(drive(&mut sched, &mut m), DiskOutcome::Failed(req));
        assert_eq!(sched.retries, 0, "media errors are not retried");
        assert!(sched.is_quarantined_range(5, 4));
    }

    #[test]
    fn cache_lru_eviction() {
        let mut c = BufferCache::new(2);
        assert!(c.get(1).is_none());
        c.insert(1, 0x1000);
        c.insert(2, 0x2000);
        assert_eq!(c.get(1), Some(0x1000)); // 1 is now most recent
        let evicted = c.insert(3, 0x3000);
        assert_eq!(evicted, Some((2, 0x2000)));
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(0x1000));
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 2);
    }
}
