//! Streams: the producer/consumer composition model (Section 5.2).
//!
//! "Data move along logical channels we call streams, which connect the
//! source and the destination of data flow." A stream is described by its
//! two parties; the quaject interfacer picks the connecting mechanism
//! (procedure call, monitor, queue, or pump) and synthesizes the
//! connecting code.

use synthesis_codegen::interfacer::{choose_connector, Connector, Party};

/// A stream description: who produces, who consumes.
#[derive(Debug, Clone, Copy)]
pub struct StreamSpec {
    /// The producing side.
    pub producer: Party,
    /// The consuming side.
    pub consumer: Party,
}

impl StreamSpec {
    /// The connector the combination stage selects.
    #[must_use]
    pub fn connector(&self) -> Connector {
        choose_connector(self.producer, self.consumer)
    }
}

/// The standard streams of the Synthesis I/O system, as the paper
/// describes them.
pub mod standard {
    use super::*;

    /// Cooked tty → raw tty: "the cooked tty makes a procedure call to
    /// the raw tty to get the next character" (Section 5.4) —
    /// active-passive, single-single.
    #[must_use]
    pub fn cooked_to_raw() -> StreamSpec {
        StreamSpec {
            producer: Party::passive_single(),
            consumer: Party::active_single(),
        }
    }

    /// Tty device → cooked filter: "the cooked tty actively reads and the
    /// tty device itself actively writes, forming an active-active pair
    /// connected by an SP-SC optimistic queue" (Section 5.4).
    #[must_use]
    pub fn device_to_cooked() -> StreamSpec {
        StreamSpec {
            producer: Party::active_single(),
            consumer: Party::active_single(),
        }
    }

    /// Programs and echo → screen: "the filter writes to an optimistic
    /// queue, since output can come from both a user program or the
    /// echoing of input characters" (Section 5.1) — multiple producers.
    #[must_use]
    pub fn output_to_screen() -> StreamSpec {
        StreamSpec {
            producer: Party::active_multiple(),
            consumer: Party::active_single(),
        }
    }

    /// The xclock pair: passive clock, passive display — a pump
    /// (Section 5.2).
    #[must_use]
    pub fn clock_to_display() -> StreamSpec {
        StreamSpec {
            producer: Party::passive_single(),
            consumer: Party::passive_single(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_streams_pick_the_papers_connectors() {
        assert_eq!(standard::cooked_to_raw().connector(), Connector::DirectCall);
        assert_eq!(
            standard::device_to_cooked().connector(),
            Connector::SpscQueue
        );
        assert_eq!(
            standard::output_to_screen().connector(),
            Connector::MpscQueue
        );
        assert_eq!(standard::clock_to_display().connector(), Connector::Pump);
    }
}
