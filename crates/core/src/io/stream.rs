//! Streams: the producer/consumer composition model (Section 5.2).
//!
//! "Data move along logical channels we call streams, which connect the
//! source and the destination of data flow." A stream is described by its
//! two parties; the quaject interfacer picks the connecting mechanism
//! (procedure call, monitor, queue, or pump) and synthesizes the
//! connecting code.

use quamachine::isa::Size;
use synthesis_codegen::creator::Synthesized;
use synthesis_codegen::interfacer::{choose_connector, Connector, Party};
use synthesis_codegen::template::Bindings;

use crate::kernel::{Kernel, KernelError};

/// A stream description: who produces, who consumes.
#[derive(Debug, Clone, Copy)]
pub struct StreamSpec {
    /// The producing side.
    pub producer: Party,
    /// The consuming side.
    pub consumer: Party,
}

impl StreamSpec {
    /// The connector the combination stage selects.
    #[must_use]
    pub fn connector(&self) -> Connector {
        choose_connector(self.producer, self.consumer)
    }
}

/// An instantiated in-kernel stream: the connector's queue storage plus
/// the synthesized endpoint routines, built through the same cached
/// specialization pipeline as `open` (Collapsing Layers applies
/// uniformly to channels and streams).
#[derive(Debug)]
pub struct StreamChannel {
    /// The connector the combination stage selected.
    pub connector: Connector,
    /// The producer's `put` routine.
    pub put: Synthesized,
    /// The consumer's `get` routine.
    pub get: Synthesized,
    /// Head/tail counter pair (8 bytes in kernel memory).
    slots: u32,
    /// Ring storage (`size` longs).
    buf: u32,
    /// Flag array (`size` bytes; MP-SC only, else 0).
    flags: u32,
    /// Ring capacity in items (a power of two).
    size: u32,
}

impl Kernel {
    /// Instantiate `spec` as an in-kernel stream with a ring of `size`
    /// items: allocate the connector's storage and specialize its
    /// endpoint templates through the creator's cache. Attaching further
    /// producers to the same ring ([`Kernel::stream_attach_producer`])
    /// shares the installed code.
    ///
    /// # Errors
    ///
    /// `Invalid` for connectors with no kernel queue (direct calls and
    /// pumps synthesize at their call sites), `NoMem`/`Synth` on
    /// resource exhaustion.
    pub fn open_stream(
        &mut self,
        spec: StreamSpec,
        size: u32,
    ) -> Result<StreamChannel, KernelError> {
        let connector = spec.connector();
        let (put_t, get_t, flagged) = match connector {
            Connector::SpscQueue => ("q_spsc_put", "q_spsc_get", false),
            Connector::MpscQueue => ("q_mpsc_put", "q_mpsc_get", true),
            _ => {
                return Err(KernelError::Invalid(
                    "connector has no kernel queue to instantiate",
                ))
            }
        };
        assert!(
            size.is_power_of_two(),
            "stream ring size must be a power of two"
        );

        // Storage first, so the rollback below is pure arithmetic.
        let slots = self.heap.alloc(8).map_err(|_| KernelError::NoMem)?;
        let buf = match self.heap.alloc(size * 4) {
            Ok(b) => b,
            Err(_) => {
                self.heap.free(slots, 8);
                return Err(KernelError::NoMem);
            }
        };
        let flags = if flagged {
            match self.heap.alloc(size) {
                Ok(f) => f,
                Err(_) => {
                    self.heap.free(slots, 8);
                    self.heap.free(buf, size * 4);
                    return Err(KernelError::NoMem);
                }
            }
        } else {
            0
        };
        self.m.mem.poke(slots, Size::L, 0);
        self.m.mem.poke(slots + 4, Size::L, 0);
        for i in 0..size {
            if flagged {
                self.m.mem.poke(flags + i, Size::B, 0);
            }
        }

        let b = stream_bindings(slots, buf, flags, size, flagged);
        let rollback = |k: &mut Kernel, code: &[Synthesized], e| {
            for s in code {
                k.creator.destroy(&mut k.m, s);
            }
            k.heap.free(slots, 8);
            k.heap.free(buf, size * 4);
            if flagged {
                k.heap.free(flags, size);
            }
            KernelError::Synth(e)
        };
        let put = match self
            .creator
            .synthesize_cached(&mut self.m, put_t, &b, self.opts)
        {
            Ok(p) => p,
            Err(e) => return Err(rollback(self, &[], e)),
        };
        let get = match self
            .creator
            .synthesize_cached(&mut self.m, get_t, &b, self.opts)
        {
            Ok(g) => g,
            Err(e) => return Err(rollback(self, &[put], e)),
        };
        let tid = self.trace_tid();
        self.drain_cache_events(tid);
        Ok(StreamChannel {
            connector,
            put,
            get,
            slots,
            buf,
            flags,
            size,
        })
    }

    /// Specialize another producer endpoint onto `chan`'s ring. The
    /// bindings are identical, so this is a specialization-cache hit —
    /// N producers share one installed `put`.
    ///
    /// # Errors
    ///
    /// Propagates synthesis failure.
    pub fn stream_attach_producer(
        &mut self,
        chan: &StreamChannel,
    ) -> Result<Synthesized, KernelError> {
        let name = match chan.connector {
            Connector::SpscQueue => "q_spsc_put",
            Connector::MpscQueue => "q_mpsc_put",
            _ => unreachable!("open_stream only builds queue connectors"),
        };
        let b = chan.bindings(matches!(chan.connector, Connector::MpscQueue));
        let s = self
            .creator
            .synthesize_cached(&mut self.m, name, &b, self.opts)
            .map_err(KernelError::Synth)?;
        let tid = self.trace_tid();
        self.drain_cache_events(tid);
        Ok(s)
    }

    /// Release an endpoint obtained from [`Kernel::stream_attach_producer`].
    pub fn stream_release_endpoint(&mut self, s: &Synthesized) {
        self.creator.destroy(&mut self.m, s);
        let tid = self.trace_tid();
        self.drain_cache_events(tid);
    }

    /// Tear the stream down: drop the endpoint references (the code
    /// unloads when the last ring's reference goes) and free the storage.
    pub fn close_stream(&mut self, chan: StreamChannel) {
        self.creator.destroy(&mut self.m, &chan.put);
        self.creator.destroy(&mut self.m, &chan.get);
        let tid = self.trace_tid();
        self.drain_cache_events(tid);
        self.release_stream_storage(&chan);
    }

    fn release_stream_storage(&mut self, chan: &StreamChannel) {
        self.heap.free(chan.slots, 8);
        self.heap.free(chan.buf, chan.size * 4);
        if chan.flags != 0 {
            self.heap.free(chan.flags, chan.size);
        }
    }
}

impl StreamChannel {
    fn bindings(&self, flagged: bool) -> Bindings {
        stream_bindings(self.slots, self.buf, self.flags, self.size, flagged)
    }
}

fn stream_bindings(slots: u32, buf: u32, flags: u32, size: u32, flagged: bool) -> Bindings {
    let mut b = Bindings::new();
    b.bind("head_slot", slots)
        .bind("tail_slot", slots + 4)
        .bind("buf", buf)
        .bind("mask", size - 1)
        .bind("size", size);
    if flagged {
        b.bind("flags", flags);
    }
    b
}

/// The standard streams of the Synthesis I/O system, as the paper
/// describes them.
pub mod standard {
    use super::*;

    /// Cooked tty → raw tty: "the cooked tty makes a procedure call to
    /// the raw tty to get the next character" (Section 5.4) —
    /// active-passive, single-single.
    #[must_use]
    pub fn cooked_to_raw() -> StreamSpec {
        StreamSpec {
            producer: Party::passive_single(),
            consumer: Party::active_single(),
        }
    }

    /// Tty device → cooked filter: "the cooked tty actively reads and the
    /// tty device itself actively writes, forming an active-active pair
    /// connected by an SP-SC optimistic queue" (Section 5.4).
    #[must_use]
    pub fn device_to_cooked() -> StreamSpec {
        StreamSpec {
            producer: Party::active_single(),
            consumer: Party::active_single(),
        }
    }

    /// Programs and echo → screen: "the filter writes to an optimistic
    /// queue, since output can come from both a user program or the
    /// echoing of input characters" (Section 5.1) — multiple producers.
    #[must_use]
    pub fn output_to_screen() -> StreamSpec {
        StreamSpec {
            producer: Party::active_multiple(),
            consumer: Party::active_single(),
        }
    }

    /// The xclock pair: passive clock, passive display — a pump
    /// (Section 5.2).
    #[must_use]
    pub fn clock_to_display() -> StreamSpec {
        StreamSpec {
            producer: Party::passive_single(),
            consumer: Party::passive_single(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_streams_pick_the_papers_connectors() {
        assert_eq!(standard::cooked_to_raw().connector(), Connector::DirectCall);
        assert_eq!(
            standard::device_to_cooked().connector(),
            Connector::SpscQueue
        );
        assert_eq!(
            standard::output_to_screen().connector(),
            Connector::MpscQueue
        );
        assert_eq!(standard::clock_to_display().connector(), Connector::Pump);
    }
}
