//! I/O: streams, device servers, pipes, the tty discipline, and the disk
//! path (paper Section 5).
//!
//! "In Synthesis, I/O means more than device drivers. I/O includes all
//! data flow among hardware devices and quaspaces" (Section 5).

pub mod disk;
pub mod pipe;
pub mod stream;
pub mod tty;
