//! The kernel quaspace memory layout.
//!
//! Synthesis has a single physical address space partitioned into
//! quaspaces (Section 2.1). The kernel occupies the low region; user
//! quaspaces are carved from the high region. The 2.5 MB total matches
//! the real Quamachine's memory (Section 6.1).

/// Total physical memory (2.5 MB, like the Quamachine).
pub const MEM_SIZE: u32 = 2_621_440;

/// Boot/default vector table (also thread 0's until it gets its own).
pub const BOOT_VECTORS: u32 = 0x0000_0000;

/// Kernel static data: shared handlers' state, device-server queues.
pub const KERNEL_DATA_BASE: u32 = 0x0000_0400;
/// Size of the kernel static-data region.
pub const KERNEL_DATA_LEN: u32 = 0x0003_FC00; // up to 0x40000

/// Kernel dynamic data: TTEs, vector tables, queues, file buffers
/// (managed by the fast-fit allocator).
pub const KERNEL_HEAP_BASE: u32 = 0x0004_0000;
/// Size of the kernel heap.
pub const KERNEL_HEAP_LEN: u32 = 0x000C_0000; // 768 KB, up to 0x100000

/// Synthesized-code buffer (managed by the quaject creator).
pub const CODE_BASE: u32 = 0x0010_0000;
/// Size of the code buffer.
pub const CODE_LEN: u32 = 0x0008_0000; // 512 KB, up to 0x180000

/// User quaspace area.
pub const USER_BASE: u32 = 0x0018_0000;
/// Size of the user area.
pub const USER_LEN: u32 = MEM_SIZE - USER_BASE;

/// Bytes reserved for each per-thread kernel stack.
pub const KSTACK_LEN: u32 = 0x800;

/// Bytes in a thread's vector table (48 vectors × 4, rounded up).
pub const VECTOR_TABLE_LEN: u32 = 0x100;

/// Bytes in a TTE. "About 100 [µs] are needed to fill approximately
/// 1 KBytes in the TTE" (Section 6.3): the TTE is 1 KB.
pub const TTE_LEN: u32 = 0x400;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the point IS the constants
    fn regions_are_disjoint_and_ordered() {
        assert!(BOOT_VECTORS < KERNEL_DATA_BASE);
        assert_eq!(KERNEL_DATA_BASE + KERNEL_DATA_LEN, KERNEL_HEAP_BASE);
        assert_eq!(KERNEL_HEAP_BASE + KERNEL_HEAP_LEN, CODE_BASE);
        assert_eq!(CODE_BASE + CODE_LEN, USER_BASE);
        assert!(USER_BASE + USER_LEN <= MEM_SIZE);
        assert!(USER_LEN >= 0x10_0000, "at least 1 MB of user space");
    }
}
