//! The kernel quaspace memory layout.
//!
//! Synthesis has a single physical address space partitioned into
//! quaspaces (Section 2.1). The kernel occupies the low region; user
//! quaspaces are carved from the high region. The 2.5 MB total matches
//! the real Quamachine's memory (Section 6.1).

/// Total physical memory (2.5 MB, like the Quamachine).
pub const MEM_SIZE: u32 = 2_621_440;

/// Boot/default vector table (also thread 0's until it gets its own).
pub const BOOT_VECTORS: u32 = 0x0000_0000;

/// Kernel static data: shared handlers' state, device-server queues.
pub const KERNEL_DATA_BASE: u32 = 0x0000_0400;
/// Size of the kernel static-data region.
pub const KERNEL_DATA_LEN: u32 = 0x0003_FC00; // up to 0x40000

/// Kernel dynamic data: TTEs, vector tables, queues, file buffers
/// (managed by the fast-fit allocator).
pub const KERNEL_HEAP_BASE: u32 = 0x0004_0000;
/// Size of the kernel heap.
pub const KERNEL_HEAP_LEN: u32 = 0x000C_0000; // 768 KB, up to 0x100000

/// Synthesized-code buffer (managed by the quaject creator).
pub const CODE_BASE: u32 = 0x0010_0000;
/// Size of the code buffer.
pub const CODE_LEN: u32 = 0x0008_0000; // 512 KB, up to 0x180000

/// User quaspace area.
pub const USER_BASE: u32 = 0x0018_0000;
/// Size of the user area.
pub const USER_LEN: u32 = MEM_SIZE - USER_BASE;

/// Bytes reserved for each per-thread kernel stack.
pub const KSTACK_LEN: u32 = 0x800;

/// Bytes in a thread's vector table (48 vectors × 4, rounded up).
pub const VECTOR_TABLE_LEN: u32 = 0x100;

/// Bytes in a TTE. "About 100 [µs] are needed to fill approximately
/// 1 KBytes in the TTE" (Section 6.3): the TTE is 1 KB.
pub const TTE_LEN: u32 = 0x400;

/// A configurable quaspace partition.
///
/// The constants above describe the real Quamachine's 2.5 MB; the
/// capacity harness needs room for tens of thousands of TTEs, kernel
/// stacks, and synthesized code blocks, so the kernel boots against a
/// `MemLayout` instead of the raw constants. [`MemLayout::default`]
/// reproduces the constants exactly — every existing benchmark and test
/// is byte-identical under it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLayout {
    /// Total physical memory.
    pub mem_size: u32,
    /// Kernel heap (fast-fit) base.
    pub heap_base: u32,
    /// Kernel heap length.
    pub heap_len: u32,
    /// Synthesized-code buffer base.
    pub code_base: u32,
    /// Synthesized-code buffer length.
    pub code_len: u32,
    /// User quaspace base.
    pub user_base: u32,
    /// User quaspace length.
    pub user_len: u32,
}

impl Default for MemLayout {
    fn default() -> Self {
        MemLayout {
            mem_size: MEM_SIZE,
            heap_base: KERNEL_HEAP_BASE,
            heap_len: KERNEL_HEAP_LEN,
            code_base: CODE_BASE,
            code_len: CODE_LEN,
            user_base: USER_BASE,
            user_len: USER_LEN,
        }
    }
}

impl MemLayout {
    /// Per-thread kernel heap footprint: TTE + vector table + kernel
    /// stack, each rounded to the allocator's granularity, plus slack
    /// for fd offset slots and queue headers.
    pub const PER_THREAD_HEAP: u32 = TTE_LEN + VECTOR_TABLE_LEN + KSTACK_LEN + 0x100;

    /// Per-thread synthesized-code budget: the switch quaject plus the
    /// three small per-thread handlers (dispatchers, error handler),
    /// sized generously from measured block sizes.
    pub const PER_THREAD_CODE: u32 = 0x600;

    /// A layout scaled to hold `threads` concurrent threads (plus the
    /// boot-time servers and a channel working set). The kernel-data
    /// region and region order are unchanged; the heap, code buffer, and
    /// user area grow and shift upward as needed.
    #[must_use]
    pub fn for_threads(threads: u32) -> MemLayout {
        let heap_len = round_up_1m(KERNEL_HEAP_LEN + threads * Self::PER_THREAD_HEAP);
        let code_len = round_up_1m(CODE_LEN + threads * Self::PER_THREAD_CODE);
        let code_base = KERNEL_HEAP_BASE + heap_len;
        let user_base = code_base + code_len;
        let user_len = USER_LEN.max(0x10_0000);
        MemLayout {
            mem_size: user_base + user_len,
            heap_base: KERNEL_HEAP_BASE,
            heap_len,
            code_base,
            code_len,
            user_base,
            user_len,
        }
    }
}

fn round_up_1m(n: u32) -> u32 {
    n.div_ceil(0x10_0000) * 0x10_0000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the point IS the constants
    fn regions_are_disjoint_and_ordered() {
        assert!(BOOT_VECTORS < KERNEL_DATA_BASE);
        assert_eq!(KERNEL_DATA_BASE + KERNEL_DATA_LEN, KERNEL_HEAP_BASE);
        assert_eq!(KERNEL_HEAP_BASE + KERNEL_HEAP_LEN, CODE_BASE);
        assert_eq!(CODE_BASE + CODE_LEN, USER_BASE);
        assert!(USER_BASE + USER_LEN <= MEM_SIZE);
        assert!(USER_LEN >= 0x10_0000, "at least 1 MB of user space");
    }

    #[test]
    fn default_layout_matches_constants() {
        let l = MemLayout::default();
        assert_eq!(l.mem_size, MEM_SIZE);
        assert_eq!(l.heap_base, KERNEL_HEAP_BASE);
        assert_eq!(l.heap_len, KERNEL_HEAP_LEN);
        assert_eq!(l.code_base, CODE_BASE);
        assert_eq!(l.code_len, CODE_LEN);
        assert_eq!(l.user_base, USER_BASE);
        assert_eq!(l.user_len, USER_LEN);
    }

    #[test]
    fn scaled_layout_is_disjoint_and_holds_the_threads() {
        for threads in [100, 1_000, 12_000] {
            let l = MemLayout::for_threads(threads);
            assert_eq!(l.heap_base, KERNEL_HEAP_BASE);
            assert_eq!(l.heap_base + l.heap_len, l.code_base);
            assert_eq!(l.code_base + l.code_len, l.user_base);
            assert!(l.user_base + l.user_len <= l.mem_size);
            assert!(l.heap_len >= threads * MemLayout::PER_THREAD_HEAP);
            assert!(l.code_len >= threads * MemLayout::PER_THREAD_CODE);
        }
    }
}
