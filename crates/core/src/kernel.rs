//! The Synthesis kernel: boot, threads, kernel calls, and the run loop.
//!
//! The kernel is host-side Rust that *generates and patches* the
//! simulated code that actually runs: synthesized context switches chain
//! the ready queue (Figure 3), synthesized `read`/`write` land behind
//! per-thread trap vectors (Section 5.3), and interrupt handlers feed
//! kernel queues. Cold bookkeeping reaches the host through `kcall`
//! hypercalls, each charging honest cycles (see [`crate::charges`]).

use std::collections::{BTreeMap, HashMap};

use quamachine::devices::audio::Audio;
use quamachine::devices::disk::Disk;
use quamachine::devices::fb::FrameBuffer;
use quamachine::devices::null::NullDev;
use quamachine::devices::timer::Timer;
use quamachine::devices::tty::Tty;
use quamachine::devices::{dev_reg_addr, timer as timer_regs, tty as tty_regs};
use quamachine::error::Exception;
use quamachine::isa::{Instr, Operand, Size};
use quamachine::machine::{Machine, MachineConfig, RunExit};
use quamachine::mem::AddressMap;
use synthesis_codegen::creator::{QuajectCreator, SynthError, SynthesisOptions, Synthesized};
use synthesis_codegen::execds::{ChainNode, JumpChain};
use synthesis_codegen::template::Bindings;

use synthesis_blocks::gauge::Gauge;

use crate::alloc::FastFit;
use crate::channel::{ChannelClass, ChannelSpec, FileChan};
use crate::charges;
use crate::fs::Fs;
use crate::io::disk::{DiskOutcome, DiskRequest, DiskScheduler};
use crate::io::pipe::{Pipe, DEFAULT_PIPE_SIZE};
use crate::io::tty::TtyServer;
use crate::layout;
use crate::syscall::{errno, general, kcalls};
use crate::templates;
use crate::thread::tte::{off, FdObject};
use crate::thread::{Thread, ThreadState, Tid, WaitObject};

/// Interrupt levels assigned to devices.
pub mod irq_levels {
    /// Inter-processor reschedule interrupt (SMP only; every thread's
    /// IPI vector is its own switch-out, so an IPI *is* a reschedule).
    pub const IPI: u8 = 1;
    /// Disk completion.
    pub const DISK: u8 = 2;
    /// One-shot alarms.
    pub const ALARM: u8 = 3;
    /// Tty receive.
    pub const TTY: u8 = 4;
    /// A/D sample.
    pub const AUDIO: u8 = 5;
    /// CPU quantum.
    pub const QUANTUM: u8 = 6;
}

/// Kernel construction parameters.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// The machine configuration (clock, wait states).
    pub machine: MachineConfig,
    /// Which synthesis stages run (the ablation switchboard).
    pub synthesis: SynthesisOptions,
    /// Initial per-thread CPU quantum in µs ("a typical quantum is on the
    /// order of a few hundred microseconds", Section 4.4).
    pub default_quantum_us: u32,
    /// Per-thread trace-ring capacity in records (see [`crate::trace`]).
    /// Only consulted when the `trace` feature is on.
    pub trace_records: usize,
    /// Number of CPUs in the Quamachine (1..=8). The default reads the
    /// `SYNTHESIS_CPUS` environment variable, falling back to 1; one CPU
    /// reproduces the uniprocessor kernel byte for byte.
    pub cpus: usize,
    /// Quaspace partition. The default reproduces the 2.5 MB Quamachine
    /// constants exactly; the capacity harness boots with
    /// [`layout::MemLayout::for_threads`] to make room for 10k+ TTEs.
    pub layout: layout::MemLayout,
    /// Specialization-cache warm-entry byte budget (0 = evict on last
    /// release, the historical behaviour; see
    /// [`synthesis_codegen::speccache::SpecCache`]).
    pub cache_budget: u32,
    /// Kernel⇄caller fusion: when true (and collapse is on), threads
    /// get the hooked context switch (`sw_*_hooked`, with its inline
    /// `resume_hook` splice point) and same-space callers are eligible
    /// for trap-elided `jsr`-bound fused I/O wrappers (see
    /// [`crate::templates::syscall`] and the UNIX emulator's loader).
    /// Off by default: the layered trap path stays byte-identical to
    /// the historical kernel.
    pub fuse: bool,
}

/// CPU count from `SYNTHESIS_CPUS`, clamped to 1..=8; 1 if unset/garbage.
fn cpus_from_env() -> usize {
    std::env::var("SYNTHESIS_CPUS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(1, |n| n.clamp(1, 8))
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            machine: MachineConfig {
                mem_size: layout::MEM_SIZE,
                ..MachineConfig::sun3_emulation()
            },
            synthesis: SynthesisOptions::full(),
            default_quantum_us: 200,
            trace_records: crate::trace::DEFAULT_RING_RECORDS,
            cpus: cpus_from_env(),
            layout: layout::MemLayout::default(),
            cache_budget: 0,
            fuse: false,
        }
    }
}

impl KernelConfig {
    /// Full-speed (50 MHz) configuration.
    #[must_use]
    pub fn full_speed() -> KernelConfig {
        KernelConfig {
            machine: MachineConfig {
                mem_size: layout::MEM_SIZE,
                ..MachineConfig::full_speed()
            },
            ..KernelConfig::default()
        }
    }
}

/// Attached device indices.
#[derive(Debug, Clone, Copy)]
pub struct DeviceIdx {
    /// The quantum timer.
    pub timer: usize,
    /// The alarm timer.
    pub alarm: usize,
    /// The tty.
    pub tty: usize,
    /// The audio (A/D, D/A) device.
    pub audio: usize,
    /// The disk.
    pub disk: usize,
    /// The framebuffer.
    pub fb: usize,
    /// `/dev/null`'s backing device.
    pub null: usize,
}

/// Shared (per-boot, not per-thread) synthesized code addresses.
#[derive(Debug)]
struct SharedCode {
    trampoline: u32,
    ebadf: u32,
    fp_trap: u32,
    alarm: u32,
    tty_rx: u32,
    disk_done: u32,
    spurious: u32,
    user_exit_stub: u32,
}

/// Kernel errors surfaced to the embedder.
#[derive(Debug)]
pub enum KernelError {
    /// Code synthesis failed.
    Synth(SynthError),
    /// Out of kernel heap.
    NoMem,
    /// No such thread.
    NoThread(Tid),
    /// Machine-level failure.
    Machine(quamachine::error::MachineError),
    /// Invalid operation (e.g. stopping the idle thread).
    Invalid(&'static str),
    /// An I/O error after recovery was exhausted (disk retries spent or
    /// the sectors are quarantined).
    Io(&'static str),
}

impl From<SynthError> for KernelError {
    fn from(e: SynthError) -> Self {
        KernelError::Synth(e)
    }
}

impl From<crate::alloc::fastfit::OutOfMemory> for KernelError {
    fn from(_: crate::alloc::fastfit::OutOfMemory) -> Self {
        KernelError::NoMem
    }
}

impl From<quamachine::error::MachineError> for KernelError {
    fn from(e: quamachine::error::MachineError) -> Self {
        KernelError::Machine(e)
    }
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::Synth(e) => write!(f, "synthesis: {e}"),
            KernelError::NoMem => write!(f, "kernel heap exhausted"),
            KernelError::NoThread(t) => write!(f, "no thread {t}"),
            KernelError::Machine(e) => write!(f, "machine: {e}"),
            KernelError::Invalid(s) => write!(f, "invalid operation: {s}"),
            KernelError::Io(s) => write!(f, "i/o error: {s}"),
        }
    }
}

impl std::error::Error for KernelError {}

/// Gauges counting recovery events ([Section 2.3's gauges][Gauge] feeding
/// the monitor's recovery report).
#[derive(Debug, Default)]
pub struct RecoveryGauges {
    /// Threads killed by run-loop recovery after a fatal guest fault.
    pub reaped: Gauge,
    /// Threads quarantined by the fault-storm watchdog.
    pub quarantined: Gauge,
    /// Disk I/O errors surfaced to requesters (retries exhausted or
    /// quarantined sectors).
    pub io_errors: Gauge,
    /// CPUs quarantined by the cross-CPU watchdog.
    pub cpus_quarantined: Gauge,
    /// Quarantined CPUs re-admitted after probation.
    pub cpus_resumed: Gauge,
    /// Threads migrated off a quarantined CPU's ready chain.
    pub threads_evacuated: Gauge,
    /// Parked CPUs revived by the timer-fallback path after a reschedule
    /// IPI went missing (work waiting in the chain with no interrupt
    /// pending).
    pub ipi_fallbacks: Gauge,
}

/// Cycles between watchdog sweeps of the per-thread fault counters (the
/// run loop slices its budget so a storming guest that never traps out
/// still gets observed).
const WATCHDOG_SLICE: u64 = 100_000;
/// Guest error-faults within one sweep that mark a thread as storming
/// (a thread that faults once and exits never comes close).
const WATCHDOG_FAULT_LIMIT: u64 = 64;
/// CPU-domain guest faults (faults landing in a CPU's idle context,
/// which only the kernel and the hardware write) a CPU may absorb before
/// the cross-CPU watchdog quarantines it. One stray fault is survivable;
/// a CPU that keeps corrupting contexts on dispatch is sick.
const CPU_FAULT_LIMIT: u64 = 3;
/// Consecutive slices a CPU may lose wholesale (its clock jumping a full
/// watchdog slice with no instruction executed) before it counts as
/// having stopped heartbeating.
const CPU_SILENT_LIMIT: u32 = 3;
/// Watchdog sweeps a quarantined CPU sits out before its first
/// probation re-admission; each further strike doubles the wait.
const CPU_PROBATION_SWEEPS: u64 = 32;
/// Quarantine strikes after which a CPU is out for good: probation
/// re-admission stops being offered.
const CPU_MAX_STRIKES: u32 = 3;

/// One kernel CPU: its executable ready queue, its idle thread, and its
/// scheduling counters.
///
/// Each CPU's ready queue stays an *executable data structure* — the
/// circular chain of `jmp` instructions threaded through the TTEs
/// (Figure 3) — exactly as on the uniprocessor; only the *balancing*
/// between CPUs goes through the shared work-stealing pool.
#[derive(Debug)]
pub struct KCpu {
    /// This CPU's executable ready queue (TTE `jmp` chain).
    pub ready: JumpChain,
    /// This CPU's idle thread.
    pub idle_tid: Tid,
    /// Threads this CPU pulled out of the shared steal pool.
    pub steals: u64,
    /// Threads this CPU offered into the shared steal pool.
    pub offloads: u64,
    /// Slice cycles spent in the idle thread (run-loop attribution).
    pub idle_cycles: u64,
    /// Slice cycles spent running real threads.
    pub busy_cycles: u64,
    /// Whether the cross-CPU watchdog has quarantined this CPU: it is
    /// never dispatched, never steals, and its chain has been evacuated.
    pub quarantined: bool,
    /// Guest faults charged to the CPU domain itself (idle-context
    /// corruption on dispatch) rather than to a thread.
    pub fault_events: u64,
    /// Cycles this CPU's clock jumped on dispatch without executing
    /// anything — injected stalls, as seen by the scheduler.
    pub stall_cycles: u64,
    /// Consecutive slices lost wholesale to such jumps.
    pub silent_slices: u32,
    /// Times this CPU has been quarantined.
    pub strikes: u32,
    /// Sweep count at which probation re-admits this CPU; `None` when it
    /// is not quarantined or is out for good.
    pub probation_at: Option<u64>,
}

/// The Synthesis kernel.
pub struct Kernel {
    /// The machine.
    pub m: Machine,
    /// The quaject creator (code synthesis + code space).
    pub creator: QuajectCreator,
    /// The kernel heap (fast-fit).
    pub heap: FastFit,
    /// The file system.
    pub fs: Fs,
    /// Threads by id.
    pub threads: BTreeMap<Tid, Thread>,
    /// Per-CPU scheduler state: ready chain, idle thread, counters.
    /// Index = CPU number; a uniprocessor kernel has exactly one entry.
    pub cpus: Vec<KCpu>,
    /// Device indices.
    pub dev: DeviceIdx,
    /// The tty server state.
    pub tty_srv: TtyServer,
    /// Kernel pipes.
    pub pipes: Vec<Pipe>,
    /// Per-`(thread, file)` channel state: the shared seek-offset slot
    /// and its fd refcount (see [`crate::channel::FileChan`]).
    pub file_chans: HashMap<(Tid, u32), FileChan>,
    /// The synthesis switchboard in effect.
    pub opts: SynthesisOptions,
    /// Whether kernel⇄caller fusion is enabled (see
    /// [`KernelConfig::fuse`]).
    pub fuse: bool,
    /// Default quantum for new threads.
    pub default_quantum_us: u32,
    /// Console output collected from `PUTC`.
    pub console: Vec<u8>,
    /// Threads that have exited.
    pub exited: std::collections::HashSet<Tid>,
    /// CPU 0's idle thread id (the other CPUs' idles live in
    /// [`Kernel::cpus`]; use [`Kernel::is_idle`] to test for any of them).
    pub idle_tid: Tid,
    /// The kernel-owned disk scheduler: request queue, retry/backoff, and
    /// sector quarantine (Section 5.1's pipeline stage, made persistent).
    pub disk_sched: DiskScheduler,
    /// Recovery event gauges (reaps, quarantines, surfaced I/O errors).
    pub recovery: RecoveryGauges,
    /// Recovery log: threads reaped or quarantined, with the reason.
    pub recovery_log: Vec<(Tid, String)>,
    /// Kernel event trace: per-thread rings of fixed-size records (see
    /// [`crate::trace`]). Always present so the
    /// [`TraceQuery`](crate::trace::TraceQuery) API and manual pushes
    /// compile with the `trace` feature off; the kernel's own recording
    /// paths are what the feature gates.
    pub trace: crate::trace::TraceSet,
    /// The quaspace partition this kernel booted with.
    pub layout: layout::MemLayout,

    shared: SharedCode,
    /// Extents of every live switch quaject, `base -> base + size`:
    /// the O(1) index behind [`Kernel::in_switch_code`] (a linear scan
    /// over all threads would make every safe-point step O(n)).
    sw_extents: BTreeMap<u32, u32>,
    next_tid: Tid,
    vbr_to_tid: HashMap<u32, Tid>,
    /// Per-CPU installed address-map ids (the MMU is per CPU; switching
    /// the active CPU swaps the installed map with it).
    installed_map_ids: Vec<u32>,
    /// The shared work-stealing pool: tids in transit between CPUs,
    /// carried by the optimistic MP-MC queue from `synthesis_blocks`.
    steal_pool: synthesis_blocks::steal::WorkPool<Tid>,
    /// Authoritative membership for `steal_pool`: the queue itself may
    /// hold stale entries after a stop/destroy, so a steal only counts
    /// if the tid is still in this set.
    pooled: std::collections::HashSet<Tid>,
    maps: HashMap<u32, AddressMap>,
    waiters: HashMap<WaitObject, Vec<Tid>>,
    sig_stash: HashMap<Tid, ([u32; 15], u32)>,
    alarm_pending: bool,
    /// Completed disk outcomes by request cookie: `Ok(req)` or
    /// `Err(-errno)` once the scheduler gives up.
    disk_results: HashMap<u32, Result<DiskRequest, i32>>,
    /// Threads the watchdog quarantined; they refuse to start again.
    quarantined_tids: std::collections::HashSet<Tid>,
    /// Per-thread fault-count baselines for the watchdog sweep.
    watchdog_marks: HashMap<Tid, u64>,
    /// Watchdog sweeps since boot — the probation clock for quarantined
    /// CPUs.
    sweep_count: u64,
    /// How many of the fault plan's records have already been translated
    /// into kernel trace events.
    fault_cursor: usize,
    /// When set, [`Kernel::run`] returns `Breakpoint(tid)` as soon as
    /// this thread exits (instead of idling out the cycle budget).
    pub watch_exit: Option<Tid>,
}

impl Kernel {
    /// Boot the kernel: build the machine, attach devices, install
    /// templates, synthesize the shared handlers, and start the idle
    /// thread.
    ///
    /// # Errors
    ///
    /// Fails only if initial synthesis fails (a bug, not a runtime
    /// condition).
    pub fn boot(cfg: KernelConfig) -> Result<Kernel, KernelError> {
        let ncpus = cfg.cpus.clamp(1, 8);
        let mut machine_cfg = cfg.machine;
        machine_cfg.cpus = ncpus;
        // A scaled layout needs the physical memory to hold it.
        machine_cfg.mem_size = machine_cfg.mem_size.max(cfg.layout.mem_size);
        let mut m = Machine::new(machine_cfg);
        let timer = m.attach_device(Box::new(Timer::new(irq_levels::QUANTUM)));
        let alarm = m.attach_device(Box::new(Timer::new(irq_levels::ALARM)));
        let tty = m.attach_device(Box::new(Tty::new(irq_levels::TTY)));
        let audio = m.attach_device(Box::new(Audio::new(irq_levels::AUDIO)));
        let disk = m.attach_device(Box::new(Disk::new(irq_levels::DISK, 4096)));
        let fb = m.attach_device(Box::new(FrameBuffer::new()));
        let null = m.attach_device(Box::new(NullDev::new()));
        let dev = DeviceIdx {
            timer,
            alarm,
            tty,
            audio,
            disk,
            fb,
            null,
        };

        let mut creator = QuajectCreator::new(cfg.layout.code_base, cfg.layout.code_len);
        templates::install_all(&mut creator.lib);
        creator.lib.add(crate::io::tty::cooked_read_template());
        let trimmed = creator.cache.set_budget(cfg.cache_budget);
        debug_assert!(trimmed.is_empty(), "empty cache trims nothing");

        let mut heap = FastFit::new(cfg.layout.heap_base, cfg.layout.heap_len);
        let tty_srv =
            TtyServer::allocate(&mut m, &mut heap, dev_reg_addr(tty, tty_regs::REG_DATA))?;

        // Shared handlers.
        let opts = cfg.synthesis;
        let trampoline = creator
            .synthesize(&mut m, "kcall_trampoline", &Bindings::new(), opts)?
            .base;
        let ebadf = creator
            .synthesize(&mut m, "ebadf", &Bindings::new(), opts)?
            .base;
        let fp_trap = creator
            .synthesize(&mut m, "trap_fp_unavail", &Bindings::new(), opts)?
            .base;
        let alarm_code = creator
            .synthesize(
                &mut m,
                "irq_alarm",
                Bindings::new().bind("timer_ack", dev_reg_addr(alarm, timer_regs::REG_ACK)),
                opts,
            )?
            .base;
        let tty_rx = creator
            .synthesize(
                &mut m,
                "irq_tty_rx",
                Bindings::new()
                    .bind("tty_data", tty_srv.data_reg)
                    .bind("qhead", tty_srv.qhead_slot)
                    .bind("qbuf", tty_srv.qbuf)
                    .bind("qmask", tty_srv.qmask)
                    .bind("gauge", tty_srv.gauge_slot)
                    .bind("waiters", tty_srv.waiters_slot),
                opts,
            )?
            .base;
        // Disk-completion and spurious-interrupt stubs.
        let disk_done = {
            let mut a = quamachine::asm::Asm::new("irq_disk_done");
            a.kcall(kcalls::DISK_DONE);
            a.rte();
            let t = synthesis_codegen::template::Template::from_asm(a).expect("assembles");
            creator
                .synthesize_template(&mut m, &t, &Bindings::new(), opts)?
                .base
        };
        let spurious = {
            let mut a = quamachine::asm::Asm::new("irq_spurious");
            a.rte();
            let t = synthesis_codegen::template::Template::from_asm(a).expect("assembles");
            creator
                .synthesize_template(&mut m, &t, &Bindings::new(), opts)?
                .base
        };
        // The default user error stub: exit the thread.
        let user_exit_stub = {
            let mut a = quamachine::asm::Asm::new("user_exit_stub");
            a.move_i(Size::L, general::EXIT, Operand::Dr(0));
            a.trap(crate::syscall::traps::GENERAL);
            let loop_ = a.here();
            a.bcc(quamachine::isa::Cond::T, loop_);
            let t = synthesis_codegen::template::Template::from_asm(a).expect("assembles");
            creator
                .synthesize_template(&mut m, &t, &Bindings::new(), opts)?
                .base
        };

        let mut k = Kernel {
            m,
            creator,
            heap,
            fs: Fs::new(),
            threads: BTreeMap::new(),
            cpus: (0..ncpus)
                .map(|_| KCpu {
                    ready: JumpChain::new(),
                    idle_tid: 0,
                    steals: 0,
                    offloads: 0,
                    idle_cycles: 0,
                    busy_cycles: 0,
                    quarantined: false,
                    fault_events: 0,
                    stall_cycles: 0,
                    silent_slices: 0,
                    strikes: 0,
                    probation_at: None,
                })
                .collect(),
            dev,
            tty_srv,
            pipes: Vec::new(),
            file_chans: HashMap::new(),
            opts,
            fuse: cfg.fuse && opts.collapse,
            default_quantum_us: cfg.default_quantum_us,
            console: Vec::new(),
            exited: std::collections::HashSet::new(),
            idle_tid: 0,
            disk_sched: DiskScheduler::new(disk),
            recovery: RecoveryGauges::default(),
            recovery_log: Vec::new(),
            trace: crate::trace::TraceSet::new(cfg.trace_records),
            layout: cfg.layout,
            sw_extents: BTreeMap::new(),
            shared: SharedCode {
                trampoline,
                ebadf,
                fp_trap,
                alarm: alarm_code,
                tty_rx,
                disk_done,
                spurious,
                user_exit_stub,
            },
            next_tid: 0,
            vbr_to_tid: HashMap::new(),
            installed_map_ids: vec![u32::MAX; ncpus],
            steal_pool: synthesis_blocks::steal::WorkPool::new(64),
            pooled: std::collections::HashSet::new(),
            maps: HashMap::new(),
            waiters: HashMap::new(),
            sig_stash: HashMap::new(),
            alarm_pending: false,
            disk_results: HashMap::new(),
            quarantined_tids: std::collections::HashSet::new(),
            watchdog_marks: HashMap::new(),
            sweep_count: 0,
            fault_cursor: 0,
            watch_exit: None,
        };

        // The idle thread: a supervisor-mode `stop`/loop. It anchors the
        // ready chain so the executable queue is never empty.
        let idle_code = {
            let mut a = quamachine::asm::Asm::new("idle");
            let top = a.here();
            a.stop(0x2000);
            a.bra(top);
            let t = synthesis_codegen::template::Template::from_asm(a).expect("assembles");
            k.creator
                .synthesize_template(&mut k.m, &t, &Bindings::new(), k.opts)?
        };
        let idle = k.create_thread_inner(idle_code.base, 0, AddressMap::default(), 0x2000)?;
        k.idle_tid = idle;
        k.cpus[0].idle_tid = idle;
        k.start(idle)?;
        // Park the machine entering the idle thread.
        let sw_in = k.threads[&idle].sw_in;
        k.m.cpu.pc = sw_in;

        // The remaining CPUs each get their own idle thread, parked at
        // its switch-in exactly like CPU 0's.
        for cpu in 1..k.m.num_cpus() {
            let it = k.create_thread_inner(idle_code.base, 0, AddressMap::default(), 0x2000)?;
            k.threads.get_mut(&it).expect("just created").cpu = cpu;
            k.cpus[cpu].idle_tid = it;
            k.start(it)?;
            let sw_in = k.threads[&it].sw_in;
            k.m.cpu_mut(cpu).pc = sw_in;
            // Starting the idle kicked its (empty-looking) CPU; the
            // parked idle needs no boot-time reschedule.
            k.m.irq.clear_on(cpu, irq_levels::IPI);
        }
        // The CPUs ticked in lockstep through boot even though CPU 0 did
        // all the work; align the clocks so cross-CPU timestamps compare.
        k.m.sync_cpu_clocks();
        Ok(k)
    }

    // --- Thread lifecycle -------------------------------------------------

    /// Create a thread that will start executing at `entry` in user mode
    /// with user stack pointer `user_sp` and address map `map`.
    ///
    /// # Errors
    ///
    /// Fails on heap or code-space exhaustion.
    pub fn create_thread(
        &mut self,
        entry: u32,
        user_sp: u32,
        map: AddressMap,
    ) -> Result<Tid, KernelError> {
        self.create_thread_inner(entry, user_sp, map, 0x0000)
    }

    fn create_thread_inner(
        &mut self,
        entry: u32,
        user_sp: u32,
        map: AddressMap,
        initial_sr: u16,
    ) -> Result<Tid, KernelError> {
        let tid = self.next_tid;
        self.next_tid += 1;

        // Allocation stage: TTE, vector table, kernel stack.
        let tte = self.heap.alloc(layout::TTE_LEN)?;
        self.charge_alloc();
        let vt = self.heap.alloc(layout::VECTOR_TABLE_LEN)?;
        self.charge_alloc();
        let kstack = self.heap.alloc(layout::KSTACK_LEN)?;
        self.charge_alloc();

        // TTE fill (the paper's ~100 µs for ~1 KB).
        for a in (tte..tte + layout::TTE_LEN).step_by(4) {
            self.m.mem.poke(a, Size::L, 0);
        }
        let c = charges::mem_init(&self.m.cost, layout::TTE_LEN);
        self.m.charge(c);

        // Factorization + optimization: the per-thread switch code.
        let quantum = self.default_quantum_us;
        let sw = self.synth_switch(tid, tte, vt, quantum, false)?;
        self.sw_extents.insert(sw.base, sw.base + sw.size);
        let (sw_out, ipi_in, sw_in, sw_in_mmu, jmp_at) = Kernel::switch_entries(&self.m, &sw);

        // Per-thread trap dispatchers and error handler.
        let d1 = self.creator.synthesize(
            &mut self.m,
            "dispatch_trap1",
            Bindings::new().bind("fdtable", tte + off::FD_TABLE),
            self.opts,
        )?;
        let d2 = self.creator.synthesize(
            &mut self.m,
            "dispatch_trap2",
            Bindings::new().bind("fdtable", tte + off::FD_TABLE),
            self.opts,
        )?;
        let errh = self.creator.synthesize(
            &mut self.m,
            "trap_error",
            Bindings::new()
                .bind("err_pc_slot", tte + off::ERR_PC)
                .bind("handler", self.shared.user_exit_stub),
            self.opts,
        )?;

        // Vector table: errors, FP, interrupts, traps.
        self.fill_vector_table(vt, sw_out, ipi_in, d1.base, d2.base, errh.base);
        let c = charges::mem_init(&self.m.cost, layout::VECTOR_TABLE_LEN);
        self.m.charge(c);

        // fd table: every slot EBADF.
        for fd in 0..crate::thread::tte::FD_MAX {
            self.m
                .mem
                .poke(tte + off::FD_TABLE + fd * 8, Size::L, self.shared.ebadf);
            self.m
                .mem
                .poke(tte + off::FD_TABLE + fd * 8 + 4, Size::L, self.shared.ebadf);
        }

        // Fabricate the initial exception frame on the kernel stack so
        // sw_in's rte drops into `entry`.
        let frame = tte_frame_top(kstack) - 6;
        self.m.mem.poke(frame, Size::W, u32::from(initial_sr));
        self.m.mem.poke(frame + 2, Size::L, entry);
        self.m.mem.poke(tte + off::SSP, Size::L, frame);
        self.m.mem.poke(tte + off::USP, Size::L, user_sp);
        self.m.mem.poke(tte + off::QUANTUM, Size::L, quantum);

        self.maps.insert(map.id, map.clone());
        self.vbr_to_tid.insert(vt, tid);
        // CONTRACT: aux_code order is [trap-1 read dispatcher, trap-2
        // write dispatcher, error-trap handler]. The UNIX emulator binds
        // its dispatcher to aux_code[0]/aux_code[1] by position.
        let thread = Thread {
            tid,
            tte,
            vt,
            kstack,
            sw,
            sw_out,
            sw_in,
            sw_in_mmu,
            jmp_at,
            aux_code: vec![d1, d2, errh],
            uses_fp: false,
            quantum_us: quantum,
            state: ThreadState::Stopped,
            map,
            fds: (0..crate::thread::tte::FD_MAX)
                .map(|_| FdObject::Free)
                .collect(),
            cpu: self.m.active_cpu(),
            last_gauge: 0,
            last_io: 0,
        };
        self.threads.insert(tid, thread);
        Ok(tid)
    }

    /// Synthesize (or resynthesize) a thread's context-switch code.
    fn synth_switch(
        &mut self,
        tid: Tid,
        tte: u32,
        vt: u32,
        quantum: u32,
        fp: bool,
    ) -> Result<Synthesized, KernelError> {
        let mut b = Bindings::new();
        b.bind("save", tte + off::REGS)
            .bind("usp_slot", tte + off::USP)
            .bind("ssp_slot", tte + off::SSP)
            .bind("vt", vt)
            .bind("quantum", quantum)
            .bind(
                "timer_qreg",
                dev_reg_addr(self.dev.timer, timer_regs::REG_QUANTUM_US),
            )
            .bind(
                "timer_ack",
                dev_reg_addr(self.dev.timer, timer_regs::REG_ACK),
            )
            .bind("tid", tid)
            .bind("next", 0);
        if fp {
            b.bind("fp_save", tte + off::FP);
        }
        // Under fusion every thread gets the hooked switch: the
        // `resume_hook` splice point costs nothing while the hook is
        // the default empty body (it collapses to a fall-through), and
        // is the seam a fused continuation is spliced into.
        let name = match (fp, self.fuse) {
            (false, false) => "sw_basic",
            (true, false) => "sw_fp",
            (false, true) => "sw_basic_hooked",
            (true, true) => "sw_fp_hooked",
        };
        Ok(self.creator.synthesize(&mut self.m, name, &b, self.opts)?)
    }

    /// Locate the switch code's entries and its patchable jump.
    fn switch_entries(m: &Machine, sw: &Synthesized) -> (u32, u32, u32, u32, u32) {
        let sw_out = sw.entries.get("sw_out").copied().unwrap_or(sw.base);
        let ipi_in = sw.entries.get("ipi_in").copied().unwrap_or(sw_out);
        let sw_in = sw.entries["sw_in"];
        let sw_in_mmu = sw.entries["sw_in_mmu"];
        let block = m.code.block(sw.base).expect("installed");
        let jmp_idx = block
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Jmp(Operand::Abs(_))))
            .expect("switch code contains the chain jmp");
        let jmp_at = m.code.addr_of(sw.base, jmp_idx).expect("in range");
        (sw_out, ipi_in, sw_in, sw_in_mmu, jmp_at)
    }

    fn fill_vector_table(
        &mut self,
        vt: u32,
        sw_out: u32,
        ipi_in: u32,
        d1: u32,
        d2: u32,
        errh: u32,
    ) {
        let poke = |m: &mut Machine, vec: u32, addr: u32| {
            m.mem.poke(vt + 4 * vec, Size::L, addr);
        };
        // Error traps (Section 4.3): bus error, address error, illegal,
        // zero divide, privilege violation.
        for vec in [2, 3, 4, 5, 8] {
            poke(&mut self.m, vec, errh);
        }
        // Lazy FP.
        poke(&mut self.m, 11, self.shared.fp_trap);
        // Interrupt levels.
        for level in 1..=7u32 {
            poke(&mut self.m, 24 + level, self.shared.spurious);
        }
        poke(
            &mut self.m,
            24 + u32::from(irq_levels::DISK),
            self.shared.disk_done,
        );
        poke(
            &mut self.m,
            24 + u32::from(irq_levels::ALARM),
            self.shared.alarm,
        );
        poke(
            &mut self.m,
            24 + u32::from(irq_levels::TTY),
            self.shared.tty_rx,
        );
        poke(
            &mut self.m,
            24 + u32::from(irq_levels::AUDIO),
            self.shared.spurious,
        );
        // The timer vector points straight at THIS thread's sw_out —
        // Figure 3's "the interrupt is vectored to thread-0's
        // context-switch-out procedure".
        poke(&mut self.m, 24 + u32::from(irq_levels::QUANTUM), sw_out);
        // On a multiprocessor the IPI vector points at THIS thread's
        // ipi_in: an inter-processor interrupt is exactly a reschedule
        // request, handled like a quantum expiry — but the IPI arrives at
        // level 1, so the entry first raises the mask to keep device
        // interrupts from nesting mid-switch.
        if self.m.num_cpus() > 1 {
            poke(&mut self.m, 24 + u32::from(irq_levels::IPI), ipi_in);
        }
        // Traps.
        for t in 0..16u32 {
            poke(&mut self.m, 32 + t, self.shared.trampoline);
        }
        poke(&mut self.m, 32 + u32::from(crate::syscall::traps::READ), d1);
        poke(
            &mut self.m,
            32 + u32::from(crate::syscall::traps::WRITE),
            d2,
        );
    }

    /// Install a handler address into a thread's vector table (used by
    /// the UNIX emulator and device servers).
    pub fn set_vector(&mut self, tid: Tid, vector: u32, handler: u32) -> Result<(), KernelError> {
        let vt = self.threads.get(&tid).ok_or(KernelError::NoThread(tid))?.vt;
        self.m.mem.poke(vt + 4 * vector, Size::L, handler);
        let c = charges::code_patch(&self.m.cost);
        self.m.charge(c);
        Ok(())
    }

    /// Start (or restart) a thread: insert its TTE into the executable
    /// ready queue, in front (Section 4.4's unblocking rule).
    ///
    /// # Errors
    ///
    /// Fails for unknown or dead threads.
    pub fn start(&mut self, tid: Tid) -> Result<(), KernelError> {
        self.ensure_safe_point();
        let t = self.threads.get(&tid).ok_or(KernelError::NoThread(tid))?;
        if matches!(t.state, ThreadState::Dead) {
            return Err(KernelError::Invalid("starting a dead thread"));
        }
        if self.quarantined_tids.contains(&tid) {
            return Err(KernelError::Invalid("starting a quarantined thread"));
        }
        if self.pooled.contains(&tid) {
            // Already runnable: parked in the steal pool awaiting a
            // thief.
            return Ok(());
        }
        let (mut home, sw_in, jmp_at) = (t.cpu, t.sw_in, t.jmp_at);
        // A thread homed on a quarantined CPU starts on a healthy one
        // instead — nothing dispatches a quarantined CPU's chain.
        if self.cpus[home].quarantined && !self.is_idle(tid) {
            if let Some(h) = self.first_healthy_cpu() {
                home = h;
                self.threads.get_mut(&tid).expect("exists").cpu = h;
            }
        }
        if self.cpus[home].ready.contains(tid) {
            return Ok(());
        }
        let node = ChainNode {
            id: tid,
            entry: sw_in,
            jmp_at,
        };
        let after = self
            .current_tid_on(home)
            .filter(|cur| self.cpus[home].ready.contains(*cur));
        self.cpus[home]
            .ready
            .insert_next(&mut self.m, after, node)?;
        self.threads.get_mut(&tid).expect("exists").state = ThreadState::Ready;
        self.balance_idle_on(home)?;
        self.fix_links_around(home, tid)?;
        self.fix_offchain_current(home)?;
        let c = 2 * charges::code_patch(&self.m.cost) + charges::kcall_overhead(&self.m.cost);
        self.m.charge(c);
        self.kick(home);
        Ok(())
    }

    /// If the machine is currently in (or parked before) the idle thread,
    /// cut the running quantum short so the newly runnable thread gets
    /// the CPU immediately instead of waiting out idle's quantum —
    /// Section 4.4's "minimize response time to events".
    fn kick_idle(&mut self) {
        let cur = self.current_tid();
        if cur.is_none() || cur.is_some_and(|t| self.is_idle(t)) {
            let qreg = dev_reg_addr(self.dev.timer, timer_regs::REG_QUANTUM_US);
            self.m.host_reg_write(qreg, 1);
        }
    }

    /// Kick whichever CPU `cpu` is: the active CPU gets its quantum cut
    /// short ([`Kernel::kick_idle`]); a remote CPU sitting in its idle
    /// thread gets an IPI, which vectors to the idle's switch-out and
    /// rotates it onto the new arrival.
    fn kick(&mut self, cpu: usize) {
        if self.cpus[cpu].quarantined {
            return;
        }
        if cpu == self.m.active_cpu() {
            self.kick_idle();
            return;
        }
        let cur = self.current_tid_on(cpu);
        if cur.is_none() || cur.is_some_and(|t| self.is_idle(t)) {
            // Through the machine's IPI seam, where the fault plan may
            // lose or delay the interrupt; the run loop's timer-fallback
            // rescheduling turns either into latency, never a hang.
            self.m.send_ipi(cpu, irq_levels::IPI);
        }
    }

    /// Stop a thread: remove its TTE from the ready queue.
    ///
    /// # Errors
    ///
    /// Fails for unknown threads or the idle thread.
    pub fn stop(&mut self, tid: Tid) -> Result<(), KernelError> {
        if self.is_idle(tid) {
            return Err(KernelError::Invalid("stopping the idle thread"));
        }
        self.ensure_safe_point();
        if !self.threads.contains_key(&tid) {
            return Err(KernelError::NoThread(tid));
        }
        self.activate_owner(tid);
        let was_current = self.current_tid() == Some(tid);
        if was_current {
            self.suspend_current_state();
        }
        self.pooled.remove(&tid);
        let home = self.home_cpu(tid);
        let pred = self.cpus[home].ready.prev_of_id(tid).map(|p| p.id);
        self.cpus[home].ready.remove(&mut self.m, tid)?;
        self.threads.get_mut(&tid).expect("exists").state = ThreadState::Stopped;
        self.balance_idle_on(home)?;
        if let Some(pred) = pred.filter(|p| *p != tid) {
            self.fix_link_from(home, pred)?;
        }
        self.fix_offchain_current(home)?;
        let c = charges::code_patch(&self.m.cost) + charges::kcall_overhead(&self.m.cost);
        self.m.charge(c);
        if was_current {
            self.enter_next();
        }
        Ok(())
    }

    /// Keep the idle thread out of the ready chain whenever real threads
    /// are runnable: the idle thread otherwise consumes a full quantum
    /// per rotation (it sleeps in `stop` until its own quantum expires),
    /// which would tax every runnable thread by a whole idle quantum.
    fn balance_idle_on(&mut self, cpu: usize) -> Result<(), KernelError> {
        let idle = self.cpus[cpu].idle_tid;
        let idle_in = self.cpus[cpu].ready.contains(idle);
        let others = self.cpus[cpu].ready.len() > usize::from(idle_in);
        if others && idle_in {
            // If the machine is currently executing idle (or its switch
            // code), leave it for now; the next quantum moves on anyway.
            let pred = self.cpus[cpu].ready.prev_of_id(idle).map(|p| p.id);
            self.cpus[cpu].ready.remove(&mut self.m, idle)?;
            if let Some(pred) = pred.filter(|p| *p != idle) {
                self.fix_link_from(cpu, pred)?;
            }
            // Idle's own jmp must keep pointing somewhere valid in case
            // the machine is mid-idle right now: route it into the chain.
            let first = self.cpus[cpu].ready.head().expect("others remain");
            let entry = self.entry_into(idle, first.id);
            let idle_t = &self.threads[&idle];
            self.m.code.patch_jmp_target(idle_t.jmp_at, entry)?;
            self.threads.get_mut(&idle).expect("idle exists").state = ThreadState::Stopped;
        } else if !others && !idle_in {
            let t = &self.threads[&idle];
            let node = ChainNode {
                id: idle,
                entry: t.sw_in,
                jmp_at: t.jmp_at,
            };
            self.cpus[cpu].ready.insert_front(&mut self.m, None, node)?;
            self.threads.get_mut(&idle).expect("idle exists").state = ThreadState::Ready;
        }
        Ok(())
    }

    /// Re-point each chain node's jump at the successor's `sw_in` or
    /// `sw_in_mmu` depending on whether the address space changes
    /// (Figure 3's two entry points).
    /// Bulk fallback for rare whole-chain events (CPU quarantine, FP
    /// resynthesis); routine membership changes use the O(1)
    /// [`Kernel::fix_links_around`] instead.
    fn fix_chain_entries_on(&mut self, cpu: usize) -> Result<(), KernelError> {
        let nodes: Vec<ChainNode> = self.cpus[cpu].ready.nodes();
        for (i, node) in nodes.iter().enumerate() {
            let next = &nodes[(i + 1) % nodes.len()];
            let entry = self.entry_into(node.id, next.id);
            self.m.code.patch_jmp_target(node.jmp_at, entry)?;
        }
        self.fix_offchain_current(cpu)
    }

    /// The chain entry `to` presents to `from`: `sw_in` when the address
    /// map is unchanged, `sw_in_mmu` when the MMU must be switched
    /// (Figure 3's two entry points).
    fn entry_into(&self, from: Tid, to: Tid) -> u32 {
        let a = &self.threads[&from];
        let b = &self.threads[&to];
        if a.map.id == b.map.id {
            b.sw_in
        } else {
            b.sw_in_mmu
        }
    }

    /// Re-point one chain node's jmp at its current successor's proper
    /// entry. No-op when `from` is not in the chain. O(1): the entry
    /// choice depends only on the `(node, successor)` pair, so a
    /// membership change never needs the whole-chain repatch.
    fn fix_link_from(&mut self, cpu: usize, from: Tid) -> Result<(), KernelError> {
        let Some(next) = self.cpus[cpu].ready.next_of_id(from) else {
            return Ok(());
        };
        let jmp_at = self.threads[&from].jmp_at;
        let entry = self.entry_into(from, next.id);
        self.m.code.patch_jmp_target(jmp_at, entry)?;
        Ok(())
    }

    /// Fix the links a membership change around `tid` disturbed: the
    /// predecessor's jmp into `tid`, and `tid`'s own jmp onward.
    fn fix_links_around(&mut self, cpu: usize, tid: Tid) -> Result<(), KernelError> {
        if let Some(prev) = self.cpus[cpu].ready.prev_of_id(tid) {
            if prev.id != tid {
                self.fix_link_from(cpu, prev.id)?;
            }
        }
        self.fix_link_from(cpu, tid)
    }

    /// A thread this CPU is executing right now but that is no longer a
    /// chain node (a parked-off idle, a blocked current, a victim whose
    /// ready entry was just stolen) still exits through its own jmp. Keep
    /// that jmp routed at the chain's head, or the CPU would follow a
    /// stale pointer into a thread that now belongs to another CPU.
    fn fix_offchain_current(&mut self, cpu: usize) -> Result<(), KernelError> {
        let Some(cur) = self.current_tid_on(cpu) else {
            return Ok(());
        };
        if self.cpus[cpu].ready.contains(cur) {
            return Ok(());
        }
        let Some(head) = self.cpus[cpu].ready.head() else {
            return Ok(());
        };
        if !self.threads.contains_key(&cur) {
            return Ok(());
        }
        let jmp_at = self.threads[&cur].jmp_at;
        let entry = self.entry_into(cur, head.id);
        self.m.code.patch_jmp_target(jmp_at, entry)?;
        Ok(())
    }

    /// The currently executing thread, identified by the installed VBR.
    #[must_use]
    pub fn current_tid(&self) -> Option<Tid> {
        self.vbr_to_tid.get(&self.m.cpu.vbr).copied()
    }

    /// The thread currently executing on CPU `cpu` (active or parked),
    /// identified by that CPU's installed VBR.
    #[must_use]
    pub fn current_tid_on(&self, cpu: usize) -> Option<Tid> {
        self.vbr_to_tid.get(&self.m.cpu_ref(cpu).vbr).copied()
    }

    /// Whether `tid` is one of the per-CPU idle threads.
    #[must_use]
    pub fn is_idle(&self, tid: Tid) -> bool {
        self.cpus.iter().any(|c| c.idle_tid == tid)
    }

    /// The CPU `tid` calls home — whose ready chain holds it when
    /// runnable. Unknown tids report CPU 0.
    fn home_cpu(&self, tid: Tid) -> usize {
        self.threads.get(&tid).map_or(0, |t| t.cpu)
    }

    /// Switch the machine to the CPU where `tid` is currently executing,
    /// if any, and step that CPU to a safe point. Host-side surgery on a
    /// thread that is current *somewhere* must happen with that CPU's
    /// context loaded: the parked registers hold state its TTE lacks.
    fn activate_owner(&mut self, tid: Tid) {
        if self.current_tid() == Some(tid) {
            return;
        }
        let owner = (0..self.cpus.len()).find(|&c| self.current_tid_on(c) == Some(tid));
        if let Some(c) = owner {
            self.m.switch_cpu(c);
            self.ensure_safe_point();
        }
    }

    /// The thread to charge an event to: the current thread, or the
    /// active CPU's idle thread when the machine is between identities.
    pub(crate) fn trace_tid(&self) -> Tid {
        self.current_tid()
            .unwrap_or(self.cpus[self.m.active_cpu()].idle_tid)
    }

    /// Drain the machine's hook log into the per-thread trace rings.
    ///
    /// The machine records what happened (traps, interrupt accepts,
    /// `rte`s, VBR writes) without knowing whose events they are; this is
    /// where the kernel attributes them, using the VBR each event was
    /// accepted under — the same identity [`Kernel::current_tid`] uses.
    /// Trap/`rte` pairs are matched through a per-thread frame stack so a
    /// syscall's exit record carries its enter→exit cycle count; the
    /// stack is per thread because the hardware frames live on the
    /// thread's own kernel stack, so the pairing survives context
    /// switches. Host-fabricated frames (block/resume) make an `rte`
    /// occasionally pop a trap frame early, so `SyscallExit` can land at
    /// a resume rather than the true return — a documented approximation,
    /// bounded by the frame-stack depth cap.
    ///
    /// Compiled without the `trace` feature the hook log is always empty
    /// and this is a no-op.
    pub fn pump_trace(&mut self) {
        use crate::trace::Kind;
        use quamachine::trace::MachEvent;
        self.pump_fault_trace();
        self.trace.dropped = self.m.hooks.dropped;
        if self.m.hooks.is_empty() {
            return;
        }
        for ev in self.m.hooks.drain() {
            match ev {
                // Guest-side dispatch: sw_in installing the incoming
                // thread's vector table IS the context switch.
                MachEvent::VbrWrite { vbr, cycle, cpu } => {
                    if let Some(&tid) = self.vbr_to_tid.get(&vbr) {
                        self.trace.cpu = cpu as u16;
                        self.trace.push(tid, cycle, Kind::CtxSwitch, 0, 0);
                    }
                }
                MachEvent::Trap {
                    vector,
                    vbr,
                    cycle,
                    cpu,
                } => {
                    let tid = self
                        .vbr_to_tid
                        .get(&vbr)
                        .copied()
                        .unwrap_or(self.cpus[cpu].idle_tid);
                    self.trace.cpu = cpu as u16;
                    self.trace
                        .push(tid, cycle, Kind::SyscallEnter, u32::from(vector), 0);
                    self.trace.push_frame(tid, Some((vector, cycle)));
                }
                MachEvent::IrqAccept {
                    level,
                    vbr,
                    cycle,
                    cpu,
                } => {
                    let tid = self
                        .vbr_to_tid
                        .get(&vbr)
                        .copied()
                        .unwrap_or(self.cpus[cpu].idle_tid);
                    self.trace.cpu = cpu as u16;
                    self.trace.push(tid, cycle, Kind::Irq, u32::from(level), 0);
                    self.trace.push_frame(tid, None);
                }
                MachEvent::Rte { vbr, cycle, cpu } => {
                    let tid = self
                        .vbr_to_tid
                        .get(&vbr)
                        .copied()
                        .unwrap_or(self.cpus[cpu].idle_tid);
                    if let Some(Some((vector, t0))) = self.trace.pop_frame(tid) {
                        let dt = u32::try_from(cycle.saturating_sub(t0)).unwrap_or(u32::MAX);
                        self.trace.cpu = cpu as u16;
                        self.trace
                            .push(tid, cycle, Kind::SyscallExit, u32::from(vector), dt);
                    }
                }
            }
        }
        // Leave the attribution on the active CPU for subsequent manual
        // pushes (kernel-side events belong to whoever is running now).
        self.trace.cpu = self.m.active_cpu() as u16;
    }

    /// Translate the fault plan's new SMP-class records into kernel
    /// trace events, attributed to the target CPU's idle thread — the
    /// fault hit the CPU domain, not whichever thread happened to run.
    /// `IpiDelayed` shares [`Kind::IpiLost`](crate::trace::Kind::IpiLost)
    /// with `b` = the delay (0 means lost outright). Device-class fault
    /// records stay out of the kernel trace, as before.
    fn pump_fault_trace(&mut self) {
        let recs = self.m.fault.trace();
        let start = self.fault_cursor.min(recs.len());
        self.fault_cursor = recs.len();
        #[cfg(feature = "trace")]
        {
            use crate::trace::Kind;
            use quamachine::fault::FaultRecord as FR;
            let new: Vec<FR> = self.m.fault.trace()[start..].to_vec();
            let prev_cpu = self.trace.cpu;
            for r in new {
                let (cpu, at, kind, a, b) = match r {
                    FR::IpiLost { at, cpu } => (cpu, at, Kind::IpiLost, cpu as u32, 0),
                    FR::IpiDelayed { at, cpu, delay } => (
                        cpu,
                        at,
                        Kind::IpiLost,
                        cpu as u32,
                        u32::try_from(delay).unwrap_or(u32::MAX),
                    ),
                    FR::CpuStall { at, cpu, cycles } => (
                        cpu,
                        at,
                        Kind::CpuStall,
                        cpu as u32,
                        u32::try_from(cycles).unwrap_or(u32::MAX),
                    ),
                    _ => continue,
                };
                if cpu < self.cpus.len() {
                    self.trace.cpu = u16::try_from(cpu).unwrap_or(0);
                    self.trace.push(self.cpus[cpu].idle_tid, at, kind, a, b);
                }
            }
            self.trace.cpu = prev_cpu;
        }
        #[cfg(not(feature = "trace"))]
        let _ = start;
    }

    /// Move the creator's pending specialization-cache events into
    /// `tid`'s trace ring. Called at each synthesis/teardown site so the
    /// events land on the thread that drove them; the buffer is always
    /// empty without the `trace` feature.
    pub(crate) fn drain_cache_events(&mut self, tid: Tid) {
        use crate::trace::Kind;
        use synthesis_codegen::creator::CacheEvent;
        if self.creator.cache_events.is_empty() {
            return;
        }
        let cycle = self.m.meter.cycles;
        self.trace.cpu = self.m.active_cpu() as u16;
        for ev in std::mem::take(&mut self.creator.cache_events) {
            match ev {
                CacheEvent::Hit { base, cross, .. } => {
                    // `b` carries the cross-CPU flag: always 0 on a
                    // uniprocessor, so single-CPU traces are unchanged.
                    self.trace
                        .push(tid, cycle, Kind::CacheHit, base, u32::from(cross));
                }
                CacheEvent::Miss { base, .. } => {
                    self.trace.push(tid, cycle, Kind::CacheMiss, base, 0);
                }
                CacheEvent::Release { base, evicted } => {
                    self.trace
                        .push(tid, cycle, Kind::Destroy, base, u32::from(evicted));
                }
            }
        }
    }

    /// Whether `pc` is inside any thread's context-switch code — the
    /// window during which CPU contents and the VBR identity are
    /// transitional, so host-side surgery would corrupt thread state.
    fn in_switch_code(&self, pc: u32) -> bool {
        // O(1) via the extent index: the predecessor block either covers
        // `pc` or nothing does. A scan over `threads` would make every
        // safe-point step O(n) — ruinous at 10k threads.
        self.sw_extents
            .range(..=pc)
            .next_back()
            .is_some_and(|(_, &end)| pc < end)
    }

    /// Step the machine out of any context-switch window so host-side
    /// operations (stop, signal, step, destroy) see consistent state.
    /// Kernel calls encountered on the way are serviced.
    pub fn ensure_safe_point(&mut self) {
        for _ in 0..10_000 {
            if !self.in_switch_code(self.m.cpu.pc) {
                return;
            }
            match self.m.step() {
                Ok(None) => {}
                Ok(Some(RunExit::KCall(sel))) => {
                    let _ = self.handle_kcall(sel);
                }
                _ => return,
            }
        }
    }

    /// Save the machine's register state into the current thread's TTE
    /// and fabricate a resume frame on its kernel stack — the host-side
    /// mirror of `sw_out`, used when the kernel switches away inside a
    /// kernel call. The fabricated frame makes the later `sw_in`'s `rte`
    /// resume exactly where the `kcall` left off (mid-routine, in
    /// supervisor mode), so the synthesized routine finishes normally.
    fn suspend_current_state(&mut self) {
        self.suspend_state_of(self.m.active_cpu());
    }

    /// [`Kernel::suspend_current_state`] generalized to any CPU's
    /// context, active or parked — the CPU-quarantine path checkpoints a
    /// thread resident on a parked CPU without dispatching that CPU.
    fn suspend_state_of(&mut self, cpu: usize) {
        let Some(tid) = self.current_tid_on(cpu) else {
            return;
        };
        let t = &self.threads[&tid];
        let tte = t.tte;
        let uses_fp = t.uses_fp;
        let c = self.m.cpu_ref(cpu).clone();
        for i in 0..8 {
            self.m
                .mem
                .poke(tte + off::REGS + 4 * i as u32, Size::L, c.d[i]);
        }
        for i in 0..7 {
            self.m
                .mem
                .poke(tte + off::REGS + 32 + 4 * i as u32, Size::L, c.a[i]);
        }
        self.m.mem.poke(tte + off::USP, Size::L, c.usp());
        // Fabricate the resume frame below the current SSP.
        let frame = c.ssp().wrapping_sub(6);
        self.m.mem.poke(frame, Size::W, u32::from(c.sr));
        self.m.mem.poke(frame + 2, Size::L, c.pc);
        self.m.mem.poke(tte + off::SSP, Size::L, frame);
        if uses_fp {
            for i in 0..8u32 {
                let bits = c.fp[i as usize].to_bits();
                self.m
                    .mem
                    .poke(tte + off::FP + 8 * i, Size::L, (bits >> 32) as u32);
                self.m
                    .mem
                    .poke(tte + off::FP + 8 * i + 4, Size::L, bits as u32);
            }
        }
        let ch = charges::mem_copy(&self.m.cost, 74);
        self.m.charge(ch);
    }

    /// Point the machine at the active CPU's next ready thread's
    /// switch-in.
    fn enter_next(&mut self) {
        let cpu = self.m.active_cpu();
        if let Some(node) = self.cpus[cpu].ready.head() {
            self.enter(node.id);
        }
    }

    /// Point the machine at `tid`'s switch-in (it must have a valid frame
    /// and saved state).
    fn enter(&mut self, tid: Tid) {
        crate::trace!(self, tid, crate::trace::Kind::CtxSwitch, 1, 0);
        let t = &self.threads[&tid];
        let need_map = t.map.id != self.installed_map_ids[self.m.active_cpu()];
        self.m.cpu.pc = if need_map { t.sw_in_mmu } else { t.sw_in };
        // Supervisor mode (sw_in uses privileged instructions) with
        // interrupts masked: a pending interrupt accepted before sw_in's
        // first instruction would vector through the *previous* thread's
        // table and corrupt its just-saved state. The incoming thread's
        // rte restores its own mask.
        let sr = (self.m.cpu.sr | quamachine::cpu::sr_bits::S) | 0x0700;
        self.m.cpu.write_sr(sr);
    }

    /// Destroy a thread, freeing everything it owns.
    ///
    /// # Errors
    ///
    /// Fails for unknown threads or the idle thread.
    pub fn destroy(&mut self, tid: Tid) -> Result<(), KernelError> {
        if self.is_idle(tid) {
            return Err(KernelError::Invalid("destroying the idle thread"));
        }
        self.ensure_safe_point();
        self.activate_owner(tid);
        // Attribute pending machine events while the VBR mapping still
        // exists; the thread's ring itself outlives it (post-mortems
        // drain it after the reap).
        self.pump_trace();
        let was_current = self.current_tid() == Some(tid);
        self.pooled.remove(&tid);
        let home = self.home_cpu(tid);
        if self.cpus[home].ready.contains(tid) {
            let pred = self.cpus[home].ready.prev_of_id(tid).map(|p| p.id);
            self.cpus[home].ready.remove(&mut self.m, tid)?;
            self.balance_idle_on(home)?;
            if let Some(pred) = pred.filter(|p| *p != tid) {
                self.fix_link_from(home, pred)?;
            }
            self.fix_offchain_current(home)?;
        }
        let mut t = self
            .threads
            .remove(&tid)
            .ok_or(KernelError::NoThread(tid))?;
        self.sw_extents.remove(&t.sw.base);
        // Close fds.
        for fd in 0..t.fds.len() {
            let obj = std::mem::replace(&mut t.fds[fd], FdObject::Free);
            self.release_fd_object(tid, obj);
        }
        self.creator.destroy(&mut self.m, &t.sw);
        for s in &t.aux_code {
            self.creator.destroy(&mut self.m, s);
        }
        self.heap.free(t.tte, layout::TTE_LEN);
        self.heap.free(t.vt, layout::VECTOR_TABLE_LEN);
        self.heap.free(t.kstack, layout::KSTACK_LEN);
        self.vbr_to_tid.remove(&t.vt);
        t.state = ThreadState::Dead;
        self.exited.insert(tid);
        let c = charges::kcall_overhead(&self.m.cost) + charges::alloc_op(&self.m.cost, 3) * 3;
        self.m.charge(c);
        if was_current {
            self.enter_next();
        }
        Ok(())
    }

    fn release_fd_object(&mut self, tid: Tid, obj: FdObject) {
        if let FdObject::Channel { class, code } = obj {
            self.release_channel(tid, class, &code);
        }
    }

    /// THE teardown path: destroy the endpoint code (dropping cache
    /// references) and release the class state. Used by `close`, thread
    /// destruction, and the open pipeline's rollback — there is exactly
    /// one unwind.
    fn release_channel(&mut self, tid: Tid, class: ChannelClass, code: &[Synthesized]) {
        for s in code {
            self.creator.destroy(&mut self.m, s);
        }
        self.drain_cache_events(tid);
        match class {
            ChannelClass::Null | ChannelClass::Tty { .. } => {}
            ChannelClass::File { fid, offset_slot } => {
                let gone = {
                    let chan = self
                        .file_chans
                        .get_mut(&(tid, fid))
                        .expect("file channel state exists while referenced");
                    chan.refs -= 1;
                    chan.refs == 0
                };
                if gone {
                    self.file_chans.remove(&(tid, fid));
                    self.heap.free(offset_slot, 4);
                }
                if let Some(f) = self.fs.file_mut(fid) {
                    f.opens = f.opens.saturating_sub(1);
                }
            }
            ChannelClass::Pipe { pid, read_end } => {
                let Some(p) = self.pipes.get_mut(pid as usize) else {
                    return;
                };
                if read_end {
                    p.readers = p.readers.saturating_sub(1);
                } else {
                    p.writers = p.writers.saturating_sub(1);
                }
                if p.readers == 0 && p.writers == 0 {
                    // Free the ring; keep the table slot (ids are stable).
                    let (hs, buf, sz) = (p.head_slot, p.buf, p.size);
                    self.heap.free(hs, 16);
                    self.heap.free(buf, sz);
                }
            }
        }
    }

    /// `step`: make a stopped thread execute one instruction (Table 3:
    /// the debugger primitive).
    ///
    /// # Errors
    ///
    /// The thread must exist and be stopped.
    pub fn step_thread(&mut self, tid: Tid) -> Result<(), KernelError> {
        let t = self.threads.get(&tid).ok_or(KernelError::NoThread(tid))?;
        if !matches!(t.state, ThreadState::Stopped) {
            return Err(KernelError::Invalid("step requires a stopped thread"));
        }
        let (tte, vt) = (t.tte, t.vt);
        // Host-side sw_in: load the thread's state into the CPU,
        // including its address map (one user-mode instruction is about
        // to run under it).
        let saved_cpu = self.m.cpu.clone();
        let saved_map = std::mem::replace(&mut self.m.mem.map, t.map.clone());
        let frame = self.m.mem.peek(tte + off::SSP, Size::L);
        let sr = self.m.mem.peek(frame, Size::W) as u16;
        let pc = self.m.mem.peek(frame + 2, Size::L);
        for i in 0..8 {
            self.m.cpu.d[i] = self.m.mem.peek(tte + off::REGS + 4 * i as u32, Size::L);
        }
        for i in 0..7 {
            self.m.cpu.a[i] = self
                .m
                .mem
                .peek(tte + off::REGS + 32 + 4 * i as u32, Size::L);
        }
        self.m.cpu.vbr = vt;
        self.m.cpu.pc = pc;
        // Build the mode: supervisor bit per the frame, but with
        // interrupts masked so the single step executes the thread's
        // instruction rather than accepting a pending interrupt.
        let masked = (sr & !0x0700) | 0x0700;
        self.m.cpu.write_sr(masked | quamachine::cpu::sr_bits::S); // temporarily super
        self.m.cpu.a[7] = frame + 6;
        let usp = self.m.mem.peek(tte + off::USP, Size::L);
        self.m.cpu.set_usp(usp);
        self.m.cpu.write_sr(masked);
        if !self.m.cpu.supervisor() {
            self.m.cpu.a[7] = usp;
        }
        let _ = self.m.step();
        // Save back (restoring the thread's real interrupt mask) and
        // refabricate the frame.
        let npc = self.m.cpu.pc;
        let nsr = (self.m.cpu.sr & !0x0700) | (sr & 0x0700);
        for i in 0..8 {
            let v = self.m.cpu.d[i];
            self.m.mem.poke(tte + off::REGS + 4 * i as u32, Size::L, v);
        }
        for i in 0..7 {
            let v = self.m.cpu.a[i];
            self.m
                .mem
                .poke(tte + off::REGS + 32 + 4 * i as u32, Size::L, v);
        }
        let nusp = self.m.cpu.usp();
        let nframe = self.m.cpu.ssp() - 6;
        self.m.mem.poke(nframe, Size::W, u32::from(nsr));
        self.m.mem.poke(nframe + 2, Size::L, npc);
        self.m.mem.poke(tte + off::SSP, Size::L, nframe);
        self.m.mem.poke(tte + off::USP, Size::L, nusp);
        self.m.cpu = saved_cpu;
        self.m.mem.map = saved_map;
        let c = 2 * charges::mem_copy(&self.m.cost, 68) + charges::kcall_overhead(&self.m.cost);
        self.m.charge(c);
        Ok(())
    }

    /// Send a signal: the target will run its signal handler the next
    /// time it is activated (Section 4.3). Host API: callable between
    /// [`Kernel::run`] slices.
    ///
    /// # Errors
    ///
    /// The target must exist and have a handler installed.
    pub fn signal(&mut self, target: Tid, sig: u32) -> Result<(), KernelError> {
        self.ensure_safe_point();
        self.activate_owner(target);
        if self.current_tid() == Some(target) {
            // The target's live state is on the CPU (the machine is
            // parked between instructions): park it properly first, then
            // deliver as to a parked thread, and resume it through its
            // switch-in so the fabricated frames unwind in order.
            self.suspend_current_state();
            self.signal_parked(target, sig)?;
            self.enter(target);
            return Ok(());
        }
        self.signal_parked(target, sig)
    }

    /// Deliver a signal to a thread whose state is in its TTE (or to the
    /// calling thread from inside its own kernel call).
    pub(crate) fn signal_from_kcall(&mut self, target: Tid, sig: u32) -> Result<(), KernelError> {
        let t = self
            .threads
            .get(&target)
            .ok_or(KernelError::NoThread(target))?;
        let tte = t.tte;
        let handler = self.m.mem.peek(tte + off::SIG_HANDLER, Size::L);
        if handler == 0 {
            return Err(KernelError::Invalid("no signal handler installed"));
        }
        if self.current_tid() == Some(target) {
            // Running target: rewrite the active trap frame (we are in a
            // kernel call from it). Park the old PC and swap in the
            // handler.
            let sp = self.m.cpu.a[7];
            let old_pc = self.m.mem.peek(sp + 2, Size::L);
            self.m.mem.poke(tte + off::SIG_PC, Size::L, old_pc);
            self.m.mem.poke(sp + 2, Size::L, handler);
            // Stash registers for SIG_RETURN.
            let mut regs = [0u32; 15];
            regs[..8].copy_from_slice(&self.m.cpu.d);
            regs[8..].copy_from_slice(&self.m.cpu.a[..7]);
            self.sig_stash.insert(target, (regs, self.m.cpu.usp()));
        } else {
            return self.signal_parked(target, sig);
        }
        let c = charges::kcall_overhead(&self.m.cost) + 3 * charges::code_patch(&self.m.cost);
        self.m.charge(c);
        Ok(())
    }

    /// Deliver to a thread whose state lives in its TTE: push a
    /// fabricated frame so its next `rte` runs the handler; `SIG_RETURN`
    /// then falls back to the real frame.
    fn signal_parked(&mut self, target: Tid, _sig: u32) -> Result<(), KernelError> {
        let t = self
            .threads
            .get(&target)
            .ok_or(KernelError::NoThread(target))?;
        let tte = t.tte;
        let handler = self.m.mem.peek(tte + off::SIG_HANDLER, Size::L);
        if handler == 0 {
            return Err(KernelError::Invalid("no signal handler installed"));
        }
        let ssp = self.m.mem.peek(tte + off::SSP, Size::L);
        let fake = ssp - 6;
        self.m.mem.poke(fake, Size::W, 0); // user mode
        self.m.mem.poke(fake + 2, Size::L, handler);
        self.m.mem.poke(tte + off::SSP, Size::L, fake);
        let mut regs = [0u32; 15];
        for i in 0..15u32 {
            regs[i as usize] = self.m.mem.peek(tte + off::REGS + 4 * i, Size::L);
        }
        let usp = self.m.mem.peek(tte + off::USP, Size::L);
        self.sig_stash.insert(target, (regs, usp));
        let c = charges::kcall_overhead(&self.m.cost) + 3 * charges::code_patch(&self.m.cost);
        self.m.charge(c);
        Ok(())
    }

    // --- Blocking / waking -------------------------------------------------

    /// Block the current thread on `wait` and switch away.
    fn block_current(&mut self, wait: WaitObject) {
        let Some(tid) = self.current_tid() else {
            return;
        };
        if self.is_idle(tid) {
            return; // the idle thread never blocks
        }
        // Raise the waiter flag the synthesized producers test.
        if let Some(slot) = self.wait_flag_slot(wait) {
            self.m.mem.poke(slot, Size::L, 1);
        }
        self.suspend_current_state();
        let home = self.home_cpu(tid);
        let pred = self.cpus[home].ready.prev_of_id(tid).map(|p| p.id);
        let _ = self.cpus[home].ready.remove(&mut self.m, tid);
        let _ = self.balance_idle_on(home);
        if let Some(pred) = pred.filter(|p| *p != tid) {
            let _ = self.fix_link_from(home, pred);
        }
        let _ = self.fix_offchain_current(home);
        self.threads.get_mut(&tid).expect("current exists").state = ThreadState::Blocked(wait);
        self.waiters.entry(wait).or_default().push(tid);
        self.enter_next();
    }

    /// Wake every thread blocked on `wait` (front of the ready queue:
    /// "giving it immediate access to the CPU").
    fn wake(&mut self, wait: WaitObject) {
        let Some(tids) = self.waiters.remove(&wait) else {
            return;
        };
        if let Some(slot) = self.wait_flag_slot(wait) {
            self.m.mem.poke(slot, Size::L, 0);
        }
        let mut homes: Vec<usize> = Vec::new();
        let mut woken: Vec<(usize, Tid)> = Vec::new();
        for tid in tids {
            let t = self.threads.get_mut(&tid).expect("waiter exists");
            t.state = ThreadState::Ready;
            let home = t.cpu;
            let node = ChainNode {
                id: tid,
                entry: t.sw_in,
                jmp_at: t.jmp_at,
            };
            let after = self
                .current_tid_on(home)
                .filter(|cur| self.cpus[home].ready.contains(*cur));
            let _ = self.cpus[home].ready.insert_next(&mut self.m, after, node);
            homes.push(home);
            woken.push((home, tid));
        }
        homes.sort_unstable();
        homes.dedup();
        for &home in &homes {
            let _ = self.balance_idle_on(home);
        }
        for (home, tid) in woken {
            let _ = self.fix_links_around(home, tid);
        }
        for home in homes {
            let _ = self.fix_offchain_current(home);
            self.kick(home);
        }
    }

    fn wait_flag_slot(&self, wait: WaitObject) -> Option<u32> {
        match wait {
            WaitObject::TtyInput => Some(self.tty_srv.waiters_slot),
            WaitObject::PipeData(p) => self.pipes.get(p as usize).map(|p| p.r_wait_slot),
            WaitObject::PipeSpace(p) => self.pipes.get(p as usize).map(|p| p.w_wait_slot),
            WaitObject::Alarm | WaitObject::Disk => None,
        }
    }

    // --- The run loop -------------------------------------------------------

    /// Run the kernel for up to `max_cycles`, servicing kernel calls.
    ///
    /// Returns when the budget expires, on a fatal machine error, or on a
    /// `kcall` the kernel does not own (so embedders like the UNIX
    /// emulator can extend the kernel and then call [`Kernel::run`]
    /// again).
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        if self.cpus.len() == 1 {
            return self.run_uni(max_cycles);
        }
        self.run_smp(max_cycles)
    }

    /// The uniprocessor run loop — byte-for-byte the pre-SMP kernel's.
    fn run_uni(&mut self, max_cycles: u64) -> RunExit {
        let deadline = self.m.meter.cycles.saturating_add(max_cycles);
        loop {
            let now = self.m.meter.cycles;
            if now >= deadline {
                return RunExit::CycleLimit;
            }
            // Bounded slices so the fault-storm watchdog observes the
            // per-thread fault counters even when the storming guest
            // never traps out to the embedder on its own.
            let slice = (deadline - now).min(WATCHDOG_SLICE);
            match self.m.run(slice) {
                RunExit::KCall(sel) => {
                    if !self.handle_kcall(sel) {
                        return RunExit::KCall(sel);
                    }
                }
                RunExit::CycleLimit => self.watchdog_sweep(),
                RunExit::Error(e) => {
                    // Guest-attributable faults kill only the offending
                    // thread; everything else is a kernel/embedder bug
                    // and stays fatal.
                    if let Err(exit) = self.recover_machine_error(e) {
                        return exit;
                    }
                }
                other => return other,
            }
            self.pump_trace();
            if let Some(w) = self.watch_exit {
                if self.exited.contains(&w) {
                    return RunExit::Breakpoint(w);
                }
            }
        }
    }

    /// The multiprocessor run loop: each CPU gets `max_cycles` on its own
    /// virtual clock, executed in watchdog-sized slices. One CPU is
    /// simulated at a time; the scheduler always resumes the CPU whose
    /// clock is furthest behind, so cross-CPU skew stays bounded by one
    /// slice and the interleaving is deterministic. Between slices the
    /// work-stealing rebalancer runs at a safe point.
    fn run_smp(&mut self, max_cycles: u64) -> RunExit {
        let n = self.cpus.len();
        let deadlines: Vec<u64> = (0..n)
            .map(|i| self.m.cpu_cycles(i).saturating_add(max_cycles))
            .collect();
        // A CPU that halts (idle with nothing ever due) stays parked
        // until an IPI or device interrupt shows up for it.
        let mut halted = vec![false; n];
        // The embedder may have parked the active CPU inside switch code
        // (host-side enter); step it out so the VBR names the incoming
        // thread before the rebalancer looks for stealable work.
        self.ensure_safe_point();
        // Host-side work between runs (thread creation, synthesis,
        // emulator services) is charged to the active CPU only; the
        // parked CPUs conceptually ticked along, so raise them to the
        // active clock before resuming the rotation. Never the other
        // way around: a parked CPU ahead from slice-granularity
        // overshoot must not drag the active — measuring — clock
        // forward, or every host service call would cost the caller up
        // to a full watchdog slice of virtual time.
        self.m.catch_up_cpu_clocks();
        loop {
            // The watched thread may have exited host-side between runs
            // (an embedder servicing its exit call). Surface that before
            // resuming anyone, or the rotation would run a most-behind
            // idle slice first and hand the embedder a clock a full
            // slice past the exit, on the wrong CPU.
            if let Some(w) = self.watch_exit {
                if self.exited.contains(&w) {
                    return RunExit::Breakpoint(w);
                }
            }
            // Balance before picking a CPU, so a starved CPU steals work
            // instead of idling away its first slice.
            self.rebalance();
            for (i, h) in halted.iter_mut().enumerate() {
                if !*h || self.cpus[i].quarantined {
                    continue;
                }
                if self.m.irq.any_pending_on(i) {
                    *h = false;
                } else if self.m.delayed_ipi_pending(i) || !self.cpu_starved(i) {
                    // Timer-fallback rescheduling: the IPI that should
                    // have woken this CPU was lost or is still in
                    // flight, but its chain holds runnable work (or the
                    // delayed interrupt needs the CPU running to land).
                    // Revive it — a dropped IPI costs one rotation of
                    // latency, never a hang.
                    *h = false;
                    self.recovery.ipi_fallbacks.tick();
                }
            }
            let Some(i) = (0..n)
                .filter(|&i| {
                    !halted[i] && !self.cpus[i].quarantined && self.m.cpu_cycles(i) < deadlines[i]
                })
                .min_by_key(|&i| (self.m.cpu_cycles(i), i))
            else {
                return if (0..n)
                    .filter(|&i| !self.cpus[i].quarantined)
                    .all(|i| halted[i])
                {
                    RunExit::Halted
                } else {
                    RunExit::CycleLimit
                };
            };
            let parked_clock = self.m.cpu_cycles(i);
            let parked_pc = self.m.cpu_ref(i).pc;
            self.m.switch_cpu(i);
            // A dispatch-fault stall shows up as the CPU's clock jumping
            // while it executed nothing; a jump of a full watchdog slice
            // is a missed heartbeat.
            let jump = self.m.meter.cycles.saturating_sub(parked_clock);
            if jump > 0 {
                self.cpus[i].stall_cycles += jump;
            }
            // Dispatch-time context check: a sick CPU corrupts the
            // context it loads. Every CPU parks at a safe point, so the
            // parked PC was good — a loaded PC outside any code block is
            // the CPU's corruption, not the thread's. Repair the loaded
            // copy from the parked value, charge the CPU's own fault
            // budget, and quarantine it once the budget runs out. The
            // resident thread keeps its state and never sees the fault.
            if self.m.cpu.pc != parked_pc && self.m.code.locate(self.m.cpu.pc).is_none() {
                let wild = self.m.cpu.pc;
                self.m.cpu.pc = parked_pc;
                self.cpus[i].fault_events += 1;
                let idle = self.cpus[i].idle_tid;
                self.recovery_log.push((
                    idle,
                    format!("cpu {i} dispatch corruption: wild pc {wild:#x}"),
                ));
                if self.cpus[i].fault_events > CPU_FAULT_LIMIT
                    && self.quarantine_cpu(i, "fault budget exceeded")
                {
                    continue;
                }
            }
            let slice_end = self
                .m
                .meter
                .cycles
                .saturating_add(WATCHDOG_SLICE)
                .min(deadlines[i]);
            let before = self.m.meter.cycles;
            let instr_before = self.m.meter.instr_count;
            let mut hit_halt = false;
            let was_idle = self.current_tid_on(i).is_none_or(|t| self.is_idle(t));
            while self.m.meter.cycles < slice_end {
                match self.m.run(slice_end - self.m.meter.cycles) {
                    RunExit::KCall(sel) => {
                        if !self.handle_kcall(sel) {
                            return RunExit::KCall(sel);
                        }
                        // A watched exit ends the slice immediately so
                        // the embedder sees it without a slice-sized
                        // detection latency.
                        if self.watch_exit.is_some_and(|w| self.exited.contains(&w)) {
                            break;
                        }
                    }
                    RunExit::CycleLimit => break,
                    RunExit::Halted => {
                        // Nothing to run and nothing due on this CPU's
                        // timeline; park it at the slice boundary so the
                        // rotation moves on.
                        halted[i] = true;
                        hit_halt = true;
                        self.m.meter.cycles = slice_end;
                        break;
                    }
                    RunExit::Error(e) => {
                        if let Err(exit) = self.recover_machine_error(e) {
                            return exit;
                        }
                    }
                    other => return other,
                }
            }
            // Park this CPU only at a safe point: host-side surgery
            // from another CPU's slice must not observe it mid-switch.
            self.ensure_safe_point();
            let delta = self.m.meter.cycles.saturating_sub(before);
            if was_idle {
                self.cpus[i].idle_cycles += delta;
            } else {
                self.cpus[i].busy_cycles += delta;
            }
            // Cross-CPU heartbeat: a clock that advances a whole slice
            // without one instruction executing (and without an honest
            // halt) is a CPU losing time, not spending it.
            let silent = jump >= WATCHDOG_SLICE
                || (delta > 0 && self.m.meter.instr_count == instr_before && !hit_halt);
            if !self.cpus[i].quarantined {
                if silent {
                    self.cpus[i].silent_slices += 1;
                    if self.cpus[i].silent_slices >= CPU_SILENT_LIMIT {
                        self.quarantine_cpu(i, "stopped heartbeating");
                    }
                } else {
                    self.cpus[i].silent_slices = 0;
                }
            }
            self.watchdog_sweep();
            for c in self.cpu_probation_tick() {
                halted[c] = false;
            }
            self.pump_trace();
            if let Some(w) = self.watch_exit {
                if self.exited.contains(&w) {
                    return RunExit::Breakpoint(w);
                }
            }
        }
    }

    // --- Work stealing ------------------------------------------------------

    /// Move ready threads from overloaded CPUs to starved ones through
    /// the shared steal pool. Runs between slices, with every CPU parked
    /// at a safe point, so the chain surgery is host-side; the transfer
    /// medium is the optimistic MP-MC queue (Section 3's claim that the
    /// single-CPU lock-free queues carry to multiprocessors unchanged).
    fn rebalance(&mut self) {
        if self.cpus.len() == 1 {
            return;
        }
        for thief in 0..self.cpus.len() {
            if self.cpus[thief].quarantined || !self.cpu_starved(thief) {
                continue;
            }
            if self.steal_pool.len_hint() == 0 && !self.offload_from_victim(thief) {
                continue;
            }
            self.steal_for(thief);
        }
    }

    /// Whether CPU `cpu` has nothing real to run: no non-idle thread in
    /// its chain and no real thread current on it.
    fn cpu_starved(&self, cpu: usize) -> bool {
        let idle = self.cpus[cpu].idle_tid;
        let len = self.cpus[cpu].ready.len();
        let chain_empty = len == 0 || (len == 1 && self.cpus[cpu].ready.contains(idle));
        let cur_idle = self.current_tid_on(cpu).is_none_or(|t| self.is_idle(t));
        chain_empty && cur_idle
    }

    /// Ready, non-current, non-idle, non-quarantined threads in `cpu`'s
    /// chain — the ones another CPU could run right now.
    fn surplus_tids(&self, cpu: usize) -> Vec<Tid> {
        let cur = self.current_tid_on(cpu);
        self.cpus[cpu]
            .ready
            .nodes()
            .iter()
            .map(|n| n.id)
            .filter(|&id| {
                Some(id) != cur
                    && !self.is_idle(id)
                    && !self.quarantined_tids.contains(&id)
                    && self
                        .threads
                        .get(&id)
                        .is_some_and(|t| matches!(t.state, ThreadState::Ready))
            })
            .collect()
    }

    /// Detach one surplus ready thread from the most loaded CPU and
    /// offer it into the steal pool. Returns whether anything was
    /// offered.
    fn offload_from_victim(&mut self, thief: usize) -> bool {
        let mut best: Option<(Vec<Tid>, usize)> = None; // (surplus, cpu)
        for v in 0..self.cpus.len() {
            if v == thief || self.cpus[v].quarantined {
                continue;
            }
            let surplus = self.surplus_tids(v);
            if !surplus.is_empty() && best.as_ref().is_none_or(|(s, _)| surplus.len() > s.len()) {
                best = Some((surplus, v));
            }
        }
        let Some((surplus, victim)) = best else {
            return false;
        };
        let tid = surplus[0];
        let pred = self.cpus[victim].ready.prev_of_id(tid).map(|p| p.id);
        if self.cpus[victim].ready.remove(&mut self.m, tid).is_err() {
            return false;
        }
        let _ = self.balance_idle_on(victim);
        if let Some(pred) = pred.filter(|p| *p != tid) {
            let _ = self.fix_link_from(victim, pred);
        }
        let _ = self.fix_offchain_current(victim);
        if self.steal_pool.offer(tid).is_err() {
            // Pool full: put the thread back where it was.
            let t = &self.threads[&tid];
            let node = ChainNode {
                id: tid,
                entry: t.sw_in,
                jmp_at: t.jmp_at,
            };
            let _ = self.cpus[victim].ready.insert_next(&mut self.m, None, node);
            let _ = self.balance_idle_on(victim);
            let _ = self.fix_links_around(victim, tid);
            let _ = self.fix_offchain_current(victim);
            return false;
        }
        self.pooled.insert(tid);
        self.cpus[victim].offloads += 1;
        true
    }

    /// Pull one pooled thread onto `thief`'s ready chain.
    fn steal_for(&mut self, thief: usize) {
        while let Some(tid) = self.steal_pool.steal() {
            // The pool may hold stale hints (stopped or destroyed after
            // being offered); membership in `pooled` is authoritative.
            if !self.pooled.remove(&tid) {
                continue;
            }
            // A quarantined thread must never land on another CPU's
            // chain, even if it was pooled before the watchdog acted.
            if self.quarantined_tids.contains(&tid) {
                continue;
            }
            let Some(t) = self.threads.get_mut(&tid) else {
                continue;
            };
            if !matches!(t.state, ThreadState::Ready) {
                continue;
            }
            t.cpu = thief;
            let node = ChainNode {
                id: tid,
                entry: t.sw_in,
                jmp_at: t.jmp_at,
            };
            let _ = self.cpus[thief].ready.insert_next(&mut self.m, None, node);
            let _ = self.balance_idle_on(thief);
            let _ = self.fix_links_around(thief, tid);
            let _ = self.fix_offchain_current(thief);
            self.cpus[thief].steals += 1;
            crate::trace!(
                self,
                tid,
                crate::trace::Kind::Steal,
                u32::try_from(thief).unwrap_or(0),
                0
            );
            self.kick(thief);
            return;
        }
    }

    /// Try to recover from a fatal machine error by reaping the thread
    /// that caused it: a double fault (the thread corrupted its own
    /// vector table or stack) or a wild jump out of code space is the
    /// thread's doing, so the kernel destroys it, resplices the ready
    /// chain, and keeps running. Errors the kernel cannot pin on the
    /// current thread — or that hit the idle thread, whose state only the
    /// kernel writes — are returned as fatal.
    fn recover_machine_error(&mut self, e: quamachine::error::MachineError) -> Result<(), RunExit> {
        use quamachine::error::MachineError;
        let guest_attributable = matches!(
            e,
            MachineError::DoubleFault(..) | MachineError::BadCodeAddress(_)
        );
        if !guest_attributable {
            return Err(RunExit::Error(e));
        }
        let idle_context = self.current_tid().is_none_or(|t| self.is_idle(t));
        if idle_context && self.cpus.len() > 1 {
            // An idle-context fault on a multiprocessor is the CPU
            // domain's doing: only the kernel and the dispatch hardware
            // write the idle thread's state, so a corrupted idle means a
            // corrupted dispatch (the fault plan's sick-CPU class, or
            // real hardware rot). Charge the CPU's fault budget, re-arm
            // its idle context, and keep the other CPUs running; past
            // the budget, quarantine the CPU. On the last healthy CPU
            // the quarantine is refused and the error stays fatal, as on
            // a uniprocessor.
            let cpu = self.m.active_cpu();
            self.cpus[cpu].fault_events += 1;
            self.recovery_log.push((
                self.cpus[cpu].idle_tid,
                format!("cpu {cpu} dispatch fault: {e}"),
            ));
            if self.cpus[cpu].fault_events > CPU_FAULT_LIMIT {
                if self.quarantine_cpu(cpu, "fault budget exceeded") {
                    return Ok(());
                }
                return Err(RunExit::Error(e));
            }
            let idle = self.cpus[cpu].idle_tid;
            self.enter(idle);
            return Ok(());
        }
        let Some(tid) = self.current_tid() else {
            return Err(RunExit::Error(e));
        };
        if self.is_idle(tid) {
            return Err(RunExit::Error(e));
        }
        self.recovery_log.push((tid, format!("reaped: {e}")));
        self.recovery.reaped.tick();
        self.pump_trace();
        crate::trace!(
            self,
            tid,
            crate::trace::Kind::Recovery,
            crate::trace::REC_REAP,
            0
        );
        if self.destroy(tid).is_err() {
            return Err(RunExit::Error(e));
        }
        Ok(())
    }

    /// Compare each thread's error-fault count against its last-sweep
    /// baseline; a thread that burned through more than
    /// [`WATCHDOG_FAULT_LIMIT`] faults in one sweep is stuck re-faulting
    /// (its handler retries without fixing the cause) and gets
    /// quarantined: stopped now, and refused by [`Kernel::start`] forever.
    fn watchdog_sweep(&mut self) {
        let counts: Vec<(Tid, u64)> = self
            .m
            .meter
            .error_faults
            .iter()
            .filter_map(|(vbr, &n)| self.vbr_to_tid.get(vbr).map(|&tid| (tid, n)))
            .collect();
        for (tid, n) in counts {
            let base = self.watchdog_marks.insert(tid, n).unwrap_or(0);
            let delta = n.saturating_sub(base);
            if delta > WATCHDOG_FAULT_LIMIT
                && !self.is_idle(tid)
                && !self.quarantined_tids.contains(&tid)
            {
                self.quarantine_thread(tid, delta);
            }
        }
    }

    fn quarantine_thread(&mut self, tid: Tid, faults: u64) {
        self.quarantine(tid, &format!("{faults} faults in one sweep"));
    }

    /// Quarantine `tid`: stopped now, refused by [`Kernel::start`]
    /// forever, and skipped by the fine-grain scheduler's adaptation.
    /// This is the watchdog's action made available to supervisors that
    /// learn of a misbehaving thread through some other channel.
    /// Quarantining an already-quarantined thread is a no-op.
    pub fn quarantine(&mut self, tid: Tid, reason: &str) {
        if !self.quarantined_tids.insert(tid) {
            return;
        }
        self.recovery.quarantined.tick();
        self.recovery_log
            .push((tid, format!("quarantined: {reason}")));
        crate::trace!(
            self,
            tid,
            crate::trace::Kind::Recovery,
            crate::trace::REC_QUARANTINE,
            0
        );
        // A storming thread is runnable by definition; if stop fails the
        // thread is already off the ready chain and the quarantine flag
        // alone keeps it from coming back.
        let _ = self.stop(tid);
    }

    /// Whether the watchdog has quarantined `tid`.
    #[must_use]
    pub fn is_quarantined(&self, tid: Tid) -> bool {
        self.quarantined_tids.contains(&tid)
    }

    // --- CPU quarantine -----------------------------------------------------

    /// Whether the cross-CPU watchdog has quarantined CPU `cpu`.
    #[must_use]
    pub fn is_cpu_quarantined(&self, cpu: usize) -> bool {
        self.cpus.get(cpu).is_some_and(|c| c.quarantined)
    }

    /// The lowest-numbered CPU still in service, if any.
    fn first_healthy_cpu(&self) -> Option<usize> {
        (0..self.cpus.len()).find(|&i| !self.cpus[i].quarantined)
    }

    /// Checkpoint whatever is current on `cpu` and park the CPU's
    /// context so nothing identifies a thread as current there any more.
    /// A context the dispatch fault already corrupted (its PC sitting at
    /// the wild-jump sentinel) is *not* saved — the thread's TTE keeps
    /// its last good switch-out state, which is what a healthy CPU will
    /// resume from.
    fn park_cpu_context(&mut self, cpu: usize) {
        let cur = self.current_tid_on(cpu);
        if cur.is_some_and(|t| !self.is_idle(t))
            && self.m.cpu_ref(cpu).pc != quamachine::machine::SICK_WILD_PC
        {
            if self.m.active_cpu() == cpu {
                self.ensure_safe_point();
            }
            self.suspend_state_of(cpu);
        }
        let slot = self.m.cpu_mut(cpu);
        slot.vbr = 0; // no thread is current here any more
        slot.pc = 0; // never fetched while the CPU is out of service
    }

    /// Quarantine CPU `cpu`: evacuate its ready chain onto the healthy
    /// CPUs, re-home every thread that called it home, re-route device
    /// interrupts and pending event timelines off it, and stop
    /// dispatching it. Probation re-admits it after a widening number of
    /// watchdog sweeps until [`CPU_MAX_STRIKES`] strikes put it out for
    /// good. Returns `false` — and does nothing — for an unknown or
    /// already-quarantined CPU, or when `cpu` is the last healthy CPU
    /// (the kernel never quarantines itself out of existence).
    pub fn quarantine_cpu(&mut self, cpu: usize, reason: &str) -> bool {
        if cpu >= self.cpus.len() || self.cpus[cpu].quarantined {
            return false;
        }
        let healthy: Vec<usize> = (0..self.cpus.len())
            .filter(|&i| i != cpu && !self.cpus[i].quarantined)
            .collect();
        let Some(&target) = healthy.first() else {
            return false;
        };
        self.park_cpu_context(cpu);
        self.cpus[cpu].quarantined = true;

        // Evacuate the ready chain: each runnable thread moves onto a
        // healthy CPU's chain through the same host-side surgery the
        // work stealer uses. Quarantined *threads* stay put — their
        // chain entry is removed but never re-inserted anywhere.
        let idle = self.cpus[cpu].idle_tid;
        let evacuees: Vec<Tid> = self.cpus[cpu]
            .ready
            .nodes()
            .iter()
            .map(|n| n.id)
            .filter(|&t| t != idle)
            .collect();
        let mut moved = 0u32;
        for (n, tid) in evacuees.into_iter().enumerate() {
            if self.cpus[cpu].ready.remove(&mut self.m, tid).is_err() {
                continue;
            }
            if self.quarantined_tids.contains(&tid) {
                if let Some(t) = self.threads.get_mut(&tid) {
                    t.state = ThreadState::Stopped;
                }
                continue;
            }
            let to = healthy[n % healthy.len()];
            self.threads.get_mut(&tid).expect("in chain").cpu = to;
            let t = &self.threads[&tid];
            let node = ChainNode {
                id: tid,
                entry: t.sw_in,
                jmp_at: t.jmp_at,
            };
            let after = self
                .current_tid_on(to)
                .filter(|cur| self.cpus[to].ready.contains(*cur));
            let _ = self.cpus[to].ready.insert_next(&mut self.m, after, node);
            moved += 1;
            self.recovery.threads_evacuated.tick();
        }
        let _ = self.fix_chain_entries_on(cpu);
        for &h in &healthy {
            let _ = self.balance_idle_on(h);
            let _ = self.fix_chain_entries_on(h);
        }
        // Blocked, stopped, and pooled threads that called this CPU home
        // wake onto healthy chains instead.
        let rehome: Vec<Tid> = self
            .threads
            .iter()
            .filter(|(&t, th)| {
                th.cpu == cpu && !self.is_idle(t) && !self.quarantined_tids.contains(&t)
            })
            .map(|(&t, _)| t)
            .collect();
        for (n, tid) in rehome.into_iter().enumerate() {
            self.threads.get_mut(&tid).expect("exists").cpu = healthy[n % healthy.len()];
        }
        // Device interrupts and pending event timelines must not target
        // a CPU that will never run again.
        if self.m.irq.route() == cpu {
            self.m.irq.reroute_devices(target);
        }
        let from_now = self.m.cpu_cycles(cpu);
        let to_now = self.m.cpu_cycles(target);
        self.m.events.migrate_cpu(cpu, target, from_now, to_now);

        self.cpus[cpu].strikes += 1;
        self.cpus[cpu].probation_at = if self.cpus[cpu].strikes > CPU_MAX_STRIKES {
            None
        } else {
            Some(self.sweep_count + (CPU_PROBATION_SWEEPS << (self.cpus[cpu].strikes - 1).min(16)))
        };
        self.recovery.cpus_quarantined.tick();
        self.recovery_log
            .push((idle, format!("cpu {cpu} quarantined: {reason}")));
        crate::trace!(
            self,
            idle,
            crate::trace::Kind::CpuQuarantine,
            u32::try_from(cpu).unwrap_or(0),
            moved
        );
        self.kick(target);
        true
    }

    /// Re-admit a quarantined CPU: clear its fault accounting, raise its
    /// frozen clock to the healthy CPUs' so it does not monopolize the
    /// most-behind rotation, and point its context back at its idle
    /// thread. A CPU that is still sick will fail its fault budget again
    /// and be re-quarantined with a longer probation.
    fn resume_cpu(&mut self, cpu: usize) {
        if cpu >= self.cpus.len() || !self.cpus[cpu].quarantined {
            return;
        }
        self.cpus[cpu].quarantined = false;
        self.cpus[cpu].fault_events = 0;
        self.cpus[cpu].silent_slices = 0;
        self.cpus[cpu].probation_at = None;
        let clock = (0..self.cpus.len())
            .filter(|&i| i != cpu && !self.cpus[i].quarantined)
            .map(|i| self.m.cpu_cycles(i))
            .max();
        if self.m.active_cpu() != cpu {
            self.m.switch_cpu(cpu);
        }
        if let Some(cl) = clock {
            self.m.meter.cycles = self.m.meter.cycles.max(cl);
        }
        let idle = self.cpus[cpu].idle_tid;
        self.enter(idle);
        self.recovery.cpus_resumed.tick();
        self.recovery_log
            .push((idle, format!("cpu {cpu} resumed from probation")));
        crate::trace!(
            self,
            idle,
            crate::trace::Kind::CpuResume,
            u32::try_from(cpu).unwrap_or(0),
            self.cpus[cpu].strikes
        );
    }

    /// Advance the probation clock one sweep and re-admit any quarantined
    /// CPU whose wait is up. Returns the CPUs resumed this sweep.
    fn cpu_probation_tick(&mut self) -> Vec<usize> {
        self.sweep_count += 1;
        let due: Vec<usize> = (0..self.cpus.len())
            .filter(|&c| {
                self.cpus[c].quarantined
                    && self.cpus[c]
                        .probation_at
                        .is_some_and(|d| self.sweep_count >= d)
            })
            .collect();
        for &c in &due {
            self.resume_cpu(c);
        }
        due
    }

    /// Run until thread `tid` exits (or the cycle budget is spent).
    /// Returns `true` if it exited.
    pub fn run_until_exit(&mut self, tid: Tid, max_cycles: u64) -> bool {
        let deadline = self.m.meter.cycles.saturating_add(max_cycles);
        let prev_watch = self.watch_exit.replace(tid);
        while !self.exited.contains(&tid) && self.m.meter.cycles < deadline {
            match self.run(deadline - self.m.meter.cycles) {
                RunExit::CycleLimit => break,
                RunExit::KCall(_) => break, // unowned kcall with no embedder
                RunExit::Halted => break,
                // A watched-exit notification (or a debugger breakpoint):
                // re-check the loop condition.
                RunExit::Breakpoint(_) => {}
                // Guest-attributable faults were already recovered inside
                // `run`; anything surfacing here is a kernel/embedder bug
                // and ends the run (the caller sees `false`).
                RunExit::Error(_) => break,
            }
        }
        self.watch_exit = prev_watch;
        self.exited.contains(&tid)
    }

    /// Service one kernel call; `false` means the selector is not ours.
    #[allow(clippy::too_many_lines)]
    fn handle_kcall(&mut self, sel: u16) -> bool {
        match sel {
            kcalls::GENERAL => {
                let call = self.m.cpu.d[0];
                self.general_call(call);
            }
            kcalls::SET_MAP => {
                let tid = self.m.cpu.d[0];
                if let Some(t) = self.threads.get(&tid) {
                    let map = t.map.clone();
                    let cpu = self.m.active_cpu();
                    self.installed_map_ids[cpu] = map.id;
                    self.m.mem.map = map;
                }
                let c = charges::kcall_overhead(&self.m.cost);
                self.m.charge(c);
            }
            kcalls::FP_RESYNTH => {
                self.fp_resynthesize();
            }
            kcalls::ALARM => {
                self.alarm_pending = false;
                self.wake(WaitObject::Alarm);
            }
            kcalls::AD_ADVANCE => {
                // Device servers built on the specialized A/D handlers
                // register themselves via the audio-server module; the
                // default kernel just acknowledges.
                let c = charges::kcall_overhead(&self.m.cost);
                self.m.charge(c);
            }
            kcalls::DISK_DONE => {
                let addr = dev_reg_addr(self.dev.disk, quamachine::devices::disk::REG_STATUS);
                let _ = self.m.host_reg_read(addr); // acknowledge
                match self.disk_sched.on_complete(&mut self.m) {
                    Some(DiskOutcome::Done(req)) => {
                        crate::trace!(
                            self,
                            self.trace_tid(),
                            crate::trace::Kind::QueueGet,
                            crate::trace::QCLASS_DISK,
                            req.sector
                        );
                        self.disk_results.insert(req.cookie, Ok(req));
                        self.wake(WaitObject::Disk);
                    }
                    // Re-issued with backoff; waiters stay asleep until
                    // the retry completes one way or the other.
                    Some(DiskOutcome::Retrying { .. }) => {}
                    Some(DiskOutcome::Failed(req)) => {
                        crate::trace!(
                            self,
                            self.trace_tid(),
                            crate::trace::Kind::Recovery,
                            crate::trace::REC_IO_ERROR,
                            req.sector
                        );
                        self.disk_results.insert(req.cookie, Err(errno::EIO));
                        self.recovery.io_errors.tick();
                        self.wake(WaitObject::Disk);
                    }
                    // A completion with nothing in flight (e.g. a raw
                    // device user bypassing the scheduler): just wake.
                    None => self.wake(WaitObject::Disk),
                }
            }
            kcalls::WAIT_TTY => {
                // Re-check under the "lock" (host atomicity) to avoid a
                // lost wakeup between the guest's test and the kcall.
                if self.tty_srv.available(&self.m) == 0 {
                    self.block_current(WaitObject::TtyInput);
                }
            }
            kcalls::WAIT_PIPE_DATA => {
                let pid = self.m.cpu.d[2];
                let empty = self
                    .pipes
                    .get(pid as usize)
                    .is_some_and(|p| p.available(&self.m) == 0);
                if empty {
                    self.block_current(WaitObject::PipeData(pid));
                }
            }
            kcalls::WAIT_PIPE_SPACE => {
                let pid = self.m.cpu.d[2];
                let full = self
                    .pipes
                    .get(pid as usize)
                    .is_some_and(|p| p.space(&self.m) == 0);
                if full {
                    self.block_current(WaitObject::PipeSpace(pid));
                }
            }
            kcalls::WAKE_TTY => {
                crate::trace!(
                    self,
                    self.trace_tid(),
                    crate::trace::Kind::QueuePut,
                    crate::trace::QCLASS_TTY,
                    0
                );
                self.wake(WaitObject::TtyInput);
            }
            kcalls::WAKE_PIPE_DATA => {
                let pid = self.m.cpu.d[2];
                crate::trace!(
                    self,
                    self.trace_tid(),
                    crate::trace::Kind::QueuePut,
                    crate::trace::QCLASS_PIPE,
                    pid
                );
                self.wake(WaitObject::PipeData(pid));
            }
            kcalls::WAKE_PIPE_SPACE => {
                let pid = self.m.cpu.d[2];
                crate::trace!(
                    self,
                    self.trace_tid(),
                    crate::trace::Kind::QueueGet,
                    crate::trace::QCLASS_PIPE,
                    pid
                );
                self.wake(WaitObject::PipeSpace(pid));
            }
            _ => return false,
        }
        true
    }

    /// The general kernel call (trap #0).
    fn general_call(&mut self, call: u32) {
        let d1 = self.m.cpu.d[1];
        let d2 = self.m.cpu.d[2];
        let a0 = self.m.cpu.a[0];
        let c = charges::kcall_overhead(&self.m.cost);
        self.m.charge(c);
        let result: i64 = match call {
            general::EXIT => {
                if let Some(tid) = self.current_tid() {
                    let _ = self.destroy(tid);
                }
                0
            }
            general::THREAD_CREATE => {
                let map = self
                    .current_tid()
                    .map(|t| self.threads[&t].map.clone())
                    .unwrap_or_default();
                match self.create_thread(d1, d2, map) {
                    Ok(tid) => i64::from(tid),
                    Err(_) => -i64::from(errno::ENOMEM),
                }
            }
            general::THREAD_START => match self.start(d1) {
                Ok(()) => 0,
                Err(_) => -i64::from(errno::EINVAL),
            },
            general::THREAD_STOP => match self.stop(d1) {
                Ok(()) => 0,
                Err(_) => -i64::from(errno::EINVAL),
            },
            general::THREAD_DESTROY => match self.destroy(d1) {
                Ok(()) => 0,
                Err(_) => -i64::from(errno::EINVAL),
            },
            general::SIGNAL => match self.signal_from_kcall(d1, d2) {
                Ok(()) => 0,
                Err(_) => -i64::from(errno::EINVAL),
            },
            general::OPEN => match self.read_user_string(a0) {
                Ok(path) => match self.open(&path) {
                    Ok(fd) => i64::from(fd),
                    Err(e) => -i64::from(e),
                },
                Err(e) => -i64::from(e),
            },
            general::CLOSE => match self.close(d1) {
                Ok(()) => 0,
                Err(e) => -i64::from(e),
            },
            general::YIELD => {
                self.yield_current();
                0
            }
            general::GETTID => i64::from(self.current_tid().unwrap_or(0)),
            general::SET_SIG_HANDLER => {
                if let Some(tid) = self.current_tid() {
                    let tte = self.threads[&tid].tte;
                    self.m.mem.poke(tte + off::SIG_HANDLER, Size::L, d1);
                }
                0
            }
            general::SIG_RETURN => {
                if let Some(tid) = self.current_tid() {
                    if let Some((regs, usp)) = self.sig_stash.remove(&tid) {
                        self.m.cpu.d.copy_from_slice(&regs[..8]);
                        self.m.cpu.a[..7].copy_from_slice(&regs[8..]);
                        self.m.cpu.set_usp(usp);
                    }
                    // Drop the handler's trap frame; the original frame
                    // (or the parked PC) sits right above it.
                    let sp = self.m.cpu.a[7];
                    let tte = self.threads[&tid].tte;
                    let parked = self.m.mem.peek(tte + off::SIG_PC, Size::L);
                    if parked != 0 {
                        // Signal was delivered to a running thread: reuse
                        // this frame, restoring the parked PC.
                        self.m.mem.poke(sp + 2, Size::L, parked);
                        self.m.mem.poke(tte + off::SIG_PC, Size::L, 0);
                    } else {
                        // Parked-thread delivery: discard this frame.
                        self.m.cpu.a[7] = sp + 6;
                    }
                }
                return; // d0 intentionally preserved from the stash
            }
            general::PIPE => match self.pipe() {
                Ok((rfd, wfd)) => i64::from((rfd << 8) | wfd),
                Err(e) => -i64::from(e),
            },
            general::SET_ALARM => {
                self.set_alarm(d1);
                0
            }
            general::WAIT_ALARM => {
                if self.alarm_pending {
                    self.block_current(WaitObject::Alarm);
                }
                0
            }
            general::PUTC => {
                self.console.push(d1 as u8);
                0
            }
            general::SEEK => self.seek(d1, d2),
            _ => -i64::from(errno::EINVAL),
        };
        self.m.cpu.d[0] = result as u32;
    }

    fn yield_current(&mut self) {
        let Some(tid) = self.current_tid() else {
            return;
        };
        self.suspend_current_state();
        // Enter the next thread in this CPU's chain after us.
        let cpu = self.home_cpu(tid);
        if let Some(next) = self.cpus[cpu].ready.next_of_id(tid) {
            if next.id != tid {
                self.enter(next.id);
            }
        }
    }

    /// Program a one-shot alarm `us` µs from now (Table 5: set alarm).
    pub fn set_alarm(&mut self, us: u32) {
        self.alarm_pending = true;
        let addr = dev_reg_addr(self.dev.alarm, timer_regs::REG_ALARM_US);
        self.m.host_reg_write(addr, us);
        let c = charges::kcall_overhead(&self.m.cost);
        self.m.charge(c);
    }

    fn seek(&mut self, fd: u32, pos: u32) -> i64 {
        let Some(tid) = self.current_tid() else {
            return -i64::from(errno::EBADF);
        };
        let t = &self.threads[&tid];
        match t.fds.get(fd as usize) {
            Some(FdObject::Channel {
                class: ChannelClass::File { offset_slot, .. },
                ..
            }) => {
                let slot = *offset_slot;
                self.m.mem.poke(slot, Size::L, pos);
                i64::from(pos)
            }
            _ => -i64::from(errno::EBADF),
        }
    }

    /// Maximum path length accepted by [`Kernel::read_user_string`]
    /// (bytes, excluding the terminating NUL).
    pub const PATH_MAX: u32 = 255;

    /// Read a NUL-terminated string from the caller's space.
    ///
    /// # Errors
    ///
    /// `ENAMETOOLONG` when no NUL appears within [`Kernel::PATH_MAX`]
    /// bytes — a longer buffer must not be silently truncated into a
    /// valid-looking path.
    pub fn read_user_string(&self, addr: u32) -> Result<String, i32> {
        let mut s = Vec::new();
        for i in 0..=Kernel::PATH_MAX {
            let b = self.m.mem.peek(addr + i, Size::B) as u8;
            if b == 0 {
                return Ok(String::from_utf8_lossy(&s).into_owned());
            }
            s.push(b);
        }
        Err(errno::ENAMETOOLONG)
    }

    // --- open / close / pipe ------------------------------------------------

    /// Open `path` for the current thread: find the object, synthesize
    /// its `read`/`write`, dynamic-link them into the fd table.
    ///
    /// # Errors
    ///
    /// Returns an errno.
    pub fn open(&mut self, path: &str) -> Result<u32, u32> {
        let tid = self.current_tid().ok_or(errno::EINVAL as u32)?;
        self.open_for(tid, path)
    }

    /// Open on behalf of a specific thread (host API).
    ///
    /// # Errors
    ///
    /// Returns an errno.
    pub fn open_for(&mut self, tid: Tid, path: &str) -> Result<u32, u32> {
        let spec = self.lookup_channel(tid, path)?;
        self.open_channel(tid, spec)
    }

    /// The name-lookup stage of `open`: map a path to its [`ChannelSpec`]
    /// and acquire the class state (file offset slot, open counts).
    fn lookup_channel(&mut self, tid: Tid, path: &str) -> Result<ChannelSpec, u32> {
        let t = self.threads.get(&tid).ok_or(errno::EINVAL as u32)?;
        let gauge = t.tte + off::GAUGE;
        match path {
            "/dev/null" => Ok(ChannelSpec::null(gauge)),
            "/dev/tty" | "/dev/tty-raw" => {
                Ok(ChannelSpec::tty(&self.tty_srv, path == "/dev/tty", gauge))
            }
            _ => {
                // The name lookup: charge per character actually scanned
                // (Section 6.3: ~60% of open's cost).
                let (found, scanned) = self.fs.lookup(path);
                let c = charges::name_scan(&self.m.cost, scanned as u32);
                self.m.charge(c);
                let fid = found.ok_or(errno::ENOENT as u32)?;
                // One offset slot per (thread, file): every open of the
                // same file in the same thread shares it, so the bindings
                // — and therefore the synthesized code — are identical
                // and the specialization cache hits.
                let offset_slot = match self.file_chans.get_mut(&(tid, fid)) {
                    Some(chan) => {
                        chan.refs += 1;
                        chan.offset_slot
                    }
                    None => {
                        let slot = self.heap.alloc(4).map_err(|_| errno::ENOMEM as u32)?;
                        self.m.mem.poke(slot, Size::L, 0);
                        self.file_chans.insert(
                            (tid, fid),
                            FileChan {
                                offset_slot: slot,
                                refs: 1,
                            },
                        );
                        slot
                    }
                };
                self.fs.file_mut(fid).expect("fid valid").opens += 1;
                let f = self.fs.file(fid).expect("fid valid");
                Ok(ChannelSpec::file(f, offset_slot, gauge))
            }
        }
    }

    /// The generic open pipeline: allocate an fd, specialize each
    /// endpoint through the creator's cache, dynamic-link the entries
    /// into the fd table. All failures funnel through the one
    /// `release_channel` rollback — the same teardown `close` uses.
    fn open_channel(&mut self, tid: Tid, spec: ChannelSpec) -> Result<u32, u32> {
        let rollback = |k: &mut Kernel, code: &[Synthesized], e: i32| -> u32 {
            k.release_channel(tid, spec.class, code);
            e as u32
        };
        let Some(t) = self.threads.get(&tid) else {
            return Err(rollback(self, &[], errno::EINVAL));
        };
        let Some(fd) = t.free_fd() else {
            return Err(rollback(self, &[], errno::EMFILE));
        };
        let ebadf = self.shared.ebadf;
        let mut code: Vec<Synthesized> = Vec::with_capacity(2);
        let mut entries = [ebadf, ebadf];
        for (i, end) in [&spec.read, &spec.write].into_iter().enumerate() {
            let Some(end) = end else { continue };
            match self.creator.synthesize_cached(
                &mut self.m,
                end.template,
                &end.bindings,
                self.opts,
            ) {
                Ok(s) => {
                    entries[i] = s.base;
                    code.push(s);
                }
                Err(_) => return Err(rollback(self, &code, errno::ENOMEM)),
            }
        }
        self.drain_cache_events(tid);
        self.link_fd(tid, fd, entries[0], entries[1]);
        self.threads.get_mut(&tid).expect("exists").fds[fd as usize] = FdObject::Channel {
            class: spec.class,
            code,
        };
        Ok(fd)
    }

    /// The fused (trap-elided) wrapper spec for `(tid, fd)`, if the
    /// caller shares the kernel's flat address space and the channel
    /// end has a fused form: the template name plus complete bindings,
    /// ready for [`QuajectCreator::synthesize_cached`]. `write` selects
    /// the end (the fd class alone decides for pipe ends, which only
    /// have one).
    ///
    /// `None` when fusion is off, the fd is not an open channel, the
    /// end has no fused template, or — for pipes — the pipe is not
    /// *solo* (exactly one reader and one writer). Solo is what lets
    /// the fused fast path elide the peer-wake check: both ends belong
    /// to the calling thread, and a thread cannot be blocked on the
    /// pipe it is currently calling into.
    #[must_use]
    pub fn fused_rw_spec(&self, tid: Tid, fd: u32, write: bool) -> Option<(String, Bindings)> {
        if !self.fuse {
            return None;
        }
        let t = self.threads.get(&tid)?;
        let FdObject::Channel { class, .. } = t.fds.get(fd as usize)? else {
            return None;
        };
        let gauge = t.tte + off::GAUGE;
        // Reconstruct the open-time spec read-only (no refcounts move;
        // the fd already holds them).
        let spec = match *class {
            ChannelClass::Null => ChannelSpec::null(gauge),
            ChannelClass::Tty { cooked } => ChannelSpec::tty(&self.tty_srv, cooked, gauge),
            ChannelClass::File { fid, offset_slot } => {
                ChannelSpec::file(self.fs.file(fid)?, offset_slot, gauge)
            }
            ChannelClass::Pipe { pid, read_end } => {
                if read_end == write {
                    return None; // wrong direction for this end
                }
                let p = self.pipes.get(pid as usize)?;
                if p.readers != 1 || p.writers != 1 {
                    return None; // only solo pipes fuse
                }
                ChannelSpec::pipe(p, read_end, gauge)
            }
        };
        spec.fused_end(!write, fd)
    }

    /// The dynamic-link stage: store the synthesized entry points into
    /// the thread's fd table.
    fn link_fd(&mut self, tid: Tid, fd: u32, read_entry: u32, write_entry: u32) {
        let t = &self.threads[&tid];
        let (rs, ws) = (t.fd_read_slot(fd), t.fd_write_slot(fd));
        self.m.mem.poke(rs, Size::L, read_entry);
        self.m.mem.poke(ws, Size::L, write_entry);
        let c = 2 * charges::code_patch(&self.m.cost);
        self.m.charge(c);
    }

    /// Close fd `fd` of the current thread.
    ///
    /// # Errors
    ///
    /// Returns an errno.
    pub fn close(&mut self, fd: u32) -> Result<(), u32> {
        let tid = self.current_tid().ok_or(errno::EINVAL as u32)?;
        self.close_for(tid, fd)
    }

    /// Close on behalf of a thread (host API).
    ///
    /// # Errors
    ///
    /// Returns an errno.
    pub fn close_for(&mut self, tid: Tid, fd: u32) -> Result<(), u32> {
        let t = self.threads.get_mut(&tid).ok_or(errno::EINVAL as u32)?;
        let slot = t.fds.get_mut(fd as usize).ok_or(errno::EBADF as u32)?;
        if matches!(slot, FdObject::Free) {
            return Err(errno::EBADF as u32);
        }
        let obj = std::mem::replace(slot, FdObject::Free);
        let ebadf = self.shared.ebadf;
        self.link_fd(tid, fd, ebadf, ebadf);
        self.release_fd_object(tid, obj);
        Ok(())
    }

    /// Create a pipe for the current thread; returns `(read_fd, write_fd)`.
    ///
    /// # Errors
    ///
    /// Returns an errno.
    pub fn pipe(&mut self) -> Result<(u32, u32), u32> {
        let tid = self.current_tid().ok_or(errno::EINVAL as u32)?;
        self.pipe_for(tid)
    }

    /// Create a pipe on behalf of a thread (host API).
    ///
    /// # Errors
    ///
    /// Returns an errno.
    pub fn pipe_for(&mut self, tid: Tid) -> Result<(u32, u32), u32> {
        let pid = self.pipes.len() as u32;
        let p = Pipe::allocate(&mut self.m, &mut self.heap, pid, DEFAULT_PIPE_SIZE)
            .map_err(|_| errno::ENOMEM as u32)?;
        // Register before attaching so the endpoints go through the
        // ordinary registry path; the end refcounts start at zero and
        // count attached fds.
        self.pipes.push(p);
        match self.pipe_attach_inner(tid, pid) {
            Ok(fds) => Ok(fds),
            Err(e) => {
                // The endpoint rollback already released the fds and —
                // with both refcounts back at zero — the ring; drop the
                // never-exposed table slot.
                self.pipes.pop();
                Err(e)
            }
        }
    }

    /// Attach an existing pipe to another thread (cross-thread pipes);
    /// returns `(read_fd, write_fd)` in that thread.
    ///
    /// # Errors
    ///
    /// Returns an errno.
    pub fn pipe_attach(&mut self, tid: Tid, pid: u32) -> Result<(u32, u32), u32> {
        if self.pipes.get(pid as usize).is_none() {
            return Err(errno::EINVAL as u32);
        }
        self.pipe_attach_inner(tid, pid)
    }

    /// Open both ends of pipe `pid` in `tid` through the channel
    /// registry. Each end holds one reference on the ring; a write-end
    /// failure closes the read end through the normal `close` teardown.
    fn pipe_attach_inner(&mut self, tid: Tid, pid: u32) -> Result<(u32, u32), u32> {
        let t = self.threads.get(&tid).ok_or(errno::EINVAL as u32)?;
        let gauge = t.tte + off::GAUGE;
        let (rspec, wspec) = {
            let p = &self.pipes[pid as usize];
            (
                ChannelSpec::pipe(p, true, gauge),
                ChannelSpec::pipe(p, false, gauge),
            )
        };
        self.pipes[pid as usize].readers += 1;
        let rfd = self.open_channel(tid, rspec)?;
        self.pipes[pid as usize].writers += 1;
        match self.open_channel(tid, wspec) {
            Ok(wfd) => Ok((rfd, wfd)),
            Err(e) => {
                let _ = self.close_for(tid, rfd);
                Err(e)
            }
        }
    }

    // --- Lazy FP -------------------------------------------------------------

    /// Resynthesize the current thread's switch code onto the FP variant
    /// (Section 4.2: invoked from the coprocessor-unavailable trap).
    fn fp_resynthesize(&mut self) {
        let Some(tid) = self.current_tid() else {
            return;
        };
        let t = &self.threads[&tid];
        if t.uses_fp {
            self.m.cpu.fpu_enabled = true; // already resynthesized
            return;
        }
        let (tte, vt, quantum, old_sw) = (t.tte, t.vt, t.quantum_us, t.sw.clone());
        let cpu = self.home_cpu(tid);
        let in_chain = self.cpus[cpu].ready.contains(tid);
        if in_chain {
            let _ = self.cpus[cpu].ready.remove(&mut self.m, tid);
        }
        self.sw_extents.remove(&old_sw.base);
        self.creator.destroy(&mut self.m, &old_sw);
        let sw = match self.synth_switch(tid, tte, vt, quantum, true) {
            Ok(sw) => sw,
            Err(_) => {
                // Code space is exhausted: the thread asked for FP it
                // cannot have. Reap it instead of taking the kernel down
                // — its old switch code is already destroyed, so it
                // cannot be resumed either.
                self.recovery_log
                    .push((tid, "reaped: FP resynthesis failed".to_string()));
                self.recovery.reaped.tick();
                let _ = self.destroy(tid);
                return;
            }
        };
        let (sw_out, ipi_in, sw_in, sw_in_mmu, jmp_at) = Kernel::switch_entries(&self.m, &sw);
        self.sw_extents.insert(sw.base, sw.base + sw.size);
        {
            let t = self.threads.get_mut(&tid).expect("exists");
            t.sw = sw;
            t.sw_out = sw_out;
            t.sw_in = sw_in;
            t.sw_in_mmu = sw_in_mmu;
            t.jmp_at = jmp_at;
            t.uses_fp = true;
        }
        // The timer vector must point at the NEW sw_out.
        self.m.mem.poke(
            vt + 4 * (24 + u32::from(irq_levels::QUANTUM)),
            Size::L,
            sw_out,
        );
        if self.m.num_cpus() > 1 {
            self.m
                .mem
                .poke(vt + 4 * (24 + u32::from(irq_levels::IPI)), Size::L, ipi_in);
        }
        if in_chain {
            let t = &self.threads[&tid];
            let node = ChainNode {
                id: tid,
                entry: t.sw_in,
                jmp_at: t.jmp_at,
            };
            let _ = self.cpus[cpu].ready.insert_next(&mut self.m, None, node);
            let _ = self.fix_chain_entries_on(cpu);
        }
        self.m.cpu.fpu_enabled = true;
    }

    // --- Resume-hook fusion --------------------------------------------------

    /// Fuse a continuation into `tid`'s context-switch-in path.
    ///
    /// The hook body (which must end in `rts`; clobbering `d0`–`d7`/
    /// `a0`–`a6` is fine) is collapsed *inline* into the thread's switch
    /// code at the `resume_hook` seam — after the kernel stack is
    /// restored, before registers are reloaded — so the thread executes
    /// it on every resume with no call, dispatch, or trap. This is the
    /// scheduler end of the pipe⇄ctxsw fusion: a blocked reader's resume
    /// point becomes the post-copy continuation itself.
    ///
    /// Pass [`templates::ctxsw::resume_hook_nop_template`] to clear the
    /// hook (the empty body collapses to a fall-through).
    ///
    /// # Errors
    ///
    /// [`KernelError::Invalid`] unless the kernel booted with
    /// [`KernelConfig::fuse`]; [`KernelError::NoThread`] for an unknown
    /// tid; synthesis errors if the hooked switch fails to build (the
    /// thread keeps its old switch in that case).
    pub fn set_resume_hook(
        &mut self,
        tid: Tid,
        hook: synthesis_codegen::template::Template,
    ) -> Result<(), KernelError> {
        if !self.fuse {
            return Err(KernelError::Invalid(
                "resume hooks require KernelConfig::fuse",
            ));
        }
        let Some(t) = self.threads.get(&tid) else {
            return Err(KernelError::NoThread(tid));
        };
        let (tte, vt, quantum, fp, old_sw) = (t.tte, t.vt, t.quantum_us, t.uses_fp, t.sw.clone());

        // Splice the hook into the template library under the seam name,
        // synthesize the replacement switch, then restore the empty hook
        // so later-created threads resume clean.
        let mut hook = hook;
        hook.name = "resume_hook".into();
        self.creator.lib.add(hook);
        let sw = self.synth_switch(tid, tte, vt, quantum, fp);
        self.creator
            .lib
            .add(templates::ctxsw::resume_hook_nop_template());
        let sw = sw?;

        // Swap it in (same dance as the lazy-FP resynthesis).
        let cpu = self.home_cpu(tid);
        let in_chain = self.cpus[cpu].ready.contains(tid);
        if in_chain {
            let _ = self.cpus[cpu].ready.remove(&mut self.m, tid);
        }
        self.sw_extents.remove(&old_sw.base);
        self.creator.destroy(&mut self.m, &old_sw);
        let (sw_out, ipi_in, sw_in, sw_in_mmu, jmp_at) = Kernel::switch_entries(&self.m, &sw);
        self.sw_extents.insert(sw.base, sw.base + sw.size);
        {
            let t = self.threads.get_mut(&tid).expect("exists");
            t.sw = sw;
            t.sw_out = sw_out;
            t.sw_in = sw_in;
            t.sw_in_mmu = sw_in_mmu;
            t.jmp_at = jmp_at;
        }
        self.m.mem.poke(
            vt + 4 * (24 + u32::from(irq_levels::QUANTUM)),
            Size::L,
            sw_out,
        );
        if self.m.num_cpus() > 1 {
            self.m
                .mem
                .poke(vt + 4 * (24 + u32::from(irq_levels::IPI)), Size::L, ipi_in);
        }
        if in_chain {
            let t = &self.threads[&tid];
            let node = ChainNode {
                id: tid,
                entry: t.sw_in,
                jmp_at: t.jmp_at,
            };
            let _ = self.cpus[cpu].ready.insert_next(&mut self.m, None, node);
            let _ = self.fix_chain_entries_on(cpu);
        }
        Ok(())
    }

    // --- Misc host services ---------------------------------------------------

    /// Load a user program assembled by the embedder; returns its entry.
    ///
    /// # Errors
    ///
    /// Fails on code-space exhaustion or overlap.
    pub fn load_user_program(
        &mut self,
        block: quamachine::code::CodeBlock,
    ) -> Result<u32, KernelError> {
        let size = block.size_bytes();
        let base = self
            .creator
            .codebuf
            .alloc(size)
            .map_err(SynthError::CodeBuf)?;
        self.m.load_block(base, block)?;
        Ok(base)
    }

    /// Raise a guest-visible exception on the current thread (testing and
    /// emulation support).
    ///
    /// # Errors
    ///
    /// Propagates double faults.
    pub fn inject_exception(&mut self, e: Exception) -> Result<(), KernelError> {
        let pc = self.m.cpu.pc;
        self.m.take_exception(e, pc)?;
        Ok(())
    }

    /// Create a file whose contents are loaded from the disk through the
    /// Section 5.1 pipeline: the raw disk server DMAs sectors straight
    /// into the file's cache buffer under the disk scheduler, and the
    /// machine's virtual time advances by the modelled seek, rotation,
    /// and transfer latency.
    ///
    /// `len` is rounded up to whole sectors for the transfer; the file's
    /// length is set to `len`.
    ///
    /// # Errors
    ///
    /// Fails on heap exhaustion, with [`KernelError::Io`] when the
    /// sectors are quarantined or the scheduler's retries are exhausted,
    /// or if the disk never completes (a bug).
    pub fn load_file_from_disk(
        &mut self,
        name: &str,
        sector: u32,
        len: u32,
    ) -> Result<u32, KernelError> {
        use quamachine::devices::disk::SECTOR_SIZE;
        let sectors = len.div_ceil(SECTOR_SIZE);
        let cap = (sectors * SECTOR_SIZE).max(SECTOR_SIZE);
        let fid = self
            .fs
            .create(&mut self.m, &mut self.heap, name, cap)
            .map_err(|_| KernelError::NoMem)?;
        let f = self.fs.file(fid).expect("just created");
        let (buf, len_slot) = (f.buf, f.len_slot);

        let req = DiskRequest {
            sector,
            count: sectors,
            addr: buf,
            read: true,
            cookie: u32::MAX, // boot-time load; nothing waits on a cookie
        };
        if self.disk_sched.submit(&mut self.m, req).is_err() {
            self.recovery.io_errors.tick();
            return Err(KernelError::Io("sectors quarantined"));
        }
        // Wait for completion: advance virtual time through the event
        // queue and poll the controller's STATUS (which also acknowledges
        // the interrupt). Boot-time load; no thread runs meanwhile.
        // Transient errors are retried by the scheduler with backoff, so
        // the loop keeps driving until a final outcome.
        let status_reg = dev_reg_addr(self.dev.disk, quamachine::devices::disk::REG_STATUS);
        let mut guard = 0;
        loop {
            self.m.process_events();
            let status = self.m.host_reg_read(status_reg);
            if status & quamachine::devices::disk::STATUS_DONE != 0 {
                self.m.irq.clear(irq_levels::DISK);
                match self.disk_sched.on_complete(&mut self.m) {
                    Some(DiskOutcome::Done(_)) => break,
                    Some(DiskOutcome::Failed(_)) => {
                        self.recovery.io_errors.tick();
                        return Err(KernelError::Io("disk retries exhausted"));
                    }
                    Some(DiskOutcome::Retrying { .. }) | None => {}
                }
            }
            match self.m.events.next_due() {
                Some(t) => {
                    self.m.meter.cycles = self.m.meter.cycles.max(t).max(self.m.meter.cycles + 1)
                }
                None => return Err(KernelError::Invalid("disk never completed")),
            }
            guard += 1;
            if guard > 1_000_000 {
                return Err(KernelError::Invalid("disk wait guard tripped"));
            }
        }
        self.m.mem.poke(len_slot, Size::L, len);
        Ok(fid)
    }

    /// Submit a request through the kernel's disk scheduler. The
    /// completion lands in [`Kernel::disk_take_result`] under the
    /// request's cookie, and `WaitObject::Disk` waiters are woken when it
    /// does (retries in between do not wake anyone).
    ///
    /// # Errors
    ///
    /// `Err(errno::EIO)` immediately when the range touches a
    /// quarantined sector — known-bad hardware is not worth a wait.
    pub fn disk_submit(&mut self, req: DiskRequest) -> Result<(), i32> {
        #[allow(unused_variables)]
        let sector = req.sector;
        match self.disk_sched.submit(&mut self.m, req) {
            Ok(()) => {
                crate::trace!(
                    self,
                    self.trace_tid(),
                    crate::trace::Kind::QueuePut,
                    crate::trace::QCLASS_DISK,
                    sector
                );
                Ok(())
            }
            Err(_) => {
                crate::trace!(
                    self,
                    self.trace_tid(),
                    crate::trace::Kind::Recovery,
                    crate::trace::REC_IO_ERROR,
                    sector
                );
                self.recovery.io_errors.tick();
                Err(errno::EIO)
            }
        }
    }

    /// Take the recorded outcome of the disk request submitted with
    /// `cookie`, if it has reached one: `Ok(req)` on success, or
    /// `Err(errno::EIO)` when the scheduler gave up.
    pub fn disk_take_result(&mut self, cookie: u32) -> Option<Result<DiskRequest, i32>> {
        self.disk_results.remove(&cookie)
    }

    fn charge_alloc(&mut self) {
        let steps = self.heap.last_steps;
        let c = charges::alloc_op(&self.m.cost, steps);
        self.m.charge(c);
    }
}

/// Top of a kernel stack (stacks grow down).
fn tte_frame_top(kstack: u32) -> u32 {
    kstack + layout::KSTACK_LEN
}
