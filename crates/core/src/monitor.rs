//! The kernel monitor's measurement interface (Section 6.3).
//!
//! "To obtain direct timings of Synthesis kernel call times (in
//! microseconds), we use the Synthesis kernel monitor execution trace,
//! which records in memory the instructions executed by the current
//! thread. Using this trace, we can calculate the exact kernel call times
//! by counting the memory references and each instruction execution
//! time." The machine's meter does that counting; this module packages
//! interval measurements and the Section 6.4 size accounting.

use quamachine::trace::MeterSnapshot;

use crate::kernel::Kernel;

/// An interval measurement.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// CPU cycles elapsed.
    pub cycles: u64,
    /// Microseconds at the machine's clock.
    pub us: f64,
    /// Instructions executed.
    pub instrs: u64,
    /// Exceptions taken.
    pub exceptions: u64,
}

/// Measure the work done by `f` on the kernel.
pub fn measure<R>(k: &mut Kernel, f: impl FnOnce(&mut Kernel) -> R) -> (R, Measurement) {
    let before = k.m.meter.snapshot();
    let r = f(k);
    let after = k.m.meter.snapshot();
    (r, delta(k, before, after))
}

/// Convert a snapshot pair into a [`Measurement`].
#[must_use]
pub fn delta(k: &Kernel, before: MeterSnapshot, after: MeterSnapshot) -> Measurement {
    let d = before.delta(&after);
    Measurement {
        cycles: d.cycles,
        us: k.m.cost.cycles_to_us(d.cycles),
        instrs: d.instr_count,
        exceptions: d.exception_count,
    }
}

/// The Section 6.4 kernel-size report.
#[derive(Debug, Clone, Copy)]
pub struct SizeReport {
    /// Bytes of synthesized code currently resident.
    pub code_resident: u64,
    /// Bytes of code ever synthesized.
    pub code_total: u64,
    /// Kernel heap bytes in use (TTEs, queues, buffers).
    pub heap_in_use: u32,
    /// Kernel heap high-water mark.
    pub heap_high_water: u32,
    /// Live threads.
    pub threads: usize,
    /// Installed code blocks.
    pub code_blocks: usize,
    /// Bytes of resident synthesized code held once but referenced more
    /// than once — what a cache-less kernel would have duplicated
    /// (Σ `(refs − 1) × size` over the specialization cache).
    pub code_shared_bytes: u64,
    /// Bytes of resident code serving a single reference (resident minus
    /// the multi-referenced cached blocks).
    pub code_private_bytes: u64,
    /// Specialization-cache hits since boot.
    pub cache_hits: u64,
    /// Specialization-cache misses since boot.
    pub cache_misses: u64,
}

/// Snapshot the kernel's space consumption.
#[must_use]
pub fn size_report(k: &Kernel) -> SizeReport {
    let resident = k.m.code.resident_bytes();
    let cache = &k.creator.cache;
    SizeReport {
        code_resident: resident,
        code_total: k.m.code.bytes_loaded,
        heap_in_use: k.heap.in_use,
        heap_high_water: k.heap.high_water,
        threads: k.threads.len(),
        code_blocks: k.m.code.block_count(),
        code_shared_bytes: cache.shared_bytes(),
        code_private_bytes: resident.saturating_sub(cache.multi_ref_bytes()),
        cache_hits: k.creator.stats.cache_hits,
        cache_misses: k.creator.stats.cache_misses,
    }
}

/// Faults injected vs. recovery work done — the soak-test scoreboard.
///
/// The injected side comes from the machine's
/// [`FaultStats`](quamachine::fault::FaultStats); the recovery side
/// aggregates the disk scheduler's retry machinery and the kernel's
/// reap/quarantine gauges.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// Faults injected by the machine's fault plan, by class.
    pub injected: quamachine::fault::FaultStats,
    /// Disk commands re-issued after transient errors.
    pub disk_retries: u64,
    /// Total retry backoff programmed into the disk, in µs.
    pub disk_backoff_us: u64,
    /// Disk requests that failed permanently.
    pub disk_failed: u64,
    /// Requests refused at submit because the range was quarantined.
    pub disk_rejected_quarantined: u64,
    /// Sectors currently quarantined.
    pub sectors_quarantined: usize,
    /// Threads reaped after guest-attributable machine errors.
    pub threads_reaped: u64,
    /// Threads quarantined by the fault-storm watchdog.
    pub threads_quarantined: u64,
    /// I/O errors surfaced to requesters.
    pub io_errors: u64,
}

/// Snapshot the kernel's fault-injection and recovery counters.
#[must_use]
pub fn recovery_report(k: &Kernel) -> RecoveryReport {
    RecoveryReport {
        injected: k.m.fault.stats,
        disk_retries: k.disk_sched.retries,
        disk_backoff_us: k.disk_sched.backoff_us_total,
        disk_failed: k.disk_sched.failed,
        disk_rejected_quarantined: k.disk_sched.rejected_quarantined,
        sectors_quarantined: k.disk_sched.quarantined_count(),
        threads_reaped: k.recovery.reaped.read(),
        threads_quarantined: k.recovery.quarantined.read(),
        io_errors: k.recovery.io_errors.read(),
    }
}
