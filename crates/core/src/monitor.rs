//! The kernel monitor's measurement interface (Section 6.3).
//!
//! "To obtain direct timings of Synthesis kernel call times (in
//! microseconds), we use the Synthesis kernel monitor execution trace,
//! which records in memory the instructions executed by the current
//! thread. Using this trace, we can calculate the exact kernel call times
//! by counting the memory references and each instruction execution
//! time." The machine's meter does that counting; this module packages
//! interval measurements and the Section 6.4 size accounting.

use quamachine::trace::MeterSnapshot;

use crate::kernel::Kernel;

/// An interval measurement.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// CPU cycles elapsed.
    pub cycles: u64,
    /// Microseconds at the machine's clock.
    pub us: f64,
    /// Instructions executed.
    pub instrs: u64,
    /// Exceptions taken.
    pub exceptions: u64,
}

/// Measure the work done by `f` on the kernel.
pub fn measure<R>(k: &mut Kernel, f: impl FnOnce(&mut Kernel) -> R) -> (R, Measurement) {
    let before = k.m.meter.snapshot();
    let r = f(k);
    let after = k.m.meter.snapshot();
    (r, delta(k, before, after))
}

/// Convert a snapshot pair into a [`Measurement`].
#[must_use]
pub fn delta(k: &Kernel, before: MeterSnapshot, after: MeterSnapshot) -> Measurement {
    let d = before.delta(&after);
    Measurement {
        cycles: d.cycles,
        us: k.m.cost.cycles_to_us(d.cycles),
        instrs: d.instr_count,
        exceptions: d.exception_count,
    }
}

/// The Section 6.4 kernel-size report.
#[derive(Debug, Clone, Copy)]
pub struct SizeReport {
    /// Bytes of synthesized code currently resident.
    pub code_resident: u64,
    /// Bytes of code ever synthesized.
    pub code_total: u64,
    /// Kernel heap bytes in use (TTEs, queues, buffers).
    pub heap_in_use: u32,
    /// Kernel heap high-water mark.
    pub heap_high_water: u32,
    /// Live threads.
    pub threads: usize,
    /// Installed code blocks.
    pub code_blocks: usize,
    /// Bytes of resident synthesized code held once but referenced more
    /// than once — what a cache-less kernel would have duplicated
    /// (Σ `(refs − 1) × size` over the specialization cache).
    pub code_shared_bytes: u64,
    /// Bytes of resident code serving a single reference (resident minus
    /// the multi-referenced cached blocks).
    pub code_private_bytes: u64,
    /// Specialization-cache hits since boot.
    pub cache_hits: u64,
    /// Specialization-cache misses since boot.
    pub cache_misses: u64,
}

/// Snapshot the kernel's space consumption.
#[must_use]
pub fn size_report(k: &Kernel) -> SizeReport {
    let resident = k.m.code.resident_bytes();
    let cache = &k.creator.cache;
    SizeReport {
        code_resident: resident,
        code_total: k.m.code.bytes_loaded,
        heap_in_use: k.heap.in_use,
        heap_high_water: k.heap.high_water,
        threads: k.threads.len(),
        code_blocks: k.m.code.block_count(),
        code_shared_bytes: cache.shared_bytes(),
        code_private_bytes: resident.saturating_sub(cache.multi_ref_bytes()),
        cache_hits: k.creator.stats.cache_hits,
        cache_misses: k.creator.stats.cache_misses,
    }
}

/// Faults injected vs. recovery work done — the soak-test scoreboard.
///
/// The injected side comes from the machine's
/// [`FaultStats`](quamachine::fault::FaultStats); the recovery side
/// aggregates the disk scheduler's retry machinery and the kernel's
/// reap/quarantine gauges.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Faults injected by the machine's fault plan, by class.
    pub injected: quamachine::fault::FaultStats,
    /// Disk commands re-issued after transient errors.
    pub disk_retries: u64,
    /// Total retry backoff programmed into the disk, in µs.
    pub disk_backoff_us: u64,
    /// Disk requests that failed permanently.
    pub disk_failed: u64,
    /// Requests refused at submit because the range was quarantined.
    pub disk_rejected_quarantined: u64,
    /// Sectors currently quarantined.
    pub sectors_quarantined: usize,
    /// Threads reaped after guest-attributable machine errors.
    pub threads_reaped: u64,
    /// Threads quarantined by the fault-storm watchdog.
    pub threads_quarantined: u64,
    /// I/O errors surfaced to requesters.
    pub io_errors: u64,
    /// CPUs quarantined by the cross-CPU watchdog.
    pub cpus_quarantined: u64,
    /// Quarantined CPUs re-admitted after probation.
    pub cpus_resumed: u64,
    /// Threads migrated off quarantined CPUs' ready chains.
    pub threads_evacuated: u64,
    /// Parked CPUs revived by the timer-fallback path after a missing
    /// reschedule IPI.
    pub ipi_fallbacks: u64,
    /// Per-CPU fault-domain rows. Empty on uniprocessor kernels, so
    /// every rendering omits the section and the single-CPU output is
    /// byte-identical to the pre-SMP report.
    pub cpus: Vec<CpuRecovery>,
}

/// One CPU's fault-domain state in the [`RecoveryReport`].
#[derive(Debug, Clone, Copy)]
pub struct CpuRecovery {
    /// The CPU.
    pub cpu: usize,
    /// Whether it is currently quarantined.
    pub quarantined: bool,
    /// Guest faults charged to the CPU domain itself.
    pub fault_events: u64,
    /// Cycles lost to dispatch stalls, as seen by the scheduler.
    pub stall_cycles: u64,
    /// Times this CPU has been quarantined.
    pub strikes: u32,
}

/// Snapshot the kernel's fault-injection and recovery counters.
#[must_use]
pub fn recovery_report(k: &Kernel) -> RecoveryReport {
    let cpus = if k.m.num_cpus() > 1 {
        (0..k.cpus.len())
            .map(|i| CpuRecovery {
                cpu: i,
                quarantined: k.cpus[i].quarantined,
                fault_events: k.cpus[i].fault_events,
                stall_cycles: k.cpus[i].stall_cycles,
                strikes: k.cpus[i].strikes,
            })
            .collect()
    } else {
        Vec::new()
    };
    RecoveryReport {
        injected: k.m.fault.stats,
        disk_retries: k.disk_sched.retries,
        disk_backoff_us: k.disk_sched.backoff_us_total,
        disk_failed: k.disk_sched.failed,
        disk_rejected_quarantined: k.disk_sched.rejected_quarantined,
        sectors_quarantined: k.disk_sched.quarantined_count(),
        threads_reaped: k.recovery.reaped.read(),
        threads_quarantined: k.recovery.quarantined.read(),
        io_errors: k.recovery.io_errors.read(),
        cpus_quarantined: k.recovery.cpus_quarantined.read(),
        cpus_resumed: k.recovery.cpus_resumed.read(),
        threads_evacuated: k.recovery.threads_evacuated.read(),
        ipi_fallbacks: k.recovery.ipi_fallbacks.read(),
        cpus,
    }
}

impl RecoveryReport {
    /// Render the report as the monitor's text scoreboard: injected
    /// faults vs. recovery work, with a per-CPU fault-domain section on
    /// multiprocessor kernels.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let i = &self.injected;
        let mut out = String::new();
        let _ = writeln!(out, "recovery report: {} faults injected", i.total());
        let _ = writeln!(
            out,
            "  injected: disk {}+{} tty {}+{} irq {}+{} timer {} ipi {}+{}+{} cpu {}+{}",
            i.disk_transient,
            i.disk_sticky,
            i.tty_dropped,
            i.tty_duplicated,
            i.irq_lost,
            i.irq_spurious,
            i.timer_jitter,
            i.ipi_lost,
            i.ipi_delayed,
            i.ipi_spurious,
            i.cpu_stall,
            i.cpu_sick
        );
        let _ = writeln!(
            out,
            "  disk: {} retries, {} µs backoff, {} failed, {} rejected, {} sectors quarantined",
            self.disk_retries,
            self.disk_backoff_us,
            self.disk_failed,
            self.disk_rejected_quarantined,
            self.sectors_quarantined
        );
        let _ = writeln!(
            out,
            "  threads: {} reaped, {} quarantined, {} io errors",
            self.threads_reaped, self.threads_quarantined, self.io_errors
        );
        if !self.cpus.is_empty() {
            let _ = writeln!(
                out,
                "  cpus: {} quarantined, {} resumed, {} threads evacuated, {} ipi fallbacks",
                self.cpus_quarantined,
                self.cpus_resumed,
                self.threads_evacuated,
                self.ipi_fallbacks
            );
            for c in &self.cpus {
                let _ = writeln!(
                    out,
                    "  cpu {:>2}: {}  faults {:>3}  stalled {:>10} cycles  strikes {}",
                    c.cpu,
                    if c.quarantined {
                        "quarantined"
                    } else {
                        "in service "
                    },
                    c.fault_events,
                    c.stall_cycles,
                    c.strikes
                );
            }
        }
        out
    }

    /// Serialize the report as JSON — the same shape as the text
    /// rendering, structurally assertable by the chaos soak and CI. The
    /// `cpus` key is omitted entirely on uniprocessor kernels so the
    /// single-CPU JSON is byte-identical whether or not the SMP fault
    /// plan is compiled in.
    #[must_use]
    pub fn to_json(&self) -> String {
        let i = &self.injected;
        let cpus_section = if self.cpus.is_empty() {
            String::new()
        } else {
            let rows: Vec<String> = self
                .cpus
                .iter()
                .map(|c| {
                    format!(
                        "    {{\"cpu\": {}, \"quarantined\": {}, \"fault_events\": {}, \
                         \"stall_cycles\": {}, \"strikes\": {}}}",
                        c.cpu, c.quarantined, c.fault_events, c.stall_cycles, c.strikes
                    )
                })
                .collect();
            format!(
                ",\n  \"cpus_quarantined\": {},\n  \"cpus_resumed\": {},\n  \
                 \"threads_evacuated\": {},\n  \"ipi_fallbacks\": {},\n  \
                 \"cpus\": [\n{}\n  ]",
                self.cpus_quarantined,
                self.cpus_resumed,
                self.threads_evacuated,
                self.ipi_fallbacks,
                rows.join(",\n")
            )
        };
        format!(
            "{{\n  \"injected\": {{\"total\": {}, \"disk_transient\": {}, \"disk_sticky\": {}, \
             \"tty_dropped\": {}, \"tty_duplicated\": {}, \"irq_lost\": {}, \
             \"irq_spurious\": {}, \"timer_jitter\": {}, \"ipi_lost\": {}, \
             \"ipi_delayed\": {}, \"ipi_spurious\": {}, \"cpu_stall\": {}, \"cpu_sick\": {}}},\n  \
             \"disk_retries\": {},\n  \"disk_backoff_us\": {},\n  \"disk_failed\": {},\n  \
             \"disk_rejected_quarantined\": {},\n  \"sectors_quarantined\": {},\n  \
             \"threads_reaped\": {},\n  \"threads_quarantined\": {},\n  \"io_errors\": {}{}\n\
             }}\n",
            i.total(),
            i.disk_transient,
            i.disk_sticky,
            i.tty_dropped,
            i.tty_duplicated,
            i.irq_lost,
            i.irq_spurious,
            i.timer_jitter,
            i.ipi_lost,
            i.ipi_delayed,
            i.ipi_spurious,
            i.cpu_stall,
            i.cpu_sick,
            self.disk_retries,
            self.disk_backoff_us,
            self.disk_failed,
            self.disk_rejected_quarantined,
            self.sectors_quarantined,
            self.threads_reaped,
            self.threads_quarantined,
            self.io_errors,
            cpus_section
        )
    }
}

/// Syscall-latency histogram buckets, in cycles (each bucket's upper
/// bound; the last is open-ended).
pub const LATENCY_BUCKETS: [u32; 6] = [100, 300, 1_000, 3_000, 10_000, u32::MAX];

/// Per-thread statistics distilled from one thread's trace ring.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// The thread.
    pub tid: crate::thread::Tid,
    /// Dispatches (guest `sw_in` VBR installs + host enters).
    pub ctx_switches: u64,
    /// Syscall entries.
    pub syscalls: u64,
    /// Interrupts accepted while the thread ran.
    pub irqs: u64,
    /// Kernel queue insertions attributed to the thread.
    pub queue_puts: u64,
    /// Kernel queue removals.
    pub queue_gets: u64,
    /// Specialization-cache hits driven by the thread.
    pub cache_hits: u64,
    /// Specialization-cache misses.
    pub cache_misses: u64,
    /// Cached-code destroys.
    pub destroys: u64,
    /// Recovery actions charged to the thread (reap/quarantine/IO error).
    pub recoveries: u64,
    /// Cumulative I/O-classed events (monotonic; survives wraparound).
    pub io_events: u64,
    /// I/O-classed events per millisecond of virtual time over the
    /// report window (the paper's Table-5-style I/O rate).
    pub io_per_ms: f64,
    /// Syscall-latency histogram: completed syscalls whose enter→exit
    /// cycle count fell in each [`LATENCY_BUCKETS`] bucket.
    pub latency: [u64; LATENCY_BUCKETS.len()],
}

/// One CPU's scheduler activity over the report window. Only built on
/// multiprocessor kernels — on one CPU the report's `cpus` vector is
/// empty and every rendering omits the section, keeping uniprocessor
/// output byte-identical to the pre-SMP kernel.
#[derive(Debug, Clone)]
pub struct CpuTrace {
    /// The CPU.
    pub cpu: usize,
    /// Threads this CPU pulled out of the shared steal pool.
    pub steals: u64,
    /// Threads this CPU offered into the pool.
    pub offloads: u64,
    /// Slice cycles spent running real threads.
    pub busy_cycles: u64,
    /// Slice cycles spent in the idle thread.
    pub idle_cycles: u64,
    /// [`crate::trace::Kind::Steal`] records naming this CPU as the
    /// thief — the trace-side view of `steals`. They agree on traced
    /// builds; without the `trace` feature this is 0.
    pub steal_records: u64,
    /// `busy / (busy + idle)`, 0 when the CPU never ran a slice.
    pub utilization: f64,
}

/// The kernel-wide trace report: the bench profiler's data model.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Per-thread rows, by thread id.
    pub threads: Vec<ThreadTrace>,
    /// Per-CPU scheduler rows (empty on uniprocessor kernels).
    pub cpus: Vec<CpuTrace>,
    /// First record's cycle stamp (0 when the trace is empty).
    pub window_start: u64,
    /// Last record's cycle stamp.
    pub window_end: u64,
    /// Machine hook events dropped before the kernel attributed them.
    pub dropped: u64,
    /// Total records the report distilled.
    pub records: usize,
}

/// Distill the kernel's trace rings into per-thread statistics without
/// consuming them. With the `trace` feature off the rings are empty and
/// every row is zero.
#[must_use]
pub fn trace_report(k: &mut Kernel) -> TraceReport {
    use crate::trace::Kind;
    k.pump_trace();
    let merged = k.trace.snapshot_all();
    let window_start = merged.first().map_or(0, |r| r.cycle);
    let window_end = merged.last().map_or(0, |r| r.cycle);
    let window_ms =
        k.m.cost
            .cycles_to_us(window_end.saturating_sub(window_start))
            / 1_000.0;
    let mut threads = Vec::new();
    for tid in k.trace.tids() {
        let mut row = ThreadTrace {
            tid,
            ctx_switches: 0,
            syscalls: 0,
            irqs: 0,
            queue_puts: 0,
            queue_gets: 0,
            cache_hits: 0,
            cache_misses: 0,
            destroys: 0,
            recoveries: 0,
            io_events: k.trace.io_events(tid),
            io_per_ms: 0.0,
            latency: [0; LATENCY_BUCKETS.len()],
        };
        for r in k.trace.snapshot(tid) {
            match r.kind {
                Kind::CtxSwitch => row.ctx_switches += 1,
                Kind::SyscallEnter => row.syscalls += 1,
                Kind::SyscallExit => {
                    let slot = LATENCY_BUCKETS
                        .iter()
                        .position(|&hi| r.b <= hi)
                        .unwrap_or(LATENCY_BUCKETS.len() - 1);
                    row.latency[slot] += 1;
                }
                Kind::Irq => row.irqs += 1,
                Kind::QueuePut => row.queue_puts += 1,
                Kind::QueueGet => row.queue_gets += 1,
                Kind::CacheHit => row.cache_hits += 1,
                Kind::CacheMiss => row.cache_misses += 1,
                Kind::Destroy => row.destroys += 1,
                Kind::Recovery => row.recoveries += 1,
                // Steal and CPU-fault-domain records are per-CPU
                // scheduler traffic, reported in the SMP section and the
                // recovery report (never emitted on one CPU).
                Kind::Steal
                | Kind::IpiLost
                | Kind::CpuStall
                | Kind::CpuQuarantine
                | Kind::CpuResume => {}
            }
        }
        if window_ms > 0.0 {
            row.io_per_ms = row.io_events as f64 / window_ms;
        }
        threads.push(row);
    }
    let cpus = if k.m.num_cpus() > 1 {
        (0..k.m.num_cpus())
            .map(|i| {
                let c = &k.cpus[i];
                let total = c.busy_cycles + c.idle_cycles;
                CpuTrace {
                    cpu: i,
                    steals: c.steals,
                    offloads: c.offloads,
                    busy_cycles: c.busy_cycles,
                    idle_cycles: c.idle_cycles,
                    steal_records: k.trace.steal_events(i),
                    utilization: if total > 0 {
                        c.busy_cycles as f64 / total as f64
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    } else {
        Vec::new()
    };
    TraceReport {
        threads,
        cpus,
        window_start,
        window_end,
        dropped: k.trace.dropped,
        records: merged.len(),
    }
}

impl TraceReport {
    /// Render the report as the profiler's text table: one row per
    /// thread plus the latency histogram of threads that completed
    /// syscalls.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace report: {} records over cycles {}..{} ({} dropped)",
            self.records, self.window_start, self.window_end, self.dropped
        );
        let _ = writeln!(
            out,
            "{:>4} {:>6} {:>8} {:>6} {:>6} {:>6} {:>5} {:>6} {:>5} {:>8} {:>9}",
            "tid",
            "ctxsw",
            "syscall",
            "irq",
            "qput",
            "qget",
            "hit",
            "miss",
            "rec",
            "io-ev",
            "io/ms"
        );
        for t in &self.threads {
            let _ = writeln!(
                out,
                "{:>4} {:>6} {:>8} {:>6} {:>6} {:>6} {:>5} {:>6} {:>5} {:>8} {:>9.2}",
                t.tid,
                t.ctx_switches,
                t.syscalls,
                t.irqs,
                t.queue_puts,
                t.queue_gets,
                t.cache_hits,
                t.cache_misses,
                t.recoveries,
                t.io_events,
                t.io_per_ms
            );
        }
        if !self.cpus.is_empty() {
            let _ = writeln!(out, "per-CPU scheduler activity:");
            for c in &self.cpus {
                let _ = writeln!(
                    out,
                    "  cpu {:>2}: {:>5.1}% busy  steals {:>4} ({} traced)  offloads {:>4}  \
                     busy {:>10} idle {:>10} cycles",
                    c.cpu,
                    c.utilization * 100.0,
                    c.steals,
                    c.steal_records,
                    c.offloads,
                    c.busy_cycles,
                    c.idle_cycles
                );
            }
        }
        let _ = writeln!(out, "syscall latency (cycles):");
        for t in &self.threads {
            if t.latency.iter().sum::<u64>() == 0 {
                continue;
            }
            let mut lo = 0u64;
            let _ = write!(out, "  tid {:>2}:", t.tid);
            for (i, &n) in t.latency.iter().enumerate() {
                let hi = LATENCY_BUCKETS[i];
                if hi == u32::MAX {
                    let _ = write!(out, " >{lo}:{n}");
                } else {
                    let _ = write!(out, " {lo}-{hi}:{n}");
                }
                lo = u64::from(hi);
            }
            let _ = writeln!(out);
        }
        out
    }
}
