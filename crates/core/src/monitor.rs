//! The kernel monitor's measurement interface (Section 6.3).
//!
//! "To obtain direct timings of Synthesis kernel call times (in
//! microseconds), we use the Synthesis kernel monitor execution trace,
//! which records in memory the instructions executed by the current
//! thread. Using this trace, we can calculate the exact kernel call times
//! by counting the memory references and each instruction execution
//! time." The machine's meter does that counting; this module packages
//! interval measurements and the Section 6.4 size accounting.

use quamachine::trace::MeterSnapshot;

use crate::kernel::Kernel;

/// An interval measurement.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// CPU cycles elapsed.
    pub cycles: u64,
    /// Microseconds at the machine's clock.
    pub us: f64,
    /// Instructions executed.
    pub instrs: u64,
    /// Exceptions taken.
    pub exceptions: u64,
}

/// Measure the work done by `f` on the kernel.
pub fn measure<R>(k: &mut Kernel, f: impl FnOnce(&mut Kernel) -> R) -> (R, Measurement) {
    let before = k.m.meter.snapshot();
    let r = f(k);
    let after = k.m.meter.snapshot();
    (r, delta(k, before, after))
}

/// Convert a snapshot pair into a [`Measurement`].
#[must_use]
pub fn delta(k: &Kernel, before: MeterSnapshot, after: MeterSnapshot) -> Measurement {
    let d = before.delta(&after);
    Measurement {
        cycles: d.cycles,
        us: k.m.cost.cycles_to_us(d.cycles),
        instrs: d.instr_count,
        exceptions: d.exception_count,
    }
}

/// The Section 6.4 kernel-size report.
#[derive(Debug, Clone, Copy)]
pub struct SizeReport {
    /// Bytes of synthesized code currently resident.
    pub code_resident: u64,
    /// Bytes of code ever synthesized.
    pub code_total: u64,
    /// Kernel heap bytes in use (TTEs, queues, buffers).
    pub heap_in_use: u32,
    /// Kernel heap high-water mark.
    pub heap_high_water: u32,
    /// Live threads.
    pub threads: usize,
    /// Installed code blocks.
    pub code_blocks: usize,
}

/// Snapshot the kernel's space consumption.
#[must_use]
pub fn size_report(k: &Kernel) -> SizeReport {
    SizeReport {
        code_resident: k.m.code.resident_bytes(),
        code_total: k.m.code.bytes_loaded,
        heap_in_use: k.heap.in_use,
        heap_high_water: k.heap.high_water,
        threads: k.threads.len(),
        code_blocks: k.m.code.block_count(),
    }
}
