//! Kernel memory allocation.

pub mod fastfit;

pub use fastfit::FastFit;
