//! The fast-fit kernel heap.
//!
//! "In Synthesis, the memory allocation routine is an executable data
//! structure implementing a fast-fit heap [6] with randomized traversal
//! added" (Section 6.3; [6] is Stephenson's *Fast Fits*). Stephenson's
//! allocator keeps free blocks in a Cartesian tree ordered by address and
//! searchable by size; ours is the same shape: a treap keyed by address
//! with a max-free-size augmentation, so an allocation descends only into
//! subtrees that can satisfy it. The *randomized traversal* appears as a
//! random choice among qualifying subtrees, which spreads allocations
//! across the arena and avoids the pathological clustering of strict
//! first-fit.
//!
//! The tree is host-side state; each operation reports how many nodes it
//! examined so the kernel can charge honest cycles
//! ([`crate::charges::alloc_op`]).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Allocation failure: not enough contiguous free space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u32,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kernel heap exhausted allocating {} bytes",
            self.requested
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Allocation granularity.
pub const ALIGN: u32 = 8;

struct Node {
    addr: u32,
    len: u32,
    prio: u64,
    max_len: u32,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

impl Node {
    fn new(addr: u32, len: u32, prio: u64) -> Box<Node> {
        Box::new(Node {
            addr,
            len,
            prio,
            max_len: len,
            left: None,
            right: None,
        })
    }

    fn update(&mut self) {
        let mut m = self.len;
        if let Some(l) = &self.left {
            m = m.max(l.max_len);
        }
        if let Some(r) = &self.right {
            m = m.max(r.max_len);
        }
        self.max_len = m;
    }
}

fn max_len(n: &Option<Box<Node>>) -> u32 {
    n.as_ref().map_or(0, |n| n.max_len)
}

/// The fast-fit heap over `[base, base + len)`.
pub struct FastFit {
    root: Option<Box<Node>>,
    base: u32,
    len: u32,
    rng: SmallRng,
    /// Bytes currently allocated.
    pub in_use: u32,
    /// High-water mark of allocated bytes.
    pub high_water: u32,
    /// Nodes examined by the last operation (for cycle charging).
    pub last_steps: u32,
    /// Total operations performed.
    pub ops: u64,
}

impl FastFit {
    /// A heap managing `[base, base + len)` with a deterministic seed.
    #[must_use]
    pub fn new(base: u32, len: u32) -> FastFit {
        let mut rng = SmallRng::seed_from_u64(0x5717_4E51_5EED);
        let prio = rng.random();
        FastFit {
            root: Some(Node::new(base, len, prio)),
            base,
            len,
            rng,
            in_use: 0,
            high_water: 0,
            last_steps: 0,
            ops: 0,
        }
    }

    /// The managed region.
    #[must_use]
    pub fn region(&self) -> (u32, u32) {
        (self.base, self.len)
    }

    /// Total free bytes.
    #[must_use]
    pub fn free_bytes(&self) -> u32 {
        self.len - self.in_use
    }

    /// The largest single free block.
    #[must_use]
    pub fn largest_free(&self) -> u32 {
        max_len(&self.root)
    }

    /// Allocate `size` bytes (rounded up to [`ALIGN`]); returns the
    /// address.
    ///
    /// # Errors
    ///
    /// Fails when no free block is large enough.
    pub fn alloc(&mut self, size: u32) -> Result<u32, OutOfMemory> {
        let size = size.max(1).div_ceil(ALIGN) * ALIGN;
        self.ops += 1;
        self.last_steps = 0;
        if max_len(&self.root) < size {
            return Err(OutOfMemory { requested: size });
        }
        // Randomized descent: among {left, here, right} that can satisfy
        // the request, pick one at random.
        let mut steps = 0u32;
        let addr = {
            let root = self.root.as_deref_mut().expect("checked above");
            Self::take_fit(root, size, &mut self.rng, &mut steps)
        };
        // take_fit shrinks a node in place; a node shrunk to zero must be
        // removed.
        self.remove_empty(addr);
        self.last_steps = steps;
        self.in_use += size;
        self.high_water = self.high_water.max(self.in_use);
        Ok(addr)
    }

    /// Descend to a node with `len >= size`, carve `size` bytes off its
    /// front, and return the carved address. The node keeps its tail (len
    /// may become 0).
    fn take_fit(n: &mut Node, size: u32, rng: &mut SmallRng, steps: &mut u32) -> u32 {
        *steps += 1;
        let here = n.len >= size;
        let left = max_len(&n.left) >= size;
        let right = max_len(&n.right) >= size;
        // Collect qualifying directions and pick one at random — the
        // "randomized traversal".
        let mut choices: [u8; 3] = [0; 3];
        let mut nc = 0;
        if left {
            choices[nc] = 0;
            nc += 1;
        }
        if here {
            choices[nc] = 1;
            nc += 1;
        }
        if right {
            choices[nc] = 2;
            nc += 1;
        }
        debug_assert!(nc > 0, "caller guaranteed a fit exists");
        let pick = choices[rng.random_range(0..nc)];
        let addr = match pick {
            0 => Self::take_fit(n.left.as_deref_mut().expect("left fits"), size, rng, steps),
            2 => Self::take_fit(
                n.right.as_deref_mut().expect("right fits"),
                size,
                rng,
                steps,
            ),
            _ => {
                let addr = n.addr;
                n.addr += size;
                n.len -= size;
                addr
            }
        };
        n.update();
        addr
    }

    /// Remove any zero-length node (there is at most one, at `addr +
    /// carved size`... identified simply by len == 0).
    fn remove_empty(&mut self, _hint: u32) {
        fn prune(n: Option<Box<Node>>) -> Option<Box<Node>> {
            let mut n = n?;
            n.left = prune(n.left.take());
            n.right = prune(n.right.take());
            if n.len == 0 {
                let merged = merge(n.left.take(), n.right.take());
                return merged;
            }
            n.update();
            Some(n)
        }
        self.root = prune(self.root.take());
    }

    /// Free `[addr, addr + size)` (size rounded as in `alloc`).
    ///
    /// Coalesces with adjacent free blocks.
    pub fn free(&mut self, addr: u32, size: u32) {
        let size = size.max(1).div_ceil(ALIGN) * ALIGN;
        self.ops += 1;
        self.in_use = self.in_use.saturating_sub(size);
        // Coalescing: absorb a predecessor that ends at addr and a
        // successor that starts at addr+size, then insert the merged
        // block.
        let mut lo = addr;
        let mut hi = addr + size;
        if let Some((a, l)) = self.remove_adjacent_ending_at(lo) {
            lo = a;
            debug_assert_eq!(a + l, addr);
        }
        if let Some((a, l)) = self.remove_starting_at(hi) {
            debug_assert_eq!(a, hi);
            hi = a + l;
        }
        let prio = self.rng.random();
        let node = Node::new(lo, hi - lo, prio);
        let root = self.root.take();
        self.root = insert(root, node);
    }

    fn remove_adjacent_ending_at(&mut self, addr: u32) -> Option<(u32, u32)> {
        let found = find_pred_end(self.root.as_deref(), addr)?;
        self.remove_at(found.0);
        Some(found)
    }

    fn remove_starting_at(&mut self, addr: u32) -> Option<(u32, u32)> {
        let found = find_addr(self.root.as_deref(), addr)?;
        self.remove_at(found.0);
        Some(found)
    }

    fn remove_at(&mut self, addr: u32) {
        fn rec(n: Option<Box<Node>>, addr: u32) -> Option<Box<Node>> {
            let mut n = n?;
            if addr < n.addr {
                n.left = rec(n.left.take(), addr);
            } else if addr > n.addr {
                n.right = rec(n.right.take(), addr);
            } else {
                return merge(n.left.take(), n.right.take());
            }
            n.update();
            Some(n)
        }
        self.root = rec(self.root.take(), addr);
    }

    /// Number of free blocks (fragmentation indicator).
    #[must_use]
    pub fn fragments(&self) -> usize {
        fn count(n: Option<&Node>) -> usize {
            n.map_or(0, |n| {
                1 + count(n.left.as_deref()) + count(n.right.as_deref())
            })
        }
        count(self.root.as_deref())
    }
}

/// Treap merge (all keys in `a` < all keys in `b`).
fn merge(a: Option<Box<Node>>, b: Option<Box<Node>>) -> Option<Box<Node>> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(mut a), Some(mut b)) => {
            if a.prio >= b.prio {
                a.right = merge(a.right.take(), Some(b));
                a.update();
                Some(a)
            } else {
                b.left = merge(Some(a), b.left.take());
                b.update();
                Some(b)
            }
        }
    }
}

/// Treap insert by address key.
fn insert(root: Option<Box<Node>>, node: Box<Node>) -> Option<Box<Node>> {
    match root {
        None => Some(node),
        Some(mut r) => {
            if node.prio > r.prio {
                let (l, rr) = split(Some(r), node.addr);
                let mut node = node;
                node.left = l;
                node.right = rr;
                node.update();
                Some(node)
            } else {
                if node.addr < r.addr {
                    r.left = insert(r.left.take(), node);
                } else {
                    r.right = insert(r.right.take(), node);
                }
                r.update();
                Some(r)
            }
        }
    }
}

/// Split by address key: (< key, >= key).
fn split(root: Option<Box<Node>>, key: u32) -> (Option<Box<Node>>, Option<Box<Node>>) {
    match root {
        None => (None, None),
        Some(mut r) => {
            if r.addr < key {
                let (l, rr) = split(r.right.take(), key);
                r.right = l;
                r.update();
                (Some(r), rr)
            } else {
                let (l, rr) = split(r.left.take(), key);
                r.left = rr;
                r.update();
                (l, Some(r))
            }
        }
    }
}

/// Find the block whose end equals `addr` (necessarily the free block
/// with the largest start address below `addr`, since blocks are
/// disjoint).
fn find_pred_end(n: Option<&Node>, addr: u32) -> Option<(u32, u32)> {
    let n = n?;
    if n.addr >= addr {
        return find_pred_end(n.left.as_deref(), addr);
    }
    // n is a candidate; a closer predecessor may sit in the right subtree.
    if let Some(hit) = find_pred_end(n.right.as_deref(), addr) {
        return Some(hit);
    }
    if n.addr + n.len == addr {
        Some((n.addr, n.len))
    } else {
        None
    }
}

/// Find the block starting exactly at `addr`.
fn find_addr(n: Option<&Node>, addr: u32) -> Option<(u32, u32)> {
    let n = n?;
    match addr.cmp(&n.addr) {
        std::cmp::Ordering::Less => find_addr(n.left.as_deref(), addr),
        std::cmp::Ordering::Greater => find_addr(n.right.as_deref(), addr),
        std::cmp::Ordering::Equal => Some((n.addr, n.len)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_exhaust() {
        let mut h = FastFit::new(0x1000, 0x100);
        let a = h.alloc(0x80).unwrap();
        let b = h.alloc(0x80).unwrap();
        assert_ne!(a, b);
        assert!((0x1000..0x1100).contains(&a));
        assert!((0x1000..0x1100).contains(&b));
        assert!(h.alloc(8).is_err());
        assert_eq!(h.free_bytes(), 0);
    }

    #[test]
    fn free_and_coalesce_restores_arena() {
        let mut h = FastFit::new(0, 0x1000);
        let mut blocks = Vec::new();
        for _ in 0..16 {
            blocks.push(h.alloc(0x100).unwrap());
        }
        assert!(h.alloc(8).is_err());
        for a in blocks {
            h.free(a, 0x100);
        }
        assert_eq!(h.free_bytes(), 0x1000);
        assert_eq!(h.fragments(), 1, "full coalescing back to one block");
        assert_eq!(h.largest_free(), 0x1000);
    }

    #[test]
    fn no_overlap_under_mixed_traffic() {
        let mut h = FastFit::new(0, 0x4000);
        let mut live: Vec<(u32, u32)> = Vec::new();
        let mut rng = SmallRng::seed_from_u64(42);
        for i in 0..2000 {
            if live.is_empty() || (i % 3 != 0) {
                let size = rng.random_range(8..200u32);
                if let Ok(a) = h.alloc(size) {
                    let size = size.div_ceil(ALIGN) * ALIGN;
                    for &(b, bl) in &live {
                        assert!(a + size <= b || b + bl <= a, "overlap");
                    }
                    live.push((a, size));
                }
            } else {
                let idx = rng.random_range(0..live.len());
                let (a, l) = live.swap_remove(idx);
                h.free(a, l);
            }
        }
        let total: u32 = live.iter().map(|&(_, l)| l).sum();
        assert_eq!(h.in_use, total);
    }

    #[test]
    fn steps_reported() {
        let mut h = FastFit::new(0, 0x10000);
        // Fragment the arena a little.
        let a = h.alloc(0x100).unwrap();
        let _b = h.alloc(0x100).unwrap();
        h.free(a, 0x100);
        h.alloc(0x80).unwrap();
        assert!(h.last_steps >= 1);
        assert!(h.ops >= 4);
    }

    #[test]
    fn randomized_traversal_spreads_allocations() {
        // With randomized traversal, allocating after building fragments
        // should not always pick the lowest address.
        let mut h = FastFit::new(0, 0x10000);
        let mut blocks = Vec::new();
        for _ in 0..32 {
            blocks.push(h.alloc(0x200).unwrap());
        }
        // Free every other block: 16 disjoint holes.
        for (i, &a) in blocks.iter().enumerate() {
            if i % 2 == 0 {
                h.free(a, 0x200);
            }
        }
        let picks: Vec<u32> = (0..8).map(|_| h.alloc(0x100).unwrap()).collect();
        let all_ascending = picks.windows(2).all(|w| w[1] > w[0]);
        assert!(
            !all_ascending,
            "randomized traversal should not behave like strict first-fit: {picks:?}"
        );
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut h = FastFit::new(0, 0x1000);
        let a = h.alloc(0x800).unwrap();
        h.free(a, 0x800);
        h.alloc(0x100).unwrap();
        assert_eq!(h.high_water, 0x800);
    }
}
