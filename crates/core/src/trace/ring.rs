//! The per-thread trace ring: fixed capacity, newest records win.
//!
//! Same discipline as the quamachine meter's instruction trace: a flat
//! buffer with a wrap index, no allocation after the first lap, and on
//! overflow the *oldest* record is overwritten — a post-mortem wants the
//! most recent history, not the oldest.

use super::record::TraceRecord;

/// A fixed-capacity ring of trace records.
#[derive(Debug)]
pub struct Ring {
    buf: Vec<TraceRecord>,
    cap: usize,
    head: usize,
}

impl Ring {
    /// A ring holding at most `cap` records (`cap` = 0 records nothing).
    #[must_use]
    pub fn new(cap: usize) -> Ring {
        Ring {
            buf: Vec::with_capacity(cap.min(4096)),
            cap,
            head: 0,
        }
    }

    /// Append a record, overwriting the oldest when full.
    pub fn push(&mut self, rec: TraceRecord) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring's capacity in records.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Copy the contents out, oldest record first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut v = Vec::with_capacity(self.buf.len());
        v.extend_from_slice(&self.buf[self.head..]);
        v.extend_from_slice(&self.buf[..self.head]);
        v
    }

    /// Take the contents (oldest first), leaving the ring empty.
    pub fn drain(&mut self) -> Vec<TraceRecord> {
        let v = self.snapshot();
        self.buf.clear();
        self.head = 0;
        v
    }
}
