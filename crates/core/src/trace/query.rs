//! The trace-assertion test API: match, count, and order predicates
//! over drained rings.
//!
//! Tests pin kernel behavior down by asserting on the event stream
//! instead of reconstructing history from side effects:
//!
//! ```ignore
//! let q = TraceQuery::drain(&mut k);
//! assert_eq!(q.thread(tid).count_kind(Kind::CacheHit), 7);
//! assert!(q.ordered(&[
//!     &|r| r.kind == Kind::SyscallEnter,
//!     &|r| r.kind == Kind::SyscallExit,
//! ]));
//! ```

use super::record::{Kind, TraceRecord};
use crate::kernel::Kernel;
use crate::thread::Tid;

/// A predicate over one record.
pub type Pred<'a> = &'a dyn Fn(&TraceRecord) -> bool;

/// An immutable view over a set of trace records, merged by cycle.
#[derive(Debug, Clone)]
pub struct TraceQuery {
    recs: Vec<TraceRecord>,
}

impl TraceQuery {
    /// Pump pending machine events, then take every ring's contents.
    /// Subsequent drains see only newer events — use this to mark a
    /// cut point ("everything after the open()").
    pub fn drain(k: &mut Kernel) -> TraceQuery {
        k.pump_trace();
        TraceQuery {
            recs: k.trace.drain_all(),
        }
    }

    /// Pump pending machine events, then copy every ring's contents
    /// without consuming them.
    pub fn snapshot(k: &mut Kernel) -> TraceQuery {
        k.pump_trace();
        TraceQuery {
            recs: k.trace.snapshot_all(),
        }
    }

    /// Wrap an explicit record list (e.g. a single drained ring).
    #[must_use]
    pub fn from_records(recs: Vec<TraceRecord>) -> TraceQuery {
        TraceQuery { recs }
    }

    /// The records, oldest first.
    #[must_use]
    pub fn records(&self) -> &[TraceRecord] {
        &self.recs
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// Whether the query is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Only the records belonging to `tid`.
    #[must_use]
    pub fn thread(&self, tid: Tid) -> TraceQuery {
        TraceQuery {
            recs: self.recs.iter().copied().filter(|r| r.tid == tid).collect(),
        }
    }

    /// Only the records of `kind`.
    #[must_use]
    pub fn kind(&self, kind: Kind) -> TraceQuery {
        TraceQuery {
            recs: self
                .recs
                .iter()
                .copied()
                .filter(|r| r.kind == kind)
                .collect(),
        }
    }

    /// Records matching `pred`.
    #[must_use]
    pub fn count(&self, pred: impl Fn(&TraceRecord) -> bool) -> usize {
        self.recs.iter().filter(|r| pred(r)).count()
    }

    /// Records of `kind`.
    #[must_use]
    pub fn count_kind(&self, kind: Kind) -> usize {
        self.count(|r| r.kind == kind)
    }

    /// Whether any record matches.
    #[must_use]
    pub fn any(&self, pred: impl Fn(&TraceRecord) -> bool) -> bool {
        self.recs.iter().any(pred)
    }

    /// Whether every record matches.
    #[must_use]
    pub fn all(&self, pred: impl Fn(&TraceRecord) -> bool) -> bool {
        self.recs.iter().all(pred)
    }

    /// Whether kinds `a` and `b` occur equally often (e.g. synthesize
    /// and destroy events balance over an open/close soak).
    #[must_use]
    pub fn balanced(&self, a: Kind, b: Kind) -> bool {
        self.count_kind(a) == self.count_kind(b)
    }

    /// Whether the predicates match *in order* as a subsequence: some
    /// record matching `preds[0]` is followed (not necessarily
    /// immediately) by one matching `preds[1]`, and so on.
    #[must_use]
    pub fn ordered(&self, preds: &[Pred<'_>]) -> bool {
        let mut next = 0;
        for r in &self.recs {
            if next == preds.len() {
                break;
            }
            if preds[next](r) {
                next += 1;
            }
        }
        next == preds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64, tid: u32, kind: Kind) -> TraceRecord {
        TraceRecord {
            cycle,
            tid,
            kind,
            flags: 0,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn count_match_and_order() {
        let q = TraceQuery::from_records(vec![
            rec(1, 1, Kind::SyscallEnter),
            rec(2, 2, Kind::Irq),
            rec(3, 1, Kind::SyscallExit),
        ]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.thread(1).len(), 2);
        assert_eq!(q.count_kind(Kind::Irq), 1);
        assert!(q.any(|r| r.kind == Kind::Irq));
        assert!(q.balanced(Kind::SyscallEnter, Kind::SyscallExit));
        assert!(q.ordered(&[&|r| r.kind == Kind::SyscallEnter, &|r| r.kind
            == Kind::SyscallExit,]));
        assert!(!q.ordered(&[&|r| r.kind == Kind::SyscallExit, &|r| r.kind
            == Kind::SyscallEnter,]));
    }
}
