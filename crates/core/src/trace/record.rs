//! Fixed-size binary trace records.
//!
//! Every kernel event is one 24-byte record — small enough that a
//! per-thread ring of a thousand records costs 24 KB, fixed-size so a
//! ring is plain storage with no allocation on the record path, and
//! binary (little-endian via [`TraceRecord::to_bytes`]) so rings can be
//! shipped out of a dump verbatim.

use crate::thread::Tid;

/// What a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u16)]
pub enum Kind {
    /// The thread was dispatched: its vector table was installed by
    /// `sw_in` (`a` = 0) or the kernel entered it host-side (`a` = 1).
    CtxSwitch = 1,
    /// Syscall entry: a `trap` vectored through the thread's table
    /// (`a` = trap vector).
    SyscallEnter = 2,
    /// Syscall exit: the matching `rte` (`a` = trap vector, `b` =
    /// enter→exit cycles, saturated to 32 bits).
    SyscallExit = 3,
    /// An interrupt was accepted while the thread was running
    /// (`a` = level).
    Irq = 4,
    /// Something entered a kernel queue (`a` = queue class `QCLASS_*`,
    /// `b` = detail: pipe id, sector, ...).
    QueuePut = 5,
    /// Something left a kernel queue (`a`/`b` as for [`Kind::QueuePut`]).
    QueueGet = 6,
    /// Channel synthesis hit the specialization cache (`a` = code base).
    CacheHit = 7,
    /// Channel synthesis missed the cache and ran the full pipeline
    /// (`a` = code base).
    CacheMiss = 8,
    /// A cached endpoint reference was destroyed (`a` = code base,
    /// `b` = 1 when the last reference evicted the code).
    Destroy = 9,
    /// Fault-recovery action (`a` = `REC_*` sub-code).
    Recovery = 10,
    /// Work stealing moved the thread to another CPU's ready chain
    /// (`a` = the stealing CPU). Only emitted on multiprocessor runs.
    Steal = 11,
    /// A reschedule IPI went missing (`a` = target CPU, `b` = 0) or was
    /// delayed in flight (`b` = delay in target-CPU cycles). Attributed
    /// to the target CPU's idle thread. Only emitted on multiprocessor
    /// runs with an active fault plan.
    IpiLost = 12,
    /// A CPU's clock jumped on dispatch without executing anything
    /// (`a` = the CPU, `b` = cycles lost, saturated to 32 bits).
    CpuStall = 13,
    /// The cross-CPU watchdog quarantined a CPU (`a` = the CPU, `b` =
    /// threads evacuated off its ready chain).
    CpuQuarantine = 14,
    /// A quarantined CPU was re-admitted after probation (`a` = the CPU,
    /// `b` = its strike count).
    CpuResume = 15,
}

impl Kind {
    /// Decode a kind from its wire value.
    #[must_use]
    pub fn from_u16(v: u16) -> Option<Kind> {
        match v {
            1 => Some(Kind::CtxSwitch),
            2 => Some(Kind::SyscallEnter),
            3 => Some(Kind::SyscallExit),
            4 => Some(Kind::Irq),
            5 => Some(Kind::QueuePut),
            6 => Some(Kind::QueueGet),
            7 => Some(Kind::CacheHit),
            8 => Some(Kind::CacheMiss),
            9 => Some(Kind::Destroy),
            10 => Some(Kind::Recovery),
            11 => Some(Kind::Steal),
            12 => Some(Kind::IpiLost),
            13 => Some(Kind::CpuStall),
            14 => Some(Kind::CpuQuarantine),
            15 => Some(Kind::CpuResume),
            _ => None,
        }
    }
}

/// Queue class for [`Kind::QueuePut`]/[`Kind::QueueGet`]: the disk
/// scheduler's request queue.
pub const QCLASS_DISK: u32 = 1;
/// Queue class: a kernel pipe ring.
pub const QCLASS_PIPE: u32 = 2;
/// Queue class: the tty input queue.
pub const QCLASS_TTY: u32 = 3;

/// Recovery sub-code ([`TraceRecord::a`] on [`Kind::Recovery`]): a
/// thread was reaped after a guest-attributable machine error.
pub const REC_REAP: u32 = 1;
/// Recovery sub-code: a thread was quarantined.
pub const REC_QUARANTINE: u32 = 2;
/// Recovery sub-code: an I/O error was surfaced to a requester.
pub const REC_IO_ERROR: u32 = 3;

/// Serialized record size in bytes.
pub const RECORD_BYTES: usize = 24;

/// One fixed-size binary trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct TraceRecord {
    /// Machine cycle count when the event was recorded (virtual time).
    pub cycle: u64,
    /// The thread the event belongs to.
    pub tid: Tid,
    /// Event kind.
    pub kind: Kind,
    /// The CPU the event was recorded on. Uniprocessor kernels always
    /// write 0 here — the field was formerly reserved-zero, so the
    /// single-CPU record bytes are unchanged.
    pub flags: u16,
    /// First kind-specific operand (see [`Kind`]).
    pub a: u32,
    /// Second kind-specific operand.
    pub b: u32,
}

impl TraceRecord {
    /// Serialize to the 24-byte little-endian wire format.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; RECORD_BYTES] {
        let mut out = [0u8; RECORD_BYTES];
        out[0..8].copy_from_slice(&self.cycle.to_le_bytes());
        out[8..12].copy_from_slice(&self.tid.to_le_bytes());
        out[12..14].copy_from_slice(&(self.kind as u16).to_le_bytes());
        out[14..16].copy_from_slice(&self.flags.to_le_bytes());
        out[16..20].copy_from_slice(&self.a.to_le_bytes());
        out[20..24].copy_from_slice(&self.b.to_le_bytes());
        out
    }

    /// Deserialize from the wire format; `None` on an unknown kind.
    #[must_use]
    pub fn from_bytes(b: &[u8; RECORD_BYTES]) -> Option<TraceRecord> {
        let kind = Kind::from_u16(u16::from_le_bytes([b[12], b[13]]))?;
        Some(TraceRecord {
            cycle: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            tid: u32::from_le_bytes(b[8..12].try_into().unwrap()),
            kind,
            flags: u16::from_le_bytes([b[14], b[15]]),
            a: u32::from_le_bytes(b[16..20].try_into().unwrap()),
            b: u32::from_le_bytes(b[20..24].try_into().unwrap()),
        })
    }
}

impl std::fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:>12}] tid {:>2} {:<12} a={:#x} b={:#x}",
            self.cycle,
            self.tid,
            format!("{:?}", self.kind),
            self.a,
            self.b
        )
    }
}
