//! Kernel-wide event tracing: lock-free per-thread ring buffers of
//! fixed-size binary records.
//!
//! The paper's kernel monitor "records in memory the instructions
//! executed by the current thread" (Section 6.3); this module applies
//! the same idea one level up, to kernel *events*: context switches,
//! syscall entry/exit, interrupts, queue put/get, specialization-cache
//! hit/miss, and fault-recovery actions. Code-Isolation style, each
//! thread's events go only into that thread's ring — the simulated
//! threads are time-multiplexed on the host, so the single writer per
//! ring holds by construction and no locking is ever needed.
//!
//! Recording is feature-gated: with the `trace` feature off, the
//! [`trace!`](crate::trace!) hook expands to nothing and none of the
//! collection paths (machine hook pump, cache-event drain) produce
//! records, so tracing costs zero bytes and zero cycles. Tracing never
//! charges *guest* cycles even when on — it is host-side observability,
//! which is what keeps the benchmark tables identical with the feature
//! on and off.
//!
//! Rings are owned by the kernel and keyed by thread id, **not** stored
//! in the `Thread`: a reaped thread's ring stays drainable after the
//! thread is destroyed, which is exactly when a post-mortem wants it.

pub mod query;
pub mod record;
pub mod ring;

pub use query::TraceQuery;
pub use record::{
    Kind, TraceRecord, QCLASS_DISK, QCLASS_PIPE, QCLASS_TTY, RECORD_BYTES, REC_IO_ERROR,
    REC_QUARANTINE, REC_REAP,
};
pub use ring::Ring;

use std::collections::BTreeMap;

use crate::thread::Tid;

/// Default per-thread ring capacity in records (24 KB per thread).
pub const DEFAULT_RING_RECORDS: usize = 1024;

/// An open exception frame, tracked per thread so `rte` events can be
/// matched back to the trap that opened them: `Some((vector, cycle))`
/// for a trap frame, `None` for an interrupt frame.
type Frame = Option<(u8, u64)>;

/// Bound on tracked frames per thread (drift from host-fabricated
/// frames stays bounded).
const FRAME_DEPTH: usize = 64;

/// The kernel's trace rings, one per thread.
#[derive(Debug)]
pub struct TraceSet {
    rings: BTreeMap<Tid, Ring>,
    frames: BTreeMap<Tid, Vec<Frame>>,
    io_counts: BTreeMap<Tid, u64>,
    steal_counts: BTreeMap<u32, u64>,
    cap: usize,
    /// Runtime switch (orthogonal to the compile-time feature): when
    /// false, [`TraceSet::push`] drops everything. Lets one binary
    /// compare traced and untraced runs of the same workload.
    pub enabled: bool,
    /// Machine hook events dropped before the kernel drained them
    /// (mirrors the hook log's counter at the last pump).
    pub dropped: u64,
    /// CPU attribution stamped into each pushed record's `flags` field.
    /// The kernel sets it before pushing (drain sites set it per event);
    /// a uniprocessor kernel leaves it 0, which keeps the record bytes
    /// identical to the pre-SMP format.
    pub cpu: u16,
}

impl TraceSet {
    /// A trace set whose rings hold `cap` records each.
    #[must_use]
    pub fn new(cap: usize) -> TraceSet {
        TraceSet {
            rings: BTreeMap::new(),
            frames: BTreeMap::new(),
            io_counts: BTreeMap::new(),
            steal_counts: BTreeMap::new(),
            cap,
            enabled: true,
            dropped: 0,
            cpu: 0,
        }
    }

    /// Whether `kind`/`a` counts as I/O data flow for the fine-grain
    /// scheduler's "need to execute" criterion: read/write/unix traps,
    /// non-quantum interrupts, and queue traffic. Context switches,
    /// cache events, and the quantum timer are scheduling mechanics,
    /// not I/O.
    #[must_use]
    pub fn is_io_event(kind: Kind, a: u32) -> bool {
        match kind {
            Kind::QueuePut | Kind::QueueGet => true,
            Kind::SyscallEnter => matches!(a, 1..=3),
            Kind::Irq => a != u32::from(crate::kernel::irq_levels::QUANTUM),
            _ => false,
        }
    }

    /// Record one event against `tid` at `cycle`.
    pub fn push(&mut self, tid: Tid, cycle: u64, kind: Kind, a: u32, b: u32) {
        if !self.enabled {
            return;
        }
        if Self::is_io_event(kind, a) {
            *self.io_counts.entry(tid).or_insert(0) += 1;
        }
        if kind == Kind::Steal {
            *self.steal_counts.entry(a).or_insert(0) += 1;
        }
        let cap = self.cap;
        self.rings
            .entry(tid)
            .or_insert_with(|| Ring::new(cap))
            .push(TraceRecord {
                cycle,
                tid,
                kind,
                flags: self.cpu,
                a,
                b,
            });
    }

    /// Track an opened exception frame for `tid` (trap: `Some((vector,
    /// cycle))`; interrupt: `None`).
    pub(crate) fn push_frame(&mut self, tid: Tid, frame: Frame) {
        let stack = self.frames.entry(tid).or_default();
        if stack.len() < FRAME_DEPTH {
            stack.push(frame);
        }
    }

    /// Pop `tid`'s most recent exception frame, if any.
    pub(crate) fn pop_frame(&mut self, tid: Tid) -> Option<Frame> {
        self.frames.get_mut(&tid).and_then(Vec::pop)
    }

    /// Cumulative I/O-classed events recorded for `tid` (monotonic; not
    /// subject to ring wraparound — the scheduler samples deltas of
    /// this).
    #[must_use]
    pub fn io_events(&self, tid: Tid) -> u64 {
        self.io_counts.get(&tid).copied().unwrap_or(0)
    }

    /// Cumulative [`Kind::Steal`] records naming `cpu` as the thief
    /// (monotonic; not subject to ring wraparound). Mirrors the
    /// kernel's per-CPU `steals` counter on traced builds.
    #[must_use]
    pub fn steal_events(&self, cpu: usize) -> u64 {
        let key = u32::try_from(cpu).unwrap_or(u32::MAX);
        self.steal_counts.get(&key).copied().unwrap_or(0)
    }

    /// Threads that have a ring (including reaped threads).
    #[must_use]
    pub fn tids(&self) -> Vec<Tid> {
        self.rings.keys().copied().collect()
    }

    /// Copy `tid`'s ring, oldest record first.
    #[must_use]
    pub fn snapshot(&self, tid: Tid) -> Vec<TraceRecord> {
        self.rings.get(&tid).map(Ring::snapshot).unwrap_or_default()
    }

    /// The last `n` records of `tid`'s ring, oldest of those first.
    #[must_use]
    pub fn last(&self, tid: Tid, n: usize) -> Vec<TraceRecord> {
        let mut v = self.snapshot(tid);
        if v.len() > n {
            v.drain(..v.len() - n);
        }
        v
    }

    /// Take `tid`'s ring contents, oldest first.
    pub fn drain(&mut self, tid: Tid) -> Vec<TraceRecord> {
        self.rings
            .get_mut(&tid)
            .map(Ring::drain)
            .unwrap_or_default()
    }

    /// Copy every ring, merged by cycle (ties keep thread order).
    #[must_use]
    pub fn snapshot_all(&self) -> Vec<TraceRecord> {
        let mut v: Vec<TraceRecord> = self.rings.values().flat_map(Ring::snapshot).collect();
        v.sort_by_key(|r| r.cycle);
        v
    }

    /// Take every ring's contents, merged by cycle.
    pub fn drain_all(&mut self) -> Vec<TraceRecord> {
        let mut v: Vec<TraceRecord> =
            self.rings
                .values_mut()
                .map(Ring::drain)
                .fold(Vec::new(), |mut acc, mut part| {
                    acc.append(&mut part);
                    acc
                });
        v.sort_by_key(|r| r.cycle);
        v
    }

    /// Total records currently held across all rings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rings.values().map(Ring::len).sum()
    }

    /// Whether every ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rings.values().all(Ring::is_empty)
    }

    /// Drop all records, frames, and I/O counts.
    pub fn clear(&mut self) {
        self.rings.clear();
        self.frames.clear();
        self.io_counts.clear();
    }
}

/// Record one trace event: `trace!(kernel, tid, kind, a, b)`. The cycle
/// stamp is read from the kernel's meter. Compiles to nothing when the
/// `trace` feature is off — the arguments are not even evaluated.
#[cfg(feature = "trace")]
#[macro_export]
macro_rules! trace {
    ($k:expr, $tid:expr, $kind:expr, $a:expr, $b:expr) => {{
        let cycle = $k.m.meter.cycles;
        $k.trace.cpu = $k.m.active_cpu() as u16;
        $k.trace.push($tid, cycle, $kind, $a, $b);
    }};
}

/// Record one trace event (feature `trace` off: expands to nothing).
#[cfg(not(feature = "trace"))]
#[macro_export]
macro_rules! trace {
    ($k:expr, $tid:expr, $kind:expr, $a:expr, $b:expr) => {{}};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_n(ts: &mut TraceSet, tid: Tid, n: u64) {
        for i in 0..n {
            ts.push(tid, i, Kind::CtxSwitch, 0, 0);
        }
    }

    #[test]
    fn rings_wrap_keeping_newest() {
        let mut ts = TraceSet::new(4);
        push_n(&mut ts, 1, 10);
        let recs = ts.snapshot(1);
        assert_eq!(recs.len(), 4);
        let cycles: Vec<u64> = recs.iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
    }

    #[test]
    fn io_classification() {
        assert!(TraceSet::is_io_event(Kind::SyscallEnter, 1));
        assert!(TraceSet::is_io_event(Kind::SyscallEnter, 2));
        assert!(!TraceSet::is_io_event(Kind::SyscallEnter, 0));
        assert!(TraceSet::is_io_event(Kind::QueuePut, 0));
        assert!(!TraceSet::is_io_event(
            Kind::Irq,
            u32::from(crate::kernel::irq_levels::QUANTUM)
        ));
        assert!(TraceSet::is_io_event(Kind::Irq, 4));
        assert!(!TraceSet::is_io_event(Kind::CacheHit, 0));
    }

    #[test]
    fn disabled_set_records_nothing() {
        let mut ts = TraceSet::new(4);
        ts.enabled = false;
        push_n(&mut ts, 1, 3);
        assert!(ts.is_empty());
        assert_eq!(ts.io_events(1), 0);
    }

    #[test]
    fn drain_all_merges_by_cycle() {
        let mut ts = TraceSet::new(8);
        ts.push(1, 5, Kind::CtxSwitch, 0, 0);
        ts.push(2, 3, Kind::CtxSwitch, 0, 0);
        ts.push(1, 9, Kind::CtxSwitch, 0, 0);
        let all = ts.drain_all();
        let cycles: Vec<u64> = all.iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![3, 5, 9]);
        assert!(ts.is_empty());
    }
}
