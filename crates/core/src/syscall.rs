//! Kernel-call selectors and the user-visible system-call surface.
//!
//! System calls are `trap` instructions (Section 4.1: "When a Synthesis
//! thread makes a kernel call, we say that the thread is executing in the
//! kernel mode"). The hot calls — `read` and `write` — vector through
//! per-thread dispatchers straight into synthesized code (traps `#1` and
//! `#2`). Everything else goes through the general call: `trap #0` with a
//! selector in `d0`.

/// Trap numbers.
pub mod traps {
    /// General kernel call (selector in `d0`).
    pub const GENERAL: u8 = 0;
    /// `read(fd = d0, buf = a0, count = d1) -> d0`.
    pub const READ: u8 = 1;
    /// `write(fd = d0, buf = a0, count = d1) -> d0`.
    pub const WRITE: u8 = 2;
    /// Reserved for the UNIX emulator (the `synthesis-unix` crate).
    pub const UNIX: u8 = 3;
}

/// Selectors for the general kernel call (`trap #0`, selector in `d0`).
pub mod general {
    /// Terminate the calling thread.
    pub const EXIT: u32 = 1;
    /// `d1` = entry address, `d2` = initial user SP; returns the new tid.
    pub const THREAD_CREATE: u32 = 2;
    /// Start thread `d1`.
    pub const THREAD_START: u32 = 3;
    /// Stop thread `d1`.
    pub const THREAD_STOP: u32 = 4;
    /// Destroy thread `d1`.
    pub const THREAD_DESTROY: u32 = 5;
    /// Send signal `d2` to thread `d1`.
    pub const SIGNAL: u32 = 6;
    /// Open: `a0` = path address (NUL-terminated in the caller's space);
    /// returns an fd or a negative error.
    pub const OPEN: u32 = 7;
    /// Close fd `d1`.
    pub const CLOSE: u32 = 8;
    /// Yield the CPU.
    pub const YIELD: u32 = 9;
    /// Returns the calling thread's id.
    pub const GETTID: u32 = 10;
    /// Install signal handler `d1` for the calling thread.
    pub const SET_SIG_HANDLER: u32 = 11;
    /// Return from a signal handler.
    pub const SIG_RETURN: u32 = 12;
    /// Create a pipe; returns `(read_fd << 8) | write_fd`.
    pub const PIPE: u32 = 13;
    /// Set a one-shot alarm `d1` µs from now.
    pub const SET_ALARM: u32 = 14;
    /// Block until the next alarm fires.
    pub const WAIT_ALARM: u32 = 15;
    /// Write the low byte of `d1` to the host console (debug).
    pub const PUTC: u32 = 16;
    /// Seek fd `d1` to absolute offset `d2`; returns the offset.
    pub const SEEK: u32 = 17;
}

/// Errors returned (negated) in `d0`.
pub mod errno {
    /// Bad file descriptor.
    pub const EBADF: i32 = 9;
    /// No such file.
    pub const ENOENT: i32 = 2;
    /// Out of some resource.
    pub const ENOMEM: i32 = 12;
    /// Invalid argument.
    pub const EINVAL: i32 = 22;
    /// Too many open files.
    pub const EMFILE: i32 = 24;
    /// I/O error (disk retries exhausted or sector quarantined).
    pub const EIO: i32 = 5;
    /// Path name too long (no NUL within the kernel's path limit).
    pub const ENAMETOOLONG: i32 = 63;
}

/// `kcall` selectors used by synthesized code (see the template modules
/// for the producers).
pub mod kcalls {
    /// General kernel call (selector in `d0`).
    pub const GENERAL: u16 = 0x00;
    /// Install the address map of the thread id in `d0`.
    pub const SET_MAP: u16 = 0x10;
    /// Lazy-FP resynthesis.
    pub const FP_RESYNTH: u16 = 0x11;
    /// Alarm fired.
    pub const ALARM: u16 = 0x12;
    /// Advance the A/D buffered queue to its next element.
    pub const AD_ADVANCE: u16 = 0x13;
    /// Disk request completed.
    pub const DISK_DONE: u16 = 0x14;
    /// Block: tty input needed.
    pub const WAIT_TTY: u16 = 0x20;
    /// Block: pipe (`d2`) space needed.
    pub const WAIT_PIPE_SPACE: u16 = 0x21;
    /// Block: pipe (`d2`) data needed.
    pub const WAIT_PIPE_DATA: u16 = 0x22;
    /// Wake tty-input waiters.
    pub const WAKE_TTY: u16 = 0x23;
    /// Wake pipe-data waiters (pipe id in `d2`).
    pub const WAKE_PIPE_DATA: u16 = 0x24;
    /// Wake pipe-space waiters (pipe id in `d2`).
    pub const WAKE_PIPE_SPACE: u16 = 0x25;
}
