//! Fine-grain scheduling (paper Section 4.4 and reference [3]).
//!
//! "Instead of priorities, Synthesis uses fine-grain scheduling, which
//! assigns larger or smaller quanta to threads based on a 'need to
//! execute' criterion. ... a thread's 'need to execute' is determined by
//! the rate at which I/O data flows into and out of its quaspace."
//!
//! The policy below measures each thread's I/O rate two ways and uses
//! whichever saw traffic this window:
//!
//! 1. **Traced I/O events** (primary): the kernel event trace classifies
//!    records as I/O data flow — read/write traps, device interrupts,
//!    queue put/get (see
//!    [`TraceSet::is_io_event`](crate::trace::TraceSet::is_io_event)) —
//!    and keeps a monotonic per-thread count not subject to ring
//!    wraparound. This sees *all* I/O, including flows that never touch
//!    a TTE gauge.
//! 2. **TTE gauges** (fallback): every synthesized I/O routine
//!    increments its thread's gauge. With the `trace` feature off (or a
//!    window with no traced I/O), the gauges alone drive adaptation, as
//!    before.
//!
//! Each pass computes a thread's share of the window's I/O traffic and
//! sets its quantum proportionally — patching the quantum immediate
//! inside the thread's `sw_in` code in place (an executable data
//! structure being retuned at run time).

use quamachine::isa::{Instr, Operand, Size};

use crate::kernel::Kernel;
use crate::thread::tte::off;
use crate::thread::Tid;

/// Quantum bounds in µs ("a typical quantum is on the order of a few
/// hundred microseconds").
pub const QUANTUM_MIN_US: u32 = 100;
/// Upper quantum bound.
pub const QUANTUM_MAX_US: u32 = 800;

/// The adaptive policy state.
#[derive(Debug, Default)]
pub struct FineGrain {
    /// Adaptation passes run.
    pub passes: u64,
    /// Quanta actually changed (code patches performed).
    pub adjustments: u64,
}

impl FineGrain {
    /// A fresh policy.
    #[must_use]
    pub fn new() -> FineGrain {
        FineGrain::default()
    }

    /// One adaptation pass: sample every thread's I/O activity since the
    /// last pass — traced I/O events when the window saw any, TTE gauges
    /// otherwise — and retune quanta.
    pub fn adapt(&mut self, k: &mut Kernel) {
        self.passes += 1;
        // Attribute any machine events still sitting in the hook log so
        // this window's traced counts are complete.
        k.pump_trace();
        // Sample both meters.
        let mut samples: Vec<(Tid, u64, u64)> = Vec::new();
        for (&tid, t) in &k.threads {
            // The idle thread has no traffic to adapt to, and quarantined
            // threads will never run again — retuning their switch code
            // would be a wasted patch (and a confusing one for whoever
            // inspects the quarantined TTE later).
            if k.is_idle(tid) || k.is_quarantined(tid) {
                continue;
            }
            let g = u64::from(k.m.mem.peek(t.tte + off::GAUGE, Size::L));
            let dgauge = g.saturating_sub(t.last_gauge);
            let dtrace = k.trace.io_events(tid).saturating_sub(t.last_io);
            samples.push((tid, dtrace, dgauge));
        }
        let trace_total: u64 = samples.iter().map(|&(_, dt, _)| dt).sum();
        let gauge_total: u64 = samples.iter().map(|&(_, _, dg)| dg).sum();
        for (tid, dtrace, dgauge) in samples {
            // Prefer the traced rate; a window with no traced I/O at all
            // (feature off, or purely gauge-visible traffic) falls back
            // to the gauges.
            let share = if trace_total > 0 {
                dtrace as f64 / trace_total as f64
            } else if gauge_total > 0 {
                dgauge as f64 / gauge_total as f64
            } else {
                0.0
            };
            // "The faster the I/O rate the faster a thread needs to run":
            // quantum scales with the thread's share of recent traffic.
            let q =
                QUANTUM_MIN_US + ((QUANTUM_MAX_US - QUANTUM_MIN_US) as f64 * share).round() as u32;
            let q = q.clamp(QUANTUM_MIN_US, QUANTUM_MAX_US);
            let old = k.threads.get(&tid).map_or(q, |t| t.quantum_us);
            if old != q {
                self.adjustments += 1;
            }
            let _ = set_quantum(k, tid, q);
            let io = k.trace.io_events(tid);
            if let Some(t) = k.threads.get_mut(&tid) {
                let g = u64::from(k.m.mem.peek(t.tte + off::GAUGE, Size::L));
                t.last_gauge = g;
                t.last_io = io;
            }
        }
    }
}

/// Set a thread's CPU quantum by patching the immediate inside its
/// `sw_in` code (same-size in-place patch) and mirroring it in the TTE.
///
/// The requested value is clamped to
/// [`QUANTUM_MIN_US`]`..=`[`QUANTUM_MAX_US`]: a zero quantum would make
/// the thread unschedulable and an enormous one would starve everyone
/// else, neither of which a caller can meaningfully want.
///
/// # Errors
///
/// Fails for unknown threads.
pub fn set_quantum(
    k: &mut Kernel,
    tid: Tid,
    quantum_us: u32,
) -> Result<(), crate::kernel::KernelError> {
    let quantum_us = quantum_us.clamp(QUANTUM_MIN_US, QUANTUM_MAX_US);
    let t = k
        .threads
        .get(&tid)
        .ok_or(crate::kernel::KernelError::NoThread(tid))?;
    let base = t.sw.base;
    let tte = t.tte;
    let qreg =
        quamachine::devices::dev_reg_addr(k.dev.timer, quamachine::devices::timer::REG_QUANTUM_US);
    // Find the `move.l #quantum,(timer_qreg)` instruction in the switch
    // code and patch its immediate.
    let block = k.m.code.block(base).expect("switch code installed");
    let idx = block.instrs.iter().position(
        |i| matches!(i, Instr::Move(Size::L, Operand::Imm(_), Operand::Abs(r)) if *r == qreg),
    );
    if let Some(idx) = idx {
        let addr = k.m.code.addr_of(base, idx).expect("in range");
        k.m.code.patch(
            addr,
            Instr::Move(Size::L, Operand::Imm(quantum_us), Operand::Abs(qreg)),
        )?;
        let c = crate::charges::code_patch(&k.m.cost);
        k.m.charge(c);
    }
    k.m.mem.poke(tte + off::QUANTUM, Size::L, quantum_us);
    if let Some(t) = k.threads.get_mut(&tid) {
        t.quantum_us = quantum_us;
    }
    Ok(())
}
