//! Synthesis threads (paper Section 4).

pub mod tte;

pub use tte::{FdObject, Thread, ThreadState, Tid, WaitObject};
